//! Offline, API-compatible subset of the `criterion` benchmarking crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the part of the Criterion API its benches use: [`Criterion`],
//! [`BenchmarkGroup`], `bench_function`, `iter`, `iter_batched`,
//! [`BatchSize`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple — a fixed warm-up followed by a
//! timed batch per sample, reporting min/mean/max of the per-iteration
//! time — with none of upstream's statistical machinery. Bench targets
//! stay `harness = false` executables, so `cargo bench` runs them and
//! `cargo bench --no-run` compiles them, exactly as with upstream.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a computed value (upstream
/// `criterion::black_box`).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` amortises setup cost; only the variants used by the
/// workspace are provided.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: one setup per measured iteration is acceptable.
    SmallInput,
    /// Large inputs: identical behaviour in this shim.
    LargeInput,
    /// Per-iteration setup (identical behaviour in this shim).
    PerIteration,
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.sample_size, f);
        self
    }

    /// Opens a named group of benchmarks sharing configuration.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks (upstream `BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target measurement time. Accepted for API compatibility;
    /// the shim's fixed sampling ignores it.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Runs a single named benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {name}: no samples recorded");
        return;
    }
    let n = bencher.samples.len() as f64;
    let mean = bencher.samples.iter().sum::<Duration>().as_secs_f64() / n;
    let min = bencher
        .samples
        .iter()
        .min()
        .expect("nonempty")
        .as_secs_f64();
    let max = bencher
        .samples
        .iter()
        .max()
        .expect("nonempty")
        .as_secs_f64();
    println!(
        "  {name}: time [{} {} {}]",
        format_time(min),
        format_time(mean),
        format_time(max)
    );
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.3} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.3} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.3} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Measures closures; handed to each benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, recording one sample per call after a warm-up
    /// call. The routine's output is passed through [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on inputs produced by `setup`, excluding setup time
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a function that runs a list of benchmark targets (upstream
/// `criterion_group!`). Only the positional form is supported.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` function of a `harness = false` bench executable
/// (upstream `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default();
        let mut ran = 0_u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn groups_and_batched_iteration() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut total = 0_u64;
        group.bench_function("batched", |b| {
            b.iter_batched(|| 5_u64, |x| total += x, BatchSize::SmallInput)
        });
        group.finish();
        assert!(total >= 20);
    }
}
