//! Test-case configuration and deterministic per-case RNG derivation.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for a `proptest!` block, mirroring
/// `proptest::test_runner::Config` for the fields this workspace uses.
///
/// Unlike upstream, the generator seed is part of the config and defaults
/// to a fixed constant, so test runs are reproducible by construction.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Base seed from which every case's generator is derived.
    pub rng_seed: u64,
}

/// Default base seed: reproducibility is the point of the shim, so the
/// default is a fixed constant rather than entropy.
pub const DEFAULT_RNG_SEED: u64 = 0x5EED_2026_0DE5_7177;

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            rng_seed: DEFAULT_RNG_SEED,
        }
    }
}

impl Config {
    /// Config running `cases` cases per property (upstream API).
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }

    /// Returns a copy of this config with the given base seed.
    pub fn with_rng_seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }

    /// Derives the generator for one case of one property. The property
    /// name participates in the derivation so distinct properties in the
    /// same block see uncorrelated streams.
    pub fn case_rng(&self, case_index: u32, property: &str) -> StdRng {
        let mut h = self.rng_seed ^ 0x9E37_79B9_7F4A_7C15;
        for byte in property.bytes() {
            h = (h ^ byte as u64).wrapping_mul(0x100_0000_01B3);
        }
        h = h.wrapping_add(0xA076_1D64_78BD_642F_u64.wrapping_mul(case_index as u64 + 1));
        StdRng::seed_from_u64(h)
    }
}
