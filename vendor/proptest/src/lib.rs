//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `proptest` that its property-based tests use: the
//! [`proptest!`] macro, `prop_assert*!` macros, numeric range strategies,
//! [`collection::vec`], and [`test_runner::Config`] (`ProptestConfig`).
//!
//! Differences from upstream, by design:
//!
//! * case generation is **deterministic**: every run draws cases from a
//!   PRNG seeded with [`test_runner::Config::rng_seed`] (default
//!   `0xWAVE_DE45` style constant), so tier-1 runs are reproducible
//!   bit for bit;
//! * there is no shrinking — a failing case panics immediately and the
//!   generated inputs are printed alongside the panic.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Common imports for property-based tests, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a [`proptest!`] case; on failure the
/// generated inputs are printed and the test panics (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(, $($fmt:tt)+)?) => {
        assert_eq!($left, $right $(, $($fmt)+)?)
    };
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(, $($fmt:tt)+)?) => {
        assert_ne!($left, $right $(, $($fmt)+)?)
    };
}

/// Declares property-based test functions.
///
/// Supports the upstream surface used in this workspace: an optional
/// `#![proptest_config(...)]` inner attribute followed by `#[test]`
/// functions whose arguments are drawn from strategies with `name in
/// strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            ($crate::test_runner::Config::default()); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands each case into a plain
/// `#[test]` function that loops over deterministically generated inputs.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($config:expr);) => {};
    (
        ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            for case_index in 0..config.cases {
                let mut rng = config.case_rng(case_index, stringify!($name));
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let case_desc = {
                    let mut parts: Vec<String> = Vec::new();
                    $(parts.push(format!(
                        "{} = {:?}",
                        stringify!($arg),
                        &$arg
                    ));)+
                    parts.join(", ")
                };
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest case {case_index}/{} of `{}` failed with inputs: {case_desc}",
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_cases! { ($config); $($rest)* }
    };
}
