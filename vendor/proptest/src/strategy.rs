//! Value-generation strategies: numeric ranges and combinators.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A source of generated values, mirroring `proptest::strategy::Strategy`
/// minus shrinking.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value from the given deterministic generator.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A strategy yielding a constant value (upstream `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}
