//! Minimal scoped work-stealing executor (vendored shim).
//!
//! A rayon-style fork-join pool pared down to what sharded sketch ingest
//! needs: a **global injector** for externally submitted tasks,
//! **per-worker deques** for pre-distributed batch work, and workers that
//! **steal** from each other when their own deque runs dry — so a worker
//! finishing a cheap chunk takes over a neighbour's queued chunk instead
//! of idling until the join.
//!
//! Two deliberate simplifications versus a full rayon:
//!
//! - **Scoped, not persistent.** Worker threads are launched per
//!   [`WorkPool::scope`] call on top of [`std::thread::scope`] and join
//!   before it returns. That keeps every task borrow-checked against the
//!   caller's environment in entirely safe Rust (the workspace denies
//!   `unsafe_code`); the spawn cost is one OS thread per worker per
//!   scope, negligible against the multi-millisecond bulk loads the pool
//!   exists for.
//! - **No nested spawn.** Tasks are plain `FnOnce()` closures; they
//!   cannot enqueue further tasks. Batch work is distributed up front
//!   with [`Scope::spawn_batch`], and imbalance is handled by stealing
//!   rather than by subdivision.
//!
//! # Join and panic semantics
//!
//! `scope` returns only after every spawned task has finished (the
//! deterministic join the ingest tests pin). The calling thread is
//! worker 0: after the scope closure returns it drains tasks like any
//! other worker instead of blocking. If any task panics, the panic is
//! caught, every remaining task still runs, and the **first** payload is
//! re-raised on the calling thread after the join — one crashed chunk
//! cannot silently vanish, and the pool stays usable for later scopes.

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, OnceLock};

type Task<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Executor configuration: how many workers a [`scope`](Self::scope)
/// runs (the calling thread counts as one of them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkPool {
    threads: usize,
}

impl WorkPool {
    /// A pool of exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// The process-wide default pool, sized to
    /// [`std::thread::available_parallelism`] (1 when unknown).
    pub fn global() -> &'static WorkPool {
        static GLOBAL: OnceLock<WorkPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            WorkPool::new(
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1),
            )
        })
    }

    /// Number of workers a scope runs, including the calling thread.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` with a [`Scope`] handle for spawning tasks, joins every
    /// spawned task, then returns `f`'s result. Re-raises the first task
    /// panic after the join (see the module docs).
    pub fn scope<'env, T>(&self, f: impl FnOnce(&Scope<'_, 'env>) -> T) -> T {
        let shared = Shared::new(self.threads);
        let result = std::thread::scope(|threads| {
            // Helper workers 1..N; the calling thread is worker 0.
            for worker in 1..self.threads {
                let shared = &shared;
                threads.spawn(move || shared.worker_loop(worker));
            }
            let scope = Scope {
                shared: &shared,
                next_deque: Mutex::new(0),
            };
            let result = f(&scope);
            shared.drain(0);
            shared.join_and_shutdown();
            result
        });
        if let Some(payload) = shared
            .panic
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            resume_unwind(payload);
        }
        result
    }
}

/// Spawn handle passed to the [`WorkPool::scope`] closure.
pub struct Scope<'pool, 'env> {
    shared: &'pool Shared<'env>,
    /// Round-robin cursor of [`spawn_batch`](Self::spawn_batch).
    next_deque: Mutex<usize>,
}

impl<'pool, 'env> Scope<'pool, 'env> {
    /// Submits one task through the global injector; any idle worker
    /// picks it up in FIFO order.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'env) {
        self.shared.push_injector(Box::new(task));
    }

    /// Pre-distributes a batch of tasks round-robin across the
    /// per-worker deques, so each worker starts on its own share and
    /// falls back to stealing only when it runs dry.
    pub fn spawn_batch<F>(&self, tasks: impl IntoIterator<Item = F>)
    where
        F: FnOnce() + Send + 'env,
    {
        let mut cursor = self.next_deque.lock().unwrap_or_else(|e| e.into_inner());
        for task in tasks {
            self.shared.push_deque(*cursor, Box::new(task));
            *cursor = (*cursor + 1) % self.shared.deques.len();
        }
    }
}

/// Counters guarded by the one lock both condvars wait on, so wakeups
/// cannot be lost between a queue push and a worker going to sleep.
#[derive(Default)]
struct Counters {
    /// Tasks pushed but not yet claimed by a worker.
    queued: usize,
    /// Tasks pushed but not yet finished (claimed ones included).
    in_flight: usize,
    /// Set once the join is complete; sleeping workers exit.
    shutdown: bool,
}

struct Shared<'env> {
    injector: Mutex<VecDeque<Task<'env>>>,
    deques: Vec<Mutex<VecDeque<Task<'env>>>>,
    counters: Mutex<Counters>,
    /// Signalled on push (one waiter) and on shutdown (all waiters).
    work: Condvar,
    /// Signalled when `in_flight` reaches zero.
    done: Condvar,
    /// First caught task panic, re-raised after the join.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl<'env> Shared<'env> {
    fn new(threads: usize) -> Self {
        Self {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            counters: Mutex::new(Counters::default()),
            work: Condvar::new(),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn lock<'a, T>(&self, mutex: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
        // Task panics are caught before they can poison anything; queue
        // state is consistent at every unlock, so recovery is plain.
        mutex
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn push_injector(&self, task: Task<'env>) {
        self.lock(&self.injector).push_back(task);
        self.announce();
    }

    fn push_deque(&self, worker: usize, task: Task<'env>) {
        self.lock(&self.deques[worker]).push_back(task);
        self.announce();
    }

    fn announce(&self) {
        let mut counters = self.lock(&self.counters);
        counters.queued += 1;
        counters.in_flight += 1;
        drop(counters);
        self.work.notify_one();
    }

    /// Claims one queued task: own deque from the back (latest, still
    /// cache-warm), then the injector from the front (submission order),
    /// then the front of every other worker's deque (stealing the
    /// oldest, as rayon does). The claim ticket taken from `queued`
    /// guarantees a task is resident somewhere, but a concurrent claimer
    /// may pop the one this scan was heading for while a fresh push
    /// lands behind the scan — hence the retry loop.
    fn claim(&self, worker: usize) -> Task<'env> {
        loop {
            if let Some(task) = self.lock(&self.deques[worker]).pop_back() {
                return task;
            }
            if let Some(task) = self.lock(&self.injector).pop_front() {
                return task;
            }
            for victim in 0..self.deques.len() {
                if victim == worker {
                    continue;
                }
                if let Some(task) = self.lock(&self.deques[victim]).pop_front() {
                    return task;
                }
            }
            std::thread::yield_now();
        }
    }

    /// Runs one claimed task, trapping its panic so the queues keep
    /// draining; the first payload wins and is re-raised at the join.
    fn run(&self, task: Task<'env>) {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
            self.lock(&self.panic).get_or_insert(payload);
        }
        let mut counters = self.lock(&self.counters);
        counters.in_flight -= 1;
        if counters.in_flight == 0 {
            drop(counters);
            self.done.notify_all();
        }
    }

    /// Helper-worker body: claim and run until shutdown.
    fn worker_loop(&self, worker: usize) {
        loop {
            let mut counters = self.lock(&self.counters);
            loop {
                if counters.queued > 0 {
                    counters.queued -= 1;
                    break;
                }
                if counters.shutdown {
                    return;
                }
                counters = self.work.wait(counters).unwrap_or_else(|e| e.into_inner());
            }
            drop(counters);
            let task = self.claim(worker);
            self.run(task);
        }
    }

    /// Non-blocking drain for the calling thread: runs queued tasks
    /// until none are claimable, without ever sleeping.
    fn drain(&self, worker: usize) {
        loop {
            let mut counters = self.lock(&self.counters);
            if counters.queued == 0 {
                return;
            }
            counters.queued -= 1;
            drop(counters);
            let task = self.claim(worker);
            self.run(task);
        }
    }

    /// Blocks until every task has finished, then wakes all sleeping
    /// workers into shutdown.
    fn join_and_shutdown(&self) {
        let mut counters = self.lock(&self.counters);
        while counters.in_flight > 0 {
            counters = self.done.wait(counters).unwrap_or_else(|e| e.into_inner());
        }
        counters.shutdown = true;
        drop(counters);
        self.work.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_every_task_before_returning() {
        let pool = WorkPool::new(4);
        let done = AtomicUsize::new(0);
        let result = pool.scope(|scope| {
            for _ in 0..64 {
                scope.spawn(|| {
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
            "scope result"
        });
        assert_eq!(result, "scope result");
        assert_eq!(done.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn batch_tasks_run_exactly_once_each() {
        let pool = WorkPool::new(3);
        let hits: Vec<AtomicUsize> = (0..40).map(|_| AtomicUsize::new(0)).collect();
        pool.scope(|scope| {
            scope.spawn_batch((0..hits.len()).map(|i| {
                let hits = &hits;
                move || {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            }));
        });
        for (i, hit) in hits.iter().enumerate() {
            assert_eq!(hit.load(Ordering::Relaxed), 1, "task {i}");
        }
    }

    #[test]
    fn single_thread_pool_runs_injected_tasks_in_submission_order() {
        let pool = WorkPool::new(1);
        let order = Mutex::new(Vec::new());
        let order_ref = &order;
        pool.scope(|scope| {
            for i in 0..10 {
                scope.spawn(move || order_ref.lock().unwrap().push(i));
            }
        });
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn tasks_borrow_the_caller_environment_mutably_via_disjoint_slices() {
        let pool = WorkPool::new(2);
        let mut cells = vec![0_usize; 8];
        pool.scope(|scope| {
            scope.spawn_batch(
                cells
                    .chunks_mut(2)
                    .enumerate()
                    .map(|(i, chunk)| move || chunk.fill(i + 1)),
            );
        });
        assert_eq!(cells, [1, 1, 2, 2, 3, 3, 4, 4]);
    }

    #[test]
    fn panic_propagates_after_all_tasks_ran() {
        let pool = WorkPool::new(2);
        let survivors = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                scope.spawn(|| panic!("chunk exploded"));
                for _ in 0..16 {
                    scope.spawn(|| {
                        survivors.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        let payload = caught.expect_err("task panic must reach the caller");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("panic payload");
        assert_eq!(message, "chunk exploded");
        // The join is deterministic even around a crash: every other
        // task still ran before the panic was re-raised.
        assert_eq!(survivors.load(Ordering::Relaxed), 16);
        // And the pool stays usable afterwards.
        let after = pool.scope(|_| 7);
        assert_eq!(after, 7);
    }

    /// While the caller spins inside the scope closure it claims no
    /// tasks (its drain runs only after the closure returns), so on a
    /// 2-worker pool the single helper must empty *both* per-worker
    /// deques — completion of all four tasks proves it stole the two
    /// parked on worker 0's deque. Broken stealing hangs the test.
    #[test]
    fn helper_worker_steals_from_the_callers_deque() {
        let pool = WorkPool::new(2);
        let done = AtomicUsize::new(0);
        pool.scope(|scope| {
            let done_ref = &done;
            scope.spawn_batch((0..4).map(|_| {
                move || {
                    done_ref.fetch_add(1, Ordering::Relaxed);
                }
            }));
            let mut spins = 0_u64;
            while done.load(Ordering::Relaxed) < 4 {
                std::thread::yield_now();
                spins += 1;
                if spins > 200_000_000 {
                    panic!("helper never stole the caller-deque tasks");
                }
            }
        });
        assert_eq!(done.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn global_pool_matches_available_parallelism() {
        let threads = WorkPool::global().threads();
        assert!(threads >= 1);
        let total = AtomicUsize::new(0);
        let total_ref = &total;
        WorkPool::global().scope(|scope| {
            scope.spawn_batch((1..=10).map(|i| {
                move || {
                    total_ref.fetch_add(i, Ordering::Relaxed);
                }
            }));
        });
        assert_eq!(total.load(Ordering::Relaxed), 55);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(WorkPool::new(0).threads(), 1);
    }
}
