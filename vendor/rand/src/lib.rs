//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small part of `rand` 0.8 that `wavedens` actually uses:
//! the [`RngCore`]/[`Rng`]/[`SeedableRng`] traits, [`rngs::StdRng`], the
//! [`distributions::Standard`] distribution for `f64`/`u64`/`u32`/`bool`,
//! and `gen_range` over half-open and inclusive numeric ranges.
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64. It is a
//! high-quality deterministic generator but is **not** bit-compatible
//! with upstream `rand`'s ChaCha-based `StdRng`; everything in this
//! workspace only relies on determinism for a fixed seed, which holds.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of random bits.
///
/// Object-safe; generic convenience methods live on [`Rng`].
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Generic convenience methods available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`distributions::Standard`]
    /// distribution (`f64` uniform on `[0, 1)`, full-range integers).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples a value uniformly from the given range, which may be
    /// half-open (`lo..hi`) or inclusive (`lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits => uniform on [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Distributions that [`Rng::gen`] samples from.
pub mod distributions {
    use super::RngCore;

    /// Types that can produce values of type `T` given a bit source.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: uniform `[0, 1)` for floats, uniform
    /// over all values for integers and `bool`.
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            super::unit_f64(rng)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            ((rng.next_u32() >> 8) as f32) * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via SplitMix64. Not bit-compatible with upstream `rand`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let x = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let k = rng.gen_range(2_usize..=10);
            assert!((2..=10).contains(&k));
            let j = rng.gen_range(-5_i64..5);
            assert!((-5..5).contains(&j));
        }
    }

    #[test]
    fn dyn_rng_core_supports_gen() {
        let mut rng = StdRng::seed_from_u64(4);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let u: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
