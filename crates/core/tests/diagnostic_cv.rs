//! Temporary diagnostic (run with `--ignored --nocapture`): inspects the
//! per-level behaviour of the literal cross-validation criterion on the
//! paper's Case-1 data to guide the reproduction decisions documented in
//! DESIGN.md.

use wavedens_core::{Grid, ThresholdRule, WaveletDensityEstimator};
use wavedens_processes::{seeded_rng, DependenceCase, SineUniformMixture, TargetDensity};

#[test]
#[ignore]
fn inspect_cv_behaviour() {
    let target = SineUniformMixture::paper();
    let n = 1 << 10;
    let grid = Grid::new(0.0, 1.0, 401);
    let truth = grid.evaluate(|x| target.pdf(x));
    for rule in [ThresholdRule::Hard, ThresholdRule::Soft] {
        let mut mise = 0.0;
        let reps = 10;
        let mut j1_sum = 0.0;
        for rep in 0..reps {
            let mut rng = seeded_rng(1000 + rep);
            let data = DependenceCase::Iid.simulate(&target, n, &mut rng);
            let est = WaveletDensityEstimator::new(
                rule,
                wavedens_core::ThresholdSelection::CrossValidation,
            )
            .fit(&data)
            .unwrap();
            let vals = est.evaluate_on(&grid);
            mise += grid.integrate_abs_power(&vals, &truth, 2.0);
            j1_sum += est.highest_level() as f64;
            if rep == 0 {
                let cv = est.cross_validation().unwrap();
                for lvl in &cv.levels {
                    println!(
                        "{rule:?} level {}: lambda={:.4} criterion={:.5} kept={}/{} frac_killed={:.2}",
                        lvl.level,
                        lvl.lambda,
                        lvl.criterion,
                        lvl.kept,
                        lvl.total,
                        lvl.thresholded_fraction()
                    );
                }
            }
        }
        println!(
            "{rule:?}: MISE = {:.4}, mean j1 = {:.2}",
            mise / reps as f64,
            j1_sum / reps as f64
        );
    }
}
