//! Kernel density estimators: the baseline the paper compares against in
//! Section 5.4 (Epanechnikov kernel with a rule-of-thumb bandwidth and with
//! a least-squares cross-validated bandwidth).

use crate::error::EstimatorError;
use crate::grid::Grid;

/// Kernel shapes supported by [`KernelDensityEstimator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// `K(u) = ¾ (1 − u²)` on `[−1, 1]` — the kernel used in the paper.
    Epanechnikov,
    /// The standard normal kernel (included for completeness).
    Gaussian,
}

impl Kernel {
    /// Evaluates the kernel at `u`.
    pub fn evaluate(self, u: f64) -> f64 {
        match self {
            Kernel::Epanechnikov => {
                if u.abs() <= 1.0 {
                    0.75 * (1.0 - u * u)
                } else {
                    0.0
                }
            }
            Kernel::Gaussian => (-(u * u) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt(),
        }
    }

    /// The self-convolution `K⋆K(t)`, needed by least-squares
    /// cross-validation (`∫ f̂² = (n²h)⁻¹ ΣΣ K⋆K((X_i − X_j)/h)`).
    pub fn self_convolution(self, t: f64) -> f64 {
        match self {
            Kernel::Epanechnikov => {
                let a = t.abs();
                if a <= 2.0 {
                    3.0 / 160.0 * (2.0 - a).powi(3) * (a * a + 6.0 * a + 4.0)
                } else {
                    0.0
                }
            }
            Kernel::Gaussian => (-(t * t) / 4.0).exp() / (4.0 * std::f64::consts::PI).sqrt(),
        }
    }

    /// Radius beyond which the kernel (and its self-convolution divided by
    /// two) vanishes; `f64::INFINITY` for the Gaussian.
    fn support_radius(self) -> f64 {
        match self {
            Kernel::Epanechnikov => 1.0,
            Kernel::Gaussian => f64::INFINITY,
        }
    }
}

/// How the bandwidth is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BandwidthRule {
    /// MATLAB's rule of thumb used by the paper:
    /// `h = (q₃ − q₁)/(2·0.6745) · (4/(3n))^{1/5}` (an IQR-based normal
    /// reference rule).
    RuleOfThumb,
    /// Least-squares cross-validation of the integrated squared error over
    /// a bandwidth grid ("kernel estimator 2" in the paper).
    LeastSquaresCrossValidation,
    /// A fixed, user-supplied bandwidth.
    Fixed(f64),
}

/// A kernel density estimator configuration.
#[derive(Debug, Clone, Copy)]
pub struct KernelDensityEstimator {
    kernel: Kernel,
    bandwidth: BandwidthRule,
}

impl KernelDensityEstimator {
    /// The paper's "kernel estimator 1": Epanechnikov with the rule of
    /// thumb.
    pub fn rule_of_thumb() -> Self {
        Self {
            kernel: Kernel::Epanechnikov,
            bandwidth: BandwidthRule::RuleOfThumb,
        }
    }

    /// The paper's "kernel estimator 2": Epanechnikov with the LSCV
    /// bandwidth.
    pub fn cross_validated() -> Self {
        Self {
            kernel: Kernel::Epanechnikov,
            bandwidth: BandwidthRule::LeastSquaresCrossValidation,
        }
    }

    /// A custom kernel/bandwidth combination.
    pub fn new(kernel: Kernel, bandwidth: BandwidthRule) -> Self {
        Self { kernel, bandwidth }
    }

    /// Fits the estimator to data. Non-finite observations (NaN, ±∞) are
    /// rejected with [`EstimatorError::NonFiniteSample`] — they would
    /// silently corrupt the sorted sample and every bandwidth rule.
    pub fn fit(&self, data: &[f64]) -> Result<KernelDensityEstimate, EstimatorError> {
        if data.len() < 2 {
            return Err(EstimatorError::EmptySample);
        }
        if let Some((index, &value)) = data.iter().enumerate().find(|(_, v)| !v.is_finite()) {
            return Err(EstimatorError::NonFiniteSample { index, value });
        }
        let mut sorted = data.to_vec();
        sorted.sort_by(f64::total_cmp);
        let bandwidth = match self.bandwidth {
            BandwidthRule::Fixed(h) => {
                if h <= 0.0 || !h.is_finite() {
                    return Err(EstimatorError::InvalidParameter {
                        message: format!("bandwidth must be positive and finite, got {h}"),
                    });
                }
                h
            }
            BandwidthRule::RuleOfThumb => rule_of_thumb_bandwidth(&sorted),
            BandwidthRule::LeastSquaresCrossValidation => {
                let reference = rule_of_thumb_bandwidth(&sorted);
                least_squares_cv_bandwidth(&sorted, self.kernel, reference)
            }
        };
        Ok(KernelDensityEstimate {
            kernel: self.kernel,
            bandwidth,
            sorted_data: sorted,
        })
    }
}

/// A fitted kernel density estimate.
#[derive(Debug, Clone)]
pub struct KernelDensityEstimate {
    kernel: Kernel,
    bandwidth: f64,
    sorted_data: Vec<f64>,
}

impl KernelDensityEstimate {
    /// The bandwidth actually used.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// The kernel shape used.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Sample size.
    pub fn sample_size(&self) -> usize {
        self.sorted_data.len()
    }

    /// The interval outside which the estimate is (numerically) zero:
    /// the data range padded by the kernel radius — the same support
    /// radius that [`evaluate`](Self::evaluate) prunes with, so the two
    /// sites cannot disagree. For kernels with unbounded support
    /// (Gaussian), the radius is truncated at `8h` (the tail mass beyond
    /// is below 1e-15).
    pub fn support_interval(&self) -> (f64, f64) {
        let radius = self.kernel.support_radius() * self.bandwidth;
        let radius = if radius.is_finite() {
            radius
        } else {
            8.0 * self.bandwidth
        };
        let first = *self.sorted_data.first().expect("fit requires data");
        let last = *self.sorted_data.last().expect("fit requires data");
        (first - radius, last + radius)
    }

    /// Evaluates the estimate at a point, exploiting the sorted data and
    /// compact kernel support.
    pub fn evaluate(&self, x: f64) -> f64 {
        let n = self.sorted_data.len() as f64;
        let h = self.bandwidth;
        let radius = self.kernel.support_radius() * h;
        let (start, end) = if radius.is_finite() {
            (
                self.sorted_data.partition_point(|&v| v < x - radius),
                self.sorted_data.partition_point(|&v| v <= x + radius),
            )
        } else {
            (0, self.sorted_data.len())
        };
        let sum: f64 = self.sorted_data[start..end]
            .iter()
            .map(|&xi| self.kernel.evaluate((x - xi) / h))
            .sum();
        sum / (n * h)
    }

    /// Evaluates the estimate on a grid.
    pub fn evaluate_on(&self, grid: &Grid) -> Vec<f64> {
        grid.evaluate(|x| self.evaluate(x))
    }
}

/// The paper's rule-of-thumb bandwidth (expects sorted data).
fn rule_of_thumb_bandwidth(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    let iqr = quantile_sorted(sorted, 0.75) - quantile_sorted(sorted, 0.25);
    let spread = if iqr > 0.0 {
        iqr / (2.0 * 0.6745)
    } else {
        // Degenerate IQR (heavily tied data): fall back to the standard
        // deviation so the bandwidth stays positive.
        standard_deviation(sorted).max(f64::MIN_POSITIVE)
    };
    spread * (4.0 / (3.0 * n as f64)).powf(0.2)
}

/// Least-squares cross-validation over a logarithmic bandwidth grid centred
/// on the reference bandwidth.
fn least_squares_cv_bandwidth(sorted: &[f64], kernel: Kernel, reference: f64) -> f64 {
    const GRID: usize = 30;
    let mut best_h = reference;
    let mut best_score = f64::INFINITY;
    for i in 0..GRID {
        // Bandwidths from reference/8 to reference·4 on a log scale.
        let factor = (-3.0_f64 + 5.0 * i as f64 / (GRID - 1) as f64).exp2();
        let h = reference * factor;
        let score = lscv_score(sorted, kernel, h);
        if score < best_score {
            best_score = score;
            best_h = h;
        }
    }
    best_h
}

/// The LSCV objective `∫f̂² − 2/n Σ_i f̂_{−i}(X_i)`, computed with the
/// convolution identity and a two-pointer sweep over the sorted sample.
fn lscv_score(sorted: &[f64], kernel: Kernel, h: f64) -> f64 {
    let n = sorted.len() as f64;
    let radius = match kernel {
        Kernel::Epanechnikov => 2.0 * h,
        Kernel::Gaussian => 8.0 * h,
    };
    // Σ_{i<j} K⋆K((x_i − x_j)/h) and Σ_{i<j} K((x_i − x_j)/h).
    let mut conv_sum = 0.0;
    let mut kernel_sum = 0.0;
    let mut window_start = 0usize;
    for j in 1..sorted.len() {
        while sorted[j] - sorted[window_start] > radius {
            window_start += 1;
        }
        for i in window_start..j {
            let t = (sorted[j] - sorted[i]) / h;
            conv_sum += kernel.self_convolution(t);
            kernel_sum += kernel.evaluate(t);
        }
    }
    // ∫f̂² = (n²h)⁻¹ [ n·K⋆K(0) + 2 Σ_{i<j} K⋆K(Δ/h) ].
    let integral_sq = (n * kernel.self_convolution(0.0) + 2.0 * conv_sum) / (n * n * h);
    // (2/n) Σ_i f̂_{−i}(X_i) = 2/(n(n−1)h) · 2 Σ_{i<j} K(Δ/h).
    let loo = 4.0 * kernel_sum / (n * (n - 1.0) * h);
    integral_sq - loo
}

/// Linear-interpolation quantile of sorted data.
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let pos = q.clamp(0.0, 1.0) * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

fn standard_deviation(data: &[f64]) -> f64 {
    let n = data.len() as f64;
    let mean = data.iter().sum::<f64>() / n;
    (data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use wavedens_processes::{seeded_rng, GaussianMixture, TargetDensity};

    fn gaussian_mixture_sample(n: usize, seed: u64) -> Vec<f64> {
        let target = GaussianMixture::paper_bimodal();
        let mut rng = seeded_rng(seed);
        (0..n).map(|_| target.quantile(rng.gen::<f64>())).collect()
    }

    #[test]
    fn kernels_integrate_to_one() {
        for kernel in [Kernel::Epanechnikov, Kernel::Gaussian] {
            let grid = Grid::new(-10.0, 10.0, 40_001);
            let values = grid.evaluate(|u| kernel.evaluate(u));
            assert!((grid.integrate(&values) - 1.0).abs() < 1e-6, "{kernel:?}");
            let conv = grid.evaluate(|u| kernel.self_convolution(u));
            assert!(
                (grid.integrate(&conv) - 1.0).abs() < 1e-6,
                "{kernel:?} self-convolution"
            );
        }
    }

    #[test]
    fn epanechnikov_self_convolution_matches_numerical_convolution() {
        let k = Kernel::Epanechnikov;
        for &t in &[0.0, 0.3, 0.9, 1.4, 1.99, 2.5] {
            // (K⋆K)(t) = ∫ K(u) K(t − u) du.
            let steps = 20_000;
            let numeric: f64 = (0..steps)
                .map(|i| {
                    let u = -1.0 + 2.0 * (i as f64 + 0.5) / steps as f64;
                    k.evaluate(u) * k.evaluate(t - u) * (2.0 / steps as f64)
                })
                .sum();
            assert!(
                (numeric - k.self_convolution(t)).abs() < 1e-4,
                "t = {t}: numeric {numeric} vs closed form {}",
                k.self_convolution(t)
            );
        }
    }

    #[test]
    fn rule_of_thumb_matches_matlab_formula() {
        // For data 0, 1/(n-1), …, 1 the quartiles are 0.25 and 0.75.
        let n = 101;
        let data: Vec<f64> = (0..n).map(|i| i as f64 / (n - 1) as f64).collect();
        let fit = KernelDensityEstimator::rule_of_thumb().fit(&data).unwrap();
        let expected = 0.5 / (2.0 * 0.6745) * (4.0 / (3.0 * n as f64)).powf(0.2);
        assert!((fit.bandwidth() - expected).abs() < 1e-12);
    }

    #[test]
    fn estimate_integrates_to_one() {
        let data = gaussian_mixture_sample(800, 1);
        for estimator in [
            KernelDensityEstimator::rule_of_thumb(),
            KernelDensityEstimator::cross_validated(),
            KernelDensityEstimator::new(Kernel::Gaussian, BandwidthRule::Fixed(0.05)),
        ] {
            let fit = estimator.fit(&data).unwrap();
            let grid = Grid::new(-0.5, 1.5, 2001);
            let mass = grid.integrate(&fit.evaluate_on(&grid));
            assert!((mass - 1.0).abs() < 0.01, "mass {mass}");
        }
    }

    #[test]
    fn cv_bandwidth_beats_rule_of_thumb_on_bimodal_data() {
        // The paper's headline observation in Figure 5: the rule of thumb
        // oversmooths the bimodal mixture and misses the modes, while the
        // CV bandwidth detects them.
        let target = GaussianMixture::paper_bimodal();
        let data = gaussian_mixture_sample(1024, 2);
        let rot = KernelDensityEstimator::rule_of_thumb().fit(&data).unwrap();
        let cv = KernelDensityEstimator::cross_validated()
            .fit(&data)
            .unwrap();
        assert!(
            cv.bandwidth() < rot.bandwidth(),
            "CV bandwidth {} should be below the rule of thumb {}",
            cv.bandwidth(),
            rot.bandwidth()
        );
        let grid = Grid::new(0.0, 1.0, 401);
        let truth = grid.evaluate(|x| target.pdf(x));
        let ise_rot = grid.integrate_abs_power(&rot.evaluate_on(&grid), &truth, 2.0);
        let ise_cv = grid.integrate_abs_power(&cv.evaluate_on(&grid), &truth, 2.0);
        assert!(
            ise_cv < ise_rot,
            "CV ISE {ise_cv} should beat rule-of-thumb ISE {ise_rot}"
        );
        // The rule of thumb misses the modes: its maximum is far below the
        // true peak (≈ 10).
        let max_rot = rot.evaluate_on(&grid).into_iter().fold(0.0_f64, f64::max);
        let max_cv = cv.evaluate_on(&grid).into_iter().fold(0.0_f64, f64::max);
        assert!(max_rot < 6.0, "rule of thumb peak {max_rot}");
        assert!(max_cv > 6.0, "CV peak {max_cv}");
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(KernelDensityEstimator::rule_of_thumb().fit(&[1.0]).is_err());
        assert!(
            KernelDensityEstimator::new(Kernel::Epanechnikov, BandwidthRule::Fixed(0.0))
                .fit(&[0.1, 0.2, 0.3])
                .is_err()
        );
        assert!(
            KernelDensityEstimator::new(Kernel::Epanechnikov, BandwidthRule::Fixed(f64::NAN))
                .fit(&[0.1, 0.2, 0.3])
                .is_err()
        );
        // Non-finite observations are rejected with a pinpointed error
        // instead of the panic the old partial_cmp sort produced.
        assert!(matches!(
            KernelDensityEstimator::rule_of_thumb()
                .fit(&[0.1, f64::NAN, 0.3])
                .unwrap_err(),
            EstimatorError::NonFiniteSample { index: 1, value } if value.is_nan()
        ));
        assert!(matches!(
            KernelDensityEstimator::rule_of_thumb()
                .fit(&[f64::INFINITY, 0.3, 0.4])
                .unwrap_err(),
            EstimatorError::NonFiniteSample { index: 0, .. }
        ));
    }

    #[test]
    fn support_interval_pads_the_data_range_by_the_kernel_radius() {
        let data = vec![0.4, 0.5, 0.6];
        let fit = KernelDensityEstimator::new(Kernel::Epanechnikov, BandwidthRule::Fixed(0.05))
            .fit(&data)
            .unwrap();
        let (lo, hi) = fit.support_interval();
        assert!((lo - 0.35).abs() < 1e-12 && (hi - 0.65).abs() < 1e-12);
        assert_eq!(fit.evaluate(lo - 1e-9), 0.0);
        assert_eq!(fit.evaluate(hi + 1e-9), 0.0);
        let gaussian = KernelDensityEstimator::new(Kernel::Gaussian, BandwidthRule::Fixed(0.05))
            .fit(&data)
            .unwrap();
        let (glo, ghi) = gaussian.support_interval();
        assert!(gaussian.evaluate(glo) < 1e-12 && gaussian.evaluate(ghi) < 1e-12);
    }

    #[test]
    fn degenerate_iqr_falls_back_to_standard_deviation() {
        // Heavily tied data with zero IQR must still produce a positive
        // bandwidth.
        let mut data = vec![0.5; 50];
        data.push(0.0);
        data.push(1.0);
        let fit = KernelDensityEstimator::rule_of_thumb().fit(&data).unwrap();
        assert!(fit.bandwidth() > 0.0);
    }

    #[test]
    fn evaluation_uses_compact_support() {
        let data = vec![0.4, 0.5, 0.6];
        let fit = KernelDensityEstimator::new(Kernel::Epanechnikov, BandwidthRule::Fixed(0.05))
            .fit(&data)
            .unwrap();
        assert_eq!(fit.evaluate(0.0), 0.0);
        assert!(fit.evaluate(0.5) > 0.0);
        assert_eq!(fit.sample_size(), 3);
        assert_eq!(fit.kernel(), Kernel::Epanechnikov);
    }
}
