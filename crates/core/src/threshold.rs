//! Threshold functions and threshold-level rules.
//!
//! The estimator of Donoho et al. (1996), extended by the paper to weak
//! dependence, keeps the coarse coefficients `α̂_{j0,k}` untouched and
//! passes the detail coefficients `β̂_{j,k}` through a threshold function
//! `γ_{λ_j}`:
//!
//! * **hard**: `γ_λ(β) = β·1{|β| > λ}`;
//! * **soft**: `γ_λ(β) = sign(β)·(|β| − λ)₊`.
//!
//! Theorem 3.1 uses levels `λ_j = K √(j/n)` with a constant `K` that
//! depends on the (usually unknown) dependence constants of assumption (D);
//! Section 5.1 replaces it by per-level cross-validated thresholds.

/// The two thresholding nonlinearities considered by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThresholdRule {
    /// Keep-or-kill thresholding `β·1{|β| > λ}`.
    Hard,
    /// Shrinkage thresholding `sign(β)(|β| − λ)₊`.
    Soft,
}

impl ThresholdRule {
    /// Applies the threshold function `γ_λ` to a coefficient.
    pub fn apply(self, beta: f64, lambda: f64) -> f64 {
        debug_assert!(lambda >= 0.0, "threshold levels are nonnegative");
        match self {
            ThresholdRule::Hard => {
                if beta.abs() > lambda {
                    beta
                } else {
                    0.0
                }
            }
            ThresholdRule::Soft => {
                let shrunk = beta.abs() - lambda;
                if shrunk > 0.0 {
                    shrunk * beta.signum()
                } else {
                    0.0
                }
            }
        }
    }

    /// Short name used in reports ("HT"/"ST", following the paper).
    pub fn short_name(self) -> &'static str {
        match self {
            ThresholdRule::Hard => "HT",
            ThresholdRule::Soft => "ST",
        }
    }
}

impl std::fmt::Display for ThresholdRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThresholdRule::Hard => f.write_str("hard"),
            ThresholdRule::Soft => f.write_str("soft"),
        }
    }
}

/// How threshold levels `λ_j` are chosen.
#[derive(Debug, Clone, PartialEq)]
pub enum ThresholdSelection {
    /// The theoretical rule of Theorem 3.1: `λ_j = K √(j/n)`.
    Theoretical {
        /// The constant `K` (depends on the dependence structure).
        kappa: f64,
    },
    /// Cross-validated per-level thresholds (Section 5.1); the levels and
    /// the data-driven highest level `ĵ1` are computed at fit time.
    CrossValidation,
    /// Explicit user-supplied levels `λ_{j0}, λ_{j0+1}, …` (one per detail
    /// level, the last value is reused if the list is too short).
    Fixed(Vec<f64>),
    /// No thresholding at all: the linear projection estimator, kept as a
    /// baseline because Donoho et al. show it is *not* minimax.
    None,
}

impl ThresholdSelection {
    /// The theoretical level `λ_j = K √(j/n)` (returns 0 for `j = 0`).
    pub fn theoretical_level(kappa: f64, j: i32, n: usize) -> f64 {
        kappa * ((j.max(0) as f64) / n as f64).sqrt()
    }
}

/// The per-level thresholds actually used by a fitted estimator, retained
/// for inspection (Figure 3 of the paper plots exactly these).
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdProfile {
    /// Coarsest detail level `j0`.
    pub j0: i32,
    /// Levels `λ_{j0}, λ_{j0+1}, …` in level order.
    pub levels: Vec<f64>,
}

impl ThresholdProfile {
    /// The threshold used at level `j` (0 if outside the stored range).
    pub fn level(&self, j: i32) -> f64 {
        if j < self.j0 {
            return 0.0;
        }
        self.levels
            .get((j - self.j0) as usize)
            .copied()
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hard_threshold_keeps_or_kills() {
        let h = ThresholdRule::Hard;
        assert_eq!(h.apply(0.5, 0.3), 0.5);
        assert_eq!(h.apply(-0.5, 0.3), -0.5);
        assert_eq!(h.apply(0.2, 0.3), 0.0);
        assert_eq!(h.apply(0.3, 0.3), 0.0, "boundary is killed");
        assert_eq!(h.apply(0.7, 0.0), 0.7);
    }

    #[test]
    fn soft_threshold_shrinks_towards_zero() {
        let s = ThresholdRule::Soft;
        assert!((s.apply(0.5, 0.3) - 0.2).abs() < 1e-15);
        assert!((s.apply(-0.5, 0.3) + 0.2).abs() < 1e-15);
        assert_eq!(s.apply(0.2, 0.3), 0.0);
        assert_eq!(s.apply(-0.29, 0.3), 0.0);
        assert_eq!(s.apply(0.4, 0.0), 0.4);
    }

    #[test]
    fn soft_threshold_is_a_contraction() {
        let s = ThresholdRule::Soft;
        for &(b1, b2) in &[(0.4, 0.6), (-0.2, 0.7), (1.5, -1.5), (0.05, 0.1)] {
            let d_before = (b1 - b2_f(b2)).abs();
            let d_after = (s.apply(b1, 0.25) - s.apply(b2_f(b2), 0.25)).abs();
            assert!(d_after <= d_before + 1e-15);
        }
        fn b2_f(x: f64) -> f64 {
            x
        }
    }

    #[test]
    fn hard_dominates_soft_in_magnitude() {
        for &beta in &[-1.0, -0.4, -0.1, 0.0, 0.1, 0.4, 1.0] {
            for &lambda in &[0.0, 0.2, 0.5] {
                let hard = ThresholdRule::Hard.apply(beta, lambda);
                let soft = ThresholdRule::Soft.apply(beta, lambda);
                assert!(hard.abs() >= soft.abs(), "β={beta}, λ={lambda}");
                // Both keep the sign (or vanish).
                assert!(hard == 0.0 || hard.signum() == beta.signum());
                assert!(soft == 0.0 || soft.signum() == beta.signum());
            }
        }
    }

    #[test]
    fn theoretical_levels_follow_sqrt_j_over_n() {
        let n = 1024;
        let l2 = ThresholdSelection::theoretical_level(1.5, 2, n);
        let l8 = ThresholdSelection::theoretical_level(1.5, 8, n);
        assert!((l8 / l2 - 2.0).abs() < 1e-12, "√(8/2) = 2");
        assert_eq!(ThresholdSelection::theoretical_level(1.5, 0, n), 0.0);
        // Doubling n shrinks levels by √2.
        let l8_big = ThresholdSelection::theoretical_level(1.5, 8, 2 * n);
        assert!((l8 / l8_big - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn threshold_profile_lookup() {
        let p = ThresholdProfile {
            j0: 2,
            levels: vec![0.1, 0.2, 0.3],
        };
        assert_eq!(p.level(1), 0.0);
        assert_eq!(p.level(2), 0.1);
        assert_eq!(p.level(4), 0.3);
        assert_eq!(p.level(9), 0.0);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ThresholdRule::Hard.short_name(), "HT");
        assert_eq!(ThresholdRule::Soft.short_name(), "ST");
        assert_eq!(format!("{}", ThresholdRule::Hard), "hard");
        assert_eq!(format!("{}", ThresholdRule::Soft), "soft");
    }
}
