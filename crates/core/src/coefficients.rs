//! Empirical wavelet coefficients of a sample.
//!
//! The building blocks of the estimator are the empirical coefficients
//!
//! ```text
//! α̂_{j,k} = n⁻¹ Σ_i φ_{j,k}(X_i),        β̂_{j,k} = n⁻¹ Σ_i ψ_{j,k}(X_i),
//! ```
//!
//! together with the per-coefficient sums of squares
//! `Σ_i ψ_{j,k}(X_i)²`, which the cross-validation criteria of Section 5.1
//! need (the cross term `Σ_{i≠h} ψ_{j,k}(X_i) ψ_{j,k}(X_h)` equals
//! `(Σ_i ψ_{j,k}(X_i))² − Σ_i ψ_{j,k}(X_i)²`).
//!
//! Because `φ` and `ψ` are supported on `[0, 2N−1]`, each observation
//! touches at most `2N−1` translations per level, so the computation runs
//! in `O(n · (levels) · 2N)` time.
//!
//! The inner loop is the ingest-side twin of the query-side dense
//! evaluation: where a query sweeps **one basis function over many grid
//! points** (`WaveletTable::accumulate_phi/psi`), ingestion reads **one
//! observation at many translations** (`WaveletTable::gather_phi/psi`).
//! Both directions walk the `φ`/`ψ` table with a constant stride and
//! amortised interpolation weights; the (crate-internal)
//! `LevelAccumulator` packages the gather direction with the per-level
//! dilation constants hoisted out of the per-translation loop.

use crate::error::EstimatorError;
use std::sync::Arc;
use wavedens_wavelets::WaveletBasis;

/// Which of the two generators the coefficients belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Generator {
    /// Scaling-function (`φ`) coefficients `α̂_{j,k}`.
    Scaling,
    /// Wavelet (`ψ`) coefficients `β̂_{j,k}`.
    Wavelet,
}

/// Empirical coefficients of one resolution level.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelCoefficients {
    /// Resolution level `j`.
    pub level: i32,
    /// Which generator (`φ` or `ψ`) these coefficients use.
    pub generator: Generator,
    /// First translation index `k` stored in `values`.
    pub k_start: i64,
    /// Empirical coefficients, `values[m] = δ̂_{j, k_start + m}`.
    pub values: Vec<f64>,
    /// Per-coefficient sums of squares `Σ_i δ_{j,k}(X_i)²`, shared via
    /// [`Arc`] so that snapshotting a streaming estimator does not copy
    /// the vector (cross-validation only ever reads it).
    pub sum_squares: Arc<Vec<f64>>,
}

impl LevelCoefficients {
    /// Number of stored translations at this level.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the level stores no coefficients.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterator over `(k, coefficient)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (i64, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(move |(m, &v)| (self.k_start + m as i64, v))
    }

    /// The `ℓ²` energy of the level.
    pub fn energy(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }

    /// Largest absolute coefficient of the level (0 for an empty level).
    pub fn max_abs(&self) -> f64 {
        self.values.iter().fold(0.0_f64, |acc, v| acc.max(v.abs()))
    }
}

/// All empirical coefficients needed by the estimators: the scaling level
/// `j0` and the detail levels `j0 ≤ j ≤ j_max`.
#[derive(Debug, Clone)]
pub struct EmpiricalCoefficients {
    basis: Arc<WaveletBasis>,
    n: usize,
    interval: (f64, f64),
    scaling: LevelCoefficients,
    details: Vec<LevelCoefficients>,
}

impl EmpiricalCoefficients {
    /// Computes empirical coefficients of `data` on `interval` for the
    /// scaling level `j0` and detail levels `j0..=j_max`.
    ///
    /// Observations outside the interval still contribute to coefficients
    /// whose support they intersect; this matches the paper, which computes
    /// coefficients from all observations and estimates `f` on the compact
    /// support.
    pub fn compute(
        basis: Arc<WaveletBasis>,
        data: &[f64],
        interval: (f64, f64),
        j0: i32,
        j_max: i32,
    ) -> Result<Self, EstimatorError> {
        if data.is_empty() {
            return Err(EstimatorError::EmptySample);
        }
        let mut sketch = crate::sketch::CoefficientSketch::with_basis(basis, interval, j0, j_max)?;
        sketch.push_batch(data);
        sketch.snapshot()
    }

    /// Assembles an `EmpiricalCoefficients` from precomputed parts.
    ///
    /// Used by [`crate::sketch::CoefficientSketch::snapshot`], which
    /// maintains the running sums itself; the caller is responsible for
    /// the parts being mutually consistent (same basis, same interval,
    /// `details` ordered by level).
    pub fn from_parts(
        basis: Arc<WaveletBasis>,
        n: usize,
        interval: (f64, f64),
        scaling: LevelCoefficients,
        details: Vec<LevelCoefficients>,
    ) -> Self {
        Self {
            basis,
            n,
            interval,
            scaling,
            details,
        }
    }

    /// The wavelet basis the coefficients were computed in.
    pub fn basis(&self) -> &Arc<WaveletBasis> {
        &self.basis
    }

    /// Sample size `n`.
    pub fn sample_size(&self) -> usize {
        self.n
    }

    /// The estimation interval.
    pub fn interval(&self) -> (f64, f64) {
        self.interval
    }

    /// The coarse scaling level `j0`.
    pub fn coarse_level(&self) -> i32 {
        self.scaling.level
    }

    /// The highest detail level stored.
    pub fn max_level(&self) -> i32 {
        self.details
            .last()
            .map(|l| l.level)
            .unwrap_or(self.scaling.level)
    }

    /// Scaling coefficients `α̂_{j0,·}`.
    pub fn scaling(&self) -> &LevelCoefficients {
        &self.scaling
    }

    /// Detail coefficients per level, ordered from `j0` upwards.
    pub fn details(&self) -> &[LevelCoefficients] {
        &self.details
    }

    /// Detail coefficients of a specific level, if stored.
    pub fn detail_level(&self, j: i32) -> Option<&LevelCoefficients> {
        self.details.iter().find(|l| l.level == j)
    }
}

/// The clamped range of translations `k` with `δ_{j,k}(x) ≠ 0`; shared by
/// the batch coefficient accumulation, the streaming running sums, the
/// pointwise estimate evaluation *and* the whole-chunk scatter driver
/// inside `wavedens-wavelets` (where the canonical derivation now lives),
/// so the paths cannot drift apart.
pub(crate) use wavedens_wavelets::cascade::active_translations;

/// Scatters observations into the running sums (and sums of squares) of
/// one resolution level — the shared inner loop of
/// [`crate::sketch::CoefficientSketch`] ingestion (and therefore of both
/// the batch and the streaming coefficient paths layered on it).
///
/// The per-level dilation constants — `2^j`, `√(2^j)`, the support length
/// — are hoisted into the struct so that batched ingestion pays them once
/// per level, not once per `(observation, translation)` pair.
///
/// Two scatter paths are provided:
///
/// * [`scatter_chunk`](Self::scatter_chunk) — the production fast path:
///   per observation one **fused** strided table read
///   ([`wavedens_wavelets::cascade::WaveletTable::scatter_phi`])
///   evaluates it at every active translation with a shared interpolation
///   weight and accumulates value and value² in the same sweep — no
///   intermediate gather row. Windows the fused kernel declines (table
///   edge, phase wrap, non-finite position) gather into a one-row scratch
///   and accumulate from there. This is the ingest-side mirror image of
///   the query-side `accumulate_phi`/`accumulate_psi` dense-evaluation
///   primitive.
/// * [`scatter`](Self::scatter) — the scalar reference implementation
///   (one `φ_{j,k}`/`ψ_{j,k}` evaluation per translation, re-deriving the
///   dilation constants per call exactly like pointwise evaluation does).
///   Kept callable so equivalence tests can pin the fast path against it.
pub(crate) struct LevelAccumulator<'a> {
    basis: &'a WaveletBasis,
    generator: Generator,
    level: i32,
    scale: f64,
    sqrt_scale: f64,
    support: f64,
    k_start: i64,
}

impl<'a> LevelAccumulator<'a> {
    pub(crate) fn new(
        basis: &'a WaveletBasis,
        generator: Generator,
        level: i32,
        k_start: i64,
    ) -> Self {
        let scale = (level as f64).exp2();
        Self {
            basis,
            generator,
            level,
            scale,
            sqrt_scale: scale.sqrt(),
            support: basis.support_length(),
            k_start,
        }
    }

    /// Adds `δ_{j,k}(x)` (and its square) to every affected translation,
    /// one basis-function evaluation per translation. Scalar reference
    /// path; see [`scatter_chunk`](Self::scatter_chunk).
    pub(crate) fn scatter(&self, x: f64, sums: &mut [f64], sum_squares: &mut [f64]) {
        let position = self.scale * x;
        for k in active_translations(self.support, position, self.k_start, sums.len()) {
            let value = match self.generator {
                Generator::Scaling => self.basis.phi_jk(self.level, k, x),
                Generator::Wavelet => self.basis.psi_jk(self.level, k, x),
            };
            let idx = (k - self.k_start) as usize;
            sums[idx] += value;
            sum_squares[idx] += value * value;
        }
    }

    /// The fused fast path over a whole chunk of observations: per
    /// observation one strided table read evaluates the mother function
    /// at every active translation (shared fractional weight, constant
    /// stride in the polyphase layout) and accumulates the
    /// `√(2^j)`-normalised value and its square into the running sums in
    /// the *same* sweep. The earlier two-pass variant materialised each
    /// observation's window in a scratch row and re-read it to scatter —
    /// with the tables L2-resident that store + reload round-trip was the
    /// dominant per-slot cost, so fusing the lerp into the moment update
    /// is where the ingest speedup comes from. Windows the fused kernel
    /// declines (table edge, phase `2^J − 1` wrap, non-finite position)
    /// fall back to a gather into the one-row scratch followed by the
    /// scaled-accumulate kernel, which owns every boundary convention.
    ///
    /// Matches [`scatter`](Self::scatter) to ≈ 1e-12 relative: the active
    /// range comes from the same [`active_translations`] and the per-slot
    /// accumulation order (observation order) is unchanged; only the
    /// table argument is rounded once per observation (shared weight)
    /// instead of once per translation. (Fused and gather-then-accumulate
    /// chains are *bitwise* identical — `WaveletTable::scatter_phi`
    /// evaluates the same expression per slot.) The equivalence suite in
    /// `tests/ingest_fast_path.rs` pins the paths against each other
    /// across families, levels and batch slicings.
    pub(crate) fn scatter_chunk(
        &self,
        xs: &[f64],
        scratch: &mut ScatterScratch,
        sums: &mut [f64],
        sum_squares: &mut [f64],
    ) {
        let table = self.basis.table();
        match self.generator {
            Generator::Scaling => table.scatter_rows_phi(
                xs,
                self.scale,
                self.sqrt_scale,
                self.k_start,
                &mut scratch.row,
                sums,
                sum_squares,
            ),
            Generator::Wavelet => table.scatter_rows_psi(
                xs,
                self.scale,
                self.sqrt_scale,
                self.k_start,
                &mut scratch.row,
                sums,
                sum_squares,
            ),
        }
    }
}

/// Reusable fallback buffer for [`LevelAccumulator::scatter_chunk`]: one
/// gather row of [`max_active_translations`] slots. The fused fast path
/// needs no scratch at all; the row only serves windows that touch a
/// table boundary (or carry a non-finite position), which gather here
/// before the moment accumulation. Chunk-size independent, so one
/// instance serves batches of any slicing.
#[derive(Debug)]
pub(crate) struct ScatterScratch {
    row: Vec<f64>,
}

impl ScatterScratch {
    /// Allocates the fallback row for `basis`.
    pub(crate) fn new(basis: &WaveletBasis) -> Self {
        Self {
            row: vec![0.0; max_active_translations(basis)],
        }
    }
}

/// Upper bound on how many translations a single observation can touch at
/// one level — the gather-row width of [`ScatterScratch`]. The active
/// range `position − support < k < position` never holds more than
/// `⌈support⌉ + 1` integers.
pub(crate) fn max_active_translations(basis: &WaveletBasis) -> usize {
    basis.support_length().ceil() as usize + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use wavedens_processes::seeded_rng;
    use wavedens_wavelets::WaveletFamily;

    fn basis() -> Arc<WaveletBasis> {
        Arc::new(WaveletBasis::new(WaveletFamily::Symmlet(8)).unwrap())
    }

    fn uniform_sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = seeded_rng(seed);
        (0..n).map(|_| rng.gen::<f64>()).collect()
    }

    #[test]
    fn coefficients_match_direct_summation() {
        let b = basis();
        let data = uniform_sample(200, 1);
        let coeffs =
            EmpiricalCoefficients::compute(Arc::clone(&b), &data, (0.0, 1.0), 2, 4).unwrap();
        // Check a handful of coefficients against the naive O(n·k) sum.
        let level = coeffs.detail_level(3).unwrap();
        for (k, value) in level.iter().take(6) {
            let direct: f64 =
                data.iter().map(|&x| b.psi_jk(3, k, x)).sum::<f64>() / data.len() as f64;
            assert!(
                (value - direct).abs() < 1e-10,
                "β̂(3,{k}) = {value} vs direct {direct}"
            );
        }
        let scaling = coeffs.scaling();
        for (k, value) in scaling.iter().take(6) {
            let direct: f64 =
                data.iter().map(|&x| b.phi_jk(2, k, x)).sum::<f64>() / data.len() as f64;
            assert!((value - direct).abs() < 1e-10);
        }
    }

    #[test]
    fn sum_squares_match_direct_summation() {
        let b = basis();
        let data = uniform_sample(150, 2);
        let coeffs =
            EmpiricalCoefficients::compute(Arc::clone(&b), &data, (0.0, 1.0), 1, 3).unwrap();
        let level = coeffs.detail_level(2).unwrap();
        for (idx, (k, _)) in level.iter().enumerate().take(5) {
            let direct: f64 = data.iter().map(|&x| b.psi_jk(2, k, x).powi(2)).sum();
            assert!((level.sum_squares[idx] - direct).abs() < 1e-9);
        }
    }

    #[test]
    fn structure_is_consistent() {
        let b = basis();
        let data = uniform_sample(64, 3);
        let coeffs =
            EmpiricalCoefficients::compute(Arc::clone(&b), &data, (0.0, 1.0), 1, 5).unwrap();
        assert_eq!(coeffs.sample_size(), 64);
        assert_eq!(coeffs.coarse_level(), 1);
        assert_eq!(coeffs.max_level(), 5);
        assert_eq!(coeffs.details().len(), 5);
        assert_eq!(coeffs.scaling().generator, Generator::Scaling);
        assert!(coeffs
            .details()
            .iter()
            .all(|l| l.generator == Generator::Wavelet));
        assert!(coeffs.detail_level(4).is_some());
        assert!(coeffs.detail_level(9).is_none());
        // Level j holds 2^j + 2N − 2 translations on the unit interval.
        assert_eq!(coeffs.detail_level(3).unwrap().len(), 8 + 14);
        assert_eq!(coeffs.detail_level(5).unwrap().len(), 32 + 14);
    }

    #[test]
    fn scaling_coefficients_reconstruct_total_mass() {
        // Σ_k α̂_{j0,k} ∫ φ_{j0,k} ≈ 1 because the empirical measure has mass
        // one and Σ_k φ(·−k) ≡ 1. With ∫φ_{j0,k} = 2^{-j0/2}:
        let b = basis();
        let data = uniform_sample(500, 4);
        let j0 = 3;
        let coeffs =
            EmpiricalCoefficients::compute(Arc::clone(&b), &data, (0.0, 1.0), j0, j0).unwrap();
        let total: f64 = coeffs.scaling().values.iter().sum::<f64>() * 0.5_f64.powi(j0).sqrt();
        assert!((total - 1.0).abs() < 1e-6, "total mass {total}");
    }

    #[test]
    fn empty_sample_and_bad_intervals_are_rejected() {
        let b = basis();
        assert_eq!(
            EmpiricalCoefficients::compute(Arc::clone(&b), &[], (0.0, 1.0), 1, 3).unwrap_err(),
            EstimatorError::EmptySample
        );
        assert!(matches!(
            EmpiricalCoefficients::compute(Arc::clone(&b), &[0.5], (1.0, 0.0), 1, 3).unwrap_err(),
            EstimatorError::InvalidInterval { .. }
        ));
        assert!(matches!(
            EmpiricalCoefficients::compute(Arc::clone(&b), &[0.5], (0.0, 1.0), 3, 1).unwrap_err(),
            EstimatorError::InvalidLevels { .. }
        ));
        assert!(matches!(
            EmpiricalCoefficients::compute(Arc::clone(&b), &[0.5], (0.0, 1.0), -1, 1).unwrap_err(),
            EstimatorError::InvalidLevels { .. }
        ));
    }

    #[test]
    fn level_accessors_behave() {
        let b = basis();
        let data = uniform_sample(64, 5);
        let coeffs =
            EmpiricalCoefficients::compute(Arc::clone(&b), &data, (0.0, 1.0), 2, 3).unwrap();
        let level = coeffs.detail_level(2).unwrap();
        assert!(!level.is_empty());
        assert!(level.energy() >= 0.0);
        assert!(level.max_abs() >= 0.0);
        assert_eq!(level.iter().count(), level.len());
    }

    #[test]
    fn observations_outside_interval_still_contribute_to_boundary_coefficients() {
        let b = basis();
        // A point just outside [0,1] lies in the support of boundary basis
        // functions at coarse levels.
        let data = vec![1.05_f64];
        let coeffs =
            EmpiricalCoefficients::compute(Arc::clone(&b), &data, (0.0, 1.0), 0, 0).unwrap();
        assert!(coeffs.scaling().max_abs() > 0.0);
    }
}
