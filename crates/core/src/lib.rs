//! # wavedens-core
//!
//! Adaptive wavelet-thresholding density estimation under weak dependence —
//! a from-scratch Rust implementation of Gannaz & Wintenberger, *Adaptive
//! density estimation under weak dependence* (2006/2008), extending the
//! Donoho–Johnstone–Kerkyacharian–Picard wavelet density estimator to
//! dependent data.
//!
//! The crate provides:
//!
//! * [`estimator`] — the thresholded wavelet density estimator `f̂_n` with
//!   theoretical (`λ_j = K√(j/n)`), cross-validated (HTCV/STCV), fixed and
//!   absent threshold selection, plus the paper's level rules
//!   (`j0`, `j1`, `j*`);
//! * [`cv`] — the per-level cross-validation criteria of Section 5.1 and
//!   the data-driven highest resolution `ĵ1`;
//! * [`coefficients`] — empirical wavelet coefficients of a sample;
//! * [`dense`] — dense-grid evaluation and the precomputed cumulative
//!   (CDF) table answering `cdf`/`range_mass` queries in O(1), the fast
//!   path behind the selectivity synopsis;
//! * [`threshold`] — hard/soft threshold functions and threshold profiles;
//! * [`kernel`] — Epanechnikov/Gaussian kernel density estimators with the
//!   paper's rule-of-thumb and least-squares-CV bandwidths (the baselines
//!   of Section 5.4);
//! * [`risk`] — ISE / mean-`L^p` risks and integrated moments, the metrics
//!   of Tables 1–2 and Figures 6 and 8;
//! * [`sketch`] — the mergeable accumulation state of the estimator
//!   (per-level sums, sums of squares, count): sketches of data partitions
//!   merge into exactly the single-stream state and (de)serialize to a
//!   compact binary form for shipping between nodes;
//! * [`streaming`] — an online variant maintaining the coefficients
//!   incrementally (exactly equivalent to a batch fit), a thin layer over
//!   [`sketch`];
//! * [`tensor`] — dimension-generic tensor-product sketches
//!   ([`TensorSketch`]): levels keyed by per-axis level tuples, flattened
//!   row-major translation storage, hyperbolic-budget 2-D level sets, and
//!   a joint CDF grid ([`TensorCumulative`]) answering rectangle masses
//!   by inclusion–exclusion (1-D is the `dims == 1` special case, bitwise
//!   identical to [`CoefficientSketch`]);
//! * [`window`] — windowed and decaying sketch rings ([`WindowedSketch`])
//!   for streaming workloads: time-sliced sketches retire wholesale so
//!   the synopsis tracks the *recent* distribution without subtraction;
//! * [`grid`], [`error`] — shared utilities.
//!
//! ## Quick start
//!
//! ```
//! use wavedens_core::{Grid, WaveletDensityEstimator};
//! use wavedens_processes::{DependenceCase, SineUniformMixture, seeded_rng};
//!
//! // Simulate weakly dependent data with a known marginal density…
//! let target = SineUniformMixture::paper();
//! let mut rng = seeded_rng(1);
//! let data = DependenceCase::ExpandingMap.simulate(&target, 1 << 10, &mut rng);
//!
//! // …and estimate that density with the soft-threshold CV estimator.
//! let estimate = WaveletDensityEstimator::stcv().fit(&data).unwrap();
//! let grid = Grid::unit_interval();
//! let values = estimate.evaluate_on(&grid);
//! assert_eq!(values.len(), grid.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod autotune;
pub mod coefficients;
pub mod cv;
pub mod dense;
pub mod error;
pub mod estimator;
pub mod grid;
pub mod kernel;
pub mod risk;
pub mod sketch;
pub mod streaming;
pub mod tensor;
pub mod threshold;
pub mod window;

pub use coefficients::{EmpiricalCoefficients, Generator, LevelCoefficients};
pub use cv::{
    cross_validate, cross_validate_cached, cross_validate_with, CrossValidationResult, CvCache,
    CvCriterion, LevelCrossValidation,
};
pub use dense::{CumulativeEstimate, DEFAULT_CDF_POINTS};
pub use error::EstimatorError;
pub use estimator::{
    cv_max_level, default_coarse_level, theoretical_max_level, DenseEvalCache, ThresholdedLevel,
    WaveletDensityEstimate, WaveletDensityEstimator,
};
pub use grid::Grid;
pub use kernel::{BandwidthRule, Kernel, KernelDensityEstimate, KernelDensityEstimator};
pub use risk::{integrated_squared_error, lp_distance, RiskAccumulator};
pub use sketch::{CoefficientSketch, CompactionPolicy};
pub use streaming::StreamingWaveletEstimator;
pub use tensor::{TensorCumulative, TensorEstimate, TensorSketch, MAX_TENSOR_SLOTS};
pub use threshold::{ThresholdProfile, ThresholdRule, ThresholdSelection};
pub use window::{WindowPolicy, WindowSliceMeta, WindowedSketch, DEFAULT_DECAY_SLICES};

// Re-export the wavelet substrate so downstream users need a single import.
pub use wavedens_wavelets as wavelets;
pub use wavedens_wavelets::{WaveletBasis, WaveletFamily};
