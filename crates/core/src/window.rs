//! Windowed and decaying sketch rings for streaming workloads.
//!
//! A [`CoefficientSketch`] can only merge — its sums add, never subtract —
//! so a single lifetime sketch models an append-forever stream and drifts
//! arbitrarily far from the *current* distribution under updates, deletes
//! or regime changes. The classic fix needs no subtraction at all:
//! time-slice the stream into a fixed ring of per-slice sketches
//! ([`WindowedSketch`]), retire the oldest slice wholesale on every
//! [`advance`](WindowedSketch::advance), and answer queries from a fold
//! over the live slices. "Subtracting" expired rows is just *not merging
//! their slice*, so the numerics stay the plain nonnegative-weight sums
//! the paper's estimator is built on.
//!
//! Two windowed read policies share the ring:
//!
//! * **Sliding window** ([`WindowPolicy::SlidingSlices`]): merge the `k`
//!   live slices at weight 1. The window estimate is *exactly* the
//!   mergeable-sketch fit on the surviving rows — bit-for-bit the state a
//!   fresh ring fed only those rows would hold.
//! * **Exponential decay** ([`WindowPolicy::ExponentialDecay`]): merge the
//!   slice of age `a` at weight `λᵃ` via
//!   [`CoefficientSketch::merge_scaled`], smoothly down-weighting history
//!   instead of cliff-dropping it.
//!
//! [`WindowPolicy::Landmark`] is the no-window policy the rest of the
//! stack defaults to (one lifetime sketch, no ring).

use crate::error::EstimatorError;
use crate::sketch::CoefficientSketch;

/// Ring size used for [`WindowPolicy::ExponentialDecay`], where the
/// policy itself does not fix one: at 16 slices the oldest live slice
/// already carries weight `λ^15` (≈ 0.2 even at a gentle λ = 0.9), so a
/// deeper ring would spend memory on slices that barely register.
pub const DEFAULT_DECAY_SLICES: usize = 16;

/// How a synopsis weights history — the knob streaming workloads turn.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum WindowPolicy {
    /// No window: one lifetime sketch over everything ever ingested (the
    /// default, and the only policy before windowed rings existed).
    #[default]
    Landmark,
    /// A sliding window of the newest `k` time slices, each retired
    /// wholesale by an advance. Queries see exactly the rows of the live
    /// slices, equally weighted.
    SlidingSlices(usize),
    /// Exponential decay: the slice of age `a` contributes with weight
    /// `λᵃ` (λ in `(0, 1]`), over a ring of
    /// [`DEFAULT_DECAY_SLICES`] slices. Smaller λ forgets faster.
    ExponentialDecay(f64),
}

impl WindowPolicy {
    /// Validates the policy parameters: a sliding window needs at least
    /// one slice, a decay factor must be finite in `(0, 1]`.
    pub fn validate(&self) -> Result<(), EstimatorError> {
        match *self {
            Self::Landmark => Ok(()),
            Self::SlidingSlices(0) => Err(EstimatorError::InvalidParameter {
                message: "sliding window needs at least one slice".to_string(),
            }),
            Self::SlidingSlices(_) => Ok(()),
            Self::ExponentialDecay(lambda)
                if !lambda.is_finite() || lambda <= 0.0 || lambda > 1.0 =>
            {
                Err(EstimatorError::InvalidParameter {
                    message: format!("decay factor must be in (0, 1], got {lambda}"),
                })
            }
            Self::ExponentialDecay(_) => Ok(()),
        }
    }

    /// Ring size this policy maintains; `None` for
    /// [`Landmark`](Self::Landmark), which keeps no ring.
    pub fn ring_slices(&self) -> Option<usize> {
        match *self {
            Self::Landmark => None,
            Self::SlidingSlices(k) => Some(k),
            Self::ExponentialDecay(_) => Some(DEFAULT_DECAY_SLICES),
        }
    }

    /// Whether the policy maintains a slice ring at all.
    pub fn is_windowed(&self) -> bool {
        !matches!(self, Self::Landmark)
    }

    /// Merge weight of the slice `age` advances old (age 0 = current).
    /// `1.0` for every non-decaying policy.
    pub fn weight(&self, age: usize) -> f64 {
        match *self {
            Self::ExponentialDecay(lambda) => lambda.powi(age as i32),
            _ => 1.0,
        }
    }

    /// The decay factor, `1.0` for non-decaying policies — what a shipped
    /// slice records in its [`WindowSliceMeta`].
    pub fn decay_lambda(&self) -> f64 {
        match *self {
            Self::ExponentialDecay(lambda) => lambda,
            _ => 1.0,
        }
    }
}

/// Window metadata carried by a shipped slice frame (v3), so a receiver
/// can place the slice in its own ring — or ignore it and read the frame
/// as a plain sketch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSliceMeta {
    /// How many advances old the slice was when shipped (0 = the slice
    /// currently accumulating).
    pub slice_age: u32,
    /// Ring size at the sender.
    pub ring_slices: u32,
    /// The sender's advance counter at ship time — a logical clock that
    /// lets the receiver order slices from one sender.
    pub advances: u64,
    /// Decay factor of the sender's policy (`1.0` when not decaying).
    pub decay_lambda: f64,
}

/// A fixed ring of time-sliced [`CoefficientSketch`]es.
///
/// All ingestion lands in the *current* slice;
/// [`advance`](Self::advance) rotates the ring, retiring the oldest
/// slice (clearing it in place — no allocation) and starting a fresh
/// current slice. Queries fold the live slices through a
/// [`WindowPolicy`] into a single merged sketch. Until the ring has
/// wrapped once, only the slices actually started are live, so a young
/// ring never dilutes its estimate with never-used empty slices' stamps.
#[derive(Debug, Clone)]
pub struct WindowedSketch {
    slices: Vec<CoefficientSketch>,
    /// Index of the current (age-0) slice.
    head: usize,
    /// Number of live slices: `1..=slices.len()`, growing by one per
    /// advance until the ring wraps.
    live: usize,
    /// Total advances performed — the ring's logical clock.
    advances: u64,
}

impl WindowedSketch {
    /// Creates a ring of `slices` empty clones of `template`. The
    /// template must itself be empty (a ring adopting half-accumulated
    /// state would mis-attribute those rows to the current time slice).
    pub fn new(template: &CoefficientSketch, slices: usize) -> Result<Self, EstimatorError> {
        if slices == 0 {
            return Err(EstimatorError::InvalidParameter {
                message: "a windowed sketch needs at least one slice".to_string(),
            });
        }
        if !template.is_empty() {
            return Err(EstimatorError::InvalidParameter {
                message: format!(
                    "windowed sketch template must be empty, holds {} rows",
                    template.count()
                ),
            });
        }
        Ok(Self {
            slices: (0..slices).map(|_| template.clone()).collect(),
            head: 0,
            live: 1,
            advances: 0,
        })
    }

    /// Creates the ring a policy calls for. Fails on
    /// [`WindowPolicy::Landmark`] (no ring to build) and on invalid
    /// policy parameters.
    pub fn from_policy(
        template: &CoefficientSketch,
        policy: WindowPolicy,
    ) -> Result<Self, EstimatorError> {
        policy.validate()?;
        let slices = policy
            .ring_slices()
            .ok_or(EstimatorError::InvalidParameter {
                message: "a landmark synopsis keeps no slice ring".to_string(),
            })?;
        Self::new(template, slices)
    }

    /// Number of slices in the ring (live or not).
    pub fn ring_slices(&self) -> usize {
        self.slices.len()
    }

    /// Number of live slices: grows from 1 to the ring size as the
    /// stream's first advances happen, then stays there.
    pub fn live_slices(&self) -> usize {
        self.live
    }

    /// Total advances performed — the ring's logical clock.
    pub fn advances(&self) -> u64 {
        self.advances
    }

    /// Rows currently live across all slices.
    pub fn count(&self) -> usize {
        (0..self.live)
            .map(|age| self.slices[self.slot(age)].count())
            .sum()
    }

    /// Ring slot of the slice `age` advances old.
    fn slot(&self, age: usize) -> usize {
        debug_assert!(age < self.live);
        (self.head + self.slices.len() - age) % self.slices.len()
    }

    /// Read-only view of the slice `age` advances old (0 = current);
    /// `None` when the ring holds no slice that old yet.
    pub fn slice(&self, age: usize) -> Option<&CoefficientSketch> {
        (age < self.live).then(|| &self.slices[self.slot(age)])
    }

    /// Ingests a batch into the current slice.
    pub fn push_batch(&mut self, values: &[f64]) {
        self.slices[self.head].push_batch(values);
    }

    /// Merges an already-accumulated sketch into the current slice (the
    /// engine's scatter-outside-the-lock ingest lands batches this way).
    pub fn merge_into_current(&mut self, other: &CoefficientSketch) -> Result<(), EstimatorError> {
        self.slices[self.head].merge(other)
    }

    /// Closes the current time slice and starts a fresh one, retiring the
    /// oldest slice when the ring is full (its rows leave the window).
    /// Clears the retired slice in place — no allocation. Returns the
    /// number of rows retired.
    pub fn advance(&mut self) -> usize {
        self.advances += 1;
        self.head = (self.head + 1) % self.slices.len();
        // When the ring has not wrapped yet the slot rotated into was
        // never live — nothing retires, the window just grows.
        let retired = if self.live < self.slices.len() {
            self.live += 1;
            0
        } else {
            self.slices[self.head].count()
        };
        self.slices[self.head].clear();
        retired
    }

    /// [`advance`](Self::advance) that swaps `replacement` (an empty,
    /// compatible sketch) in as the fresh current slice and hands the
    /// retired slice back *uncleaned* — so a caller holding a lock can
    /// rotate in O(1) and do the `clear()` outside the critical section
    /// (the engine's `advance_all` short-critical-section pattern).
    pub fn advance_swap(
        &mut self,
        replacement: CoefficientSketch,
    ) -> Result<CoefficientSketch, EstimatorError> {
        if !replacement.is_empty() {
            return Err(EstimatorError::InvalidParameter {
                message: format!(
                    "advance replacement slice must be empty, holds {} rows",
                    replacement.count()
                ),
            });
        }
        self.slices[self.head].is_compatible(&replacement)?;
        self.advances += 1;
        self.head = (self.head + 1) % self.slices.len();
        if self.live < self.slices.len() {
            self.live += 1;
        }
        Ok(std::mem::replace(&mut self.slices[self.head], replacement))
    }

    /// Overwrites `target` with the policy-weighted fold of the live
    /// slices (oldest first, so the most-decayed contributions accumulate
    /// while small). Reuses `target`'s allocations; its level stamps
    /// advance strictly, so caches keyed to it stay sound across
    /// advances.
    pub fn merge_window_into(
        &self,
        target: &mut CoefficientSketch,
        policy: WindowPolicy,
    ) -> Result<(), EstimatorError> {
        policy.validate()?;
        for (i, age) in (0..self.live).rev().enumerate() {
            let slice = &self.slices[self.slot(age)];
            let weight = policy.weight(age);
            if i == 0 {
                target.copy_scaled_from(slice, weight)?;
            } else {
                target.merge_scaled(slice, weight)?;
            }
        }
        Ok(())
    }

    /// Folds the live slices *into* an existing accumulation (no
    /// overwrite) — what a multi-shard engine uses to fold several rings
    /// into one query sketch.
    pub fn merge_window_append(
        &self,
        target: &mut CoefficientSketch,
        policy: WindowPolicy,
    ) -> Result<(), EstimatorError> {
        policy.validate()?;
        for age in (0..self.live).rev() {
            target.merge_scaled(&self.slices[self.slot(age)], policy.weight(age))?;
        }
        Ok(())
    }

    /// The policy-weighted merged window as a standalone sketch. For
    /// [`WindowPolicy::SlidingSlices`] this is exactly the mergeable
    /// sketch over the surviving rows; for
    /// [`WindowPolicy::ExponentialDecay`] each slice enters at `λᵃ`.
    pub fn merged_window(&self, policy: WindowPolicy) -> Result<CoefficientSketch, EstimatorError> {
        let mut merged = self.slices[self.head].clone();
        self.merge_window_into(&mut merged, policy)?;
        Ok(merged)
    }

    /// Serializes the slice `age` advances old as a windowed v3 frame
    /// carrying [`WindowSliceMeta`]. Receivers without window support
    /// read it as a plain sketch via `CoefficientSketch::from_bytes`.
    pub fn ship_slice(&self, age: usize, policy: WindowPolicy) -> Result<Vec<u8>, EstimatorError> {
        policy.validate()?;
        let slice = self
            .slice(age)
            .ok_or_else(|| EstimatorError::InvalidParameter {
                message: format!("no live slice of age {age} (ring holds {})", self.live),
            })?;
        let meta = WindowSliceMeta {
            slice_age: age as u32,
            ring_slices: self.slices.len() as u32,
            advances: self.advances,
            decay_lambda: policy.decay_lambda(),
        };
        Ok(slice.to_bytes_with_window(&meta))
    }

    /// Resets the ring to its freshly-built state: every slice cleared,
    /// one live slice, advance clock back to zero.
    pub fn clear(&mut self) {
        for slice in &mut self.slices {
            slice.clear();
        }
        self.head = 0;
        self.live = 1;
        self.advances = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use wavedens_processes::seeded_rng;

    fn sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = seeded_rng(seed);
        (0..n).map(|_| rng.gen::<f64>()).collect()
    }

    fn template() -> CoefficientSketch {
        CoefficientSketch::sized_for(1024).unwrap()
    }

    #[test]
    fn policy_validation_and_weights() {
        assert!(WindowPolicy::Landmark.validate().is_ok());
        assert!(WindowPolicy::SlidingSlices(4).validate().is_ok());
        assert!(WindowPolicy::ExponentialDecay(0.5).validate().is_ok());
        assert!(WindowPolicy::ExponentialDecay(1.0).validate().is_ok());
        for bad in [
            WindowPolicy::SlidingSlices(0),
            WindowPolicy::ExponentialDecay(0.0),
            WindowPolicy::ExponentialDecay(-0.5),
            WindowPolicy::ExponentialDecay(1.5),
            WindowPolicy::ExponentialDecay(f64::NAN),
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must be rejected");
        }
        assert_eq!(WindowPolicy::Landmark.ring_slices(), None);
        assert_eq!(WindowPolicy::SlidingSlices(3).ring_slices(), Some(3));
        assert_eq!(
            WindowPolicy::ExponentialDecay(0.9).ring_slices(),
            Some(DEFAULT_DECAY_SLICES)
        );
        assert!(!WindowPolicy::Landmark.is_windowed());
        assert!(WindowPolicy::SlidingSlices(1).is_windowed());
        assert_eq!(WindowPolicy::SlidingSlices(3).weight(5), 1.0);
        assert_eq!(WindowPolicy::ExponentialDecay(0.5).weight(0), 1.0);
        assert_eq!(WindowPolicy::ExponentialDecay(0.5).weight(2), 0.25);
        assert_eq!(WindowPolicy::default(), WindowPolicy::Landmark);
    }

    #[test]
    fn ring_construction_is_validated() {
        assert!(WindowedSketch::new(&template(), 0).is_err());
        let mut dirty = template();
        dirty.push_batch(&sample(8, 1));
        assert!(WindowedSketch::new(&dirty, 3).is_err());
        assert!(WindowedSketch::from_policy(&template(), WindowPolicy::Landmark).is_err());
        assert!(
            WindowedSketch::from_policy(&template(), WindowPolicy::ExponentialDecay(2.0)).is_err()
        );
        let ring =
            WindowedSketch::from_policy(&template(), WindowPolicy::SlidingSlices(3)).unwrap();
        assert_eq!(ring.ring_slices(), 3);
        assert_eq!(ring.live_slices(), 1);
        assert_eq!(ring.advances(), 0);
    }

    #[test]
    fn advances_grow_then_retire_in_fifo_order() {
        let mut ring = WindowedSketch::new(&template(), 3).unwrap();
        ring.push_batch(&sample(100, 2));
        assert_eq!(ring.advance(), 0, "a growing ring retires nothing");
        ring.push_batch(&sample(60, 3));
        assert_eq!(ring.advance(), 0);
        ring.push_batch(&sample(40, 4));
        assert_eq!(ring.live_slices(), 3);
        assert_eq!(ring.count(), 200);
        assert_eq!(ring.slice(0).unwrap().count(), 40);
        assert_eq!(ring.slice(2).unwrap().count(), 100);
        assert!(ring.slice(3).is_none());
        // Full ring: the next advances retire the oldest slices in order.
        assert_eq!(ring.advance(), 100);
        assert_eq!(ring.advance(), 60);
        assert_eq!(ring.advance(), 40);
        assert_eq!(ring.count(), 0);
        assert_eq!(ring.advances(), 5);
        ring.clear();
        assert_eq!((ring.live_slices(), ring.advances()), (1, 0));
    }

    #[test]
    fn advance_swap_rejects_unusable_replacements() {
        let mut ring = WindowedSketch::new(&template(), 2).unwrap();
        ring.push_batch(&sample(32, 5));
        let mut dirty = template();
        dirty.push_batch(&sample(8, 6));
        assert!(ring.advance_swap(dirty).is_err());
        let incompatible = CoefficientSketch::sized_for(65536).unwrap();
        assert!(ring.advance_swap(incompatible).is_err());
        assert_eq!(ring.advances(), 0, "failed swaps must not tick the clock");
        let retired = ring.advance_swap(template()).unwrap();
        assert_eq!(retired.count(), 0, "growing ring hands back an unused slot");
        assert_eq!(ring.count(), 32);
    }

    #[test]
    fn sliding_fold_is_bitwise_the_fresh_fit_on_surviving_rows() {
        // Ring fed four batches with k = 2: after the retirements only the
        // last two batches survive. The folded window must be *bitwise*
        // the state of a fresh ring fed only those batches.
        let batches: Vec<Vec<f64>> = (0..4)
            .map(|i| sample(200 + 50 * i, 10 + i as u64))
            .collect();
        let mut ring = WindowedSketch::new(&template(), 2).unwrap();
        for (i, batch) in batches.iter().enumerate() {
            if i > 0 {
                ring.advance();
            }
            ring.push_batch(batch);
        }
        let mut fresh = WindowedSketch::new(&template(), 2).unwrap();
        fresh.push_batch(&batches[2]);
        fresh.advance();
        fresh.push_batch(&batches[3]);
        let policy = WindowPolicy::SlidingSlices(2);
        let a = ring.merged_window(policy).unwrap();
        let b = fresh.merged_window(policy).unwrap();
        assert_eq!(a.count(), b.count());
        assert_eq!(a.to_bytes(), b.to_bytes(), "sliding fold must be bitwise");
    }

    #[test]
    fn decayed_fold_weights_slices_geometrically() {
        let mut ring = WindowedSketch::new(&template(), 4).unwrap();
        ring.push_batch(&sample(400, 20));
        ring.advance();
        ring.push_batch(&sample(200, 21));
        let merged = ring
            .merged_window(WindowPolicy::ExponentialDecay(0.5))
            .unwrap();
        // 200·λ⁰ + 400·λ¹ at λ = 1/2.
        assert_eq!(merged.count(), 200 + 200);
        // merge_window_append folds *into* existing mass instead.
        let mut acc = merged.clone();
        ring.merge_window_append(&mut acc, WindowPolicy::ExponentialDecay(0.5))
            .unwrap();
        assert_eq!(acc.count(), 800);
    }

    #[test]
    fn shipped_slices_round_trip_with_metadata() {
        let mut ring = WindowedSketch::new(&template(), 3).unwrap();
        ring.push_batch(&sample(150, 30));
        ring.advance();
        ring.push_batch(&sample(90, 31));
        let policy = WindowPolicy::ExponentialDecay(0.75);
        let frame = ring.ship_slice(1, policy).unwrap();
        let (slice, meta) = CoefficientSketch::from_bytes_with_window(&frame).unwrap();
        assert_eq!(slice.count(), 150);
        let meta = meta.expect("v3 frames carry window metadata");
        assert_eq!(meta.slice_age, 1);
        assert_eq!(meta.ring_slices, 3);
        assert_eq!(meta.advances, 1);
        assert_eq!(meta.decay_lambda, 0.75);
        // Plain readers see the same sketch, minus the metadata.
        assert_eq!(CoefficientSketch::from_bytes(&frame).unwrap().count(), 150);
        // Shipping a slice the ring does not hold yet fails cleanly.
        assert!(ring.ship_slice(2, policy).is_err());
    }
}
