//! Dimension-generic tensor-product coefficient sketches.
//!
//! This module generalises the scalar-indexed [`CoefficientSketch`]
//! pipeline to `dims ∈ {1, 2}`. A *level* is no longer a single resolution
//! index: it is keyed by a per-axis `(generator, level)` tuple — the
//! scaling layer `φ_{j0}⊗φ_{j0}`, the two mixed orientations
//! `ψ_j⊗φ_{j0}` / `φ_{j0}⊗ψ_j`, and the wavelet–wavelet layers
//! `ψ_{jx}⊗ψ_{jy}` kept under a hyperbolic budget `jx + jy ≤ budget`
//! (the standard hyperbolic-cross truncation that keeps the 2-D level-set
//! blowup polynomial instead of quadratic). Translations within a level
//! are flattened to a single row-major index `kx·extent_y + ky`, so the
//! accumulation, merge and CV+threshold machinery operate on flat slot
//! arrays exactly as in 1-D — and `dims == 1` *is* the 1-D pipeline: the
//! same level set, the same `LevelAccumulator` scatter path, bitwise
//! identical sums.
//!
//! The empirical coefficient of the product basis function
//! `δ_{jx,kx}(x)·δ_{jy,ky}(y)` is the sample mean of the product, so a
//! [`TensorSketch`] stores per-slot running sums and sums of squares plus
//! the observation count — the same mergeable-statistic shape as the 1-D
//! sketch, which is what lets sharded ingestion, scaled decay merges and
//! cross-node shipping carry over unchanged.
//!
//! Estimates come out of [`TensorSketch::thresholded`]: each non-scaling
//! level is handed (flattened) to the level-wise cross-validation of the
//! 1-D pipeline to pick its threshold `λ`, and the surviving coefficients
//! reconstruct a density on a 2-D grid via separable per-axis strided
//! table sweeps. [`TensorCumulative`] then turns the grid into a joint
//! CDF whose rectangle queries are answered by inclusion–exclusion of
//! four corner lookups.
//!
//! [`CoefficientSketch`]: crate::sketch::CoefficientSketch

use std::sync::Arc;

use crate::autotune;
use crate::coefficients::{
    active_translations, max_active_translations, Generator, LevelAccumulator, LevelCoefficients,
    ScatterScratch,
};
use crate::cv::{cross_validate_level, CvCriterion};
use crate::error::EstimatorError;
use crate::estimator::{coefficient_window, cv_max_level, default_coarse_level};
use crate::grid::Grid;
use crate::sketch::{
    decode_family, encode_family, invalid, presence_bitmap_len, scaled_count,
    validate_merge_weight, CompactionPolicy, Reader, FORMAT_V4_TENSOR, INGEST_CHUNK, MAGIC,
    MAX_SERIALIZED_LEVEL,
};
use crate::threshold::ThresholdRule;
use wavedens_wavelets::{WaveletBasis, WaveletFamily};

/// Hard cap on the total number of flattened coefficient slots a tensor
/// sketch may hold, enforced at construction (and therefore on the wire
/// decode path, which sizes everything through the same constructor). At
/// `2^22` slots the slot arrays top out around 64 MB — far above any
/// real synopsis, but small enough that a hostile v4 header cannot
/// provoke a runaway allocation.
pub const MAX_TENSOR_SLOTS: usize = 1 << 22;

/// Rows per internal scatter chunk of [`TensorSketch::push_pairs`]: the
/// per-axis gather rows for a chunk this long stay cache-resident while
/// every tensor level sweeps them.
const TENSOR_CHUNK: usize = 128;

/// Frames whose total mass is below this floor answer zero selectivity
/// (mirrors the 1-D `CumulativeEstimate` guard).
const TOTAL_MASS_FLOOR: f64 = 1e-12;

/// Payload-type tag of a dense v4 level payload.
const PAYLOAD_DENSE: u8 = 0;
/// Payload-type tag of a coefficient-sparse v4 level payload.
const PAYLOAD_SPARSE: u8 = 1;

/// One per-axis basis factor: a generator (`φ` or `ψ`) at one resolution
/// level, with the translation range covering that axis' interval.
#[derive(Debug, Clone, Copy, PartialEq)]
struct AxisComponent {
    generator: Generator,
    level: i32,
    scale: f64,
    sqrt_scale: f64,
    k_start: i64,
    extent: usize,
}

impl AxisComponent {
    fn new(basis: &WaveletBasis, interval: (f64, f64), level: i32, generator: Generator) -> Self {
        let range = basis.translations_covering(level, interval.0, interval.1);
        let k_start = *range.start();
        let extent = (*range.end() - k_start + 1).max(0) as usize;
        let scale = f64::from(level).exp2();
        Self {
            generator,
            level,
            scale,
            sqrt_scale: scale.sqrt(),
            k_start,
            extent,
        }
    }
}

/// One tensor level: a pair of per-axis component indices plus the
/// flattened row-major slot arrays. Mirrors the 1-D `SketchLevel`
/// exactly: monotone version stamp, running sums, copy-on-write sums of
/// squares.
#[derive(Debug, Clone)]
struct TensorLevel {
    component: [usize; 2],
    version: u64,
    sums: Vec<f64>,
    sum_squares: Arc<Vec<f64>>,
}

impl TensorLevel {
    fn new(component: [usize; 2], slots: usize) -> Self {
        Self {
            component,
            version: 0,
            sums: vec![0.0; slots],
            sum_squares: Arc::new(vec![0.0; slots]),
        }
    }

    fn clear(&mut self) {
        self.version = 0;
        self.sums.fill(0.0);
        Arc::make_mut(&mut self.sum_squares).fill(0.0);
    }

    fn merge(&mut self, other: &Self) {
        debug_assert_eq!(self.sums.len(), other.sums.len());
        if other.version == 0 {
            return;
        }
        self.version += other.version;
        for (acc, v) in self.sums.iter_mut().zip(&other.sums) {
            *acc += v;
        }
        let squares = Arc::make_mut(&mut self.sum_squares);
        for (acc, v) in squares.iter_mut().zip(other.sum_squares.iter()) {
            *acc += v;
        }
    }

    fn merge_scaled(&mut self, other: &Self, weight: f64) {
        debug_assert_eq!(self.sums.len(), other.sums.len());
        if other.version == 0 {
            return;
        }
        self.version += other.version;
        for (acc, v) in self.sums.iter_mut().zip(&other.sums) {
            *acc += weight * v;
        }
        let squares = Arc::make_mut(&mut self.sum_squares);
        for (acc, v) in squares.iter_mut().zip(other.sum_squares.iter()) {
            *acc += weight * v;
        }
    }

    fn copy_from(&mut self, source: &Self) {
        debug_assert_eq!(self.sums.len(), source.sums.len());
        // Strict version advance, exactly as the 1-D level copy: the
        // copied contents are arbitrary relative to whatever this
        // instance held at any earlier stamp.
        self.version = source.version.max(self.version + 1);
        self.sums.copy_from_slice(&source.sums);
        Arc::make_mut(&mut self.sum_squares).copy_from_slice(&source.sum_squares);
    }

    fn is_zero(&self) -> bool {
        self.sums.iter().all(|v| *v == 0.0) && self.sum_squares.iter().all(|v| *v == 0.0)
    }

    fn nonzero_slots(&self) -> usize {
        self.sums
            .iter()
            .zip(self.sum_squares.iter())
            .filter(|(s, q)| **s != 0.0 || **q != 0.0)
            .count()
    }
}

/// Per-chunk gather scratch for the 2-D scatter path: every distinct
/// `(axis, component)` factor is gathered **once** per observation, and
/// all tensor levels sharing that factor reuse the cached row.
#[derive(Debug)]
struct TensorScratch {
    rows: usize,
    width: usize,
    values: [Vec<f64>; 2],
    spans: [Vec<(u32, u32)>; 2],
}

impl TensorScratch {
    fn new(basis: &WaveletBasis, components: usize, rows: usize) -> Self {
        let width = max_active_translations(basis);
        let values = vec![0.0; components * rows * width];
        let spans = vec![(0_u32, 0_u32); components * rows];
        Self {
            rows,
            width,
            values: [values.clone(), values],
            spans: [spans.clone(), spans],
        }
    }
}

/// Scratch storage of a tensor sketch: the 1-D path reuses the exact
/// scatter scratch of [`CoefficientSketch`](crate::CoefficientSketch),
/// the 2-D path the per-component gather cache above.
#[derive(Debug)]
enum Scratch {
    OneD(ScatterScratch),
    TwoD(TensorScratch),
}

/// A mergeable, dimension-generic coefficient sketch over the tensor
/// product of a 1-D wavelet basis with itself.
///
/// For `dims == 1` the level set, the accumulation path and the stored
/// sums are **bitwise identical** to
/// [`CoefficientSketch`](crate::CoefficientSketch) — the 1-D sketch is
/// literally the `dims == 1` special case of this type. For `dims == 2`
/// levels are keyed by per-axis level tuples and translations by a
/// flattened row-major index, and [`thresholded`](Self::thresholded) runs
/// the same level-wise CV+threshold pipeline over the flattened slots.
#[derive(Debug)]
pub struct TensorSketch {
    basis: Arc<WaveletBasis>,
    dims: usize,
    intervals: [(f64, f64); 2],
    j0: i32,
    j_max: i32,
    budget: i32,
    count: usize,
    axes: [Vec<AxisComponent>; 2],
    levels: Vec<TensorLevel>,
    scratch: Option<Scratch>,
}

impl Clone for TensorSketch {
    fn clone(&self) -> Self {
        Self {
            basis: Arc::clone(&self.basis),
            dims: self.dims,
            intervals: self.intervals,
            j0: self.j0,
            j_max: self.j_max,
            budget: self.budget,
            count: self.count,
            axes: self.axes.clone(),
            levels: self.levels.clone(),
            // Scratch is pure accumulation workspace; clones start fresh.
            scratch: None,
        }
    }
}

impl TensorSketch {
    /// Builds a 1-D sketch: same basis, interval, level set and scatter
    /// path as [`CoefficientSketch`](crate::CoefficientSketch) with the
    /// same parameters — the `dims == 1` special case.
    pub fn new_1d(
        family: WaveletFamily,
        interval: (f64, f64),
        coarse_level: i32,
        max_level: i32,
    ) -> Result<Self, EstimatorError> {
        let basis = Arc::new(WaveletBasis::new(family)?);
        Self::with_basis_1d(basis, interval, coarse_level, max_level)
    }

    /// [`new_1d`](Self::new_1d) over an existing (possibly shared) basis.
    pub fn with_basis_1d(
        basis: Arc<WaveletBasis>,
        interval: (f64, f64),
        coarse_level: i32,
        max_level: i32,
    ) -> Result<Self, EstimatorError> {
        Self::build(basis, 1, [interval, interval], coarse_level, max_level, 0)
    }

    /// Builds a 2-D tensor-product sketch over `interval_x × interval_y`.
    ///
    /// The level set is the scaling layer `φ_{j0}⊗φ_{j0}`, the mixed
    /// orientations `ψ_j⊗φ_{j0}` and `φ_{j0}⊗ψ_j` for
    /// `j ∈ j0..=max_level`, and the wavelet–wavelet layers
    /// `ψ_{jx}⊗ψ_{jy}` for every pair with `jx + jy ≤ budget`.
    pub fn new_2d(
        family: WaveletFamily,
        interval_x: (f64, f64),
        interval_y: (f64, f64),
        coarse_level: i32,
        max_level: i32,
        budget: i32,
    ) -> Result<Self, EstimatorError> {
        let basis = Arc::new(WaveletBasis::new(family)?);
        Self::with_basis_2d(
            basis,
            interval_x,
            interval_y,
            coarse_level,
            max_level,
            budget,
        )
    }

    /// [`new_2d`](Self::new_2d) over an existing (possibly shared) basis.
    pub fn with_basis_2d(
        basis: Arc<WaveletBasis>,
        interval_x: (f64, f64),
        interval_y: (f64, f64),
        coarse_level: i32,
        max_level: i32,
        budget: i32,
    ) -> Result<Self, EstimatorError> {
        Self::build(
            basis,
            2,
            [interval_x, interval_y],
            coarse_level,
            max_level,
            budget,
        )
    }

    /// A 2-D sketch sized for `expected_n` observation pairs on the unit
    /// square, mirroring the 1-D
    /// [`sized_for`](crate::CoefficientSketch::sized_for) rule per axis:
    /// Symmlet-8, `j0` from the paper's coarse-level rule, per-axis
    /// `j_max = min(⌊log2 n⌋, j0 + 6)` and hyperbolic budget
    /// `j0 + j_max` (so the finest pure-wavelet layers pair the finest
    /// level on one axis with the coarsest on the other).
    pub fn sized_for_pairs(expected_n: usize) -> Result<Self, EstimatorError> {
        let n = expected_n.max(2);
        let family = WaveletFamily::Symmlet(8);
        let vanishing = 8;
        let j0 = default_coarse_level(n, vanishing);
        let j_max = cv_max_level(n).min(j0 + 6).max(j0);
        Self::new_2d(family, (0.0, 1.0), (0.0, 1.0), j0, j_max, j0 + j_max)
    }

    fn build(
        basis: Arc<WaveletBasis>,
        dims: usize,
        intervals: [(f64, f64); 2],
        j0: i32,
        j_max: i32,
        budget: i32,
    ) -> Result<Self, EstimatorError> {
        if !(1..=2).contains(&dims) {
            return Err(EstimatorError::InvalidParameter {
                message: format!("tensor sketches support 1 or 2 dimensions, got {dims}"),
            });
        }
        for &(lo, hi) in intervals.iter().take(dims) {
            if !lo.is_finite() || !hi.is_finite() || lo >= hi {
                return Err(EstimatorError::InvalidInterval { lo, hi });
            }
        }
        if j0 < 0 {
            return Err(EstimatorError::InvalidLevels {
                message: format!("coarse level must be nonnegative, got {j0}"),
            });
        }
        if j_max < j0 {
            return Err(EstimatorError::InvalidLevels {
                message: format!("max level {j_max} below coarse level {j0}"),
            });
        }
        let axis_count = if dims == 2 { 2 } else { 1 };
        let mut axes: [Vec<AxisComponent>; 2] = [Vec::new(), Vec::new()];
        for (axis, components) in axes.iter_mut().enumerate().take(axis_count) {
            components.push(AxisComponent::new(
                &basis,
                intervals[axis],
                j0,
                Generator::Scaling,
            ));
            for level in j0..=j_max {
                components.push(AxisComponent::new(
                    &basis,
                    intervals[axis],
                    level,
                    Generator::Wavelet,
                ));
            }
        }
        let mut levels = Vec::new();
        let mut total_slots = 0_usize;
        for selector in enumerate_levels(dims, j0, j_max, budget) {
            let cx = component_index(selector[0], j0);
            let cy = component_index(selector[1], j0);
            let slots = if dims == 2 {
                axes[0][cx]
                    .extent
                    .checked_mul(axes[1][cy].extent)
                    .ok_or_else(|| EstimatorError::InvalidParameter {
                        message: "tensor level slot count overflows".to_string(),
                    })?
            } else {
                axes[0][cx].extent
            };
            total_slots = total_slots.saturating_add(slots);
            if total_slots > MAX_TENSOR_SLOTS {
                return Err(EstimatorError::InvalidParameter {
                    message: format!(
                        "tensor level set holds more than {MAX_TENSOR_SLOTS} coefficient slots"
                    ),
                });
            }
            levels.push(TensorLevel::new([cx, cy], slots));
        }
        Ok(Self {
            basis,
            dims,
            intervals,
            j0,
            j_max,
            budget,
            count: 0,
            axes,
            levels,
            scratch: None,
        })
    }

    /// Number of dimensions (1 or 2).
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Observations accumulated so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether no observations have been accumulated.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The coarse resolution level `j0` (shared by both axes).
    pub fn coarse_level(&self) -> i32 {
        self.j0
    }

    /// The finest per-axis detail level.
    pub fn max_level(&self) -> i32 {
        self.j_max
    }

    /// The hyperbolic budget bounding `jx + jy` of the `ψ⊗ψ` layers
    /// (irrelevant for `dims == 1`).
    pub fn hyperbolic_budget(&self) -> i32 {
        self.budget
    }

    /// The accumulation interval of one axis (`axis < dims`).
    pub fn interval(&self, axis: usize) -> (f64, f64) {
        assert!(
            axis < self.dims,
            "axis {axis} out of range for {} dims",
            self.dims
        );
        self.intervals[axis]
    }

    /// The shared per-axis wavelet basis.
    pub fn basis(&self) -> &Arc<WaveletBasis> {
        &self.basis
    }

    /// Number of tensor levels in the canonical level set.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Total flattened coefficient slots across all levels.
    pub fn total_slots(&self) -> usize {
        self.levels.iter().map(|l| l.sums.len()).sum()
    }

    /// Ingests a batch of scalar observations (`dims == 1` only).
    ///
    /// Mirrors [`CoefficientSketch::push_batch`](crate::CoefficientSketch::push_batch)
    /// instruction for instruction — same chunking, same
    /// `LevelAccumulator` scatter
    /// path — so the accumulated sums are bitwise identical to the 1-D
    /// sketch's.
    ///
    /// # Panics
    /// If the sketch is 2-dimensional.
    pub fn push_scalars(&mut self, values: &[f64]) {
        assert_eq!(self.dims, 1, "push_scalars requires a 1-D tensor sketch");
        self.count += values.len();
        if values.is_empty() {
            return;
        }
        if !matches!(&self.scratch, Some(Scratch::OneD(_))) {
            self.scratch = Some(Scratch::OneD(ScatterScratch::new(&self.basis)));
        }
        let Some(Scratch::OneD(scratch)) = self.scratch.as_mut() else {
            unreachable!("1-D scratch just ensured");
        };
        let basis = &self.basis;
        let axes = &self.axes;
        let levels = &mut self.levels;
        let key = autotune::ChunkKey {
            kind: autotune::ChunkKind::OneD,
            support: basis.support_length() as u32,
            levels: levels.len() as u32,
        };
        let mut scatter = |chunk: &[f64]| {
            for level in levels.iter_mut() {
                let comp = axes[0][level.component[0]];
                level.version += 1;
                let accumulator =
                    LevelAccumulator::new(basis, comp.generator, comp.level, comp.k_start);
                let squares = Arc::make_mut(&mut level.sum_squares);
                accumulator.scatter_chunk(chunk, scratch, &mut level.sums, squares);
            }
        };
        let (chunk_size, rest) = autotune::tuned_chunk(key, INGEST_CHUNK, values, &mut scatter);
        for chunk in rest.chunks(chunk_size) {
            scatter(chunk);
        }
    }

    /// Ingests a batch of `(x, y)` observation pairs (`dims == 2` only).
    ///
    /// Each distinct per-axis factor (one `φ` row, one `ψ` row per level
    /// per axis) is gathered **once** per observation through the 1-D
    /// polyphase fast path; every tensor level then scatters the outer
    /// product of its two cached rows into its flattened slots.
    ///
    /// # Panics
    /// If the sketch is 1-dimensional.
    pub fn push_pairs(&mut self, rows: &[(f64, f64)]) {
        assert_eq!(self.dims, 2, "push_pairs requires a 2-D tensor sketch");
        self.count += rows.len();
        if rows.is_empty() {
            return;
        }
        let key = autotune::ChunkKey {
            kind: autotune::ChunkKind::TwoD,
            support: self.basis.support_length() as u32,
            levels: self.levels.len() as u32,
        };
        // Size the pooled scratch up front for the largest chunk this
        // batch can see — the tuned winner when one is cached, else the
        // largest probe candidate — so probing never reallocates
        // mid-batch and later batches reuse the same buffers.
        let largest = autotune::fixed_chunk(&key)
            .unwrap_or_else(|| autotune::CHUNK_CANDIDATES[autotune::CHUNK_CANDIDATES.len() - 1])
            .max(TENSOR_CHUNK);
        let chunk_rows = rows.len().min(largest);
        let components = self.axes[0].len().max(self.axes[1].len());
        let need_new = match &self.scratch {
            Some(Scratch::TwoD(s)) => s.rows < chunk_rows,
            _ => true,
        };
        if need_new {
            self.scratch = Some(Scratch::TwoD(TensorScratch::new(
                &self.basis,
                components,
                chunk_rows,
            )));
        }
        let mut scatter = |chunk: &[(f64, f64)]| self.scatter_pair_chunk(chunk);
        let (chunk_size, rest) = autotune::tuned_chunk(key, TENSOR_CHUNK, rows, &mut scatter);
        for chunk in rest.chunks(chunk_size.min(chunk_rows.max(1))) {
            scatter(chunk);
        }
    }

    fn scatter_pair_chunk(&mut self, chunk: &[(f64, f64)]) {
        let support = self.basis.support_length();
        let table = self.basis.table();
        let Some(Scratch::TwoD(scratch)) = self.scratch.as_mut() else {
            unreachable!("2-D scratch ensured by push_pairs");
        };
        let rows_cap = scratch.rows;
        let width = scratch.width;
        debug_assert!(
            chunk.len() <= rows_cap,
            "scatter chunk of {} rows exceeds scratch capacity {rows_cap}",
            chunk.len()
        );
        // Pass 1: gather the raw mother values of every (axis, component)
        // factor for every observation in the chunk.
        for axis in 0..2 {
            let values = &mut scratch.values[axis];
            let spans = &mut scratch.spans[axis];
            for (c, comp) in self.axes[axis].iter().enumerate() {
                for (i, row) in chunk.iter().enumerate() {
                    let x = if axis == 0 { row.0 } else { row.1 };
                    let position = comp.scale * x;
                    let range = active_translations(support, position, comp.k_start, comp.extent);
                    let (k_lo, k_hi) = (*range.start(), *range.end());
                    let slot = c * rows_cap + i;
                    if k_lo > k_hi {
                        spans[slot] = (0, 0);
                        continue;
                    }
                    let len = (k_hi - k_lo + 1) as usize;
                    spans[slot] = ((k_lo - comp.k_start) as u32, len as u32);
                    let base = slot * width;
                    let out = &mut values[base..base + len];
                    match comp.generator {
                        Generator::Scaling => table.gather_phi(position, k_lo, out),
                        Generator::Wavelet => table.gather_psi(position, k_lo, out),
                    }
                }
            }
        }
        // Pass 2: scatter the outer product of each level's two cached
        // rows into the flattened slots, accumulating value and value².
        for level in &mut self.levels {
            level.version += 1;
            let ax = self.axes[0][level.component[0]];
            let ay = self.axes[1][level.component[1]];
            let extent_y = ay.extent;
            let cx_base = level.component[0] * rows_cap;
            let cy_base = level.component[1] * rows_cap;
            let squares = Arc::make_mut(&mut level.sum_squares);
            for i in 0..chunk.len() {
                let (off_x, len_x) = scratch.spans[0][cx_base + i];
                let (off_y, len_y) = scratch.spans[1][cy_base + i];
                if len_x == 0 || len_y == 0 {
                    continue;
                }
                let base_x = (cx_base + i) * width;
                let base_y = (cy_base + i) * width;
                let row_x = &scratch.values[0][base_x..base_x + len_x as usize];
                let row_y = &scratch.values[1][base_y..base_y + len_y as usize];
                for (mx, &raw_x) in row_x.iter().enumerate() {
                    let vx = ax.sqrt_scale * raw_x;
                    if vx == 0.0 {
                        continue;
                    }
                    let slot = (off_x as usize + mx) * extent_y + off_y as usize;
                    let sums = &mut level.sums[slot..slot + len_y as usize];
                    let sqs = &mut squares[slot..slot + len_y as usize];
                    for ((sum, square), &raw_y) in sums.iter_mut().zip(sqs.iter_mut()).zip(row_y) {
                        let value = vx * (ay.sqrt_scale * raw_y);
                        *sum += value;
                        *square += value * value;
                    }
                }
            }
        }
    }

    /// Resets the sketch to the empty state in place, keeping every
    /// allocation (scratch-sketch reuse, as in the 1-D
    /// [`clear`](crate::CoefficientSketch::clear)).
    pub fn clear(&mut self) {
        self.count = 0;
        for level in &mut self.levels {
            level.clear();
        }
    }

    /// Checks that `other` accumulates the same tensor coefficients as
    /// `self` (same family, dimensions, intervals, levels and budget).
    pub fn is_compatible(&self, other: &Self) -> Result<(), EstimatorError> {
        let mismatch = |message: String| EstimatorError::IncompatibleSketches { message };
        if self.basis.family() != other.basis.family() {
            return Err(mismatch(format!(
                "wavelet families differ: {:?} vs {:?}",
                self.basis.family(),
                other.basis.family()
            )));
        }
        if self.dims != other.dims {
            return Err(mismatch(format!(
                "dimensions differ: {} vs {}",
                self.dims, other.dims
            )));
        }
        for axis in 0..self.dims {
            if self.intervals[axis] != other.intervals[axis] {
                return Err(mismatch(format!(
                    "axis {axis} intervals differ: {:?} vs {:?}",
                    self.intervals[axis], other.intervals[axis]
                )));
            }
        }
        if (self.j0, self.j_max, self.budget) != (other.j0, other.j_max, other.budget) {
            return Err(mismatch(format!(
                "level sets differ: ({}, {}, budget {}) vs ({}, {}, budget {})",
                self.j0, self.j_max, self.budget, other.j0, other.j_max, other.budget
            )));
        }
        Ok(())
    }

    /// Merges another sketch accumulated over the same tensor basis;
    /// exactly equivalent to having pushed both observation streams into
    /// one sketch.
    pub fn merge(&mut self, other: &Self) -> Result<(), EstimatorError> {
        self.is_compatible(other)?;
        for (mine, theirs) in self.levels.iter_mut().zip(&other.levels) {
            mine.merge(theirs);
        }
        self.count = self.count.saturating_add(other.count);
        Ok(())
    }

    /// [`merge`](Self::merge) with every contribution scaled by `weight`
    /// (decayed window folds). At `weight == 1.0` this is bitwise
    /// `merge`.
    pub fn merge_scaled(&mut self, other: &Self, weight: f64) -> Result<(), EstimatorError> {
        validate_merge_weight(weight)?;
        self.is_compatible(other)?;
        for (mine, theirs) in self.levels.iter_mut().zip(&other.levels) {
            mine.merge_scaled(theirs, weight);
        }
        self.count = self.count.saturating_add(scaled_count(other.count, weight));
        Ok(())
    }

    /// Overwrites this sketch with the contents of a compatible source,
    /// reusing the allocations (the engine's refresh scratch path).
    pub fn copy_from(&mut self, source: &Self) -> Result<(), EstimatorError> {
        self.is_compatible(source)?;
        for (mine, theirs) in self.levels.iter_mut().zip(&source.levels) {
            mine.copy_from(theirs);
        }
        self.count = source.count;
        Ok(())
    }

    /// The empirical coefficients of every tensor level, each flattened
    /// into a pseudo-1-D [`LevelCoefficients`] (values are `sums / n`;
    /// the `level` tag is the finest per-axis level of the pair, the
    /// flattened slot index starts at `k_start = 0`). This is the view
    /// the level-wise CV pipeline consumes.
    pub fn snapshot_levels(&self) -> Result<Vec<LevelCoefficients>, EstimatorError> {
        if self.count == 0 {
            return Err(EstimatorError::EmptySample);
        }
        Ok((0..self.levels.len())
            .map(|index| self.pseudo_level(index))
            .collect())
    }

    /// The flattened level at `index` as a pseudo-1-D coefficient set.
    fn pseudo_level(&self, index: usize) -> LevelCoefficients {
        let level = &self.levels[index];
        let ax = self.axes[0][level.component[0]];
        let (tag_level, generator) = if self.dims == 2 {
            let ay = self.axes[1][level.component[1]];
            let wavelet = ax.generator == Generator::Wavelet || ay.generator == Generator::Wavelet;
            (
                ax.level.max(ay.level),
                if wavelet {
                    Generator::Wavelet
                } else {
                    Generator::Scaling
                },
            )
        } else {
            (ax.level, ax.generator)
        };
        let n = self.count as f64;
        LevelCoefficients {
            level: tag_level,
            generator,
            k_start: 0,
            values: level.sums.iter().map(|s| s / n).collect(),
            sum_squares: Arc::clone(&level.sum_squares),
        }
    }

    /// Runs the level-wise CV+threshold pipeline over the flattened
    /// levels: the scaling layer is kept as-is, every other level gets a
    /// cross-validated threshold `λ` (exactly the 1-D
    /// [`cross_validate_level`] over the
    /// flattened coefficients) and `rule` applied slot by slot.
    pub fn thresholded(&self, rule: ThresholdRule) -> Result<TensorEstimate, EstimatorError> {
        if self.count == 0 {
            return Err(EstimatorError::EmptySample);
        }
        let n = self.count;
        let criterion = CvCriterion::recommended_for(rule);
        let mut levels = Vec::with_capacity(self.levels.len());
        for (index, level) in self.levels.iter().enumerate() {
            let pseudo = self.pseudo_level(index);
            let coefficients = if index == 0 {
                // The scaling layer is never thresholded (same convention
                // as the 1-D pipeline).
                pseudo.values
            } else {
                let cv = cross_validate_level(&pseudo, n, criterion);
                pseudo
                    .values
                    .iter()
                    .map(|&beta| rule.apply(beta, cv.lambda))
                    .collect()
            };
            let surviving = coefficients.iter().filter(|c| **c != 0.0).count();
            let ay_index = if self.dims == 2 {
                level.component[1]
            } else {
                level.component[0]
            };
            levels.push(EstimateLevel {
                axes: [
                    self.axes[0][level.component[0]],
                    self.axes[self.dims - 1][ay_index],
                ],
                coefficients,
                surviving,
            });
        }
        Ok(TensorEstimate {
            basis: Arc::clone(&self.basis),
            dims: self.dims,
            intervals: self.intervals,
            n,
            levels,
        })
    }

    /// Zeroes the cross-validated inactive state of every detail level.
    /// Levels whose CV active set is empty are cleared wholesale (the
    /// presence bitmap then elides them). Under [`ThresholdRule::Hard`]
    /// the sweep additionally zeroes *individual* slots the threshold
    /// kills: hard-thresholded survivors ship verbatim, so dropping the
    /// killed slots leaves the re-thresholded estimate pointwise
    /// identical while making the level coefficient-sparse on the wire.
    /// (Soft shrinkage depends on the selected `λ`, which the frame does
    /// not carry, so `Soft` stays level-granular.)
    fn zero_inactive_levels(&mut self, rule: ThresholdRule) -> Result<(), EstimatorError> {
        if self.count == 0 {
            return Ok(());
        }
        let n = self.count;
        let criterion = CvCriterion::recommended_for(rule);
        let per_slot = matches!(rule, ThresholdRule::Hard);
        for index in 1..self.levels.len() {
            if self.levels[index].is_zero() {
                continue;
            }
            let keep = {
                let pseudo = self.pseudo_level(index);
                let cv = cross_validate_level(&pseudo, n, criterion);
                if cv.kept == 0 {
                    None
                } else if per_slot && cv.kept < pseudo.values.len() {
                    Some(
                        pseudo
                            .values
                            .iter()
                            .map(|&beta| rule.apply(beta, cv.lambda) != 0.0)
                            .collect::<Vec<bool>>(),
                    )
                } else {
                    // Every slot survives: nothing to zero.
                    continue;
                }
            };
            let level = &mut self.levels[index];
            match keep {
                None => level.clear(),
                Some(keep) => {
                    let squares = Arc::make_mut(&mut level.sum_squares);
                    let mut changed = false;
                    for (slot, kept) in keep.iter().enumerate() {
                        if !kept && (level.sums[slot] != 0.0 || squares[slot] != 0.0) {
                            level.sums[slot] = 0.0;
                            squares[slot] = 0.0;
                            changed = true;
                        }
                    }
                    if changed {
                        level.version += 1;
                    }
                }
            }
        }
        Ok(())
    }

    /// Produces a compacted clone for shipping, mirroring the 1-D
    /// [`compact`](crate::CoefficientSketch::compact) semantics on the
    /// tensor level set: `Dense` keeps everything, `InactiveTail` zeroes
    /// the CV-inactive levels — and, under [`ThresholdRule::Hard`], the
    /// individually killed slots (lossless — pointwise-identical
    /// estimates), `ByteBudget` additionally zeroes the finest remaining
    /// levels until
    /// the frame fits (best-effort, potentially lossy; the scaling layer
    /// is never dropped).
    pub fn compact(
        &self,
        policy: CompactionPolicy,
        rule: ThresholdRule,
    ) -> Result<Self, EstimatorError> {
        let mut compacted = self.clone();
        match policy {
            CompactionPolicy::Dense => {}
            CompactionPolicy::InactiveTail => compacted.zero_inactive_levels(rule)?,
            CompactionPolicy::ByteBudget { max_bytes } => {
                compacted.zero_inactive_levels(rule)?;
                let mut index = compacted.levels.len();
                while compacted.serialized_len() > max_bytes && index > 1 {
                    index -= 1;
                    compacted.levels[index].clear();
                }
            }
        }
        Ok(compacted)
    }

    fn header_len(dims: usize) -> usize {
        // magic + version + family tag + order + dims + count + three
        // level fields + per-axis interval bounds.
        MAGIC.len() + 2 + 1 + 2 + 1 + 8 + 3 * 4 + dims * 16
    }

    /// The cheaper of the two payload encodings for one level: dense
    /// (`u64` slot count + per-slot sum and sum of squares) or
    /// coefficient-sparse (`u64` nonzero count + per-entry `u32` slot
    /// index, sum, sum of squares).
    fn payload_len(level: &TensorLevel) -> usize {
        let dense = 8 + 16 * level.sums.len();
        let sparse = 8 + 20 * level.nonzero_slots();
        dense.min(sparse)
    }

    /// Exact length of [`to_bytes`](Self::to_bytes).
    pub fn serialized_len(&self) -> usize {
        let mut len = Self::header_len(self.dims) + presence_bitmap_len(self.levels.len());
        for level in &self.levels {
            if level.is_zero() {
                continue;
            }
            len += 1 + Self::payload_len(level);
        }
        len
    }

    /// Serializes the sketch as a compact v4 tensor frame: the shared
    /// magic/family prefix, a dims header, the level-set parameters (the
    /// canonical level list is derived from them, so no level directory
    /// ships), a presence bitmap eliding all-zero levels, and per level
    /// the cheaper of a dense or coefficient-sparse payload. Lossless:
    /// [`from_bytes`](Self::from_bytes) reproduces the slot arrays
    /// bit for bit.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.encode(false)
    }

    /// Serializes with every level present and dense payloads — the
    /// uncompacted baseline the compaction ratio is measured against.
    pub fn to_bytes_dense(&self) -> Vec<u8> {
        self.encode(true)
    }

    fn encode(&self, force_dense: bool) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_V4_TENSOR.to_le_bytes());
        let (family_tag, order) = encode_family(self.basis.family());
        out.push(family_tag);
        out.extend_from_slice(&(order as u16).to_le_bytes());
        out.push(self.dims as u8);
        out.extend_from_slice(&(self.count as u64).to_le_bytes());
        out.extend_from_slice(&self.j0.to_le_bytes());
        out.extend_from_slice(&self.j_max.to_le_bytes());
        out.extend_from_slice(&self.budget.to_le_bytes());
        for &(lo, hi) in self.intervals.iter().take(self.dims) {
            out.extend_from_slice(&lo.to_le_bytes());
            out.extend_from_slice(&hi.to_le_bytes());
        }
        let mut bitmap = vec![0_u8; presence_bitmap_len(self.levels.len())];
        for (i, level) in self.levels.iter().enumerate() {
            if force_dense || !level.is_zero() {
                bitmap[i / 8] |= 1 << (i % 8);
            }
        }
        out.extend_from_slice(&bitmap);
        for level in &self.levels {
            if !force_dense && level.is_zero() {
                continue;
            }
            let slots = level.sums.len();
            let nonzero = level.nonzero_slots();
            let sparse = !force_dense && 20 * nonzero < 16 * slots;
            if sparse {
                out.push(PAYLOAD_SPARSE);
                out.extend_from_slice(&(nonzero as u64).to_le_bytes());
                for (index, (sum, square)) in
                    level.sums.iter().zip(level.sum_squares.iter()).enumerate()
                {
                    if *sum == 0.0 && *square == 0.0 {
                        continue;
                    }
                    out.extend_from_slice(&(index as u32).to_le_bytes());
                    out.extend_from_slice(&sum.to_le_bytes());
                    out.extend_from_slice(&square.to_le_bytes());
                }
            } else {
                out.push(PAYLOAD_DENSE);
                out.extend_from_slice(&(slots as u64).to_le_bytes());
                for sum in &level.sums {
                    out.extend_from_slice(&sum.to_le_bytes());
                }
                for square in level.sum_squares.iter() {
                    out.extend_from_slice(&square.to_le_bytes());
                }
            }
        }
        out
    }

    /// Deserializes a v4 tensor frame produced by
    /// [`to_bytes`](Self::to_bytes) or
    /// [`to_bytes_dense`](Self::to_bytes_dense), rebuilding the canonical
    /// level set from the header parameters. Every structural field is
    /// validated (level range, slot cap, per-level payload bounds, sparse
    /// index monotonicity, finiteness) so a corrupted or hostile frame
    /// can neither panic the reader nor provoke an oversized allocation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, EstimatorError> {
        let mut reader = Reader::new(bytes);
        if reader.take(MAGIC.len())? != MAGIC {
            return Err(invalid("bad magic bytes"));
        }
        let version = reader.u16()?;
        if version != FORMAT_V4_TENSOR {
            return Err(invalid(&format!(
                "unsupported tensor frame version {version} (expected {FORMAT_V4_TENSOR})"
            )));
        }
        let family_tag = reader.u8()?;
        let order = reader.u16()? as usize;
        let family = decode_family(family_tag, order)?;
        let dims = reader.u8()? as usize;
        if !(1..=2).contains(&dims) {
            return Err(invalid(&format!(
                "unsupported tensor dimension count {dims}"
            )));
        }
        let count = reader.u64()? as usize;
        let j0 = reader.i32()?;
        let j_max = reader.i32()?;
        let budget = reader.i32()?;
        if j0 < 0 || j_max < j0 {
            return Err(invalid(&format!("invalid level range {j0}..={j_max}")));
        }
        if j_max > MAX_SERIALIZED_LEVEL {
            return Err(invalid(&format!(
                "max level {j_max} exceeds the wire cap {MAX_SERIALIZED_LEVEL}"
            )));
        }
        let mut intervals = [(0.0, 1.0); 2];
        for interval in intervals.iter_mut().take(dims) {
            let lo = reader.f64()?;
            let hi = reader.f64()?;
            if !lo.is_finite() || !hi.is_finite() || lo >= hi {
                return Err(invalid(&format!("invalid interval [{lo}, {hi}]")));
            }
            *interval = (lo, hi);
        }
        if dims == 1 {
            intervals[1] = intervals[0];
        }
        let basis = Arc::new(WaveletBasis::new(family)?);
        // The constructor re-derives the canonical level set from the
        // header parameters and enforces the slot cap, bounding every
        // allocation below.
        let mut sketch = Self::build(basis, dims, intervals, j0, j_max, budget)
            .map_err(|e| invalid(&format!("frame declares an invalid level set: {e}")))?;
        sketch.count = count;
        let level_count = sketch.levels.len();
        let bitmap = reader.take(presence_bitmap_len(level_count))?.to_vec();
        if (level_count..bitmap.len() * 8).any(|i| bitmap[i / 8] & (1 << (i % 8)) != 0) {
            return Err(invalid("presence bitmap has bits beyond the level count"));
        }
        for (index, level) in sketch.levels.iter_mut().enumerate() {
            let is_present = bitmap[index / 8] & (1 << (index % 8)) != 0;
            if is_present {
                read_tensor_level(&mut reader, level)?;
            }
            level.version = u64::from(is_present && !level.is_zero());
        }
        if !reader.is_done() {
            return Err(invalid(&format!(
                "{} trailing bytes after the last level",
                reader.remaining()
            )));
        }
        if count == 0 && sketch.levels.iter().any(|level| !level.is_zero()) {
            return Err(invalid("count is zero but level sums are nonzero"));
        }
        Ok(sketch)
    }
}

/// Reads one v4 level payload (dense or sparse) into `level`.
fn read_tensor_level(
    reader: &mut Reader<'_>,
    level: &mut TensorLevel,
) -> Result<(), EstimatorError> {
    let slots = level.sums.len();
    let tag = reader.u8()?;
    match tag {
        PAYLOAD_DENSE => {
            let len = reader.u64()? as usize;
            if len != slots {
                return Err(invalid(&format!(
                    "level stores {slots} slots, dense payload has {len}"
                )));
            }
            for slot in &mut level.sums {
                let value = reader.f64()?;
                if !value.is_finite() {
                    return Err(invalid(&format!("non-finite sum {value} in level payload")));
                }
                *slot = value;
            }
            let squares = Arc::make_mut(&mut level.sum_squares);
            for slot in squares.iter_mut() {
                let value = reader.f64()?;
                if !value.is_finite() || value < 0.0 {
                    return Err(invalid(&format!(
                        "invalid sum of squares {value} in level payload"
                    )));
                }
                *slot = value;
            }
        }
        PAYLOAD_SPARSE => {
            let nonzero = reader.u64()? as usize;
            if nonzero > slots {
                return Err(invalid(&format!(
                    "sparse payload declares {nonzero} entries for {slots} slots"
                )));
            }
            let squares = Arc::make_mut(&mut level.sum_squares);
            let mut previous: Option<usize> = None;
            for _ in 0..nonzero {
                let index = reader.u32()? as usize;
                if index >= slots {
                    return Err(invalid(&format!(
                        "sparse entry index {index} outside {slots} slots"
                    )));
                }
                if previous.is_some_and(|p| index <= p) {
                    return Err(invalid("sparse entry indices must be strictly increasing"));
                }
                previous = Some(index);
                let sum = reader.f64()?;
                if !sum.is_finite() {
                    return Err(invalid(&format!("non-finite sum {sum} in sparse payload")));
                }
                let square = reader.f64()?;
                if !square.is_finite() || square < 0.0 {
                    return Err(invalid(&format!(
                        "invalid sum of squares {square} in sparse payload"
                    )));
                }
                level.sums[index] = sum;
                squares[index] = square;
            }
        }
        other => {
            return Err(invalid(&format!("unknown level payload tag {other}")));
        }
    }
    Ok(())
}

/// The canonical tensor level list derived from `(dims, j0, j_max,
/// budget)`: the scaling layer, then `ψ_j⊗φ_{j0}`, then `φ_{j0}⊗ψ_j`,
/// then `ψ_{jx}⊗ψ_{jy}` under the hyperbolic cut, each block in
/// ascending level order. The wire format relies on this list being a
/// pure function of the four header parameters.
fn enumerate_levels(dims: usize, j0: i32, j_max: i32, budget: i32) -> Vec<[(Generator, i32); 2]> {
    let scaling = (Generator::Scaling, j0);
    let mut levels = Vec::new();
    if dims == 1 {
        levels.push([scaling, scaling]);
        for j in j0..=j_max {
            levels.push([(Generator::Wavelet, j), scaling]);
        }
        return levels;
    }
    levels.push([scaling, scaling]);
    for j in j0..=j_max {
        levels.push([(Generator::Wavelet, j), scaling]);
    }
    for j in j0..=j_max {
        levels.push([scaling, (Generator::Wavelet, j)]);
    }
    for jx in j0..=j_max {
        for jy in j0..=j_max {
            if jx + jy <= budget {
                levels.push([(Generator::Wavelet, jx), (Generator::Wavelet, jy)]);
            }
        }
    }
    levels
}

/// Index of a `(generator, level)` factor in the per-axis component list
/// (`φ_{j0}` first, then `ψ_{j0}..ψ_{j_max}`).
fn component_index(selector: (Generator, i32), j0: i32) -> usize {
    match selector.0 {
        Generator::Scaling => 0,
        Generator::Wavelet => 1 + (selector.1 - j0) as usize,
    }
}

/// One thresholded tensor level of a [`TensorEstimate`].
#[derive(Debug, Clone)]
struct EstimateLevel {
    axes: [AxisComponent; 2],
    coefficients: Vec<f64>,
    surviving: usize,
}

/// A thresholded tensor-product density expansion, produced by
/// [`TensorSketch::thresholded`].
#[derive(Debug, Clone)]
pub struct TensorEstimate {
    basis: Arc<WaveletBasis>,
    dims: usize,
    intervals: [(f64, f64); 2],
    n: usize,
    levels: Vec<EstimateLevel>,
}

impl TensorEstimate {
    /// Number of dimensions (1 or 2).
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Sample size behind the empirical coefficients.
    pub fn sample_size(&self) -> usize {
        self.n
    }

    /// Total coefficients surviving thresholding (scaling layer
    /// included).
    pub fn surviving_coefficients(&self) -> usize {
        self.levels.iter().map(|l| l.surviving).sum()
    }

    /// Evaluates the 2-D density expansion on the tensor grid
    /// `grid_x × grid_y`, returned row-major (`x` major). Each surviving
    /// coefficient sweeps its compact support with two 1-D strided table
    /// passes — one per axis — and scatters their outer product.
    ///
    /// # Panics
    /// If the estimate is 1-dimensional.
    pub fn density_grid(&self, grid_x: &Grid, grid_y: &Grid) -> Vec<f64> {
        assert_eq!(self.dims, 2, "density_grid requires a 2-D estimate");
        let nx = grid_x.len();
        let ny = grid_y.len();
        let mut out = vec![0.0; nx * ny];
        let support = self.basis.support_length();
        let table = self.basis.table();
        let mut row_x: Vec<f64> = Vec::new();
        let mut row_y: Vec<f64> = Vec::new();
        for level in &self.levels {
            if level.surviving == 0 {
                continue;
            }
            let ax = level.axes[0];
            let ay = level.axes[1];
            let stride_x = ax.scale * grid_x.step();
            let stride_y = ay.scale * grid_y.step();
            for (m, &coeff) in level.coefficients.iter().enumerate() {
                if coeff == 0.0 {
                    continue;
                }
                let kx = ax.k_start + (m / ay.extent) as i64;
                let ky = ay.k_start + (m % ay.extent) as i64;
                let Some((first_x, last_x, u0_x)) =
                    coefficient_window(grid_x, ax.scale, support, kx, nx)
                else {
                    continue;
                };
                let Some((first_y, last_y, u0_y)) =
                    coefficient_window(grid_y, ay.scale, support, ky, ny)
                else {
                    continue;
                };
                row_x.clear();
                row_x.resize(last_x - first_x + 1, 0.0);
                match ax.generator {
                    Generator::Scaling => {
                        table.accumulate_phi(u0_x, stride_x, ax.sqrt_scale, &mut row_x)
                    }
                    Generator::Wavelet => {
                        table.accumulate_psi(u0_x, stride_x, ax.sqrt_scale, &mut row_x)
                    }
                }
                row_y.clear();
                row_y.resize(last_y - first_y + 1, 0.0);
                match ay.generator {
                    Generator::Scaling => {
                        table.accumulate_phi(u0_y, stride_y, ay.sqrt_scale, &mut row_y)
                    }
                    Generator::Wavelet => {
                        table.accumulate_psi(u0_y, stride_y, ay.sqrt_scale, &mut row_y)
                    }
                }
                for (i, &vx) in row_x.iter().enumerate() {
                    if vx == 0.0 {
                        continue;
                    }
                    let weight = coeff * vx;
                    let base = (first_x + i) * ny + first_y;
                    for (j, &vy) in row_y.iter().enumerate() {
                        out[base + j] += weight * vy;
                    }
                }
            }
        }
        out
    }

    /// Builds the joint cumulative grid of the 2-D expansion on a
    /// `points_x × points_y` tensor grid over the accumulation
    /// rectangle.
    ///
    /// # Panics
    /// If the estimate is 1-dimensional.
    pub fn cumulative(&self, points_x: usize, points_y: usize) -> TensorCumulative {
        assert_eq!(self.dims, 2, "cumulative requires a 2-D estimate");
        let (lo_x, hi_x) = self.intervals[0];
        let (lo_y, hi_y) = self.intervals[1];
        let grid_x = Grid::new(lo_x, hi_x, points_x.max(2));
        let grid_y = Grid::new(lo_y, hi_y, points_y.max(2));
        let density = self.density_grid(&grid_x, &grid_y);
        TensorCumulative::from_density(grid_x, grid_y, &density)
    }
}

/// A precomputed joint CDF grid over a rectangle, answering range-mass
/// queries by inclusion–exclusion of four bilinear corner lookups.
///
/// Construction clamps the density at zero and accumulates nonnegative
/// per-cell trapezoid masses into a 2-D prefix grid; the bilinear
/// interpolant of that grid is the exact CDF of the measure spreading
/// each cell's mass uniformly over the cell. Rectangle masses are
/// therefore nonnegative and exactly additive across abutting
/// rectangles.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorCumulative {
    grid_x: Grid,
    grid_y: Grid,
    cumulative: Vec<f64>,
}

impl TensorCumulative {
    /// Builds the prefix-mass grid from a row-major density sample on
    /// `grid_x × grid_y` (negative density values are clamped to zero).
    ///
    /// # Panics
    /// If `density.len() != grid_x.len() * grid_y.len()`.
    pub fn from_density(grid_x: Grid, grid_y: Grid, density: &[f64]) -> Self {
        let nx = grid_x.len();
        let ny = grid_y.len();
        assert_eq!(density.len(), nx * ny, "density grid size mismatch");
        let cell_weight = 0.25 * grid_x.step() * grid_y.step();
        let mut cumulative = vec![0.0; nx * ny];
        for i in 1..nx {
            for j in 1..ny {
                let d00 = density[(i - 1) * ny + (j - 1)].max(0.0);
                let d10 = density[i * ny + (j - 1)].max(0.0);
                let d01 = density[(i - 1) * ny + j].max(0.0);
                let d11 = density[i * ny + j].max(0.0);
                let mass = cell_weight * (d00 + d10 + d01 + d11);
                cumulative[i * ny + j] = cumulative[(i - 1) * ny + j]
                    + cumulative[i * ny + (j - 1)]
                    - cumulative[(i - 1) * ny + (j - 1)]
                    + mass;
            }
        }
        Self {
            grid_x,
            grid_y,
            cumulative,
        }
    }

    /// The evaluation grid along `x`.
    pub fn grid_x(&self) -> &Grid {
        &self.grid_x
    }

    /// The evaluation grid along `y`.
    pub fn grid_y(&self) -> &Grid {
        &self.grid_y
    }

    /// Total mass over the full rectangle.
    pub fn total_mass(&self) -> f64 {
        *self
            .cumulative
            .last()
            .expect("grids have at least 2 points")
    }

    /// Fractional grid position of `v` along one axis (clamped).
    fn axis_position(grid: &Grid, v: f64) -> f64 {
        if v <= grid.lo() {
            return 0.0;
        }
        if v >= grid.hi() {
            return (grid.len() - 1) as f64;
        }
        (v - grid.lo()) / grid.step()
    }

    /// The joint CDF `F(x, y)` — the mass over `(-∞, x] × (-∞, y]` —
    /// by bilinear interpolation of the prefix grid. NaN arguments
    /// answer 0.
    pub fn cdf(&self, x: f64, y: f64) -> f64 {
        if x.is_nan() || y.is_nan() {
            return 0.0;
        }
        let ny = self.grid_y.len();
        let px = Self::axis_position(&self.grid_x, x);
        let py = Self::axis_position(&self.grid_y, y);
        let cx = (px as usize).min(self.grid_x.len() - 2);
        let cy = (py as usize).min(ny - 2);
        let fx = px - cx as f64;
        let fy = py - cy as f64;
        let c00 = self.cumulative[cx * ny + cy];
        let c10 = self.cumulative[(cx + 1) * ny + cy];
        let c01 = self.cumulative[cx * ny + cy + 1];
        let c11 = self.cumulative[(cx + 1) * ny + cy + 1];
        (1.0 - fx) * (1.0 - fy) * c00
            + fx * (1.0 - fy) * c10
            + (1.0 - fx) * fy * c01
            + fx * fy * c11
    }

    /// Mass of the rectangle `x_range × y_range` by inclusion–exclusion
    /// of the four corner CDF lookups:
    /// `F(b₁,b₂) − F(a₁,b₂) − F(b₁,a₂) + F(a₁,a₂)`. Reversed or NaN
    /// ranges answer 0; the result is clamped at 0 against floating-point
    /// cancellation.
    pub fn range_mass(&self, x_range: (f64, f64), y_range: (f64, f64)) -> f64 {
        let (ax, bx) = x_range;
        let (ay, by) = y_range;
        if ax.is_nan() || bx.is_nan() || ay.is_nan() || by.is_nan() {
            return 0.0;
        }
        if bx <= ax || by <= ay {
            return 0.0;
        }
        (self.cdf(bx, by) - self.cdf(ax, by) - self.cdf(bx, ay) + self.cdf(ax, ay)).max(0.0)
    }

    /// The selectivity of the rectangle predicate: range mass normalised
    /// by total mass, clamped to `[0, 1]`. Answers 0 when the total mass
    /// is numerically negligible.
    pub fn selectivity(&self, x_range: (f64, f64), y_range: (f64, f64)) -> f64 {
        let total = self.total_mass();
        if total <= TOTAL_MASS_FLOOR {
            return 0.0;
        }
        (self.range_mass(x_range, y_range) / total).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::CoefficientSketch;
    use rand::Rng;
    use wavedens_processes::seeded_rng;

    fn pairs(n: usize, seed: u64, noise: f64) -> Vec<(f64, f64)> {
        let mut rng = seeded_rng(seed);
        (0..n)
            .map(|_| {
                let x: f64 = rng.gen();
                let y = (x + noise * (2.0 * rng.gen::<f64>() - 1.0)).rem_euclid(1.0);
                (x, y)
            })
            .collect()
    }

    fn small_2d() -> TensorSketch {
        TensorSketch::new_2d(WaveletFamily::Symmlet(8), (0.0, 1.0), (0.0, 1.0), 1, 4, 5)
            .expect("valid 2-D sketch")
    }

    #[test]
    fn dims1_sums_are_bitwise_identical_to_coefficient_sketch() {
        let mut rng = seeded_rng(7);
        let sample: Vec<f64> = (0..700).map(|_| rng.gen()).collect();
        let basis = Arc::new(WaveletBasis::new(WaveletFamily::Symmlet(8)).unwrap());
        let mut reference =
            CoefficientSketch::with_basis(Arc::clone(&basis), (0.0, 1.0), 2, 6).unwrap();
        let mut tensor = TensorSketch::with_basis_1d(basis, (0.0, 1.0), 2, 6).unwrap();
        // Mixed slicings: the chunk boundaries must not matter.
        reference.push_batch(&sample[..611]);
        reference.push_batch(&sample[611..]);
        tensor.push_scalars(&sample[..611]);
        tensor.push_scalars(&sample[611..]);
        assert_eq!(tensor.count(), reference.count());
        let snapshot = reference.snapshot().unwrap();
        let reference_levels: Vec<&LevelCoefficients> = std::iter::once(snapshot.scaling())
            .chain(snapshot.details())
            .collect();
        let tensor_levels = tensor.snapshot_levels().unwrap();
        assert_eq!(tensor_levels.len(), reference_levels.len());
        for (mine, theirs) in tensor_levels.iter().zip(reference_levels) {
            assert_eq!(mine.values.len(), theirs.values.len());
            for (a, b) in mine.values.iter().zip(&theirs.values) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in mine.sum_squares.iter().zip(theirs.sum_squares.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn merge_matches_single_stream() {
        let rows = pairs(900, 11, 0.1);
        let mut single = small_2d();
        single.push_pairs(&rows);
        let mut left = small_2d();
        let mut right = small_2d();
        left.push_pairs(&rows[..450]);
        right.push_pairs(&rows[450..]);
        left.merge(&right).unwrap();
        assert_eq!(left.count(), single.count());
        for (a, b) in left.levels.iter().zip(&single.levels) {
            for (x, y) in a.sums.iter().zip(&b.sums) {
                assert!((x - y).abs() <= 1e-9 * (1.0 + y.abs()));
            }
        }
    }

    #[test]
    fn merge_scaled_at_weight_one_is_bitwise_merge() {
        let rows = pairs(300, 3, 0.05);
        let mut merged = small_2d();
        let mut scaled = small_2d();
        let mut other = small_2d();
        other.push_pairs(&rows[..150]);
        merged.push_pairs(&rows[150..]);
        scaled.push_pairs(&rows[150..]);
        merged.merge(&other).unwrap();
        scaled.merge_scaled(&other, 1.0).unwrap();
        assert_eq!(merged.count(), scaled.count());
        for (a, b) in merged.levels.iter().zip(&scaled.levels) {
            for (x, y) in a.sums.iter().zip(&b.sums) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            for (x, y) in a.sum_squares.iter().zip(b.sum_squares.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn incompatible_sketches_are_rejected() {
        let mut a = small_2d();
        let b = TensorSketch::new_2d(WaveletFamily::Symmlet(8), (0.0, 1.0), (0.0, 1.0), 1, 4, 4)
            .unwrap();
        assert!(matches!(
            a.merge(&b),
            Err(EstimatorError::IncompatibleSketches { .. })
        ));
        let c = TensorSketch::new_1d(WaveletFamily::Symmlet(8), (0.0, 1.0), 1, 4).unwrap();
        assert!(matches!(
            a.merge(&c),
            Err(EstimatorError::IncompatibleSketches { .. })
        ));
    }

    #[test]
    fn serialization_round_trips_bitwise() {
        let rows = pairs(800, 23, 0.08);
        let mut sketch = small_2d();
        sketch.push_pairs(&rows);
        let bytes = sketch.to_bytes();
        assert_eq!(bytes.len(), sketch.serialized_len());
        let restored = TensorSketch::from_bytes(&bytes).unwrap();
        assert_eq!(restored.count(), sketch.count());
        assert_eq!(restored.dims(), 2);
        for (a, b) in restored.levels.iter().zip(&sketch.levels) {
            for (x, y) in a.sums.iter().zip(&b.sums) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            for (x, y) in a.sum_squares.iter().zip(b.sum_squares.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        // Dense framing round-trips to the same state too.
        let dense = TensorSketch::from_bytes(&sketch.to_bytes_dense()).unwrap();
        for (a, b) in dense.levels.iter().zip(&sketch.levels) {
            for (x, y) in a.sums.iter().zip(&b.sums) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn compacted_frames_shrink_and_stay_lossless() {
        let rows = pairs(4096, 41, 0.05);
        let mut sketch = TensorSketch::sized_for_pairs(4096).unwrap();
        sketch.push_pairs(&rows);
        let rule = ThresholdRule::Hard;
        let compacted = sketch
            .compact(CompactionPolicy::InactiveTail, rule)
            .unwrap();
        let compact_bytes = compacted.to_bytes();
        let dense_bytes = sketch.to_bytes_dense();
        assert!(
            dense_bytes.len() >= 5 * compact_bytes.len(),
            "dense {} vs compact {}",
            dense_bytes.len(),
            compact_bytes.len()
        );
        // Lossless: the estimates agree pointwise on a probe grid.
        let restored = TensorSketch::from_bytes(&compact_bytes).unwrap();
        let grid_x = Grid::new(0.0, 1.0, 65);
        let grid_y = Grid::new(0.0, 1.0, 65);
        let original = sketch
            .thresholded(rule)
            .unwrap()
            .density_grid(&grid_x, &grid_y);
        let shipped = restored
            .thresholded(rule)
            .unwrap()
            .density_grid(&grid_x, &grid_y);
        for (a, b) in original.iter().zip(&shipped) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn byte_budget_fits_best_effort() {
        let rows = pairs(2000, 5, 0.2);
        let mut sketch = small_2d();
        sketch.push_pairs(&rows);
        let budget = 4096;
        let compacted = sketch
            .compact(
                CompactionPolicy::ByteBudget { max_bytes: budget },
                ThresholdRule::Hard,
            )
            .unwrap();
        assert!(
            compacted.serialized_len() <= budget.max(compacted.levels[0].sums.len() * 16 + 128)
        );
        // The scaling layer always survives.
        assert!(!compacted.levels[0].is_zero());
    }

    #[test]
    fn cumulative_masses_are_nonnegative_and_additive() {
        let rows = pairs(2048, 17, 0.07);
        let mut sketch = TensorSketch::sized_for_pairs(2048).unwrap();
        sketch.push_pairs(&rows);
        let cumulative = sketch
            .thresholded(ThresholdRule::Hard)
            .unwrap()
            .cumulative(129, 129);
        assert!(cumulative.total_mass() > 0.5);
        let rects = [
            ((0.1, 0.4), (0.2, 0.5)),
            ((0.0, 1.0), (0.0, 1.0)),
            ((0.33, 0.34), (0.9, 0.99)),
        ];
        for (xr, yr) in rects {
            assert!(cumulative.range_mass(xr, yr) >= 0.0);
        }
        // Abutting rectangles add exactly.
        let whole = cumulative.range_mass((0.1, 0.7), (0.2, 0.6));
        let left = cumulative.range_mass((0.1, 0.45), (0.2, 0.6));
        let right = cumulative.range_mass((0.45, 0.7), (0.2, 0.6));
        assert!((whole - (left + right)).abs() <= 1e-9);
        let bottom = cumulative.range_mass((0.1, 0.7), (0.2, 0.37));
        let top = cumulative.range_mass((0.1, 0.7), (0.37, 0.6));
        assert!((whole - (bottom + top)).abs() <= 1e-9);
        // Reversed and NaN ranges answer zero.
        assert_eq!(cumulative.range_mass((0.5, 0.2), (0.1, 0.9)), 0.0);
        assert_eq!(cumulative.range_mass((f64::NAN, 0.2), (0.1, 0.9)), 0.0);
    }

    #[test]
    fn empty_sketches_cannot_estimate_and_frames_without_mass_decode() {
        let sketch = small_2d();
        assert!(matches!(
            sketch.thresholded(ThresholdRule::Hard),
            Err(EstimatorError::EmptySample)
        ));
        let restored = TensorSketch::from_bytes(&sketch.to_bytes()).unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn malformed_frames_are_rejected() {
        // A tiny Haar frame keeps the exhaustive truncation sweep cheap
        // (every prefix past the header pays a basis construction).
        let rows = pairs(64, 31, 0.1);
        let mut sketch =
            TensorSketch::new_2d(WaveletFamily::Haar, (0.0, 1.0), (0.0, 1.0), 0, 1, 2).unwrap();
        sketch.push_pairs(&rows);
        let bytes = sketch.to_bytes();
        // Truncations at every prefix length must error, never panic.
        for len in 0..bytes.len() {
            assert!(
                TensorSketch::from_bytes(&bytes[..len]).is_err(),
                "prefix {len}"
            );
        }
        // Trailing garbage is rejected.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(TensorSketch::from_bytes(&padded).is_err());
        // A 1-D v2 frame is not a tensor frame, and a v4 frame is not a
        // 1-D frame.
        let mut one_d = CoefficientSketch::sized_for(256).unwrap();
        one_d.push_batch(&[0.5; 64]);
        assert!(TensorSketch::from_bytes(&one_d.to_bytes()).is_err());
        assert!(CoefficientSketch::from_bytes(&bytes).is_err());
        // Single-bit flips in the header region must never panic.
        for bit in 0..(bytes.len().min(80) * 8) {
            let mut corrupted = bytes.clone();
            corrupted[bit / 8] ^= 1 << (bit % 8);
            let _ = TensorSketch::from_bytes(&corrupted);
        }
    }

    #[test]
    fn clear_resets_in_place() {
        let rows = pairs(300, 2, 0.1);
        let mut sketch = small_2d();
        sketch.push_pairs(&rows);
        sketch.clear();
        assert!(sketch.is_empty());
        assert!(sketch.levels.iter().all(TensorLevel::is_zero));
        sketch.push_pairs(&rows);
        let mut fresh = small_2d();
        fresh.push_pairs(&rows);
        for (a, b) in sketch.levels.iter().zip(&fresh.levels) {
            for (x, y) in a.sums.iter().zip(&b.sums) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(
            TensorSketch::new_2d(WaveletFamily::Symmlet(8), (1.0, 0.0), (0.0, 1.0), 1, 3, 4)
                .is_err()
        );
        assert!(
            TensorSketch::new_2d(WaveletFamily::Symmlet(8), (0.0, 1.0), (0.0, 1.0), 3, 1, 4)
                .is_err()
        );
        assert!(
            TensorSketch::new_2d(WaveletFamily::Symmlet(8), (0.0, 1.0), (0.0, 1.0), -1, 3, 4)
                .is_err()
        );
        // Slot-cap guard: an absurd level range is refused at
        // construction.
        assert!(
            TensorSketch::new_2d(WaveletFamily::Symmlet(8), (0.0, 1.0), (0.0, 1.0), 1, 14, 28)
                .is_err()
        );
    }
}
