//! Evaluation grids and numerical integration helpers shared by the
//! estimators and the risk metrics.

/// A uniform grid of points on a closed interval, used to evaluate density
//  estimates and compute integrated risks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grid {
    lo: f64,
    hi: f64,
    points: usize,
}

impl Grid {
    /// Creates a grid of `points ≥ 2` equally spaced points on `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo ≥ hi` or `points < 2`.
    pub fn new(lo: f64, hi: f64, points: usize) -> Self {
        assert!(lo < hi, "grid interval must be nondegenerate ({lo}, {hi})");
        assert!(points >= 2, "grid needs at least two points");
        Self { lo, hi, points }
    }

    /// The default grid used by the experiments: 512 points on `[0, 1]`.
    pub fn unit_interval() -> Self {
        Self::new(0.0, 1.0, 512)
    }

    /// Left endpoint.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Right endpoint.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.points
    }

    /// Grids always have at least two points.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Spacing between consecutive points.
    pub fn step(&self) -> f64 {
        (self.hi - self.lo) / (self.points - 1) as f64
    }

    /// The `i`-th grid point.
    pub fn point(&self, i: usize) -> f64 {
        self.lo + self.step() * i as f64
    }

    /// Iterator over all grid points.
    pub fn points(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.points).map(move |i| self.point(i))
    }

    /// Evaluates a function on the grid.
    pub fn evaluate<F: FnMut(f64) -> f64>(&self, mut f: F) -> Vec<f64> {
        self.points().map(&mut f).collect()
    }

    /// Trapezoidal integral of values sampled on this grid.
    pub fn integrate(&self, values: &[f64]) -> f64 {
        assert_eq!(values.len(), self.points, "values must match the grid");
        trapezoid(values, self.step())
    }

    /// Trapezoidal integral of `|f - g|^p` for values sampled on this grid.
    pub fn integrate_abs_power(&self, f: &[f64], g: &[f64], p: f64) -> f64 {
        assert_eq!(f.len(), self.points);
        assert_eq!(g.len(), self.points);
        let diffs: Vec<f64> = f
            .iter()
            .zip(g.iter())
            .map(|(a, b)| (a - b).abs().powf(p))
            .collect();
        trapezoid(&diffs, self.step())
    }
}

/// Trapezoidal rule for uniformly spaced samples.
pub fn trapezoid(values: &[f64], step: f64) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let interior: f64 = values[1..values.len() - 1].iter().sum();
    step * (0.5 * values[0] + interior + 0.5 * values[values.len() - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_points_cover_the_interval() {
        let g = Grid::new(0.0, 1.0, 11);
        assert_eq!(g.len(), 11);
        assert!((g.step() - 0.1).abs() < 1e-15);
        assert_eq!(g.point(0), 0.0);
        assert!((g.point(10) - 1.0).abs() < 1e-15);
        let pts: Vec<f64> = g.points().collect();
        assert_eq!(pts.len(), 11);
    }

    #[test]
    fn integration_of_constant_and_linear_functions_is_exact() {
        let g = Grid::new(0.0, 2.0, 101);
        let ones = g.evaluate(|_| 1.0);
        assert!((g.integrate(&ones) - 2.0).abs() < 1e-12);
        let linear = g.evaluate(|x| x);
        assert!((g.integrate(&linear) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn integration_of_smooth_function_is_accurate() {
        let g = Grid::new(0.0, std::f64::consts::PI, 2001);
        let sin = g.evaluate(f64::sin);
        assert!((g.integrate(&sin) - 2.0).abs() < 1e-5);
    }

    #[test]
    fn lp_integrand_helper_matches_manual_computation() {
        let g = Grid::new(0.0, 1.0, 3);
        let f = vec![0.0, 1.0, 2.0];
        let zero = vec![0.0, 0.0, 0.0];
        // ∫ |f|² with trapezoid on {0, 0.5, 1}: 0.5·(0/2 + 1 + 4/2) = 1.5.
        assert!((g.integrate_abs_power(&f, &zero, 2.0) - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "grid interval must be nondegenerate")]
    fn degenerate_interval_panics() {
        let _ = Grid::new(1.0, 1.0, 10);
    }

    #[test]
    #[should_panic(expected = "values must match the grid")]
    fn mismatched_values_panic() {
        let g = Grid::new(0.0, 1.0, 4);
        let _ = g.integrate(&[1.0, 2.0]);
    }
}
