//! The cross-validation procedures of Section 5.1 (HTCV and STCV).
//!
//! Because the constant `K` in the theoretical threshold `λ_j = K √(j/n)`
//! depends on the unknown dependence constants of assumption (D), the paper
//! chooses per-level thresholds by minimising the criteria
//!
//! ```text
//! HTCV:  CV_j(λ) = Σ_k 1{|β̂_{j,k}| ≥ λ} [ β̂²_{j,k} − 2/(n(n−1)) Σ_{i≠h} ψ_{j,k}(X_i)ψ_{j,k}(X_h) ],
//! STCV:  CV_j(λ) = Σ_k 1{|β̂_{j,k}| ≥ λ} [ …same…  + λ² ],
//! ```
//!
//! over `λ ≥ 0`, independently for every level `j0 ≤ j ≤ j* = log₂ n`. The
//! data-driven highest resolution `ĵ1` is the smallest level from which the
//! optimal criterion is identically zero (i.e. the empty active set is
//! optimal) up to `j*`.
//!
//! Both criteria are piecewise functions of `λ` whose active set only
//! changes at the observed magnitudes `|β̂_{j,k}|`, so it suffices to scan
//! the observed magnitudes (plus the empty set), which this module does in
//! `O(K log K)` per level.
//!
//! ## Reproduction note (documented in DESIGN.md / EXPERIMENTS.md)
//!
//! Taken literally, the HTCV criterion (no `λ²` term) systematically
//! under-thresholds: for a pure-noise level the realised contribution of a
//! coefficient is `≈ (2Σψ² − (Σψ)²)/n²`, which is negative for roughly the
//! 16 % largest-magnitude coefficients, so the per-level argmin keeps a
//! sizeable fraction of pure noise at every level, the data-driven `ĵ1`
//! equals `j* + 1` and the MISE blows up by an order of magnitude — in
//! clear contradiction with the paper's Table 1/2 and Figures 3/4 (hard
//! thresholds ≈ soft thresholds at fine levels, almost everything killed,
//! `ĵ1 ≈ 5`). The paper's *reported* behaviour is exactly what the
//! `λ²`-penalised criterion produces, so by default this crate uses the
//! penalised selection for **both** nonlinearities
//! ([`CvCriterion::Penalized`]) and keeps the literal unpenalised HT
//! criterion available as [`CvCriterion::Unpenalized`] for the ablation
//! benchmark.

use crate::coefficients::{EmpiricalCoefficients, LevelCoefficients};
use crate::threshold::{ThresholdProfile, ThresholdRule};

/// Tolerance used to decide that a criterion value "is zero" when locating
/// `ĵ1` and to break ties towards sparser solutions.
const CRITERION_TOLERANCE: f64 = 1e-12;

/// Which penalisation the per-level selection criterion uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CvCriterion {
    /// The literal HTCV criterion of the paper (no `λ²` term). Kept for the
    /// ablation study; it under-thresholds at fine resolution levels (see
    /// the module documentation).
    Unpenalized,
    /// The STCV criterion (adds `#kept · λ²`). The default for both
    /// thresholding rules because it reproduces the behaviour the paper
    /// reports.
    Penalized,
}

impl CvCriterion {
    /// The criterion used by default for a given thresholding rule
    /// (currently [`CvCriterion::Penalized`] for both; see the module
    /// documentation).
    pub fn recommended_for(_rule: ThresholdRule) -> Self {
        CvCriterion::Penalized
    }
}

/// Outcome of cross-validation at a single resolution level.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelCrossValidation {
    /// The resolution level `j`.
    pub level: i32,
    /// The selected threshold `λ̂_j`.
    pub lambda: f64,
    /// The minimised criterion value `CV_j(λ̂_j)`.
    pub criterion: f64,
    /// Number of coefficients surviving the threshold (`|β̂| ≥ λ̂_j`).
    pub kept: usize,
    /// Total number of coefficients at the level.
    pub total: usize,
}

impl LevelCrossValidation {
    /// Fraction of coefficients killed by the selected threshold (what
    /// Figure 4 of the paper plots).
    pub fn thresholded_fraction(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        1.0 - self.kept as f64 / self.total as f64
    }
}

/// Result of the full cross-validation sweep over levels `j0..=j*`.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossValidationResult {
    /// Which thresholding nonlinearity the criterion corresponds to.
    pub rule: ThresholdRule,
    /// Per-level selections, ordered from `j0` upwards.
    pub levels: Vec<LevelCrossValidation>,
    /// The data-driven highest resolution level `ĵ1`: the smallest level
    /// such that the optimal criterion is (numerically) zero at every level
    /// from `ĵ1` up to `j*`. Always at least `j0`.
    pub j1: i32,
}

impl CrossValidationResult {
    /// The per-level thresholds as a [`ThresholdProfile`].
    pub fn thresholds(&self) -> ThresholdProfile {
        ThresholdProfile {
            j0: self.levels.first().map(|l| l.level).unwrap_or(0),
            levels: self.levels.iter().map(|l| l.lambda).collect(),
        }
    }

    /// Selection for a specific level, if it was cross-validated.
    pub fn level(&self, j: i32) -> Option<&LevelCrossValidation> {
        self.levels.iter().find(|l| l.level == j)
    }
}

/// Runs the cross-validation of Section 5.1 on precomputed empirical
/// coefficients with the recommended criterion for `rule`.
pub fn cross_validate(
    coefficients: &EmpiricalCoefficients,
    rule: ThresholdRule,
) -> CrossValidationResult {
    cross_validate_with(coefficients, rule, CvCriterion::recommended_for(rule))
}

/// Runs cross-validation with an explicit criterion choice.
pub fn cross_validate_with(
    coefficients: &EmpiricalCoefficients,
    rule: ThresholdRule,
    criterion: CvCriterion,
) -> CrossValidationResult {
    let n = coefficients.sample_size();
    let levels: Vec<LevelCrossValidation> = coefficients
        .details()
        .iter()
        .map(|level| cross_validate_level(level, n, criterion))
        .collect();
    assemble_result(coefficients.coarse_level(), rule, levels)
}

/// ĵ1 (the smallest level from which every criterion is ≈ 0 up to `j*`)
/// plus the packaged per-level selections.
fn assemble_result(
    j0: i32,
    rule: ThresholdRule,
    levels: Vec<LevelCrossValidation>,
) -> CrossValidationResult {
    let mut j1 = j0;
    for lvl in &levels {
        if lvl.criterion < -CRITERION_TOLERANCE {
            j1 = lvl.level + 1;
        }
    }
    CrossValidationResult { rule, levels, j1 }
}

/// Reusable per-level state for the delta-aware cross-validation entry
/// point [`cross_validate_cached`].
///
/// The cache keeps, per detail level, the mutation stamp it reflects, the
/// magnitude-sorted candidate order and the selected
/// [`LevelCrossValidation`]. On the next refresh:
///
/// * a level whose stamp **and** sample size are unchanged returns its
///   cached selection without rescanning;
/// * a dirty level re-sorts *starting from the previous order* — a small
///   ingest batch perturbs at most `batch × (2N−1)` magnitudes per level,
///   so the stable adaptive sort runs in near-linear time instead of the
///   full `O(K log K)`, and the order/result buffers are recycled instead
///   of reallocated.
///
/// The cached path is bitwise identical to [`cross_validate`]: both rank
/// candidates by descending magnitude with ascending index as the tie
/// break and accumulate the criterion prefix in that exact order.
#[derive(Debug, Clone, Default)]
pub struct CvCache {
    rule: Option<(ThresholdRule, CvCriterion)>,
    /// The sketch lineage the per-level results belong to; results cached
    /// under a different lineage are discarded, so one cache can never
    /// alias two sketches that happen to share version numbers.
    lineage: u64,
    sample_size: usize,
    levels: Vec<LevelCvCache>,
    /// Scratch for [`repair_order`]'s still-sorted chain (recycled across
    /// levels and refreshes).
    chain: Vec<u32>,
    /// Scratch for [`repair_order`]'s displaced minority.
    displaced: Vec<u32>,
}

/// One detail level's cached cross-validation state.
#[derive(Debug, Clone)]
struct LevelCvCache {
    version: u64,
    order: Vec<u32>,
    result: LevelCrossValidation,
}

impl CvCache {
    /// Creates an empty cache (every level recomputed on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all cached per-level state (the next refresh recomputes
    /// everything from scratch).
    pub fn clear(&mut self) {
        self.rule = None;
        self.lineage = 0;
        self.sample_size = 0;
        self.levels.clear();
    }

    /// Number of levels currently cached.
    pub fn cached_levels(&self) -> usize {
        self.levels.len()
    }
}

/// The delta-aware variant of [`cross_validate`]: reuses the per-level
/// statistics in `cache` for levels whose mutation stamp is unchanged and
/// re-sorts dirty levels starting from their previous candidate order.
///
/// `lineage` identifies the sketch *instance* the stamps belong to (see
/// [`crate::sketch::CoefficientSketch`]; `0` means "unknown" and disables
/// result reuse while still recycling the order buffers). `versions[i]`
/// is the caller's dirty stamp for `coefficients.details()[i]` (see
/// [`crate::sketch::CoefficientSketch::detail_versions`]); a stamp of `0`
/// means "unversioned" and always recomputes. The result is bitwise
/// identical to `cross_validate(coefficients, rule)` for any cache state
/// — cached per-level selections are only replayed when lineage, stamp
/// and sample size all match, and a lineage never repeats a stamp with
/// different contents.
pub fn cross_validate_cached(
    coefficients: &EmpiricalCoefficients,
    rule: ThresholdRule,
    lineage: u64,
    versions: &[u64],
    cache: &mut CvCache,
) -> CrossValidationResult {
    let criterion = CvCriterion::recommended_for(rule);
    let n = coefficients.sample_size();
    let details = coefficients.details();
    if cache.rule != Some((rule, criterion))
        || cache.lineage != lineage
        || cache.levels.len() != details.len()
    {
        cache.levels.clear();
        cache.rule = Some((rule, criterion));
        cache.lineage = lineage;
    }
    let same_n = cache.sample_size == n;

    let mut levels = Vec::with_capacity(details.len());
    for (i, level) in details.iter().enumerate() {
        let version = versions.get(i).copied().unwrap_or(0);
        match cache.levels.get_mut(i) {
            Some(entry)
                if lineage != 0
                    && version != 0
                    && entry.version == version
                    && same_n
                    && entry.result.level == level.level
                    && entry.result.total == level.len() =>
            {
                levels.push(entry.result.clone());
            }
            Some(entry) => {
                repair_order(
                    level,
                    &mut entry.order,
                    &mut cache.chain,
                    &mut cache.displaced,
                );
                entry.version = version;
                entry.result = scan_level(level, n, criterion, &entry.order);
                levels.push(entry.result.clone());
            }
            None => {
                let order = sorted_order(level, Vec::new());
                let result = scan_level(level, n, criterion, &order);
                cache.levels.push(LevelCvCache {
                    version,
                    order,
                    result: result.clone(),
                });
                levels.push(result);
            }
        }
    }
    cache.sample_size = n;
    assemble_result(coefficients.coarse_level(), rule, levels)
}

/// Cross-validates one level.
pub fn cross_validate_level(
    level: &LevelCoefficients,
    n: usize,
    criterion: CvCriterion,
) -> LevelCrossValidation {
    let order = sorted_order(level, Vec::new());
    scan_level(level, n, criterion, &order)
}

/// Sorts (or re-sorts) `order` by decreasing coefficient magnitude with
/// ascending index as the tie break, recycling the vector's allocation.
fn sorted_order(level: &LevelCoefficients, mut order: Vec<u32>) -> Vec<u32> {
    if order.len() != level.len() {
        order.clear();
        order.extend(0..level.len() as u32);
    }
    order.sort_by(|&a, &b| compare_rank(level, a, b));
    order
}

/// The total order the candidate scan requires: decreasing magnitude,
/// ties broken by ascending index (indices are unique, so the order is
/// strict — both the full sort and the incremental repair produce the
/// exact same permutation).
fn compare_rank(level: &LevelCoefficients, a: u32, b: u32) -> std::cmp::Ordering {
    level.values[b as usize]
        .abs()
        .total_cmp(&level.values[a as usize].abs())
        .then_with(|| a.cmp(&b))
}

/// Repairs a previously sorted `order` after a sparse magnitude update in
/// `O(K + d log d)` (`d` displaced entries) instead of a full
/// `O(K log K)` sort: one greedy pass splits the stale order into a
/// still-sorted chain and the displaced rest, the displaced minority is
/// sorted, and the two sequences merge. A small ingest batch moves at most
/// `batch × (2N−1)` magnitudes per level, so `d ≪ K` on the refresh path.
/// Falls back to a plain sort when the perturbation is too large for the
/// repair to win (or the length changed).
fn repair_order(
    level: &LevelCoefficients,
    order: &mut Vec<u32>,
    chain: &mut Vec<u32>,
    displaced: &mut Vec<u32>,
) {
    if order.len() != level.len() {
        *order = sorted_order(level, std::mem::take(order));
        return;
    }
    chain.clear();
    displaced.clear();
    for &index in order.iter() {
        match chain.last() {
            Some(&last) if compare_rank(level, last, index) == std::cmp::Ordering::Greater => {
                displaced.push(index)
            }
            _ => chain.push(index),
        }
    }
    if displaced.is_empty() {
        return;
    }
    // A pathological perturbation (e.g. the chain's head shrinking below
    // everything) degrades the greedy split; the plain sort is cheaper
    // then.
    if displaced.len() * 4 > order.len() {
        *order = sorted_order(level, std::mem::take(order));
        return;
    }
    displaced.sort_by(|&a, &b| compare_rank(level, a, b));
    // Merge the two rank-sorted sequences back into `order`.
    order.clear();
    let (mut i, mut j) = (0, 0);
    while i < chain.len() && j < displaced.len() {
        if compare_rank(level, chain[i], displaced[j]) != std::cmp::Ordering::Greater {
            order.push(chain[i]);
            i += 1;
        } else {
            order.push(displaced[j]);
            j += 1;
        }
    }
    order.extend_from_slice(&chain[i..]);
    order.extend_from_slice(&displaced[j..]);
}

/// Scans the candidate thresholds of one level in the (descending
/// magnitude) `order` and returns the minimising selection.
///
/// The per-coefficient contribution is
/// `c_k = β̂² − 2/(n(n−1)) [ (n β̂)² − Σ_i ψ(X_i)² ]`, accumulated in scan
/// order, so the full and cached cross-validation paths produce bitwise
/// identical results as long as they agree on `order`.
fn scan_level(
    level: &LevelCoefficients,
    n: usize,
    criterion: CvCriterion,
    order: &[u32],
) -> LevelCrossValidation {
    let total = level.len();
    debug_assert_eq!(order.len(), total);
    let n_f = n as f64;
    let cross_scale = 2.0 / (n_f * (n_f - 1.0));
    let contribution = |idx: usize| {
        let beta = level.values[idx];
        let sum_sq = level.sum_squares[idx];
        let total_sum = n_f * beta;
        beta * beta - cross_scale * (total_sum * total_sum - sum_sq)
    };

    // The empty active set (λ above every |β̂|) always attains criterion 0.
    let max_abs = level.max_abs();
    let empty_lambda = if max_abs > 0.0 {
        max_abs * (1.0 + 1e-12) + f64::MIN_POSITIVE
    } else {
        0.0
    };
    let mut best_lambda = empty_lambda;
    let mut best_criterion = 0.0_f64;
    let mut best_kept = 0usize;

    let mut prefix = 0.0_f64;
    let mut m = 0usize;
    while m < total {
        let lambda = level.values[order[m] as usize].abs();
        // Absorb the whole tie group so the active set is well defined.
        // Ties are bitwise (consistent with the `total_cmp` sort order):
        // `==` would never match a NaN magnitude against itself, leaving
        // `end == m` and this scan spinning forever on a poisoned
        // coefficient.
        let mut end = m;
        while end < total && level.values[order[end] as usize].abs().to_bits() == lambda.to_bits() {
            prefix += contribution(order[end] as usize);
            end += 1;
        }
        let kept = end;
        let criterion = match criterion {
            CvCriterion::Unpenalized => prefix,
            CvCriterion::Penalized => prefix + kept as f64 * lambda * lambda,
        };
        // Strict improvement required: ties resolve towards the larger λ
        // (sparser estimate), which is the first one encountered since we
        // scan magnitudes in decreasing order... larger λ comes first, so
        // require strict improvement to keep it.
        if criterion < best_criterion - CRITERION_TOLERANCE {
            best_criterion = criterion;
            best_lambda = lambda;
            best_kept = kept;
        }
        m = end;
    }

    LevelCrossValidation {
        level: level.level,
        lambda: best_lambda,
        criterion: best_criterion,
        kept: best_kept,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coefficients::{EmpiricalCoefficients, Generator};
    use rand::Rng;
    use std::sync::Arc;
    use wavedens_processes::seeded_rng;
    use wavedens_wavelets::{WaveletBasis, WaveletFamily};

    fn synthetic_level(values: Vec<f64>, sum_squares: Vec<f64>, level: i32) -> LevelCoefficients {
        LevelCoefficients {
            level,
            generator: Generator::Wavelet,
            k_start: 0,
            values,
            sum_squares: Arc::new(sum_squares),
        }
    }

    /// Brute-force evaluation of the CV criterion for a given λ.
    fn criterion_at(
        level: &LevelCoefficients,
        n: usize,
        criterion: CvCriterion,
        lambda: f64,
    ) -> f64 {
        let n_f = n as f64;
        level
            .values
            .iter()
            .zip(level.sum_squares.iter())
            .filter(|(b, _)| b.abs() >= lambda)
            .map(|(&b, &s2)| {
                let c = b * b - 2.0 / (n_f * (n_f - 1.0)) * ((n_f * b).powi(2) - s2);
                match criterion {
                    CvCriterion::Unpenalized => c,
                    CvCriterion::Penalized => c + lambda * lambda,
                }
            })
            .sum()
    }

    #[test]
    fn selected_lambda_minimises_the_criterion_over_the_candidate_set() {
        let mut rng = seeded_rng(3);
        let n = 200;
        // Random synthetic coefficients with plausible sums of squares.
        let values: Vec<f64> = (0..40).map(|_| rng.gen_range(-0.2..0.2)).collect();
        let sum_squares: Vec<f64> = values
            .iter()
            .map(|v| (n as f64) * (v * v) + rng.gen_range(0.0..5.0))
            .collect();
        let level = synthetic_level(values.clone(), sum_squares, 4);
        for criterion in [CvCriterion::Unpenalized, CvCriterion::Penalized] {
            let selected = cross_validate_level(&level, n, criterion);
            // The candidate set is the observed magnitudes plus "above the
            // maximum" (empty active set, criterion 0).
            let best_candidate = values
                .iter()
                .map(|v| criterion_at(&level, n, criterion, v.abs()))
                .fold(0.0_f64, f64::min);
            assert!(
                selected.criterion <= best_candidate + 1e-12,
                "{criterion:?}: selected {} vs candidate best {best_candidate}",
                selected.criterion
            );
            // And the reported criterion matches a direct evaluation at λ̂.
            let direct = criterion_at(&level, n, criterion, selected.lambda);
            assert!((selected.criterion - direct).abs() < 1e-9);
            // For the unpenalised criterion (piecewise constant in λ) the
            // candidate scan is a true global minimum over all λ ≥ 0.
            if criterion == CvCriterion::Unpenalized {
                let best_grid = (0..=400)
                    .map(|i| criterion_at(&level, n, criterion, 0.25 * i as f64 / 400.0))
                    .fold(f64::INFINITY, f64::min)
                    .min(0.0);
                assert!(selected.criterion <= best_grid + 1e-12);
            }
        }
    }

    #[test]
    fn threshold_order_is_total_and_pinned_under_nan() {
        // `compare_rank` must be a total order even when coefficients are
        // NaN (a single poisoned update must not panic the sort or make
        // it nondeterministic). Under IEEE 754 totalOrder, |NaN| ranks
        // above +∞, so the pinned decreasing-magnitude permutation is:
        // NaN(1), ∞(5), -1.0(2), then the 0.5 tie broken by index (0, 3),
        // then 0.0(4).
        let values = vec![0.5, f64::NAN, -1.0, 0.5, 0.0, f64::INFINITY];
        let sum_squares = vec![1.0; 6];
        let level = synthetic_level(values, sum_squares, 4);
        assert_eq!(sorted_order(&level, Vec::new()), vec![1, 5, 2, 0, 3, 4]);

        // The candidate scan survives the NaN and stays deterministic.
        let first = cross_validate_level(&level, 100, CvCriterion::Unpenalized);
        let second = cross_validate_level(&level, 100, CvCriterion::Unpenalized);
        assert_eq!(first.kept, second.kept);
        assert_eq!(first.lambda.to_bits(), second.lambda.to_bits());

        // Dropping the NaN must not reshuffle the finite coefficients'
        // relative order.
        let finite = synthetic_level(vec![0.5, -1.0, 0.5, 0.0, f64::INFINITY], vec![1.0; 5], 4);
        assert_eq!(sorted_order(&finite, Vec::new()), vec![4, 1, 0, 2, 3]);
    }

    #[test]
    fn positive_contributions_lead_to_empty_selection() {
        // c_k = β̂² − 2((nβ̂)² − S2)/(n(n−1)). A large Σψ² (S2) makes c_k
        // positive, so the optimal active set is empty: criterion 0,
        // everything thresholded.
        let values = vec![0.01, -0.02, 0.005, 0.015];
        let n = 100;
        let level = synthetic_level(values, vec![1000.0; 4], 5);
        let sel = cross_validate_level(&level, n, CvCriterion::Unpenalized);
        assert_eq!(sel.kept, 0);
        assert_eq!(sel.criterion, 0.0);
        assert!(sel.lambda > 0.02, "λ̂ must exceed the largest |β̂|");
        assert!((sel.thresholded_fraction() - 1.0).abs() < 1e-15);
        // The opposite extreme: S2 = 0 makes every contribution ≈ −β̂² < 0,
        // so keeping everything is optimal.
        let level = synthetic_level(vec![0.01, -0.02, 0.005, 0.015], vec![0.0; 4], 5);
        let sel = cross_validate_level(&level, 100, CvCriterion::Unpenalized);
        assert_eq!(sel.kept, 4, "negative contributions keep everything");
        assert!(sel.criterion < 0.0);
    }

    #[test]
    fn large_true_coefficients_survive_cross_validation() {
        // A coefficient with a genuinely large mean survives: its
        // contribution β² − 2(…)/… is dominated by −β² (since the cross term
        // ≈ 2β²), i.e. negative, so keeping it lowers the criterion.
        let n = 500;
        let beta = 0.5;
        let sum_sq = n as f64 * beta * beta; // consistent with ψ(X_i) ≈ β
        let level = synthetic_level(vec![beta, 0.001], vec![sum_sq, 0.3], 3);
        for criterion in [CvCriterion::Unpenalized, CvCriterion::Penalized] {
            let sel = cross_validate_level(&level, n, criterion);
            assert!(
                sel.kept >= 1,
                "{criterion:?}: the strong coefficient must be kept"
            );
            assert!(sel.lambda <= beta);
        }
    }

    #[test]
    fn penalized_criterion_is_never_below_unpenalized_criterion() {
        let mut rng = seeded_rng(11);
        let values: Vec<f64> = (0..30).map(|_| rng.gen_range(-0.3..0.3)).collect();
        let sum_squares: Vec<f64> = (0..30).map(|_| rng.gen_range(0.0..20.0)).collect();
        let level = synthetic_level(values, sum_squares, 6);
        let unpenalized = cross_validate_level(&level, 300, CvCriterion::Unpenalized);
        let penalized = cross_validate_level(&level, 300, CvCriterion::Penalized);
        // The penalised criterion dominates pointwise in λ, so its optimum
        // dominates too. (No such pointwise claim holds for `kept`: the
        // penalty #kept·λ² is not monotone along the magnitude scan, so the
        // penalised optimum may sit on either side of the unpenalised one.)
        assert!(penalized.criterion >= unpenalized.criterion - 1e-12);
    }

    #[test]
    fn penalty_kills_marginal_coefficients() {
        // A constructed level where the penalty is decisive. One strong
        // coefficient (β = 0.5, Σψ² consistent with a real signal) and two
        // marginal ones whose unpenalised contributions are slightly
        // negative: the unpenalised criterion keeps all three, while the
        // λ²-penalty makes the sparser cut strictly better.
        let n = 300;
        let level = synthetic_level(vec![0.5, 0.05, 0.049], vec![75.0, 90.5, 63.56], 4);
        let unpenalized = cross_validate_level(&level, n, CvCriterion::Unpenalized);
        let penalized = cross_validate_level(&level, n, CvCriterion::Penalized);
        assert_eq!(unpenalized.kept, 3, "marginal gains keep everything");
        assert_eq!(penalized.kept, 2, "the λ² penalty prunes the weakest");
        assert!(penalized.lambda > unpenalized.lambda);
        assert!(penalized.criterion >= unpenalized.criterion);
    }

    #[test]
    fn full_cross_validation_on_real_data_produces_sane_j1() {
        let basis = Arc::new(WaveletBasis::new(WaveletFamily::Symmlet(8)).unwrap());
        let mut rng = seeded_rng(7);
        let n = 512;
        let data: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let j_star = (n as f64).log2() as i32;
        let coeffs =
            EmpiricalCoefficients::compute(Arc::clone(&basis), &data, (0.0, 1.0), 1, j_star)
                .unwrap();
        for rule in [ThresholdRule::Hard, ThresholdRule::Soft] {
            let cv = cross_validate(&coeffs, rule);
            assert_eq!(cv.levels.len(), (j_star - 1 + 1) as usize);
            assert!(cv.j1 >= 1 && cv.j1 <= j_star + 1, "ĵ1 = {}", cv.j1);
            // Threshold profile exposes one λ per level.
            assert_eq!(cv.thresholds().levels.len(), cv.levels.len());
            assert!(cv.level(2).is_some());
            assert!(cv.level(99).is_none());
            // At the very finest level the (penalised) criterion kills
            // essentially everything on pure-noise data.
            let finest = cv.levels.last().unwrap();
            assert!(
                finest.thresholded_fraction() > 0.95,
                "{rule:?}: finest level keeps {}/{}",
                finest.kept,
                finest.total
            );
        }
    }

    #[test]
    fn cached_cross_validation_is_bitwise_identical_to_full() {
        let basis = Arc::new(WaveletBasis::new(WaveletFamily::Symmlet(8)).unwrap());
        let mut rng = seeded_rng(29);
        let mut data: Vec<f64> = (0..400).map(|_| rng.gen::<f64>()).collect();
        let mut cache = CvCache::new();
        // A sequence of growing samples emulating small-batch refreshes:
        // every round re-runs the cached path against the full path.
        for round in 0..4_u64 {
            let coeffs =
                EmpiricalCoefficients::compute(Arc::clone(&basis), &data, (0.0, 1.0), 1, 7)
                    .unwrap();
            let versions = vec![round + 1; coeffs.details().len()];
            for rule in [ThresholdRule::Hard, ThresholdRule::Soft] {
                let full = cross_validate(&coeffs, rule);
                let cached = cross_validate_cached(&coeffs, rule, 1, &versions, &mut cache);
                assert_eq!(cached, full, "round {round}, {rule:?}");
                // Same stamps + same sample size: the cache answers from
                // its stored per-level results, still identically.
                let hit = cross_validate_cached(&coeffs, rule, 1, &versions, &mut cache);
                assert_eq!(hit, full, "cache hit diverged in round {round}");
            }
            assert_eq!(cache.cached_levels(), coeffs.details().len());
            data.extend((0..16).map(|_| rng.gen::<f64>()));
        }
        // Version 0 means "unversioned": always recomputed, never reused.
        let coeffs =
            EmpiricalCoefficients::compute(Arc::clone(&basis), &data, (0.0, 1.0), 1, 7).unwrap();
        let unversioned = vec![0_u64; coeffs.details().len()];
        let full = cross_validate(&coeffs, ThresholdRule::Soft);
        let cached =
            cross_validate_cached(&coeffs, ThresholdRule::Soft, 1, &unversioned, &mut cache);
        assert_eq!(cached, full);
        cache.clear();
        assert_eq!(cache.cached_levels(), 0);
    }

    #[test]
    fn cached_cross_validation_survives_rule_and_shape_changes() {
        let basis = Arc::new(WaveletBasis::new(WaveletFamily::Symmlet(8)).unwrap());
        let mut rng = seeded_rng(31);
        let data: Vec<f64> = (0..300).map(|_| rng.gen::<f64>()).collect();
        let mut cache = CvCache::new();
        // Fill the cache with one shape/rule…
        let wide =
            EmpiricalCoefficients::compute(Arc::clone(&basis), &data, (0.0, 1.0), 1, 8).unwrap();
        let versions = vec![1_u64; wide.details().len()];
        cross_validate_cached(&wide, ThresholdRule::Soft, 1, &versions, &mut cache);
        // …then hit it with another rule and a truncated level range: the
        // cache must invalidate itself and still match the full path.
        let narrow =
            EmpiricalCoefficients::compute(Arc::clone(&basis), &data, (0.0, 1.0), 1, 5).unwrap();
        let versions = vec![1_u64; narrow.details().len()];
        let full = cross_validate(&narrow, ThresholdRule::Hard);
        let cached = cross_validate_cached(&narrow, ThresholdRule::Hard, 1, &versions, &mut cache);
        assert_eq!(cached, full);
    }

    #[test]
    fn thresholds_increase_with_resolution_on_smooth_data() {
        // Figure 3 of the paper: cross-validated thresholds grow with the
        // resolution level. On smooth (uniform) data all detail coefficients
        // are noise of comparable standard deviation, so the selected λ̂_j —
        // roughly the maximum |β̂_{j,k}| over the 2^j coefficients of the
        // level — increases with j.
        let basis = Arc::new(WaveletBasis::new(WaveletFamily::Symmlet(8)).unwrap());
        let mut rng = seeded_rng(19);
        let n = 1024;
        let data: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let coeffs =
            EmpiricalCoefficients::compute(Arc::clone(&basis), &data, (0.0, 1.0), 1, 9).unwrap();
        let cv = cross_validate(&coeffs, ThresholdRule::Soft);
        let lambdas: Vec<f64> = cv.levels.iter().map(|l| l.lambda).collect();
        let low_mean = lambdas[..3].iter().sum::<f64>() / 3.0;
        let high_mean = lambdas[lambdas.len() - 3..].iter().sum::<f64>() / 3.0;
        assert!(
            high_mean > low_mean,
            "thresholds should grow with resolution: low {low_mean}, high {high_mean}"
        );
    }
}
