//! The adaptive wavelet-thresholding density estimator (the paper's
//! estimator `f̂_n`), with theoretical, cross-validated, fixed and absent
//! threshold selection.
//!
//! ```text
//! f̂_n = Σ_k α̂_{j0,k} φ_{j0,k} + Σ_{j=j0}^{j1} Σ_k γ_{λ_j}(β̂_{j,k}) ψ_{j,k}
//! ```
//!
//! * `j0` — smallest integer larger than `log(n)/(1+N)` (Theorem 3.1);
//! * `j1` — for the theoretical rule, the largest integer smaller than
//!   `log₂(n · log(n)^{−2/b−3})` (clamped to `≥ j0`); for cross-validation
//!   the data-driven `ĵ1` of Section 5.1 with candidate levels up to
//!   `j* = log₂ n`;
//! * `λ_j` — `K √(j/n)` (theoretical), cross-validated, fixed, or zero.

use crate::coefficients::{EmpiricalCoefficients, LevelCoefficients};
use crate::cv::{cross_validate, CrossValidationResult};
use crate::error::EstimatorError;
use crate::grid::Grid;
use crate::threshold::{ThresholdProfile, ThresholdRule, ThresholdSelection};
use std::sync::Arc;
use wavedens_wavelets::{WaveletBasis, WaveletFamily};

/// The paper's default rule for the coarse level:
/// the smallest integer strictly larger than `ln(n) / (1 + N)`.
pub fn default_coarse_level(n: usize, vanishing_moments: usize) -> i32 {
    ((n as f64).ln() / (1.0 + vanishing_moments as f64)).floor() as i32 + 1
}

/// The candidate ceiling used by the cross-validation procedures:
/// `j* = ⌊log₂ n⌋`.
pub fn cv_max_level(n: usize) -> i32 {
    (n as f64).log2().floor() as i32
}

/// The theoretical highest resolution level of Theorem 3.1: the largest
/// integer smaller than `log₂(n · ln(n)^{−2/b−3})`, clamped to at least
/// `j0`. For moderate `n` the unclamped value can be very small (or even
/// negative): the restriction is an asymptotic device, which is why the
/// paper's simulations rely on cross-validation instead.
pub fn theoretical_max_level(n: usize, b: f64, j0: i32) -> i32 {
    let n_f = n as f64;
    let value = (n_f * n_f.ln().powf(-2.0 / b - 3.0)).log2().ceil() as i32 - 1;
    value.max(j0)
}

/// Configuration of a wavelet density estimator.
#[derive(Debug, Clone)]
pub struct WaveletDensityEstimator {
    family: WaveletFamily,
    rule: ThresholdRule,
    selection: ThresholdSelection,
    interval: (f64, f64),
    coarse_level: Option<i32>,
    max_level: Option<i32>,
    dependence_exponent: f64,
    basis: Option<Arc<WaveletBasis>>,
}

impl WaveletDensityEstimator {
    /// Creates an estimator on `[0, 1]` with the paper's defaults
    /// (Symmlet 8, the requested thresholding rule and selection scheme).
    pub fn new(rule: ThresholdRule, selection: ThresholdSelection) -> Self {
        Self {
            family: WaveletFamily::Symmlet(8),
            rule,
            selection,
            interval: (0.0, 1.0),
            coarse_level: None,
            max_level: None,
            dependence_exponent: 1.0,
            basis: None,
        }
    }

    /// The hard-thresholding cross-validated estimator `f̂ⁿ_HTCV`.
    pub fn htcv() -> Self {
        Self::new(ThresholdRule::Hard, ThresholdSelection::CrossValidation)
    }

    /// The soft-thresholding cross-validated estimator `f̂ⁿ_STCV`.
    pub fn stcv() -> Self {
        Self::new(ThresholdRule::Soft, ThresholdSelection::CrossValidation)
    }

    /// The linear (unthresholded) projection estimator at resolution
    /// `level`: kept as a baseline because it is provably not minimax.
    pub fn linear_projection(level: i32) -> Self {
        Self::new(ThresholdRule::Hard, ThresholdSelection::None)
            .with_levels(Some(level), Some(level))
    }

    /// Uses a different wavelet family (default: Symmlet 8, as in the
    /// paper).
    pub fn with_family(mut self, family: WaveletFamily) -> Self {
        self.family = family;
        self.basis = None;
        self
    }

    /// Estimates on a different compact interval (default `[0, 1]`).
    pub fn with_interval(mut self, lo: f64, hi: f64) -> Self {
        self.interval = (lo, hi);
        self
    }

    /// Overrides the coarse level `j0` and/or the highest detail level.
    pub fn with_levels(mut self, coarse: Option<i32>, max: Option<i32>) -> Self {
        self.coarse_level = coarse;
        self.max_level = max;
        self
    }

    /// Sets the dependence exponent `b` of assumption (D2) used by the
    /// theoretical `j1` rule (default 1, the expanding-map value).
    ///
    /// `b` must be strictly positive: [`fit`](Self::fit) rejects `b ≤ 0`
    /// (and non-finite values), which would otherwise drive the
    /// `ln(n)^{−2/b−3}` factor of [`theoretical_max_level`] through a
    /// NaN/∞ exponent.
    pub fn with_dependence_exponent(mut self, b: f64) -> Self {
        self.dependence_exponent = b;
        self
    }

    /// Reuses an existing wavelet basis (avoids re-tabulating `φ`/`ψ` when
    /// fitting many estimators, e.g. in Monte-Carlo loops).
    pub fn with_basis(mut self, basis: Arc<WaveletBasis>) -> Self {
        self.family = basis.family();
        self.basis = Some(basis);
        self
    }

    /// The thresholding rule of this estimator.
    pub fn rule(&self) -> ThresholdRule {
        self.rule
    }

    /// The threshold-selection scheme of this estimator.
    pub fn selection(&self) -> &ThresholdSelection {
        &self.selection
    }

    /// Fits the estimator to a sample.
    pub fn fit(&self, data: &[f64]) -> Result<WaveletDensityEstimate, EstimatorError> {
        if data.is_empty() {
            return Err(EstimatorError::EmptySample);
        }
        let (lo, hi) = self.interval;
        if lo >= hi || !lo.is_finite() || !hi.is_finite() {
            return Err(EstimatorError::InvalidInterval { lo, hi });
        }
        if self.dependence_exponent <= 0.0 || !self.dependence_exponent.is_finite() {
            return Err(EstimatorError::InvalidParameter {
                message: format!(
                    "dependence exponent b must be a positive finite number, got {}",
                    self.dependence_exponent
                ),
            });
        }
        let n = data.len();
        let basis = match &self.basis {
            Some(basis) => Arc::clone(basis),
            None => Arc::new(WaveletBasis::new(self.family)?),
        };
        let vanishing = basis.vanishing_moments();
        let j0 = self
            .coarse_level
            .unwrap_or_else(|| default_coarse_level(n, vanishing));
        if j0 < 0 {
            return Err(EstimatorError::InvalidLevels {
                message: format!("coarse level must be nonnegative, got {j0}"),
            });
        }
        let j_max_default = match self.selection {
            ThresholdSelection::CrossValidation => cv_max_level(n),
            ThresholdSelection::Theoretical { .. } => {
                theoretical_max_level(n, self.dependence_exponent, j0)
            }
            _ => cv_max_level(n),
        };
        let j_max = self.max_level.unwrap_or(j_max_default).max(j0);

        let coefficients =
            EmpiricalCoefficients::compute(Arc::clone(&basis), data, self.interval, j0, j_max)?;

        // Determine per-level thresholds (and for CV the data-driven ĵ1).
        let (profile, cv_result) = match &self.selection {
            ThresholdSelection::Theoretical { kappa } => {
                if !kappa.is_finite() || *kappa < 0.0 {
                    return Err(EstimatorError::InvalidParameter {
                        message: format!("threshold constant K must be nonnegative, got {kappa}"),
                    });
                }
                let levels = (j0..=j_max)
                    .map(|j| ThresholdSelection::theoretical_level(*kappa, j, n))
                    .collect();
                (ThresholdProfile { j0, levels }, None)
            }
            ThresholdSelection::CrossValidation => {
                let cv = cross_validate(&coefficients, self.rule);
                (cv.thresholds(), Some(cv))
            }
            ThresholdSelection::Fixed(levels) => {
                if levels.is_empty() {
                    return Err(EstimatorError::InvalidParameter {
                        message: "fixed threshold list must not be empty".to_string(),
                    });
                }
                let last = *levels.last().expect("nonempty");
                let expanded = (0..=(j_max - j0) as usize)
                    .map(|i| levels.get(i).copied().unwrap_or(last))
                    .collect();
                (
                    ThresholdProfile {
                        j0,
                        levels: expanded,
                    },
                    None,
                )
            }
            ThresholdSelection::None => (
                ThresholdProfile {
                    j0,
                    levels: vec![0.0; (j_max - j0 + 1) as usize],
                },
                None,
            ),
        };

        // Apply the threshold nonlinearity level by level.
        let details: Vec<ThresholdedLevel> = coefficients
            .details()
            .iter()
            .map(|level| {
                ThresholdedLevel::from_coefficients(level, self.rule, profile.level(level.level))
            })
            .collect();

        let j1 = cv_result
            .as_ref()
            .map(|cv| cv.j1)
            .unwrap_or(j_max)
            .clamp(j0, j_max + 1);

        Ok(WaveletDensityEstimate {
            basis,
            interval: self.interval,
            n,
            rule: self.rule,
            scaling: coefficients.scaling().clone(),
            details,
            thresholds: profile,
            j1,
            cv: cv_result,
        })
    }
}

/// One detail level after thresholding.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdedLevel {
    /// Resolution level `j`.
    pub level: i32,
    /// First translation index stored.
    pub k_start: i64,
    /// Thresholded coefficients `γ_{λ_j}(β̂_{j,k})`.
    pub coefficients: Vec<f64>,
    /// How many coefficients survived (are nonzero) after thresholding.
    pub surviving: usize,
}

impl ThresholdedLevel {
    /// Applies the threshold function `γ_λ` to every coefficient of a
    /// level.
    pub fn from_coefficients(level: &LevelCoefficients, rule: ThresholdRule, lambda: f64) -> Self {
        let coefficients: Vec<f64> = level
            .values
            .iter()
            .map(|&beta| rule.apply(beta, lambda))
            .collect();
        let surviving = coefficients.iter().filter(|c| **c != 0.0).count();
        Self {
            level: level.level,
            k_start: level.k_start,
            coefficients,
            surviving,
        }
    }
}

/// A fitted wavelet density estimate.
#[derive(Debug, Clone)]
pub struct WaveletDensityEstimate {
    basis: Arc<WaveletBasis>,
    interval: (f64, f64),
    n: usize,
    rule: ThresholdRule,
    scaling: LevelCoefficients,
    details: Vec<ThresholdedLevel>,
    thresholds: ThresholdProfile,
    j1: i32,
    cv: Option<CrossValidationResult>,
}

impl WaveletDensityEstimate {
    /// Assembles an estimate from precomputed parts (used by the streaming
    /// estimator). The caller is responsible for consistency between the
    /// parts.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        basis: Arc<WaveletBasis>,
        interval: (f64, f64),
        n: usize,
        rule: ThresholdRule,
        scaling: LevelCoefficients,
        details: Vec<ThresholdedLevel>,
        thresholds: ThresholdProfile,
        j1: i32,
        cv: Option<CrossValidationResult>,
    ) -> Self {
        Self {
            basis,
            interval,
            n,
            rule,
            scaling,
            details,
            thresholds,
            j1,
            cv,
        }
    }

    /// Evaluates the estimate at a point.
    pub fn evaluate(&self, x: f64) -> f64 {
        let mut total = level_sum(
            &self.basis,
            self.scaling.level,
            self.scaling.k_start,
            &self.scaling.values,
            x,
            true,
        );
        for level in &self.details {
            if level.surviving == 0 {
                continue;
            }
            total += level_sum(
                &self.basis,
                level.level,
                level.k_start,
                &level.coefficients,
                x,
                false,
            );
        }
        total
    }

    /// Evaluates the estimate on a grid, one [`evaluate`](Self::evaluate)
    /// call per point. Prefer [`evaluate_dense`](Self::evaluate_dense) for
    /// dense uniform grids — it is algebraically the same sum arranged per
    /// coefficient instead of per point, and much faster.
    pub fn evaluate_on(&self, grid: &Grid) -> Vec<f64> {
        grid.evaluate(|x| self.evaluate(x))
    }

    /// Evaluates the estimate on a uniform grid by looping **per surviving
    /// coefficient over its compact support** with a constant table
    /// stride, instead of re-deriving the active translation range and
    /// interpolating per point as [`evaluate`](Self::evaluate) does.
    ///
    /// For one coefficient at level `j`, the table argument
    /// `2^j x − k` advances by the constant `2^j · grid_step` between
    /// neighbouring grid points, so its whole support is swept with one
    /// strided pass ([`wavedens_wavelets::WaveletTable::accumulate_psi`]).
    /// Thresholded-to-zero coefficients are skipped entirely, which is
    /// where sparse cross-validated fits win big. The result agrees with
    /// [`evaluate_on`](Self::evaluate_on) up to floating-point rounding
    /// (≈ 1e-12).
    pub fn evaluate_dense(&self, grid: &Grid) -> Vec<f64> {
        let mut values = vec![0.0_f64; grid.len()];
        accumulate_dense(
            &self.basis,
            grid,
            self.scaling.level,
            self.scaling.k_start,
            &self.scaling.values,
            true,
            &mut values,
        );
        for level in &self.details {
            if level.surviving == 0 {
                continue;
            }
            accumulate_dense(
                &self.basis,
                grid,
                level.level,
                level.k_start,
                &level.coefficients,
                false,
                &mut values,
            );
        }
        values
    }

    /// Builds the cumulative (CDF) representation of this estimate on a
    /// dense grid of `points` points: `cdf(x)` / `range_mass(lo, hi)`
    /// queries then cost O(1) instead of an integration sweep.
    pub fn cumulative(&self, points: usize) -> crate::dense::CumulativeEstimate {
        crate::dense::CumulativeEstimate::from_estimate(self, points)
    }

    /// [`cumulative`](Self::cumulative) through a [`DenseEvalCache`]:
    /// bitwise-identical output, with the basis-function values on the
    /// (fixed) grid looked up from the cache instead of re-interpolated
    /// from the `φ`/`ψ` tables per refresh. This is the engine's
    /// incremental-refresh CDF path.
    pub fn cumulative_cached(
        &self,
        points: usize,
        cache: &mut DenseEvalCache,
    ) -> crate::dense::CumulativeEstimate {
        let (lo, hi) = self.interval;
        let grid = Grid::new(lo, hi, points.max(2));
        let density = self.evaluate_dense_cached(&grid, cache);
        crate::dense::CumulativeEstimate::from_density(grid, &density)
    }

    /// [`evaluate_dense`](Self::evaluate_dense) through a
    /// [`DenseEvalCache`]: the first evaluation of a coefficient on a
    /// given grid interpolates its basis function once and caches the
    /// per-point values; every later refresh reduces to one
    /// multiply-accumulate pass per surviving coefficient. Bitwise
    /// identical to the uncached sweep (the cached values are exactly the
    /// interpolated factors the uncached path multiplies by).
    pub fn evaluate_dense_cached(&self, grid: &Grid, cache: &mut DenseEvalCache) -> Vec<f64> {
        cache.validate(self.basis.family(), grid);
        let mut values = vec![0.0_f64; grid.len()];
        accumulate_dense_cached(
            &self.basis,
            grid,
            self.scaling.level,
            self.scaling.k_start,
            &self.scaling.values,
            true,
            &mut values,
            cache,
        );
        for level in &self.details {
            if level.surviving == 0 {
                continue;
            }
            accumulate_dense_cached(
                &self.basis,
                grid,
                level.level,
                level.k_start,
                &level.coefficients,
                false,
                &mut values,
                cache,
            );
        }
        values
    }

    /// Numerical integral of the estimate over the estimation interval
    /// (should be close to 1 when the data live inside the interval).
    /// Computed with the dense per-coefficient sweep of
    /// [`evaluate_dense`](Self::evaluate_dense).
    pub fn integral(&self) -> f64 {
        let grid = Grid::new(self.interval.0, self.interval.1, 2048);
        grid.integrate(&self.evaluate_dense(&grid))
    }

    /// Sample size the estimate was fitted on.
    pub fn sample_size(&self) -> usize {
        self.n
    }

    /// The estimation interval.
    pub fn interval(&self) -> (f64, f64) {
        self.interval
    }

    /// The thresholding rule used.
    pub fn rule(&self) -> ThresholdRule {
        self.rule
    }

    /// The coarse resolution level `j0`.
    pub fn coarse_level(&self) -> i32 {
        self.scaling.level
    }

    /// The highest detail level carried by the estimate (`ĵ1` for
    /// cross-validated fits, the configured/theoretical `j1` otherwise).
    pub fn highest_level(&self) -> i32 {
        self.j1
    }

    /// The per-level thresholds used.
    pub fn thresholds(&self) -> &ThresholdProfile {
        &self.thresholds
    }

    /// The full cross-validation result, when the estimator used CV.
    pub fn cross_validation(&self) -> Option<&CrossValidationResult> {
        self.cv.as_ref()
    }

    /// The (untouched) scaling coefficients `α̂_{j0,·}`.
    pub fn scaling_coefficients(&self) -> &LevelCoefficients {
        &self.scaling
    }

    /// The thresholded detail levels.
    pub fn detail_levels(&self) -> &[ThresholdedLevel] {
        &self.details
    }

    /// Total number of detail coefficients surviving thresholding.
    pub fn surviving_detail_coefficients(&self) -> usize {
        self.details.iter().map(|l| l.surviving).sum()
    }

    /// Fraction of detail coefficients set to zero by thresholding.
    pub fn sparsity(&self) -> f64 {
        let total: usize = self.details.iter().map(|l| l.coefficients.len()).sum();
        if total == 0 {
            return 0.0;
        }
        1.0 - self.surviving_detail_coefficients() as f64 / total as f64
    }
}

/// Sum `Σ_k c_k δ_{j,k}(x)` exploiting the compact support of `δ`.
fn level_sum(
    basis: &WaveletBasis,
    level: i32,
    k_start: i64,
    coefficients: &[f64],
    x: f64,
    scaling: bool,
) -> f64 {
    if coefficients.is_empty() {
        return 0.0;
    }
    let support = basis.support_length();
    let position = (level as f64).exp2() * x;
    let mut acc = 0.0;
    for k in
        crate::coefficients::active_translations(support, position, k_start, coefficients.len())
    {
        let coeff = coefficients[(k - k_start) as usize];
        if coeff == 0.0 {
            continue;
        }
        let value = if scaling {
            basis.phi_jk(level, k, x)
        } else {
            basis.psi_jk(level, k, x)
        };
        acc += coeff * value;
    }
    acc
}

/// The grid window `[first, last]` a coefficient's compact support covers
/// and the table argument `u0` at `first` — the geometry shared by the
/// uncached and cached dense sweeps, factored out so they cannot drift.
///
/// Support of `δ_{j,k}` in `x`: `[k / 2^j, (k + 2N−1) / 2^j]`; the table
/// argument `2^j x − k` then advances by `2^j · grid_step` per point.
pub(crate) fn coefficient_window(
    grid: &Grid,
    scale: f64,
    support: f64,
    k: i64,
    points: usize,
) -> Option<(usize, usize, f64)> {
    let step = grid.step();
    let lo = grid.lo();
    let x_lo = k as f64 / scale;
    let x_hi = (k as f64 + support) / scale;
    let first = (((x_lo - lo) / step).ceil().max(0.0)) as usize;
    let last_f = ((x_hi - lo) / step).floor();
    if last_f < 0.0 || first >= points {
        return None;
    }
    let last = (last_f as usize).min(points - 1);
    if first > last {
        return None;
    }
    let u0 = scale * (lo + step * first as f64) - k as f64;
    Some((first, last, u0))
}

/// Adds `Σ_k c_k δ_{j,k}(grid_i)` of one level to `out`, sweeping each
/// nonzero coefficient's support with a strided table pass.
fn accumulate_dense(
    basis: &WaveletBasis,
    grid: &Grid,
    level: i32,
    k_start: i64,
    coefficients: &[f64],
    scaling: bool,
    out: &mut [f64],
) {
    if coefficients.is_empty() {
        return;
    }
    let scale = (level as f64).exp2();
    let sqrt_scale = scale.sqrt();
    let support = basis.support_length();
    let stride = scale * grid.step();
    let table = basis.table();
    for (m, &coeff) in coefficients.iter().enumerate() {
        if coeff == 0.0 {
            continue;
        }
        let k = k_start + m as i64;
        let Some((first, last, u0)) = coefficient_window(grid, scale, support, k, out.len()) else {
            continue;
        };
        // δ_{j,k}(x) = 2^{j/2} δ(2^j x − k).
        let window = &mut out[first..=last];
        if scaling {
            table.accumulate_phi(u0, stride, coeff * sqrt_scale, window);
        } else {
            table.accumulate_psi(u0, stride, coeff * sqrt_scale, window);
        }
    }
}

/// Cache of basis-function values on one fixed dense grid, keyed by
/// `(level, translation, generator)`.
///
/// The factors `δ_{j,k}(grid_i)` depend only on the wavelet family and the
/// grid — not on the data — so across the engine's refreshes of one
/// synopsis they are computed once and replayed as a multiply-accumulate.
/// The cache is invalidated automatically when it is used with a
/// different family or grid. Memory is bounded by the union of surviving
/// coefficients ever evaluated: each row stores one `f64` per grid point
/// under the coefficient's compact support (fine levels have
/// correspondingly short rows).
#[derive(Debug, Clone, Default)]
pub struct DenseEvalCache {
    key: Option<(WaveletFamily, u64, u64, usize)>,
    rows: std::collections::HashMap<(i32, i64, bool), CachedRow>,
}

/// One coefficient's interpolated basis-function values over its grid
/// window.
#[derive(Debug, Clone)]
struct CachedRow {
    first: usize,
    values: Vec<f64>,
}

impl DenseEvalCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of coefficient rows currently cached.
    pub fn cached_rows(&self) -> usize {
        self.rows.len()
    }

    /// Clears the cache when the family or grid changed.
    fn validate(&mut self, family: WaveletFamily, grid: &Grid) {
        let key = (family, grid.lo().to_bits(), grid.hi().to_bits(), grid.len());
        if self.key != Some(key) {
            self.rows.clear();
            self.key = Some(key);
        }
    }
}

/// The cached counterpart of [`accumulate_dense`]: identical arithmetic,
/// with the interpolated basis values fetched from (or inserted into) the
/// cache.
#[allow(clippy::too_many_arguments)]
fn accumulate_dense_cached(
    basis: &WaveletBasis,
    grid: &Grid,
    level: i32,
    k_start: i64,
    coefficients: &[f64],
    scaling: bool,
    out: &mut [f64],
    cache: &mut DenseEvalCache,
) {
    if coefficients.is_empty() {
        return;
    }
    let scale = (level as f64).exp2();
    let sqrt_scale = scale.sqrt();
    let support = basis.support_length();
    let stride = scale * grid.step();
    let table = basis.table();
    for (m, &coeff) in coefficients.iter().enumerate() {
        if coeff == 0.0 {
            continue;
        }
        let k = k_start + m as i64;
        let Some((first, last, u0)) = coefficient_window(grid, scale, support, k, out.len()) else {
            continue;
        };
        let row = cache.rows.entry((level, k, scaling)).or_insert_with(|| {
            // Weight 1.0 captures exactly the interpolated factors the
            // uncached path multiplies by (`0 + 1.0·v` is `v` bitwise).
            let mut values = vec![0.0_f64; last - first + 1];
            if scaling {
                table.accumulate_phi(u0, stride, 1.0, &mut values);
            } else {
                table.accumulate_psi(u0, stride, 1.0, &mut values);
            }
            CachedRow { first, values }
        });
        debug_assert_eq!(row.first, first, "cached row geometry drifted");
        let scaled = coeff * sqrt_scale;
        for (slot, &value) in out[first..=last].iter_mut().zip(&row.values) {
            *slot += scaled * value;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use wavedens_processes::{seeded_rng, SineUniformMixture, TargetDensity};

    fn uniform_sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = seeded_rng(seed);
        (0..n).map(|_| rng.gen::<f64>()).collect()
    }

    fn sine_sample(n: usize, seed: u64) -> Vec<f64> {
        let target = SineUniformMixture::paper();
        let mut rng = seeded_rng(seed);
        (0..n).map(|_| target.quantile(rng.gen::<f64>())).collect()
    }

    #[test]
    fn default_level_rules_match_the_paper() {
        // n = 2^10, N = 8: j0 = ⌊ln(1024)/9⌋ + 1 = 1, j* = 10.
        assert_eq!(default_coarse_level(1024, 8), 1);
        assert_eq!(cv_max_level(1024), 10);
        assert_eq!(cv_max_level(1000), 9);
        // The theoretical j1 is clamped to j0 for small n.
        assert_eq!(theoretical_max_level(1024, 1.0, 1), 1);
        // For very large n it exceeds j0.
        assert!(theoretical_max_level(1 << 26, 1.0, 2) > 2);
    }

    #[test]
    fn estimate_integrates_to_about_one() {
        let data = uniform_sample(512, 1);
        for estimator in [
            WaveletDensityEstimator::htcv(),
            WaveletDensityEstimator::stcv(),
        ] {
            let fit = estimator.fit(&data).unwrap();
            let mass = fit.integral();
            assert!((mass - 1.0).abs() < 0.05, "integral {mass}");
        }
    }

    #[test]
    fn uniform_density_is_recovered_accurately() {
        let data = uniform_sample(2048, 2);
        let fit = WaveletDensityEstimator::stcv().fit(&data).unwrap();
        // Away from the boundary the estimate is close to 1 on average;
        // individual points can wiggle by a few tenths because the CV keeps
        // a handful of noise coefficients (the paper's Figures 1–2 show the
        // same behaviour).
        let grid = Grid::new(0.05, 0.95, 181);
        let values = fit.evaluate_on(&grid);
        let mean_abs_err =
            values.iter().map(|v| (v - 1.0).abs()).sum::<f64>() / values.len() as f64;
        assert!(mean_abs_err < 0.15, "mean absolute error {mean_abs_err}");
    }

    #[test]
    fn sine_uniform_density_is_recovered() {
        let target = SineUniformMixture::paper();
        let data = sine_sample(4096, 3);
        let fit = WaveletDensityEstimator::stcv().fit(&data).unwrap();
        let grid = Grid::new(0.05, 0.95, 181);
        let est = fit.evaluate_on(&grid);
        let truth = grid.evaluate(|x| target.pdf(x));
        let ise = grid.integrate_abs_power(&est, &truth, 2.0);
        assert!(ise < 0.02, "ISE {ise} too large for n = 4096");
    }

    #[test]
    fn cross_validation_metadata_is_exposed() {
        let data = sine_sample(1024, 4);
        let fit = WaveletDensityEstimator::htcv().fit(&data).unwrap();
        assert!(fit.cross_validation().is_some());
        assert_eq!(fit.coarse_level(), 1);
        let j1 = fit.highest_level();
        assert!((1..=11).contains(&j1), "ĵ1 = {j1}");
        assert_eq!(fit.thresholds().j0, 1);
        assert!(fit.sparsity() > 0.5, "most coefficients should be killed");
        assert_eq!(fit.rule(), ThresholdRule::Hard);
        assert_eq!(fit.sample_size(), 1024);
        assert_eq!(fit.interval(), (0.0, 1.0));
        assert!(!fit.detail_levels().is_empty());
        assert!(!fit.scaling_coefficients().is_empty());
    }

    #[test]
    fn theoretical_thresholds_are_applied() {
        let data = sine_sample(1024, 5);
        let kappa = 0.8;
        let fit = WaveletDensityEstimator::new(
            ThresholdRule::Hard,
            ThresholdSelection::Theoretical { kappa },
        )
        .with_levels(Some(2), Some(6))
        .fit(&data)
        .unwrap();
        assert!(fit.cross_validation().is_none());
        for j in 2..=6 {
            let expected = kappa * ((j as f64) / 1024.0).sqrt();
            assert!((fit.thresholds().level(j) - expected).abs() < 1e-12);
        }
        assert_eq!(fit.highest_level(), 6);
    }

    #[test]
    fn linear_projection_keeps_every_coefficient() {
        let data = sine_sample(512, 6);
        let fit = WaveletDensityEstimator::linear_projection(4)
            .fit(&data)
            .unwrap();
        assert_eq!(fit.sparsity(), 0.0);
        assert_eq!(fit.coarse_level(), 4);
        // A single detail level (j0 = j_max = 4).
        assert_eq!(fit.detail_levels().len(), 1);
    }

    #[test]
    fn fixed_thresholds_are_expanded_across_levels() {
        let data = sine_sample(256, 7);
        let fit = WaveletDensityEstimator::new(
            ThresholdRule::Soft,
            ThresholdSelection::Fixed(vec![0.05, 0.1]),
        )
        .with_levels(Some(1), Some(4))
        .fit(&data)
        .unwrap();
        assert_eq!(fit.thresholds().level(1), 0.05);
        assert_eq!(fit.thresholds().level(2), 0.1);
        // The last value is reused beyond the supplied list.
        assert_eq!(fit.thresholds().level(4), 0.1);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let data = uniform_sample(64, 8);
        assert!(matches!(
            WaveletDensityEstimator::htcv().fit(&[]).unwrap_err(),
            EstimatorError::EmptySample
        ));
        assert!(matches!(
            WaveletDensityEstimator::htcv()
                .with_interval(1.0, 0.0)
                .fit(&data)
                .unwrap_err(),
            EstimatorError::InvalidInterval { .. }
        ));
        assert!(matches!(
            WaveletDensityEstimator::new(
                ThresholdRule::Hard,
                ThresholdSelection::Theoretical { kappa: -1.0 },
            )
            .fit(&data)
            .unwrap_err(),
            EstimatorError::InvalidParameter { .. }
        ));
        assert!(matches!(
            WaveletDensityEstimator::new(ThresholdRule::Hard, ThresholdSelection::Fixed(vec![]))
                .fit(&data)
                .unwrap_err(),
            EstimatorError::InvalidParameter { .. }
        ));
        assert!(matches!(
            WaveletDensityEstimator::htcv()
                .with_levels(Some(-2), None)
                .fit(&data)
                .unwrap_err(),
            EstimatorError::InvalidLevels { .. }
        ));
    }

    #[test]
    fn nonpositive_dependence_exponents_are_rejected() {
        // b ≤ 0 would send theoretical_max_level through ln(n)^(−2/b − 3)
        // with a NaN/∞ exponent; fit must reject it for every selection
        // scheme, not just the theoretical rule that consumes it.
        let data = uniform_sample(64, 12);
        for b in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            for estimator in [
                WaveletDensityEstimator::htcv(),
                WaveletDensityEstimator::new(
                    ThresholdRule::Hard,
                    ThresholdSelection::Theoretical { kappa: 1.0 },
                ),
            ] {
                assert!(
                    matches!(
                        estimator
                            .with_dependence_exponent(b)
                            .fit(&data)
                            .unwrap_err(),
                        EstimatorError::InvalidParameter { .. }
                    ),
                    "b = {b} must be rejected"
                );
            }
        }
        // A positive exponent other than the default still fits.
        assert!(WaveletDensityEstimator::htcv()
            .with_dependence_exponent(0.5)
            .fit(&data)
            .is_ok());
    }

    #[test]
    fn cached_dense_evaluation_is_bitwise_identical() {
        let grid = Grid::new(0.0, 1.0, 513);
        let mut cache = DenseEvalCache::new();
        for seed in [11_u64, 12, 13] {
            let fit = WaveletDensityEstimator::stcv()
                .fit(&sine_sample(768, seed))
                .unwrap();
            // Cold rows on the first fit, warm replays afterwards: both
            // must reproduce the uncached sweep exactly.
            for _ in 0..2 {
                let cached = fit.evaluate_dense_cached(&grid, &mut cache);
                let plain = fit.evaluate_dense(&grid);
                assert_eq!(cached, plain, "seed {seed}");
            }
            let a = fit.cumulative_cached(257, &mut cache);
            let b = fit.cumulative(257);
            for i in 0..=64 {
                let x = i as f64 / 64.0;
                assert_eq!(a.cdf(x), b.cdf(x), "seed {seed}, x = {x}");
            }
        }
        assert!(cache.cached_rows() > 0);
        // A different grid (or family) invalidates the cache rather than
        // replaying mismatched rows.
        let fit = WaveletDensityEstimator::stcv()
            .fit(&sine_sample(256, 14))
            .unwrap();
        let other = Grid::new(0.0, 1.0, 129);
        let cached = fit.evaluate_dense_cached(&other, &mut cache);
        assert_eq!(cached, fit.evaluate_dense(&other));
    }

    #[test]
    fn estimate_vanishes_far_outside_the_interval() {
        let data = uniform_sample(256, 9);
        let fit = WaveletDensityEstimator::stcv().fit(&data).unwrap();
        assert_eq!(fit.evaluate(25.0), 0.0);
        assert_eq!(fit.evaluate(-25.0), 0.0);
    }

    #[test]
    fn shared_basis_gives_identical_results() {
        let data = sine_sample(512, 10);
        let basis = Arc::new(WaveletBasis::new(WaveletFamily::Symmlet(8)).unwrap());
        let a = WaveletDensityEstimator::stcv().fit(&data).unwrap();
        let b = WaveletDensityEstimator::stcv()
            .with_basis(Arc::clone(&basis))
            .fit(&data)
            .unwrap();
        for i in 0..=20 {
            let x = i as f64 / 20.0;
            assert!((a.evaluate(x) - b.evaluate(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn more_data_reduces_the_error() {
        let target = SineUniformMixture::paper();
        let grid = Grid::new(0.05, 0.95, 91);
        let truth = grid.evaluate(|x| target.pdf(x));
        let ise_for = |n: usize, seed: u64| {
            let fit = WaveletDensityEstimator::stcv()
                .fit(&sine_sample(n, seed))
                .unwrap();
            grid.integrate_abs_power(&fit.evaluate_on(&grid), &truth, 2.0)
        };
        // Average over a few seeds to tame randomness.
        let small: f64 = (0..4).map(|s| ise_for(256, 20 + s)).sum::<f64>() / 4.0;
        let large: f64 = (0..4).map(|s| ise_for(4096, 40 + s)).sum::<f64>() / 4.0;
        assert!(
            large < small,
            "ISE should decrease with n: {small} -> {large}"
        );
    }
}
