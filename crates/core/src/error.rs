//! Error types of the estimation crate.

use wavedens_wavelets::FilterError;

/// Errors raised while configuring or fitting density estimators.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimatorError {
    /// The sample is empty (or too small for the requested configuration).
    EmptySample,
    /// The estimation interval is degenerate or reversed.
    InvalidInterval {
        /// Requested lower bound.
        lo: f64,
        /// Requested upper bound.
        hi: f64,
    },
    /// Resolution levels are inconsistent (`j0 > j1`, negative levels, …).
    InvalidLevels {
        /// Explanation of the inconsistency.
        message: String,
    },
    /// An invalid tuning parameter was supplied (bandwidth, threshold
    /// constant, …).
    InvalidParameter {
        /// Explanation of the problem.
        message: String,
    },
    /// A range query carried a NaN bound. (Reversed or empty ranges are
    /// not errors — they normalize to zero mass — but NaN compares false
    /// with everything and would silently slip past that normalization.)
    InvalidQueryBounds {
        /// Requested lower bound.
        lo: f64,
        /// Requested upper bound.
        hi: f64,
    },
    /// The sample contains a non-finite value (NaN or ±∞).
    NonFiniteSample {
        /// Index of the first offending observation.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// Two coefficient sketches cannot be merged because they accumulate
    /// different coefficients (family, interval or levels differ).
    IncompatibleSketches {
        /// Explanation of the mismatch.
        message: String,
    },
    /// A serialized coefficient sketch could not be decoded.
    InvalidSerialization {
        /// Explanation of the problem.
        message: String,
    },
    /// Constructing the underlying wavelet filter failed.
    Filter(FilterError),
}

impl std::fmt::Display for EstimatorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EstimatorError::EmptySample => write!(f, "the sample is empty"),
            EstimatorError::InvalidInterval { lo, hi } => {
                write!(f, "invalid estimation interval [{lo}, {hi}]")
            }
            EstimatorError::InvalidLevels { message } => {
                write!(f, "invalid resolution levels: {message}")
            }
            EstimatorError::InvalidParameter { message } => {
                write!(f, "invalid parameter: {message}")
            }
            EstimatorError::InvalidQueryBounds { lo, hi } => {
                write!(f, "invalid query bounds [{lo}, {hi}]")
            }
            EstimatorError::NonFiniteSample { index, value } => {
                write!(f, "non-finite observation {value} at index {index}")
            }
            EstimatorError::IncompatibleSketches { message } => {
                write!(f, "incompatible coefficient sketches: {message}")
            }
            EstimatorError::InvalidSerialization { message } => {
                write!(f, "invalid sketch serialization: {message}")
            }
            EstimatorError::Filter(err) => write!(f, "wavelet filter error: {err}"),
        }
    }
}

impl std::error::Error for EstimatorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EstimatorError::Filter(err) => Some(err),
            _ => None,
        }
    }
}

impl From<FilterError> for EstimatorError {
    fn from(err: FilterError) -> Self {
        EstimatorError::Filter(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavedens_wavelets::WaveletFamily;

    #[test]
    fn display_is_informative() {
        let e = EstimatorError::InvalidInterval { lo: 1.0, hi: 0.0 };
        assert!(format!("{e}").contains("[1, 0]"));
        let e = EstimatorError::InvalidLevels {
            message: "j0 exceeds j1".into(),
        };
        assert!(format!("{e}").contains("j0 exceeds j1"));
        assert!(format!("{}", EstimatorError::EmptySample).contains("empty"));
    }

    #[test]
    fn filter_errors_convert_and_expose_source() {
        let ferr = FilterError::UnsupportedOrder(WaveletFamily::Daubechies(1));
        let e: EstimatorError = ferr.clone().into();
        assert_eq!(e, EstimatorError::Filter(ferr));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&EstimatorError::EmptySample).is_none());
    }
}
