//! Risk metrics: integrated squared error, mean-`L^p` risks and the
//! integrated moments ("fluctuations") used in Figures 6 and 8 of the
//! paper.

use crate::grid::Grid;

/// Integrated squared error `∫ (f̂ − f)²` of values sampled on a grid.
pub fn integrated_squared_error(grid: &Grid, estimate: &[f64], truth: &[f64]) -> f64 {
    grid.integrate_abs_power(estimate, truth, 2.0)
}

/// `L^p` distance `(∫ |f̂ − f|^p)^{1/p}` of values sampled on a grid.
pub fn lp_distance(grid: &Grid, estimate: &[f64], truth: &[f64], p: f64) -> f64 {
    assert!(p >= 1.0, "Lp distance requires p ≥ 1, got {p}");
    grid.integrate_abs_power(estimate, truth, p).powf(1.0 / p)
}

/// Accumulates Monte-Carlo replications of an estimator evaluated on a
/// common grid and reports the risk summaries the paper tabulates/plots.
#[derive(Debug, Clone)]
pub struct RiskAccumulator {
    grid: Grid,
    truth: Option<Vec<f64>>,
    replications: usize,
    /// Running sum of the estimate values (for the mean curve of Figures
    /// 1, 2, 5 and 7).
    sum_values: Vec<f64>,
    /// Running sums of |f̂ − f|^p integrals for the tracked p values.
    tracked_p: Vec<f64>,
    sum_lp_powers: Vec<f64>,
    /// Running sums of f̂(t)^k for integrated moments (Figure 8); index 0
    /// corresponds to k = 1.
    moment_orders: usize,
    sum_powers: Vec<Vec<f64>>,
}

impl RiskAccumulator {
    /// Creates an accumulator over `grid`. `truth` is the true density on
    /// the grid (omit it when the true density is unknown, as for the LSV
    /// maps). `tracked_p` lists the `L^p` exponents to average;
    /// `moment_orders` is the largest `k` for which `∫ (E f̂^k)^{1/k}` is
    /// requested (0 disables moment tracking).
    pub fn new(
        grid: Grid,
        truth: Option<Vec<f64>>,
        tracked_p: Vec<f64>,
        moment_orders: usize,
    ) -> Self {
        if let Some(t) = &truth {
            assert_eq!(t.len(), grid.len(), "truth must be sampled on the grid");
        }
        assert!(
            tracked_p.iter().all(|&p| p >= 1.0),
            "all tracked exponents must be ≥ 1"
        );
        let points = grid.len();
        Self {
            grid,
            truth,
            replications: 0,
            sum_values: vec![0.0; points],
            sum_lp_powers: vec![0.0; tracked_p.len()],
            tracked_p,
            moment_orders,
            sum_powers: vec![vec![0.0; points]; moment_orders],
        }
    }

    /// A convenience constructor tracking only the MISE.
    pub fn mise_only(grid: Grid, truth: Vec<f64>) -> Self {
        Self::new(grid, Some(truth), vec![2.0], 0)
    }

    /// The evaluation grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Number of replications recorded so far.
    pub fn replications(&self) -> usize {
        self.replications
    }

    /// Records one replication of the estimator evaluated on the grid.
    pub fn record(&mut self, estimate: &[f64]) {
        assert_eq!(estimate.len(), self.grid.len(), "estimate must match grid");
        self.replications += 1;
        for (s, &v) in self.sum_values.iter_mut().zip(estimate.iter()) {
            *s += v;
        }
        if let Some(truth) = &self.truth {
            for (slot, &p) in self.sum_lp_powers.iter_mut().zip(self.tracked_p.iter()) {
                *slot += self.grid.integrate_abs_power(estimate, truth, p);
            }
        }
        for (k, sums) in self.sum_powers.iter_mut().enumerate() {
            let order = (k + 1) as i32;
            for (s, &v) in sums.iter_mut().zip(estimate.iter()) {
                *s += v.powi(order);
            }
        }
    }

    /// Merges another accumulator (same grid/config) into this one; used to
    /// combine per-thread partial results.
    pub fn merge(&mut self, other: &RiskAccumulator) {
        assert_eq!(self.grid, other.grid, "accumulators must share the grid");
        assert_eq!(self.tracked_p, other.tracked_p);
        assert_eq!(self.moment_orders, other.moment_orders);
        self.replications += other.replications;
        for (a, b) in self.sum_values.iter_mut().zip(&other.sum_values) {
            *a += b;
        }
        for (a, b) in self.sum_lp_powers.iter_mut().zip(&other.sum_lp_powers) {
            *a += b;
        }
        for (rows_a, rows_b) in self.sum_powers.iter_mut().zip(&other.sum_powers) {
            for (a, b) in rows_a.iter_mut().zip(rows_b) {
                *a += b;
            }
        }
    }

    /// The pointwise mean of the recorded estimates (the curves plotted in
    /// Figures 1, 2, 5 and 7).
    pub fn mean_curve(&self) -> Vec<f64> {
        let n = self.replications.max(1) as f64;
        self.sum_values.iter().map(|s| s / n).collect()
    }

    /// Monte-Carlo estimate of the MISE `E ∫ (f̂ − f)²` (requires the truth
    /// and `p = 2` to be tracked).
    pub fn mise(&self) -> Option<f64> {
        self.mean_lp_power(2.0)
    }

    /// Monte-Carlo estimate of `E ∫ |f̂ − f|^p` for a tracked exponent.
    pub fn mean_lp_power(&self, p: f64) -> Option<f64> {
        let idx = self.tracked_p.iter().position(|&q| (q - p).abs() < 1e-12)?;
        if self.truth.is_none() || self.replications == 0 {
            return None;
        }
        Some(self.sum_lp_powers[idx] / self.replications as f64)
    }

    /// Monte-Carlo estimate of the mean `L^p` risk
    /// `(E ∫ |f̂ − f|^p)^{1/p}`, the quantity plotted in Figure 6.
    pub fn mean_lp_risk(&self, p: f64) -> Option<f64> {
        self.mean_lp_power(p).map(|v| v.powf(1.0 / p))
    }

    /// The integrated `k`-th moment `∫ (E[f̂(t)^k])^{1/k} dt` of Figure 8
    /// (`k ≥ 1`, up to the configured number of orders).
    pub fn integrated_moment(&self, k: usize) -> Option<f64> {
        if k == 0 || k > self.moment_orders || self.replications == 0 {
            return None;
        }
        let n = self.replications as f64;
        let values: Vec<f64> = self.sum_powers[k - 1]
            .iter()
            .map(|s| (s / n).abs().powf(1.0 / k as f64))
            .collect();
        Some(self.grid.integrate(&values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid {
        Grid::new(0.0, 1.0, 101)
    }

    #[test]
    fn ise_and_lp_distance_of_identical_curves_vanish() {
        let g = grid();
        let f = g.evaluate(|x| 1.0 + x);
        assert_eq!(integrated_squared_error(&g, &f, &f), 0.0);
        assert_eq!(lp_distance(&g, &f, &f, 3.0), 0.0);
    }

    #[test]
    fn lp_distance_matches_hand_computation() {
        let g = grid();
        let f = g.evaluate(|_| 1.0);
        let zero = g.evaluate(|_| 0.0);
        // ∫ |1|^p = 1 for any p, so the distance is 1.
        for p in [1.0, 2.0, 5.0] {
            assert!((lp_distance(&g, &f, &zero, p) - 1.0).abs() < 1e-12);
        }
        // Constant difference of 2: distance is 2 for every p.
        let two = g.evaluate(|_| 2.0);
        assert!((lp_distance(&g, &two, &zero, 4.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "Lp distance requires p ≥ 1")]
    fn lp_distance_rejects_small_p() {
        let g = grid();
        let f = g.evaluate(|_| 1.0);
        let _ = lp_distance(&g, &f, &f, 0.5);
    }

    #[test]
    fn accumulator_computes_mise_of_constant_bias() {
        let g = grid();
        let truth = g.evaluate(|_| 1.0);
        let mut acc = RiskAccumulator::mise_only(g, truth);
        // Two replications with constant offsets +0.1 and −0.1:
        // each has ISE 0.01, so the MISE is 0.01.
        let up = acc.grid().evaluate(|_| 1.1);
        let down = acc.grid().evaluate(|_| 0.9);
        acc.record(&up);
        acc.record(&down);
        assert_eq!(acc.replications(), 2);
        let mise = acc.mise().unwrap();
        assert!((mise - 0.01).abs() < 1e-10, "MISE {mise}");
        // The mean curve is the truth: bias cancels.
        let mean = acc.mean_curve();
        assert!(mean.iter().all(|&v| (v - 1.0).abs() < 1e-12));
        // p = 3 was not tracked.
        assert!(acc.mean_lp_risk(3.0).is_none());
    }

    #[test]
    fn accumulator_tracks_lp_risks_and_moments() {
        let g = grid();
        let truth = g.evaluate(|_| 0.0);
        let mut acc = RiskAccumulator::new(g, Some(truth), vec![1.0, 2.0, 4.0], 3);
        let flat = acc.grid().evaluate(|_| 2.0);
        acc.record(&flat);
        // Risks of a constant-2 estimate vs zero truth are 2 for all p.
        for p in [1.0, 2.0, 4.0] {
            assert!((acc.mean_lp_risk(p).unwrap() - 2.0).abs() < 1e-12);
        }
        // Integrated k-th moments of the constant 2 are 2 for every k.
        for k in 1..=3 {
            assert!((acc.integrated_moment(k).unwrap() - 2.0).abs() < 1e-12);
        }
        assert!(acc.integrated_moment(4).is_none());
        assert!(acc.integrated_moment(0).is_none());
    }

    #[test]
    fn merge_combines_replications() {
        let g = grid();
        let truth = g.evaluate(|_| 1.0);
        let mut a = RiskAccumulator::mise_only(g, truth.clone());
        let mut b = RiskAccumulator::mise_only(g, truth);
        let up = a.grid().evaluate(|_| 1.2);
        let down = a.grid().evaluate(|_| 0.8);
        a.record(&up);
        b.record(&down);
        a.merge(&b);
        assert_eq!(a.replications(), 2);
        assert!((a.mise().unwrap() - 0.04).abs() < 1e-10);
        let mean = a.mean_curve();
        assert!(mean.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn accumulator_without_truth_still_gives_mean_and_moments() {
        let g = grid();
        let mut acc = RiskAccumulator::new(g, None, vec![], 2);
        let c = acc.grid().evaluate(|x| x);
        acc.record(&c);
        assert!(acc.mise().is_none());
        assert!(acc.integrated_moment(1).is_some());
        assert!((acc.integrated_moment(1).unwrap() - 0.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "estimate must match grid")]
    fn mismatched_estimate_length_panics() {
        let g = grid();
        let mut acc = RiskAccumulator::new(g, None, vec![], 0);
        acc.record(&[1.0, 2.0]);
    }
}
