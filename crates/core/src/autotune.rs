//! First-use autotuning of the internal ingest chunk size.
//!
//! The ideal number of observations per scatter chunk depends on the
//! basis (the support width sets the per-row work, the level count sets
//! how many passes sweep each chunk) and on the host cache hierarchy —
//! neither is knowable at compile time, and a constant tuned on one
//! machine mispredicts on another. Instead, the first sufficiently large
//! batch ingested per basis shape races one slice of real data at each
//! candidate size and caches the winner for the process lifetime.
//!
//! Probing is *online*: the timed slices are genuine ingests (no work is
//! discarded or replayed), and chunk boundaries cannot affect results —
//! every level accumulates observations in batch order no matter how the
//! batch is sliced — so the tuner only changes how fast the sums are
//! produced, never what they are.
//!
//! `WAVEDENS_INGEST_CHUNK=<rows>` pins the chunk globally, bypassing both
//! the probe and the cache (useful for reproducible benchmark runs and
//! for measuring the untuned path).

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Chunk sizes the first large batch races against each other. Ordered
/// smallest-first so the cold-cache first slice handicaps the smallest
/// candidate, not the largest.
pub(crate) const CHUNK_CANDIDATES: [usize; 5] = [128, 256, 512, 1024, 2048];

/// Rows a batch must contain before probing is worthwhile: one slice per
/// candidate. Smaller first batches use the caller's default and leave
/// the cache untouched, so a later large batch can still tune.
pub(crate) fn probe_rows() -> usize {
    CHUNK_CANDIDATES.iter().sum()
}

/// What a tuned winner is keyed by: the scatter cost model changes with
/// the support width (slots per window), the number of level passes, and
/// the layout (1-D windows vs 2-D outer-product tiles).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) struct ChunkKey {
    pub kind: ChunkKind,
    /// Scatter slots per observation window (the wavelet support width).
    pub support: u32,
    /// Level passes that sweep each chunk.
    pub levels: u32,
}

/// Which scatter layout the key describes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) enum ChunkKind {
    /// 1-D window scatter ([`crate::CoefficientSketch::push_batch`] and
    /// [`crate::TensorSketch::push_scalars`]).
    OneD,
    /// 2-D outer-product scatter ([`crate::TensorSketch::push_pairs`]).
    TwoD,
}

fn override_chunk() -> Option<usize> {
    static OVERRIDE: OnceLock<Option<usize>> = OnceLock::new();
    *OVERRIDE.get_or_init(|| {
        std::env::var("WAVEDENS_INGEST_CHUNK")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&chunk| chunk > 0)
    })
}

fn cache() -> &'static Mutex<HashMap<ChunkKey, usize>> {
    static CACHE: OnceLock<Mutex<HashMap<ChunkKey, usize>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The chunk to use without probing — the env override or a cached
/// winner. `None` means this key has not been tuned yet.
pub(crate) fn fixed_chunk(key: &ChunkKey) -> Option<usize> {
    if let Some(chunk) = override_chunk() {
        return Some(chunk);
    }
    cache().lock().ok()?.get(key).copied()
}

/// Caches `chunk` as the winner for `key`. First writer wins so a
/// concurrent probe cannot flip an already-tuned key mid-run.
pub(crate) fn record_winner(key: ChunkKey, chunk: usize) {
    if override_chunk().is_some() {
        return;
    }
    if let Ok(mut map) = cache().lock() {
        map.entry(key).or_insert(chunk);
    }
}

/// Races the candidates over successive leading slices of `items` — each
/// timed slice is a real ingest through `scatter` — and returns
/// `(winner, items_consumed)`.
///
/// # Panics
/// If `items.len() < probe_rows()`.
pub(crate) fn probe_chunks<T>(items: &[T], mut scatter: impl FnMut(&[T])) -> (usize, usize) {
    let mut consumed = 0;
    let mut best = (CHUNK_CANDIDATES[0], f64::INFINITY);
    for &candidate in &CHUNK_CANDIDATES {
        let slice = &items[consumed..consumed + candidate];
        let start = Instant::now();
        scatter(slice);
        let per_item = start.elapsed().as_secs_f64() / candidate as f64;
        consumed += candidate;
        if per_item < best.1 {
            best = (candidate, per_item);
        }
    }
    (best.0, consumed)
}

/// Resolves the chunk size for one batch: the env override or cached
/// winner when present; otherwise, when the batch is large enough,
/// probes the candidates on its leading slices (ingesting them for
/// real), caches the winner, and hands back the not-yet-ingested
/// remainder. Batches too small to probe use `default` untuned.
pub(crate) fn tuned_chunk<'a, T>(
    key: ChunkKey,
    default: usize,
    items: &'a [T],
    scatter: &mut impl FnMut(&[T]),
) -> (usize, &'a [T]) {
    if let Some(chunk) = fixed_chunk(&key) {
        return (chunk, items);
    }
    if items.len() < probe_rows() {
        return (default, items);
    }
    let (winner, consumed) = probe_chunks(items, &mut *scatter);
    record_winner(key, winner);
    (winner, &items[consumed..])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(levels: u32) -> ChunkKey {
        ChunkKey {
            kind: ChunkKind::OneD,
            support: 15,
            levels,
        }
    }

    #[test]
    fn probe_consumes_one_slice_per_candidate_and_picks_a_candidate() {
        let items = vec![1.0_f64; probe_rows() + 17];
        let mut seen = Vec::new();
        let (winner, consumed) = probe_chunks(&items, |slice| seen.push(slice.len()));
        assert_eq!(seen, CHUNK_CANDIDATES.to_vec());
        assert_eq!(consumed, probe_rows());
        assert!(CHUNK_CANDIDATES.contains(&winner));
    }

    #[test]
    fn small_batches_fall_back_to_default_without_caching() {
        let key = key(97);
        let items = vec![0.0_f64; probe_rows() - 1];
        let mut calls = 0;
        let (chunk, rest) = tuned_chunk(key, 512, &items, &mut |_| calls += 1);
        assert_eq!(chunk, 512);
        assert_eq!(rest.len(), items.len());
        assert_eq!(calls, 0);
        assert_eq!(fixed_chunk(&key), None);
    }

    #[test]
    fn large_batches_probe_once_then_reuse_the_cached_winner() {
        let key = key(98);
        let items = vec![0.0_f64; probe_rows() + 100];
        let mut probed = 0;
        let (chunk, rest) = tuned_chunk(key, 512, &items, &mut |_| probed += 1);
        assert_eq!(probed, CHUNK_CANDIDATES.len());
        assert!(CHUNK_CANDIDATES.contains(&chunk));
        assert_eq!(rest.len(), 100);
        assert_eq!(fixed_chunk(&key), Some(chunk));

        // Second batch: no probing, same winner, nothing pre-consumed.
        let (again, rest) = tuned_chunk(key, 512, &items, &mut |_| probed += 1);
        assert_eq!(probed, CHUNK_CANDIDATES.len());
        assert_eq!(again, chunk);
        assert_eq!(rest.len(), items.len());
    }

    #[test]
    fn first_recorded_winner_sticks() {
        let key = key(99);
        record_winner(key, 256);
        record_winner(key, 2048);
        assert_eq!(fixed_chunk(&key), Some(256));
    }
}
