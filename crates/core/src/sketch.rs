//! Mergeable coefficient sketches — the accumulation state of the
//! estimator as a first-class, distributable object.
//!
//! The empirical coefficients `α̂_{j,k}`, `β̂_{j,k}` are sample means of
//! `δ_{j,k}(X_i)`, and the cross-validation criteria additionally need the
//! per-coefficient sums of squares. The *entire* estimator state is
//! therefore a classic mergeable sketch: per-level running sums, running
//! sums of squares and an observation count. Two sketches over the same
//! basis/interval/levels combine by plain addition of their sums (the
//! "weighted recombination" of the means happens implicitly when the
//! merged sums are divided by the merged count), which is **exactly**
//! equivalent to a single-stream fit on the concatenated data up to
//! floating-point summation order.
//!
//! This module separates that accumulation state ([`CoefficientSketch`])
//! from model selection (cross-validation + thresholding, still performed
//! downstream on a [`snapshot`](CoefficientSketch::snapshot)). Both the
//! streaming estimator and the batch coefficient construction are thin
//! layers over it, and the `wavedens-engine` crate builds sharded ingest
//! and multi-attribute synopsis catalogs on top.
//!
//! Sketches also (de)serialize to a compact little-endian binary form
//! ([`to_bytes`](CoefficientSketch::to_bytes) /
//! [`from_bytes`](CoefficientSketch::from_bytes)) so synopses can be
//! shipped between nodes and merged where they land.

use crate::autotune;
use crate::coefficients::{
    EmpiricalCoefficients, Generator, LevelAccumulator, LevelCoefficients, ScatterScratch,
};
use crate::cv::{cross_validate, cross_validate_cached, CrossValidationResult, CvCache};
use crate::error::EstimatorError;
use crate::estimator::{ThresholdedLevel, WaveletDensityEstimate};
use crate::threshold::{ThresholdProfile, ThresholdRule};
use crate::window::WindowSliceMeta;
use std::sync::Arc;
use wavedens_wavelets::{WaveletBasis, WaveletFamily};

/// Running sums for one resolution level.
///
/// `sum_squares` sits behind an [`Arc`] so that snapshotting hands
/// cross-validation a read-only view without copying the vector; ingestion
/// and merging use copy-on-write ([`Arc::make_mut`]), which only actually
/// clones when a snapshot from a previous estimate is still alive.
///
/// `version` is a cheap per-level dirty stamp: it moves (strictly
/// monotonically for any fixed sketch lineage) whenever the level's sums
/// may have changed, so downstream consumers — the delta-aware
/// cross-validation cache ([`crate::cv::CvCache`]) in particular — can
/// recognise unchanged levels without comparing payloads.
#[derive(Debug, Clone)]
struct SketchLevel {
    level: i32,
    generator: Generator,
    k_start: i64,
    version: u64,
    sums: Vec<f64>,
    sum_squares: Arc<Vec<f64>>,
}

impl SketchLevel {
    fn new(basis: &WaveletBasis, interval: (f64, f64), level: i32, generator: Generator) -> Self {
        let range = basis.translations_covering(level, interval.0, interval.1);
        let k_start = *range.start();
        let count = (*range.end() - k_start + 1).max(0) as usize;
        Self {
            level,
            generator,
            k_start,
            version: 0,
            sums: vec![0.0; count],
            sum_squares: Arc::new(vec![0.0; count]),
        }
    }

    /// Scatters a chunk of observations through the two-pass gather fast
    /// path (`scratch` holds the shared per-chunk gather rows).
    fn push_chunk(&mut self, basis: &WaveletBasis, values: &[f64], scratch: &mut ScatterScratch) {
        if values.is_empty() {
            return;
        }
        self.version += 1;
        let accumulator = LevelAccumulator::new(basis, self.generator, self.level, self.k_start);
        let squares = Arc::make_mut(&mut self.sum_squares);
        accumulator.scatter_chunk(values, scratch, &mut self.sums, squares);
    }

    /// Scatters a batch through the scalar reference path (one
    /// basis-function evaluation per translation); see
    /// [`CoefficientSketch::push_batch_scalar`].
    fn push_batch_scalar(&mut self, basis: &WaveletBasis, values: &[f64]) {
        if values.is_empty() {
            return;
        }
        self.version += 1;
        let accumulator = LevelAccumulator::new(basis, self.generator, self.level, self.k_start);
        let squares = Arc::make_mut(&mut self.sum_squares);
        for &x in values {
            accumulator.scatter(x, &mut self.sums, squares);
        }
    }

    /// Resets the level to the never-touched state in place (see
    /// [`CoefficientSketch::clear`]).
    fn clear(&mut self) {
        self.version = 0;
        self.sums.fill(0.0);
        Arc::make_mut(&mut self.sum_squares).fill(0.0);
    }

    fn merge(&mut self, other: &Self) {
        debug_assert_eq!(self.sums.len(), other.sums.len());
        if other.version == 0 {
            // A never-touched level carries identically zero sums; adding
            // them would not change the state, so the stamp must not move.
            return;
        }
        self.version += other.version;
        for (acc, v) in self.sums.iter_mut().zip(&other.sums) {
            *acc += v;
        }
        let squares = Arc::make_mut(&mut self.sum_squares);
        for (acc, v) in squares.iter_mut().zip(other.sum_squares.iter()) {
            *acc += v;
        }
    }

    fn copy_from(&mut self, source: &Self) {
        debug_assert_eq!(self.sums.len(), source.sums.len());
        // The target keeps its own lineage, so its version must *strictly*
        // advance: the copied contents are arbitrary relative to whatever
        // this instance held at any earlier stamp. (On the engine's
        // refresh path `source.version` — the sum of monotone shard
        // stamps — is the larger term.)
        self.version = source.version.max(self.version + 1);
        self.sums.copy_from_slice(&source.sums);
        Arc::make_mut(&mut self.sum_squares).copy_from_slice(&source.sum_squares);
    }

    /// [`merge`](Self::merge) with every contribution scaled by `weight`.
    /// At `weight == 1.0` this is bitwise `merge`: IEEE 754 guarantees
    /// `1.0 * v == v` exactly for every value `v` the sums can hold.
    fn merge_scaled(&mut self, other: &Self, weight: f64) {
        debug_assert_eq!(self.sums.len(), other.sums.len());
        if other.version == 0 {
            return;
        }
        self.version += other.version;
        for (acc, v) in self.sums.iter_mut().zip(&other.sums) {
            *acc += weight * v;
        }
        let squares = Arc::make_mut(&mut self.sum_squares);
        for (acc, v) in squares.iter_mut().zip(other.sum_squares.iter()) {
            *acc += weight * v;
        }
    }

    /// [`copy_from`](Self::copy_from) with every copied sum scaled by
    /// `weight` (same strict version advance, so caches keyed to the
    /// target stay sound).
    fn copy_scaled_from(&mut self, source: &Self, weight: f64) {
        debug_assert_eq!(self.sums.len(), source.sums.len());
        self.version = source.version.max(self.version + 1);
        for (slot, v) in self.sums.iter_mut().zip(&source.sums) {
            *slot = weight * v;
        }
        let squares = Arc::make_mut(&mut self.sum_squares);
        for (slot, v) in squares.iter_mut().zip(source.sum_squares.iter()) {
            *slot = weight * v;
        }
    }

    /// Whether every stored sum (and sum of squares) is exactly zero — the
    /// criterion for omitting the level payload from a v2 frame.
    fn is_zero(&self) -> bool {
        self.sums.iter().all(|v| *v == 0.0) && self.sum_squares.iter().all(|v| *v == 0.0)
    }

    fn snapshot(&self, n: usize) -> LevelCoefficients {
        LevelCoefficients {
            level: self.level,
            generator: self.generator,
            k_start: self.k_start,
            values: self.sums.iter().map(|s| s / n as f64).collect(),
            sum_squares: Arc::clone(&self.sum_squares),
        }
    }
}

/// The mergeable accumulation state of the wavelet density estimator:
/// per-level running sums `Σ_i δ_{j,k}(X_i)`, running sums of squares
/// `Σ_i δ_{j,k}(X_i)²` and the observation count.
///
/// * [`push`](Self::push) / [`push_batch`](Self::push_batch) ingest
///   observations;
/// * [`merge`](Self::merge) combines two sketches over the same
///   configuration, exactly equivalent to a single-stream fit on the
///   concatenation of their inputs;
/// * [`snapshot`](Self::snapshot) produces the [`EmpiricalCoefficients`]
///   that the cross-validation + thresholding pipeline consumes, and
///   [`estimate`](Self::estimate) runs that pipeline;
/// * [`to_bytes`](Self::to_bytes) / [`from_bytes`](Self::from_bytes)
///   round-trip a compact binary form for shipping between nodes.
#[derive(Debug)]
pub struct CoefficientSketch {
    basis: Arc<WaveletBasis>,
    interval: (f64, f64),
    count: usize,
    /// Unique identifier of this sketch *instance*, never shared between
    /// two live sketches: every constructor (including [`Clone`]) draws a
    /// fresh one, and every content mutation strictly advances the
    /// per-level version stamps. Together the pair
    /// `(lineage, level version)` therefore identifies level contents
    /// unambiguously, which is what lets [`crate::cv::CvCache`] reuse
    /// cached per-level results without ever aliasing two different
    /// sketches that happen to share version numbers.
    lineage: u64,
    scaling: SketchLevel,
    details: Vec<SketchLevel>,
    /// Lazily allocated, batch-sized gather buffers reused across
    /// [`push_batch`](Self::push_batch) calls, so high-rate streaming
    /// ingestion (one-observation batches via [`push`](Self::push)) pays
    /// no per-call allocation. Never cloned or serialized — purely
    /// transient working memory.
    scratch: Option<ScatterScratch>,
}

impl Clone for CoefficientSketch {
    fn clone(&self) -> Self {
        Self {
            basis: Arc::clone(&self.basis),
            interval: self.interval,
            count: self.count,
            // A clone is a *new* instance: it may diverge from the
            // original afterwards while reusing the same version numbers,
            // so it must not share the lineage tag caches key on.
            lineage: next_lineage(),
            scaling: self.scaling.clone(),
            details: self.details.clone(),
            scratch: None,
        }
    }
}

impl CoefficientSketch {
    /// Creates an empty sketch on `interval` with scaling level `j0` and
    /// detail levels `j0..=j_max`.
    pub fn new(
        family: WaveletFamily,
        interval: (f64, f64),
        j0: i32,
        j_max: i32,
    ) -> Result<Self, EstimatorError> {
        Self::with_basis(Arc::new(WaveletBasis::new(family)?), interval, j0, j_max)
    }

    /// Creates an empty sketch reusing an existing basis (avoids
    /// re-tabulating `φ`/`ψ` when many sketches share one).
    pub fn with_basis(
        basis: Arc<WaveletBasis>,
        interval: (f64, f64),
        j0: i32,
        j_max: i32,
    ) -> Result<Self, EstimatorError> {
        if interval.0 >= interval.1 || !interval.0.is_finite() || !interval.1.is_finite() {
            return Err(EstimatorError::InvalidInterval {
                lo: interval.0,
                hi: interval.1,
            });
        }
        if j0 < 0 {
            return Err(EstimatorError::InvalidLevels {
                message: format!("j0 must be nonnegative, got {j0}"),
            });
        }
        if j_max < j0 {
            return Err(EstimatorError::InvalidLevels {
                message: format!("j_max = {j_max} is smaller than j0 = {j0}"),
            });
        }
        let scaling = SketchLevel::new(&basis, interval, j0, Generator::Scaling);
        let details = (j0..=j_max)
            .map(|j| SketchLevel::new(&basis, interval, j, Generator::Wavelet))
            .collect();
        Ok(Self {
            basis,
            interval,
            count: 0,
            lineage: next_lineage(),
            scaling,
            details,
            scratch: None,
        })
    }

    /// Creates an empty sketch on `[0, 1]` sized for roughly `expected_n`
    /// observations with the paper's defaults (Symmlet 8, level rules of
    /// Theorem 3.1 / Section 5.1).
    pub fn sized_for(expected_n: usize) -> Result<Self, EstimatorError> {
        let n = expected_n.max(2);
        let j0 = crate::estimator::default_coarse_level(n, 8);
        let j_max = crate::estimator::cv_max_level(n);
        Self::new(WaveletFamily::Symmlet(8), (0.0, 1.0), j0, j_max)
    }

    /// The wavelet basis the sketch accumulates in.
    pub fn basis(&self) -> &Arc<WaveletBasis> {
        &self.basis
    }

    /// The estimation interval.
    pub fn interval(&self) -> (f64, f64) {
        self.interval
    }

    /// Number of observations accumulated.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether the sketch has seen no observations.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The coarse scaling level `j0`.
    pub fn coarse_level(&self) -> i32 {
        self.scaling.level
    }

    /// The highest detail level accumulated.
    pub fn max_level(&self) -> i32 {
        self.details
            .last()
            .map(|l| l.level)
            .unwrap_or(self.scaling.level)
    }

    /// The per-level dirty stamps of the detail levels, ordered from `j0`
    /// upwards — the `versions` input of
    /// [`cross_validate_cached`](crate::cv::cross_validate_cached()). A
    /// stamp moves (strictly monotonically for a fixed sketch lineage)
    /// whenever the level's sums may have changed; `0` means the level was
    /// never touched.
    pub fn detail_versions(&self) -> Vec<u64> {
        self.details.iter().map(|l| l.version).collect()
    }

    /// Overwrites this sketch with `source`'s accumulation state, reusing
    /// the existing allocations (the engine's refresh scratch relies on
    /// this to avoid re-allocating a full sketch per rebuild). The two
    /// sketches must be [compatible](Self::is_compatible). The target
    /// keeps its own lineage; its level stamps advance strictly, so
    /// caches keyed to it stay sound.
    pub fn copy_from(&mut self, source: &Self) -> Result<(), EstimatorError> {
        self.is_compatible(source)?;
        self.count = source.count;
        self.scaling.copy_from(&source.scaling);
        for (mine, theirs) in self.details.iter_mut().zip(&source.details) {
            mine.copy_from(theirs);
        }
        Ok(())
    }

    /// Ingests one observation.
    pub fn push(&mut self, x: f64) {
        self.push_batch(std::slice::from_ref(&x));
    }

    /// Ingests a batch of observations through the strided-gather fast
    /// path: per `(observation, level)` pair one table gather evaluates
    /// every active translation with a shared interpolation weight
    /// (`WaveletTable::gather_phi/psi`), the dilation constants `2^j` and
    /// `√(2^j)` are hoisted out of the per-translation loop, and value +
    /// value² scatter from the gather buffer in one sweep. Large batches
    /// are processed in cache-friendly chunks so the chunk of observations
    /// stays resident while every level scatters it. Numerically identical
    /// to pushing the values one by one, and within 1e-12 relative of the
    /// scalar reference path
    /// [`push_batch_scalar`](Self::push_batch_scalar) (whose table
    /// arguments round once per translation instead of once per
    /// observation).
    pub fn push_batch(&mut self, values: &[f64]) {
        self.count += values.len();
        if values.is_empty() {
            return;
        }
        let scratch = self
            .scratch
            .get_or_insert_with(|| ScatterScratch::new(&self.basis));
        let basis = &self.basis;
        let scaling = &mut self.scaling;
        let details = &mut self.details;
        let key = autotune::ChunkKey {
            kind: autotune::ChunkKind::OneD,
            support: basis.support_length() as u32,
            levels: details.len() as u32 + 1,
        };
        let mut scatter = |chunk: &[f64]| {
            scaling.push_chunk(basis, chunk, scratch);
            for level in details.iter_mut() {
                level.push_chunk(basis, chunk, scratch);
            }
        };
        let (chunk_size, rest) = autotune::tuned_chunk(key, INGEST_CHUNK, values, &mut scatter);
        for chunk in rest.chunks(chunk_size) {
            scatter(chunk);
        }
    }

    /// The scalar reference implementation of
    /// [`push_batch`](Self::push_batch): one `φ_{j,k}`/`ψ_{j,k}`
    /// evaluation per `(observation, translation)` pair, re-deriving the
    /// dilation constants per call. Agrees with the fast path to within
    /// 1e-12 relative — the equivalence suite and the `engine_throughput`
    /// bench pin the two against each other. Not for production
    /// ingestion.
    pub fn push_batch_scalar(&mut self, values: &[f64]) {
        self.count += values.len();
        self.scaling.push_batch_scalar(&self.basis, values);
        for level in &mut self.details {
            level.push_batch_scalar(&self.basis, values);
        }
    }

    /// Resets the sketch to the empty state — zero observations, zero
    /// sums, all level stamps back to the never-touched 0 — while keeping
    /// every allocation, so one scratch sketch can be reused across many
    /// scatter-then-merge batches (the engine's sharded ingest does this).
    /// The cleared sketch adopts a fresh lineage: downstream caches can
    /// never alias pre- and post-clear contents, and merging a cleared,
    /// untouched level remains the no-op the version guard promises.
    pub fn clear(&mut self) {
        self.count = 0;
        self.lineage = next_lineage();
        self.scaling.clear();
        for level in &mut self.details {
            level.clear();
        }
    }

    /// Ingests many observations via [`push_batch`](Self::push_batch),
    /// buffering the iterator in fixed-size chunks so arbitrarily long
    /// (or lazy) sources ingest with bounded memory.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for_each_batch(values, |chunk| self.push_batch(chunk));
    }

    /// Checks that `other` accumulates the same coefficients as `self`
    /// (same wavelet family, interval and resolution levels).
    pub fn is_compatible(&self, other: &Self) -> Result<(), EstimatorError> {
        let incompatible = |message: String| EstimatorError::IncompatibleSketches { message };
        if self.basis.family() != other.basis.family() {
            return Err(incompatible(format!(
                "wavelet families differ: {} vs {}",
                self.basis.family().name(),
                other.basis.family().name()
            )));
        }
        if self.interval != other.interval {
            return Err(incompatible(format!(
                "intervals differ: [{}, {}] vs [{}, {}]",
                self.interval.0, self.interval.1, other.interval.0, other.interval.1
            )));
        }
        if self.coarse_level() != other.coarse_level() || self.max_level() != other.max_level() {
            return Err(incompatible(format!(
                "resolution levels differ: {}..={} vs {}..={}",
                self.coarse_level(),
                self.max_level(),
                other.coarse_level(),
                other.max_level()
            )));
        }
        Ok(())
    }

    /// Folds another sketch into this one. After the merge, `self` is
    /// exactly the sketch a single stream over the concatenation of both
    /// inputs would have produced (the raw sums and sums of squares add;
    /// the count-weighted recombination of the coefficient means happens
    /// when [`snapshot`](Self::snapshot) divides by the merged count).
    ///
    /// Fails with [`EstimatorError::IncompatibleSketches`] when the two
    /// sketches do not accumulate the same coefficients.
    pub fn merge(&mut self, other: &Self) -> Result<(), EstimatorError> {
        self.is_compatible(other)?;
        self.count += other.count;
        self.scaling.merge(&other.scaling);
        for (mine, theirs) in self.details.iter_mut().zip(&other.details) {
            mine.merge(theirs);
        }
        Ok(())
    }

    /// Folds another sketch into this one with every contribution scaled
    /// by `weight` — the primitive behind exponential-decay windows: a
    /// slice merged at weight `λᵃ` counts as if each of its observations
    /// appeared `λᵃ` times. The raw sums, sums of squares and the
    /// observation count all scale (the count rounds to the nearest
    /// integer, saturating instead of overflowing).
    ///
    /// Invariant: `merge_scaled(other, 1.0)` is **bitwise** identical to
    /// [`merge`](Self::merge) — IEEE 754 multiplication by `1.0` is exact
    /// and the count scaling is exact for every count a sketch can hold.
    ///
    /// Fails with [`EstimatorError::IncompatibleSketches`] on mismatched
    /// sketches and [`EstimatorError::InvalidParameter`] when `weight` is
    /// negative, NaN or infinite.
    pub fn merge_scaled(&mut self, other: &Self, weight: f64) -> Result<(), EstimatorError> {
        validate_merge_weight(weight)?;
        self.is_compatible(other)?;
        self.count = self.count.saturating_add(scaled_count(other.count, weight));
        self.scaling.merge_scaled(&other.scaling, weight);
        for (mine, theirs) in self.details.iter_mut().zip(&other.details) {
            mine.merge_scaled(theirs, weight);
        }
        Ok(())
    }

    /// [`copy_from`](Self::copy_from) with every copied sum and the count
    /// scaled by `weight` — the windowed refresh path uses it to seed a
    /// reusable scratch sketch with the oldest (most decayed) slice before
    /// [`merge_scaled`](Self::merge_scaled)-folding the newer ones on top.
    /// The target keeps its own lineage and its level stamps advance
    /// strictly, exactly like `copy_from`. Same weight validation as
    /// `merge_scaled`.
    pub fn copy_scaled_from(&mut self, source: &Self, weight: f64) -> Result<(), EstimatorError> {
        validate_merge_weight(weight)?;
        self.is_compatible(source)?;
        self.count = scaled_count(source.count, weight);
        self.scaling.copy_scaled_from(&source.scaling, weight);
        for (mine, theirs) in self.details.iter_mut().zip(&source.details) {
            mine.copy_scaled_from(theirs, weight);
        }
        Ok(())
    }

    /// The empirical coefficients of everything accumulated so far — the
    /// input of the cross-validation + thresholding pipeline. Cheap: the
    /// sums of squares are shared by [`Arc`], only the coefficient means
    /// are materialised.
    pub fn snapshot(&self) -> Result<EmpiricalCoefficients, EstimatorError> {
        if self.count == 0 {
            return Err(EstimatorError::EmptySample);
        }
        Ok(EmpiricalCoefficients::from_parts(
            Arc::clone(&self.basis),
            self.count,
            self.interval,
            self.scaling.snapshot(self.count),
            self.details
                .iter()
                .map(|l| l.snapshot(self.count))
                .collect(),
        ))
    }

    /// Runs the downstream model-selection pipeline (cross-validated
    /// per-level thresholds, data-driven `ĵ1`, thresholding) on the
    /// current accumulation state — equivalent to a batch CV fit with the
    /// same levels on the concatenation of everything pushed or merged in.
    pub fn estimate(&self, rule: ThresholdRule) -> Result<WaveletDensityEstimate, EstimatorError> {
        let coefficients = self.snapshot()?;
        let cv = cross_validate(&coefficients, rule);
        self.assemble_estimate(coefficients, cv, rule)
    }

    /// The delta-aware variant of [`estimate`](Self::estimate): feeds the
    /// per-level dirty stamps into
    /// [`cross_validate_cached`](crate::cv::cross_validate_cached()) so that
    /// levels unchanged since the cache was last filled skip the candidate
    /// scan, and dirty levels re-sort from the previous candidate order in
    /// near-linear time. Bitwise identical to `estimate(rule)` for any
    /// cache state.
    pub fn estimate_with_cache(
        &self,
        rule: ThresholdRule,
        cache: &mut CvCache,
    ) -> Result<WaveletDensityEstimate, EstimatorError> {
        let coefficients = self.snapshot()?;
        let versions = self.detail_versions();
        let cv = cross_validate_cached(&coefficients, rule, self.lineage, &versions, cache);
        self.assemble_estimate(coefficients, cv, rule)
    }

    /// Thresholds the snapshot with the cross-validated profile and packs
    /// the final estimate (shared tail of the two `estimate*` entry
    /// points).
    fn assemble_estimate(
        &self,
        coefficients: EmpiricalCoefficients,
        cv: CrossValidationResult,
        rule: ThresholdRule,
    ) -> Result<WaveletDensityEstimate, EstimatorError> {
        let profile: ThresholdProfile = cv.thresholds();
        let thresholded: Vec<ThresholdedLevel> = coefficients
            .details()
            .iter()
            .map(|level| {
                ThresholdedLevel::from_coefficients(level, rule, profile.level(level.level))
            })
            .collect();
        Ok(WaveletDensityEstimate::from_parts(
            Arc::clone(&self.basis),
            self.interval,
            self.count,
            rule,
            coefficients.scaling().clone(),
            thresholded,
            profile,
            cv.j1,
            Some(cv),
        ))
    }

    /// Returns a compacted copy of the sketch under `policy` (see
    /// [`CompactionPolicy`]); `rule` is the thresholding nonlinearity whose
    /// cross-validation decides which fine levels are provably inactive.
    ///
    /// With [`CompactionPolicy::InactiveTail`] the compacted sketch
    /// produces **pointwise-identical** estimates: every truncated level
    /// had an empty cross-validated active set, so it contributed exactly
    /// zero to the density (and the per-level CV of the remaining levels
    /// is unchanged — the criteria are level-separable). The byte-budget
    /// mode may additionally drop *active* fine levels and is therefore
    /// lossy; it never drops the scaling level or the coarsest detail
    /// level.
    ///
    /// A compacted sketch carries fewer levels, so it can only
    /// [`merge`](Self::merge) with sketches truncated to the same shape.
    pub fn compact(
        &self,
        policy: CompactionPolicy,
        rule: ThresholdRule,
    ) -> Result<Self, EstimatorError> {
        let mut compacted = self.clone();
        match policy {
            CompactionPolicy::Dense => {}
            CompactionPolicy::InactiveTail => compacted.truncate_inactive_tail(rule)?,
            CompactionPolicy::ByteBudget { max_bytes } => {
                compacted.truncate_inactive_tail(rule)?;
                // Best effort: drop the finest remaining (possibly active)
                // levels until the frame fits, keeping at least the
                // scaling level and one detail level.
                while compacted.serialized_len() > max_bytes && compacted.details.len() > 1 {
                    compacted.details.pop();
                }
            }
        }
        Ok(compacted)
    }

    /// Drops every detail level above the finest one whose cross-validated
    /// active set is nonempty. No-op on an empty sketch.
    fn truncate_inactive_tail(&mut self, rule: ThresholdRule) -> Result<(), EstimatorError> {
        if self.count == 0 {
            return Ok(());
        }
        let coefficients = self.snapshot()?;
        let cv = cross_validate(&coefficients, rule);
        let last_active = cv
            .levels
            .iter()
            .filter(|l| l.kept > 0)
            .map(|l| l.level)
            .max()
            .unwrap_or(self.coarse_level());
        let keep =
            ((last_active - self.coarse_level()).max(0) as usize + 1).min(self.details.len());
        self.details.truncate(keep.max(1));
        Ok(())
    }

    /// Serializes the sketch to the current (v2) compact little-endian
    /// binary frame: magic + version header, wavelet family, interval,
    /// count, level range, a per-level **presence bitmap**, then the raw
    /// sums and sums of squares of every *present* level. Levels whose
    /// sums and sums of squares are identically zero — empty sketches,
    /// boundary levels no observation ever touched, and the zero tail a
    /// [`compact`](Self::compact)ed sketch would otherwise ship dense —
    /// are recorded as a single cleared bit and restored as zeros.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_len());
        self.write_header(&mut out, FORMAT_V2);
        self.write_v2_body(&mut out);
        out
    }

    /// Serializes the sketch as a **windowed slice frame** (v3): the v2
    /// compact body prefixed by the window metadata in `meta` — slice age,
    /// ring size, advance counter and decay factor — so a receiver can
    /// place the slice in its own ring. Existing
    /// [`from_bytes`](Self::from_bytes) consumers read the frame as a
    /// plain sketch (the metadata is skipped);
    /// [`from_bytes_with_window`](Self::from_bytes_with_window) also
    /// returns the metadata.
    pub fn to_bytes_with_window(&self, meta: &WindowSliceMeta) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_len() + WINDOW_META_LEN);
        self.write_header(&mut out, FORMAT_V3_WINDOWED);
        write_window_meta(&mut out, meta);
        self.write_v2_body(&mut out);
        out
    }

    /// The presence bitmap + present-level payloads shared by the v2 and
    /// v3 frames.
    fn write_v2_body(&self, out: &mut Vec<u8>) {
        let mut bitmap = vec![0u8; presence_bitmap_len(1 + self.details.len())];
        for (i, level) in std::iter::once(&self.scaling)
            .chain(&self.details)
            .enumerate()
        {
            if !level.is_zero() {
                bitmap[i / 8] |= 1 << (i % 8);
            }
        }
        out.extend_from_slice(&bitmap);
        for level in std::iter::once(&self.scaling).chain(&self.details) {
            if !level.is_zero() {
                write_level(out, level);
            }
        }
    }

    /// Serializes the sketch to the legacy v1 frame (every level shipped
    /// dense, no presence bitmap), for interoperability with nodes still
    /// on the previous wire format. [`from_bytes`](Self::from_bytes) reads
    /// both frames.
    pub fn to_bytes_v1(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_header(&mut out, FORMAT_V1);
        for level in std::iter::once(&self.scaling).chain(&self.details) {
            write_level(&mut out, level);
        }
        out
    }

    fn write_header(&self, out: &mut Vec<u8>, version: u16) {
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        let (family_tag, order) = encode_family(self.basis.family());
        out.push(family_tag);
        out.extend_from_slice(&(order as u16).to_le_bytes());
        out.extend_from_slice(&self.interval.0.to_le_bytes());
        out.extend_from_slice(&self.interval.1.to_le_bytes());
        out.extend_from_slice(&(self.count as u64).to_le_bytes());
        out.extend_from_slice(&self.coarse_level().to_le_bytes());
        out.extend_from_slice(&self.max_level().to_le_bytes());
    }

    /// Exact length of the v2 frame [`to_bytes`](Self::to_bytes) emits —
    /// what the byte-budget compaction mode measures against.
    fn serialized_len(&self) -> usize {
        let header = MAGIC.len() + 2 + 3 + 16 + 8 + 8;
        let bitmap = presence_bitmap_len(1 + self.details.len());
        let levels: usize = std::iter::once(&self.scaling)
            .chain(&self.details)
            .filter(|l| !l.is_zero())
            .map(|l| 8 + 16 * l.sums.len())
            .sum();
        header + bitmap + levels
    }

    /// Deserializes a sketch previously produced by
    /// [`to_bytes`](Self::to_bytes) (v2, presence bitmap), the legacy
    /// dense v1 writer ([`to_bytes_v1`](Self::to_bytes_v1)), **or** the
    /// windowed slice writer
    /// ([`to_bytes_with_window`](Self::to_bytes_with_window), v3 — the
    /// window metadata is validated and discarded), rebuilding the wavelet
    /// basis from the encoded family. Fails with
    /// [`EstimatorError::InvalidSerialization`] on any malformed input;
    /// every structural field — level range, interval, per-level payload
    /// sizes — is validated against the buffer *before* the level vectors
    /// are allocated, so a corrupted or hostile frame can neither panic
    /// the reader nor provoke an oversized allocation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, EstimatorError> {
        Ok(Self::from_bytes_with_window(bytes)?.0)
    }

    /// [`from_bytes`](Self::from_bytes), additionally returning the
    /// [`WindowSliceMeta`] when the frame is a windowed slice (v3);
    /// `None` for plain v1/v2 frames.
    pub fn from_bytes_with_window(
        bytes: &[u8],
    ) -> Result<(Self, Option<WindowSliceMeta>), EstimatorError> {
        let mut reader = Reader::new(bytes);
        let magic = reader.take(MAGIC.len())?;
        if magic != MAGIC {
            return Err(invalid("bad magic bytes"));
        }
        let version = reader.u16()?;
        if !matches!(version, FORMAT_V1 | FORMAT_V2 | FORMAT_V3_WINDOWED) {
            return Err(invalid(&format!(
                "unsupported format version {version} \
                 (expected {FORMAT_V1}, {FORMAT_V2} or {FORMAT_V3_WINDOWED})"
            )));
        }
        let family_tag = reader.u8()?;
        let order = reader.u16()? as usize;
        let family = decode_family(family_tag, order)?;
        let lo = reader.f64()?;
        let hi = reader.f64()?;
        let count = reader.u64()? as usize;
        let j0 = reader.i32()?;
        let j_max = reader.i32()?;
        let window = if version == FORMAT_V3_WINDOWED {
            Some(read_window_meta(&mut reader)?)
        } else {
            None
        };
        // Structural validation before anything is sized off the header:
        // the level range bounds every allocation below (a level at j
        // holds O(2^j) slots), so an absurd j_max must die here, not in
        // the allocator.
        if j0 < 0 || j_max < j0 {
            return Err(invalid(&format!("invalid level range {j0}..={j_max}")));
        }
        if j_max > MAX_SERIALIZED_LEVEL {
            return Err(invalid(&format!(
                "max level {j_max} exceeds the wire cap {MAX_SERIALIZED_LEVEL}"
            )));
        }
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(invalid(&format!("invalid interval [{lo}, {hi}]")));
        }
        // Pre-compute the slot count of every level from cheap translation
        // arithmetic and require the remaining payload to fit *exactly*
        // before constructing the sketch: a length prefix claiming more
        // coefficients than the buffer holds is rejected while the frame
        // is still just bytes.
        let basis = Arc::new(WaveletBasis::new(family)?);
        let slots: Vec<usize> = (j0..=j_max)
            .map(|level| {
                let range = basis.translations_covering(level, lo, hi);
                (*range.end() - *range.start() + 1).max(0) as usize
            })
            .collect();
        // Level list on the wire: the scaling level at j0, then details
        // j0..=j_max — the scaling and first detail level share a slot
        // count (same translation range at the same level).
        let level_count = 1 + slots.len();
        let present: Vec<bool> = if version == FORMAT_V1 {
            vec![true; level_count]
        } else {
            let bitmap = reader.take(presence_bitmap_len(level_count))?;
            let present: Vec<bool> = (0..level_count)
                .map(|i| bitmap[i / 8] & (1 << (i % 8)) != 0)
                .collect();
            // Bits beyond the level count must be clear: set ones would
            // silently change meaning if a later format ever widens the
            // bitmap.
            if (level_count..bitmap.len() * 8).any(|i| bitmap[i / 8] & (1 << (i % 8)) != 0) {
                return Err(invalid("presence bitmap has bits beyond the level count"));
            }
            present
        };
        let expected: usize = std::iter::once(&slots[0])
            .chain(&slots)
            .zip(&present)
            .filter(|(_, &is_present)| is_present)
            .map(|(&slot_count, _)| 8_usize.saturating_add(slot_count.saturating_mul(16)))
            .fold(0_usize, usize::saturating_add);
        if reader.remaining() != expected {
            return Err(invalid(&format!(
                "level payloads hold {} bytes, header implies {expected}",
                reader.remaining()
            )));
        }
        let mut sketch = Self::with_basis(basis, (lo, hi), j0, j_max)?;
        sketch.count = count;
        for (level, &is_present) in std::iter::once(&mut sketch.scaling)
            .chain(&mut sketch.details)
            .zip(&present)
        {
            if is_present {
                read_level(&mut reader, level)?;
            }
            // A freshly deserialized sketch is a new lineage: stamp the
            // levels that carry mass once; all-zero levels (absent v2
            // levels, or v1 levels shipped dense as zeros) keep stamp 0
            // so merging them into another sketch remains the no-op the
            // version guard promises.
            level.version = u64::from(is_present && !level.is_zero());
        }
        if !reader.is_done() {
            return Err(invalid("trailing bytes after the last level"));
        }
        // Consistency between the count and the level payloads: a sketch
        // of zero observations has identically zero sums, so a corrupted
        // count field cannot smuggle phantom mass past an is_empty()
        // check (and the later division by count).
        if count == 0 {
            let has_mass = std::iter::once(&sketch.scaling)
                .chain(&sketch.details)
                .any(|level| !level.is_zero());
            if has_mass {
                return Err(invalid("count is zero but level sums are nonzero"));
            }
        }
        Ok((sketch, window))
    }
}

/// Feeds `values` to `flush` in fixed-size batches so arbitrarily long
/// (or lazy) sources are consumed with bounded memory. The single home of
/// the streaming chunk policy, shared by [`CoefficientSketch::extend`]
/// and the engine crate's streaming ingestion. The trailing (possibly
/// empty) batch is flushed too; batch consumers treat an empty slice as a
/// no-op.
pub fn for_each_batch<I: IntoIterator<Item = f64>>(values: I, mut flush: impl FnMut(&[f64])) {
    const CHUNK: usize = 1024;
    let mut buffer = Vec::with_capacity(CHUNK);
    for x in values {
        buffer.push(x);
        if buffer.len() == CHUNK {
            flush(&buffer);
            buffer.clear();
        }
    }
    flush(&buffer);
}

/// How [`CoefficientSketch::compact`] shrinks a sketch before shipping.
///
/// The cross-validation criterion of Section 5.1 is level-separable, so a
/// detail level whose optimal active set is empty (criterion identically
/// zero) contributes *nothing* to the estimate — shipping its dense sums
/// is pure overhead. At the paper's n = 8192 workload the dense frame is
/// ~265 KB while the CV keeps detail levels only up to `ĵ1 ≈ 5`, so
/// truncating the provably-inactive tail shrinks shipped synopses by
/// roughly an order of magnitude with pointwise-identical estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactionPolicy {
    /// No truncation: every accumulated level is kept (all-zero levels
    /// are still elided by the v2 frame's presence bitmap).
    Dense,
    /// Drop every detail level above the finest one whose cross-validated
    /// active set is nonempty. Lossless: the truncated levels were
    /// thresholded to zero wholesale, so estimates from the compacted
    /// sketch are pointwise identical.
    InactiveTail,
    /// [`InactiveTail`](Self::InactiveTail), then keep dropping the finest
    /// remaining levels until the serialized frame fits `max_bytes`.
    /// Best-effort and potentially lossy: it may drop levels with active
    /// coefficients, and it never drops the scaling level or the coarsest
    /// detail level (the frame may therefore still exceed a very small
    /// budget).
    ByteBudget {
        /// Target frame size in bytes.
        max_bytes: usize,
    },
}

/// Untuned default for the observations per internal ingest chunk of
/// [`CoefficientSketch::push_batch`]: large batches are scattered in
/// slices so the observation chunk (a few KB) stays cache-resident while
/// the scaling level and every detail level sweep it, instead of
/// streaming the whole batch once per level. The first large batch per
/// basis shape races the candidate sizes on real data and caches the
/// winner (see [`crate::autotune`]); this constant only serves batches
/// too small to probe.
pub(crate) const INGEST_CHUNK: usize = 512;

pub(crate) const MAGIC: &[u8] = b"WDSK";
const FORMAT_V1: u16 = 1;
const FORMAT_V2: u16 = 2;
/// Windowed slice frame: the standard header, then [`WindowSliceMeta`],
/// then the v2 compact body.
const FORMAT_V3_WINDOWED: u16 = 3;
/// Tensor-product frame (see `crate::tensor`): the shared magic/family
/// prefix, then a dims header, then per-level dense or coefficient-sparse
/// payloads behind a presence bitmap. Decoded only by
/// `TensorSketch::from_bytes`; the 1-D decoder keeps rejecting it.
pub(crate) const FORMAT_V4_TENSOR: u16 = 4;

/// Hard cap on the detail level a wire frame may declare. A level at `j`
/// holds `O(2^j)` coefficient slots, so the cap bounds what a hostile
/// header can make [`CoefficientSketch::from_bytes`] allocate (~2 × 8 GB
/// of slots at 30 — far above any real synopsis, which the exact
/// byte-fit check then rejects long before allocation anyway, since such
/// a payload cannot actually be present).
pub(crate) const MAX_SERIALIZED_LEVEL: i32 = 30;

/// Serialized size of [`WindowSliceMeta`] in a v3 frame.
const WINDOW_META_LEN: usize = 4 + 4 + 8 + 8;

/// Rejects scale weights that would corrupt the sums: decay weights must
/// be finite and nonnegative (zero is allowed — it merges nothing, which
/// is how a fully decayed slice drops out).
pub(crate) fn validate_merge_weight(weight: f64) -> Result<(), EstimatorError> {
    if !weight.is_finite() || weight < 0.0 {
        return Err(EstimatorError::InvalidParameter {
            message: format!("merge weight must be finite and nonnegative, got {weight}"),
        });
    }
    Ok(())
}

/// The observation count of a `weight`-scaled contribution, rounded to
/// the nearest integer and saturating at `usize::MAX`. Exact at
/// `weight == 1.0` for every representable count (counts are far below
/// 2^53).
pub(crate) fn scaled_count(count: usize, weight: f64) -> usize {
    if weight == 1.0 {
        return count;
    }
    (weight * count as f64).round() as usize
}

fn write_window_meta(out: &mut Vec<u8>, meta: &WindowSliceMeta) {
    out.extend_from_slice(&meta.slice_age.to_le_bytes());
    out.extend_from_slice(&meta.ring_slices.to_le_bytes());
    out.extend_from_slice(&meta.advances.to_le_bytes());
    out.extend_from_slice(&meta.decay_lambda.to_le_bytes());
}

fn read_window_meta(reader: &mut Reader<'_>) -> Result<WindowSliceMeta, EstimatorError> {
    let slice_age = reader.u32()?;
    let ring_slices = reader.u32()?;
    let advances = reader.u64()?;
    let decay_lambda = reader.f64()?;
    if ring_slices == 0 {
        return Err(invalid("windowed frame declares a zero-slice ring"));
    }
    if slice_age >= ring_slices {
        return Err(invalid(&format!(
            "slice age {slice_age} outside the {ring_slices}-slice ring"
        )));
    }
    if !decay_lambda.is_finite() || decay_lambda <= 0.0 || decay_lambda > 1.0 {
        return Err(invalid(&format!(
            "decay factor {decay_lambda} outside (0, 1]"
        )));
    }
    Ok(WindowSliceMeta {
        slice_age,
        ring_slices,
        advances,
        decay_lambda,
    })
}

/// Issues process-unique sketch lineage tags (see
/// `CoefficientSketch::lineage`).
fn next_lineage() -> u64 {
    static LINEAGE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
    LINEAGE.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// Bytes needed for one presence bit per level.
pub(crate) fn presence_bitmap_len(levels: usize) -> usize {
    levels.div_ceil(8)
}

fn write_level(out: &mut Vec<u8>, level: &SketchLevel) {
    out.extend_from_slice(&(level.sums.len() as u64).to_le_bytes());
    for v in &level.sums {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for v in level.sum_squares.iter() {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

pub(crate) fn invalid(message: &str) -> EstimatorError {
    EstimatorError::InvalidSerialization {
        message: message.to_string(),
    }
}

pub(crate) fn encode_family(family: WaveletFamily) -> (u8, usize) {
    match family {
        WaveletFamily::Haar => (0, 1),
        WaveletFamily::Daubechies(n) => (1, n),
        WaveletFamily::Symmlet(n) => (2, n),
    }
}

pub(crate) fn decode_family(tag: u8, order: usize) -> Result<WaveletFamily, EstimatorError> {
    match tag {
        0 => Ok(WaveletFamily::Haar),
        1 => Ok(WaveletFamily::Daubechies(order)),
        2 => Ok(WaveletFamily::Symmlet(order)),
        _ => Err(invalid(&format!("unknown wavelet family tag {tag}"))),
    }
}

fn read_level(reader: &mut Reader<'_>, level: &mut SketchLevel) -> Result<(), EstimatorError> {
    let len = reader.u64()? as usize;
    if len != level.sums.len() {
        return Err(invalid(&format!(
            "level {} stores {} translations, payload has {len}",
            level.level,
            level.sums.len()
        )));
    }
    for slot in &mut level.sums {
        let value = reader.f64()?;
        if !value.is_finite() {
            return Err(invalid(&format!("non-finite sum {value} in level payload")));
        }
        *slot = value;
    }
    let squares = Arc::make_mut(&mut level.sum_squares);
    for slot in squares.iter_mut() {
        let value = reader.f64()?;
        // Sums of squares are nonnegative by construction; anything else
        // is corruption and would poison cross-validation downstream.
        if !value.is_finite() || value < 0.0 {
            return Err(invalid(&format!(
                "invalid sum of squares {value} in level payload"
            )));
        }
        *slot = value;
    }
    Ok(())
}

/// A bounds-checked little-endian cursor over a byte slice.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    offset: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, offset: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], EstimatorError> {
        let end = self
            .offset
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| invalid("payload truncated"))?;
        let slice = &self.bytes[self.offset..end];
        self.offset = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, EstimatorError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, EstimatorError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, EstimatorError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    pub(crate) fn i32(&mut self) -> Result<i32, EstimatorError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, EstimatorError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, EstimatorError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.offset
    }

    pub(crate) fn is_done(&self) -> bool {
        self.offset == self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use wavedens_processes::seeded_rng;

    fn sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = seeded_rng(seed);
        (0..n).map(|_| rng.gen::<f64>()).collect()
    }

    #[test]
    fn merge_matches_single_stream_sketch() {
        let data = sample(900, 1);
        let mut single = CoefficientSketch::sized_for(900).unwrap();
        single.push_batch(&data);
        let mut left = CoefficientSketch::sized_for(900).unwrap();
        let mut right = CoefficientSketch::sized_for(900).unwrap();
        left.push_batch(&data[..311]);
        right.push_batch(&data[311..]);
        left.merge(&right).unwrap();
        assert_eq!(left.count(), single.count());
        let a = left.snapshot().unwrap();
        let b = single.snapshot().unwrap();
        for (la, lb) in
            std::iter::once((a.scaling(), b.scaling())).chain(a.details().iter().zip(b.details()))
        {
            assert_eq!(la.k_start, lb.k_start);
            for (va, vb) in la.values.iter().zip(&lb.values) {
                assert!((va - vb).abs() < 1e-12 * (1.0 + vb.abs()), "{va} vs {vb}");
            }
            for (sa, sb) in la.sum_squares.iter().zip(lb.sum_squares.iter()) {
                assert!((sa - sb).abs() < 1e-12 * (1.0 + sb.abs()), "{sa} vs {sb}");
            }
        }
    }

    #[test]
    fn merge_of_empty_sketch_is_identity() {
        let data = sample(256, 2);
        let mut sketch = CoefficientSketch::sized_for(256).unwrap();
        sketch.push_batch(&data);
        let before = sketch.snapshot().unwrap().scaling().values.clone();
        let empty = CoefficientSketch::sized_for(256).unwrap();
        sketch.merge(&empty).unwrap();
        assert_eq!(sketch.count(), 256);
        assert_eq!(sketch.snapshot().unwrap().scaling().values, before);
    }

    #[test]
    fn incompatible_sketches_are_rejected() {
        let base = CoefficientSketch::new(WaveletFamily::Symmlet(8), (0.0, 1.0), 1, 5).unwrap();
        let mut probe = base.clone();
        let other_family =
            CoefficientSketch::new(WaveletFamily::Daubechies(4), (0.0, 1.0), 1, 5).unwrap();
        let other_interval =
            CoefficientSketch::new(WaveletFamily::Symmlet(8), (0.0, 2.0), 1, 5).unwrap();
        let other_levels =
            CoefficientSketch::new(WaveletFamily::Symmlet(8), (0.0, 1.0), 1, 6).unwrap();
        for other in [&other_family, &other_interval, &other_levels] {
            assert!(matches!(
                probe.merge(other).unwrap_err(),
                EstimatorError::IncompatibleSketches { .. }
            ));
        }
        // The failed merges must not have touched the state.
        assert_eq!(probe.count(), 0);
    }

    #[test]
    fn empty_sketch_cannot_snapshot_or_estimate() {
        let sketch = CoefficientSketch::sized_for(100).unwrap();
        assert!(sketch.is_empty());
        assert!(matches!(
            sketch.snapshot().unwrap_err(),
            EstimatorError::EmptySample
        ));
        assert!(matches!(
            sketch.estimate(ThresholdRule::Soft).unwrap_err(),
            EstimatorError::EmptySample
        ));
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(matches!(
            CoefficientSketch::new(WaveletFamily::Symmlet(8), (1.0, 0.0), 1, 5).unwrap_err(),
            EstimatorError::InvalidInterval { .. }
        ));
        assert!(matches!(
            CoefficientSketch::new(WaveletFamily::Symmlet(8), (0.0, 1.0), 5, 1).unwrap_err(),
            EstimatorError::InvalidLevels { .. }
        ));
        assert!(matches!(
            CoefficientSketch::new(WaveletFamily::Symmlet(8), (0.0, 1.0), -1, 1).unwrap_err(),
            EstimatorError::InvalidLevels { .. }
        ));
    }

    #[test]
    fn serialization_round_trips() {
        let data = sample(500, 3);
        let mut sketch =
            CoefficientSketch::new(WaveletFamily::Symmlet(8), (0.0, 1.0), 1, 6).unwrap();
        sketch.push_batch(&data);
        let bytes = sketch.to_bytes();
        assert_eq!(bytes.len(), sketch.serialized_len());
        let restored = CoefficientSketch::from_bytes(&bytes).unwrap();
        assert_eq!(restored.count(), sketch.count());
        assert_eq!(restored.interval(), sketch.interval());
        assert_eq!(restored.coarse_level(), sketch.coarse_level());
        assert_eq!(restored.max_level(), sketch.max_level());
        let a = sketch.estimate(ThresholdRule::Soft).unwrap();
        let b = restored.estimate(ThresholdRule::Soft).unwrap();
        for i in 0..=100 {
            let x = i as f64 / 100.0;
            assert_eq!(a.evaluate(x), b.evaluate(x), "mismatch at {x}");
        }
        // A deserialized sketch keeps accumulating and merging.
        let mut restored = restored;
        restored.push_batch(&sample(100, 4));
        assert_eq!(restored.count(), 600);
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        let mut sketch = CoefficientSketch::new(WaveletFamily::Haar, (0.0, 1.0), 0, 1).unwrap();
        sketch.push_batch(&sample(32, 5));
        let bytes = sketch.to_bytes();
        // Truncations at every prefix length must error, never panic.
        for len in 0..bytes.len() {
            assert!(
                CoefficientSketch::from_bytes(&bytes[..len]).is_err(),
                "truncation to {len} bytes must be rejected"
            );
        }
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            CoefficientSketch::from_bytes(&bad).unwrap_err(),
            EstimatorError::InvalidSerialization { .. }
        ));
        // Bad version.
        let mut bad = bytes.clone();
        bad[4] = 0xFF;
        assert!(CoefficientSketch::from_bytes(&bad).is_err());
        // Bad family tag.
        let mut bad = bytes.clone();
        bad[6] = 9;
        assert!(CoefficientSketch::from_bytes(&bad).is_err());
        // Trailing garbage.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(CoefficientSketch::from_bytes(&bad).is_err());
        // A corrupted count (zero) with intact nonzero level sums must
        // not deserialize into a sketch that claims to be empty: the
        // count field sits at bytes 25..33 of the header.
        let mut bad = bytes.clone();
        bad[25..33].copy_from_slice(&0_u64.to_le_bytes());
        assert!(CoefficientSketch::from_bytes(&bad).is_err());
        // Non-finite sums are rejected; the first scaling sum starts
        // right after the header (41 bytes), the presence bitmap (1 byte
        // for the three levels of this sketch) and the level length (8).
        let mut bad = bytes.clone();
        bad[50..58].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(CoefficientSketch::from_bytes(&bad).is_err());
        // Negative sums of squares are rejected (they are sums of squares
        // of reals). The squares block follows the sums block.
        let squares_offset = 50 + 8 * sketch.snapshot().unwrap().scaling().len();
        let mut bad = bytes.clone();
        bad[squares_offset..squares_offset + 8].copy_from_slice(&(-1.0_f64).to_le_bytes());
        assert!(CoefficientSketch::from_bytes(&bad).is_err());
        // Presence-bitmap bits beyond the level count must be clear (the
        // sketch has 3 levels, so bits 3..8 of byte 41 are reserved).
        let mut bad = bytes.clone();
        bad[41] |= 1 << 5;
        assert!(CoefficientSketch::from_bytes(&bad).is_err());
    }

    #[test]
    fn level_versions_track_mutations() {
        let mut sketch =
            CoefficientSketch::new(WaveletFamily::Symmlet(8), (0.0, 1.0), 1, 4).unwrap();
        assert!(sketch.detail_versions().iter().all(|&v| v == 0));
        sketch.push_batch(&sample(32, 11));
        let after_one = sketch.detail_versions();
        assert!(after_one.iter().all(|&v| v == 1));
        sketch.push_batch(&sample(32, 12));
        assert!(sketch.detail_versions().iter().all(|&v| v == 2));
        // Merging an untouched sketch is a no-op and must not move stamps.
        let empty = CoefficientSketch::new(WaveletFamily::Symmlet(8), (0.0, 1.0), 1, 4).unwrap();
        sketch.merge(&empty).unwrap();
        assert!(sketch.detail_versions().iter().all(|&v| v == 2));
        // Merging real data adds the other sketch's stamps.
        let mut other =
            CoefficientSketch::new(WaveletFamily::Symmlet(8), (0.0, 1.0), 1, 4).unwrap();
        other.push_batch(&sample(16, 13));
        sketch.merge(&other).unwrap();
        assert!(sketch.detail_versions().iter().all(|&v| v == 3));
    }

    #[test]
    fn copy_from_reproduces_the_source_state() {
        let mut source = CoefficientSketch::sized_for(400).unwrap();
        source.push_batch(&sample(400, 14));
        let mut target = CoefficientSketch::sized_for(400).unwrap();
        target.push_batch(&sample(100, 15)); // stale contents to overwrite
        let stale_versions = target.detail_versions();
        target.copy_from(&source).unwrap();
        assert_eq!(target.count(), source.count());
        // The target keeps its own lineage, so its stamps must advance
        // strictly past both its stale state and the copied source.
        for ((new, old), src) in target
            .detail_versions()
            .iter()
            .zip(&stale_versions)
            .zip(source.detail_versions())
        {
            assert!(
                *new > *old && *new >= src,
                "{new} vs stale {old} / source {src}"
            );
        }
        let a = target.estimate(ThresholdRule::Soft).unwrap();
        let b = source.estimate(ThresholdRule::Soft).unwrap();
        for i in 0..=50 {
            let x = i as f64 / 50.0;
            assert_eq!(a.evaluate(x), b.evaluate(x));
        }
        // Incompatible targets are rejected untouched.
        let mut incompatible =
            CoefficientSketch::new(WaveletFamily::Haar, (0.0, 1.0), 0, 1).unwrap();
        assert!(matches!(
            incompatible.copy_from(&source).unwrap_err(),
            EstimatorError::IncompatibleSketches { .. }
        ));
    }

    #[test]
    fn estimate_with_cache_matches_plain_estimate() {
        let mut sketch = CoefficientSketch::sized_for(600).unwrap();
        let mut cache = crate::cv::CvCache::new();
        let data = sample(720, 16);
        sketch.push_batch(&data[..600]);
        for (i, chunk) in data[600..].chunks(24).enumerate() {
            let cached = sketch
                .estimate_with_cache(ThresholdRule::Soft, &mut cache)
                .unwrap();
            let full = sketch.estimate(ThresholdRule::Soft).unwrap();
            assert_eq!(cached.highest_level(), full.highest_level(), "batch {i}");
            assert_eq!(cached.thresholds(), full.thresholds(), "batch {i}");
            for j in 0..=60 {
                let x = j as f64 / 60.0;
                assert_eq!(cached.evaluate(x), full.evaluate(x), "batch {i}, x = {x}");
            }
            sketch.push_batch(chunk);
        }
    }

    /// Regression: two same-shaped sketches with coincidentally equal
    /// version stamps and sample sizes must never alias in a shared
    /// `CvCache` — each sketch instance carries a unique lineage tag, so
    /// the cache discards results cached for a different sketch.
    #[test]
    fn shared_cv_cache_never_aliases_distinct_sketches() {
        let mut cache = crate::cv::CvCache::new();
        let mut a = CoefficientSketch::sized_for(300).unwrap();
        a.push_batch(&sample(300, 21));
        let mut b = CoefficientSketch::sized_for(300).unwrap();
        b.push_batch(&sample(300, 22));
        // Same shape, same count, identical (all-1) version stamps.
        assert_eq!(a.detail_versions(), b.detail_versions());
        assert_eq!(a.count(), b.count());
        for _ in 0..2 {
            for sketch in [&a, &b] {
                let cached = sketch
                    .estimate_with_cache(ThresholdRule::Soft, &mut cache)
                    .unwrap();
                let full = sketch.estimate(ThresholdRule::Soft).unwrap();
                assert_eq!(cached.thresholds(), full.thresholds());
                for i in 0..=40 {
                    let x = i as f64 / 40.0;
                    assert_eq!(cached.evaluate(x), full.evaluate(x), "x = {x}");
                }
            }
        }
        // A clone is a distinct instance too: diverging it and reusing the
        // original's cache must not replay the original's selections.
        let mut c = a.clone();
        c.push_batch(&sample(1, 23));
        let mut c2 = a.clone();
        c2.push_batch(&sample(1, 24));
        assert_eq!(c.detail_versions(), c2.detail_versions());
        for sketch in [&c, &c2] {
            let cached = sketch
                .estimate_with_cache(ThresholdRule::Soft, &mut cache)
                .unwrap();
            let full = sketch.estimate(ThresholdRule::Soft).unwrap();
            assert_eq!(cached.thresholds(), full.thresholds());
        }
    }

    #[test]
    fn inactive_tail_compaction_is_lossless_and_much_smaller() {
        // Smooth data at a generous level range: the CV zeroes out every
        // fine level, so the inactive tail dominates the dense frame.
        let mut sketch = CoefficientSketch::sized_for(4096).unwrap();
        sketch.push_batch(&sample(4096, 17));
        for rule in [ThresholdRule::Soft, ThresholdRule::Hard] {
            let compacted = sketch
                .compact(CompactionPolicy::InactiveTail, rule)
                .unwrap();
            assert!(compacted.max_level() < sketch.max_level());
            assert_eq!(compacted.count(), sketch.count());
            let dense_bytes = sketch.to_bytes().len();
            let compact_bytes = compacted.to_bytes().len();
            assert!(
                compact_bytes * 5 <= dense_bytes,
                "{rule:?}: {compact_bytes} vs dense {dense_bytes}"
            );
            // Ship and restore: the estimate is pointwise identical, with
            // identical thresholds over the retained levels and the same ĵ1.
            let restored = CoefficientSketch::from_bytes(&compacted.to_bytes()).unwrap();
            let original = sketch.estimate(rule).unwrap();
            let roundtrip = restored.estimate(rule).unwrap();
            assert_eq!(original.highest_level(), roundtrip.highest_level());
            for (a, b) in roundtrip
                .thresholds()
                .levels
                .iter()
                .zip(&original.thresholds().levels)
            {
                assert_eq!(a, b);
            }
            for i in 0..=200 {
                let x = i as f64 / 200.0;
                assert_eq!(original.evaluate(x), roundtrip.evaluate(x), "x = {x}");
            }
        }
        // Dense policy is the identity.
        let dense = sketch
            .compact(CompactionPolicy::Dense, ThresholdRule::Soft)
            .unwrap();
        assert_eq!(dense.max_level(), sketch.max_level());
    }

    #[test]
    fn byte_budget_compaction_fits_the_budget_best_effort() {
        let mut sketch = CoefficientSketch::sized_for(2048).unwrap();
        sketch.push_batch(&sample(2048, 18));
        let inactive = sketch
            .compact(CompactionPolicy::InactiveTail, ThresholdRule::Soft)
            .unwrap();
        let budget = inactive.to_bytes().len() / 2;
        let squeezed = sketch
            .compact(
                CompactionPolicy::ByteBudget { max_bytes: budget },
                ThresholdRule::Soft,
            )
            .unwrap();
        assert!(squeezed.to_bytes().len() <= budget, "budget {budget}");
        assert!(squeezed.max_level() < inactive.max_level());
        // An unsatisfiable budget still keeps the scaling level and one
        // detail level (best effort, documented).
        let minimal = sketch
            .compact(
                CompactionPolicy::ByteBudget { max_bytes: 1 },
                ThresholdRule::Soft,
            )
            .unwrap();
        assert_eq!(minimal.max_level(), minimal.coarse_level());
        assert!(minimal.estimate(ThresholdRule::Soft).is_ok());
        // Compaction of an empty sketch is a structural no-op.
        let empty = CoefficientSketch::sized_for(128).unwrap();
        let compacted = empty
            .compact(CompactionPolicy::InactiveTail, ThresholdRule::Soft)
            .unwrap();
        assert_eq!(compacted.max_level(), empty.max_level());
    }

    #[test]
    fn v1_frames_are_still_readable() {
        let mut sketch =
            CoefficientSketch::new(WaveletFamily::Symmlet(8), (0.0, 1.0), 1, 6).unwrap();
        sketch.push_batch(&sample(300, 19));
        let v1 = sketch.to_bytes_v1();
        let v2 = sketch.to_bytes();
        assert_eq!(u16::from_le_bytes([v1[4], v1[5]]), 1);
        assert_eq!(u16::from_le_bytes([v2[4], v2[5]]), 2);
        let from_v1 = CoefficientSketch::from_bytes(&v1).unwrap();
        let from_v2 = CoefficientSketch::from_bytes(&v2).unwrap();
        assert_eq!(from_v1.count(), sketch.count());
        let a = from_v1.estimate(ThresholdRule::Soft).unwrap();
        let b = from_v2.estimate(ThresholdRule::Soft).unwrap();
        let c = sketch.estimate(ThresholdRule::Soft).unwrap();
        for i in 0..=100 {
            let x = i as f64 / 100.0;
            assert_eq!(a.evaluate(x), c.evaluate(x), "v1 mismatch at {x}");
            assert_eq!(b.evaluate(x), c.evaluate(x), "v2 mismatch at {x}");
        }
        // v1 truncations are rejected like v2 ones.
        for len in [0, 10, 40, v1.len() - 1] {
            assert!(CoefficientSketch::from_bytes(&v1[..len]).is_err());
        }
    }

    #[test]
    fn empty_and_zero_levels_serialize_as_absent() {
        // An empty sketch is all presence bits cleared: header + bitmap.
        let empty = CoefficientSketch::new(WaveletFamily::Symmlet(8), (0.0, 1.0), 1, 9).unwrap();
        let bytes = empty.to_bytes();
        assert!(
            bytes.len() < 64,
            "empty sketch frame should be tiny, got {} bytes",
            bytes.len()
        );
        let restored = CoefficientSketch::from_bytes(&bytes).unwrap();
        assert!(restored.is_empty());
        assert_eq!(restored.max_level(), 9);
        // The dense v1 frame of the same empty sketch ships every zero.
        assert!(empty.to_bytes_v1().len() > 10_000);
    }

    #[test]
    fn estimate_matches_streaming_pipeline() {
        let data = sample(700, 6);
        let mut sketch = CoefficientSketch::sized_for(700).unwrap();
        sketch.extend(data.iter().copied());
        let estimate = sketch.estimate(ThresholdRule::Soft).unwrap();
        assert_eq!(estimate.sample_size(), 700);
        assert!((estimate.integral() - 1.0).abs() < 0.1);
    }

    #[test]
    fn merge_scaled_at_weight_one_is_bitwise_merge() {
        let mut a = CoefficientSketch::sized_for(512).unwrap();
        a.push_batch(&sample(512, 31));
        let mut b = CoefficientSketch::sized_for(512).unwrap();
        b.push_batch(&sample(256, 32));
        let mut via_merge = a.clone();
        via_merge.merge(&b).unwrap();
        let mut via_scaled = a.clone();
        via_scaled.merge_scaled(&b, 1.0).unwrap();
        assert_eq!(via_scaled.count(), via_merge.count());
        assert_eq!(via_scaled.detail_versions(), via_merge.detail_versions());
        assert_eq!(
            via_scaled.to_bytes(),
            via_merge.to_bytes(),
            "merge_scaled at weight 1 must be bitwise identical to merge"
        );
        // copy_scaled_from at weight 1 is likewise bitwise copy_from.
        let mut via_copy = CoefficientSketch::sized_for(512).unwrap();
        via_copy.copy_from(&b).unwrap();
        let mut via_scaled_copy = CoefficientSketch::sized_for(512).unwrap();
        via_scaled_copy.copy_scaled_from(&b, 1.0).unwrap();
        assert_eq!(via_scaled_copy.to_bytes(), via_copy.to_bytes());
    }

    #[test]
    fn merge_scaled_scales_mass_but_preserves_the_means() {
        // Uniformly down-weighting one sketch scales its sums *and* its
        // count, so the empirical coefficients (sample means) — and hence
        // the density estimate — are untouched: only its voting weight in
        // later merges shrinks.
        let mut source = CoefficientSketch::sized_for(400).unwrap();
        source.push_batch(&sample(400, 33));
        let mut half = CoefficientSketch::sized_for(400).unwrap();
        half.copy_scaled_from(&source, 0.5).unwrap();
        assert_eq!(half.count(), 200);
        let full = source.snapshot().unwrap();
        let scaled = half.snapshot().unwrap();
        for (s, f) in scaled.scaling().values.iter().zip(&full.scaling().values) {
            assert!((s - f).abs() < 1e-12 * (1.0 + f.abs()), "{s} vs {f}");
        }
        // The shrunk weight shows up when merging against fresh data: a
        // half-weighted copy pulls the blend only half as hard.
        let mut recent = CoefficientSketch::sized_for(400).unwrap();
        recent.push_batch(&sample(100, 37));
        let mut blend = recent.clone();
        blend.merge_scaled(&source, 0.5).unwrap();
        assert_eq!(blend.count(), 300);
        // Merging an empty sketch at any weight stays a no-op.
        let empty = CoefficientSketch::sized_for(400).unwrap();
        let stamps = half.detail_versions();
        half.merge_scaled(&empty, 0.25).unwrap();
        assert_eq!(half.detail_versions(), stamps);
        assert_eq!(half.count(), 200);
    }

    #[test]
    fn invalid_merge_weights_are_rejected_untouched() {
        let mut source = CoefficientSketch::sized_for(100).unwrap();
        source.push_batch(&sample(100, 34));
        let mut target = source.clone();
        let before = target.to_bytes();
        for weight in [f64::NAN, f64::INFINITY, -0.5] {
            assert!(matches!(
                target.merge_scaled(&source, weight).unwrap_err(),
                EstimatorError::InvalidParameter { .. }
            ));
            assert!(matches!(
                target.copy_scaled_from(&source, weight).unwrap_err(),
                EstimatorError::InvalidParameter { .. }
            ));
        }
        assert_eq!(
            target.to_bytes(),
            before,
            "failed scaled merges must not mutate"
        );
    }

    #[test]
    fn windowed_frames_round_trip_and_validate_their_metadata() {
        let mut sketch = CoefficientSketch::sized_for(300).unwrap();
        sketch.push_batch(&sample(300, 35));
        let meta = WindowSliceMeta {
            slice_age: 2,
            ring_slices: 8,
            advances: 41,
            decay_lambda: 0.875,
        };
        let frame = sketch.to_bytes_with_window(&meta);
        assert_eq!(u16::from_le_bytes([frame[4], frame[5]]), 3);
        let (restored, restored_meta) = CoefficientSketch::from_bytes_with_window(&frame).unwrap();
        assert_eq!(restored_meta, Some(meta));
        assert_eq!(restored.count(), 300);
        assert_eq!(restored.to_bytes(), sketch.to_bytes());
        // Plain v2 frames carry no metadata.
        let (_, none_meta) = CoefficientSketch::from_bytes_with_window(&sketch.to_bytes()).unwrap();
        assert_eq!(none_meta, None);
        // Corrupted metadata fields are rejected: the 24-byte window block
        // follows the 41-byte header (slice_age, ring_slices, advances,
        // decay_lambda).
        let mut bad = frame.clone();
        bad[45..49].copy_from_slice(&0_u32.to_le_bytes()); // ring_slices = 0
        assert!(CoefficientSketch::from_bytes(&bad).is_err());
        let mut bad = frame.clone();
        bad[41..45].copy_from_slice(&9_u32.to_le_bytes()); // slice_age ≥ ring
        assert!(CoefficientSketch::from_bytes(&bad).is_err());
        let mut bad = frame.clone();
        bad[57..65].copy_from_slice(&2.0_f64.to_le_bytes()); // λ out of (0, 1]
        assert!(CoefficientSketch::from_bytes(&bad).is_err());
    }

    /// Mini-fuzz over the decoder: every single-bit flip and every
    /// truncation of valid v1, v2 and v3 frames must come back as
    /// `Ok`/`Err` — never a panic, and never an absurd allocation (the
    /// decoder validates the level geometry against the byte length
    /// before sizing any buffer).
    #[test]
    fn frame_decoder_survives_bit_flips_and_truncations() {
        let mut sketch = CoefficientSketch::new(WaveletFamily::Haar, (0.0, 1.0), 0, 2).unwrap();
        sketch.push_batch(&sample(64, 36));
        let meta = WindowSliceMeta {
            slice_age: 0,
            ring_slices: 4,
            advances: 7,
            decay_lambda: 1.0,
        };
        let frames = [
            sketch.to_bytes_v1(),
            sketch.to_bytes(),
            sketch.to_bytes_with_window(&meta),
        ];
        for frame in &frames {
            for len in 0..frame.len() {
                let _ = CoefficientSketch::from_bytes(&frame[..len]);
            }
            for offset in 0..frame.len() {
                for bit in 0..8 {
                    let mut mutated = frame.clone();
                    mutated[offset] ^= 1 << bit;
                    if let Ok(restored) = CoefficientSketch::from_bytes(&mutated) {
                        // A surviving mutation (e.g. a flipped sum bit)
                        // must still decode into a self-consistent sketch.
                        let _ = restored.count();
                    }
                }
            }
        }
    }
}
