//! Mergeable coefficient sketches — the accumulation state of the
//! estimator as a first-class, distributable object.
//!
//! The empirical coefficients `α̂_{j,k}`, `β̂_{j,k}` are sample means of
//! `δ_{j,k}(X_i)`, and the cross-validation criteria additionally need the
//! per-coefficient sums of squares. The *entire* estimator state is
//! therefore a classic mergeable sketch: per-level running sums, running
//! sums of squares and an observation count. Two sketches over the same
//! basis/interval/levels combine by plain addition of their sums (the
//! "weighted recombination" of the means happens implicitly when the
//! merged sums are divided by the merged count), which is **exactly**
//! equivalent to a single-stream fit on the concatenated data up to
//! floating-point summation order.
//!
//! This module separates that accumulation state ([`CoefficientSketch`])
//! from model selection (cross-validation + thresholding, still performed
//! downstream on a [`snapshot`](CoefficientSketch::snapshot)). Both the
//! streaming estimator and the batch coefficient construction are thin
//! layers over it, and the `wavedens-engine` crate builds sharded ingest
//! and multi-attribute synopsis catalogs on top.
//!
//! Sketches also (de)serialize to a compact little-endian binary form
//! ([`to_bytes`](CoefficientSketch::to_bytes) /
//! [`from_bytes`](CoefficientSketch::from_bytes)) so synopses can be
//! shipped between nodes and merged where they land.

use crate::coefficients::{EmpiricalCoefficients, Generator, LevelAccumulator, LevelCoefficients};
use crate::cv::cross_validate;
use crate::error::EstimatorError;
use crate::estimator::{ThresholdedLevel, WaveletDensityEstimate};
use crate::threshold::{ThresholdProfile, ThresholdRule};
use std::sync::Arc;
use wavedens_wavelets::{WaveletBasis, WaveletFamily};

/// Running sums for one resolution level.
///
/// `sum_squares` sits behind an [`Arc`] so that snapshotting hands
/// cross-validation a read-only view without copying the vector; ingestion
/// and merging use copy-on-write ([`Arc::make_mut`]), which only actually
/// clones when a snapshot from a previous estimate is still alive.
#[derive(Debug, Clone)]
struct SketchLevel {
    level: i32,
    generator: Generator,
    k_start: i64,
    sums: Vec<f64>,
    sum_squares: Arc<Vec<f64>>,
}

impl SketchLevel {
    fn new(basis: &WaveletBasis, interval: (f64, f64), level: i32, generator: Generator) -> Self {
        let range = basis.translations_covering(level, interval.0, interval.1);
        let k_start = *range.start();
        let count = (*range.end() - k_start + 1).max(0) as usize;
        Self {
            level,
            generator,
            k_start,
            sums: vec![0.0; count],
            sum_squares: Arc::new(vec![0.0; count]),
        }
    }

    fn push_batch(&mut self, basis: &WaveletBasis, values: &[f64]) {
        if values.is_empty() {
            return;
        }
        let accumulator = LevelAccumulator::new(basis, self.generator, self.level, self.k_start);
        let squares = Arc::make_mut(&mut self.sum_squares);
        for &x in values {
            accumulator.scatter(x, &mut self.sums, squares);
        }
    }

    fn merge(&mut self, other: &Self) {
        debug_assert_eq!(self.sums.len(), other.sums.len());
        for (acc, v) in self.sums.iter_mut().zip(&other.sums) {
            *acc += v;
        }
        let squares = Arc::make_mut(&mut self.sum_squares);
        for (acc, v) in squares.iter_mut().zip(other.sum_squares.iter()) {
            *acc += v;
        }
    }

    fn snapshot(&self, n: usize) -> LevelCoefficients {
        LevelCoefficients {
            level: self.level,
            generator: self.generator,
            k_start: self.k_start,
            values: self.sums.iter().map(|s| s / n as f64).collect(),
            sum_squares: Arc::clone(&self.sum_squares),
        }
    }
}

/// The mergeable accumulation state of the wavelet density estimator:
/// per-level running sums `Σ_i δ_{j,k}(X_i)`, running sums of squares
/// `Σ_i δ_{j,k}(X_i)²` and the observation count.
///
/// * [`push`](Self::push) / [`push_batch`](Self::push_batch) ingest
///   observations;
/// * [`merge`](Self::merge) combines two sketches over the same
///   configuration, exactly equivalent to a single-stream fit on the
///   concatenation of their inputs;
/// * [`snapshot`](Self::snapshot) produces the [`EmpiricalCoefficients`]
///   that the cross-validation + thresholding pipeline consumes, and
///   [`estimate`](Self::estimate) runs that pipeline;
/// * [`to_bytes`](Self::to_bytes) / [`from_bytes`](Self::from_bytes)
///   round-trip a compact binary form for shipping between nodes.
#[derive(Debug, Clone)]
pub struct CoefficientSketch {
    basis: Arc<WaveletBasis>,
    interval: (f64, f64),
    count: usize,
    scaling: SketchLevel,
    details: Vec<SketchLevel>,
}

impl CoefficientSketch {
    /// Creates an empty sketch on `interval` with scaling level `j0` and
    /// detail levels `j0..=j_max`.
    pub fn new(
        family: WaveletFamily,
        interval: (f64, f64),
        j0: i32,
        j_max: i32,
    ) -> Result<Self, EstimatorError> {
        Self::with_basis(Arc::new(WaveletBasis::new(family)?), interval, j0, j_max)
    }

    /// Creates an empty sketch reusing an existing basis (avoids
    /// re-tabulating `φ`/`ψ` when many sketches share one).
    pub fn with_basis(
        basis: Arc<WaveletBasis>,
        interval: (f64, f64),
        j0: i32,
        j_max: i32,
    ) -> Result<Self, EstimatorError> {
        if interval.0 >= interval.1 || !interval.0.is_finite() || !interval.1.is_finite() {
            return Err(EstimatorError::InvalidInterval {
                lo: interval.0,
                hi: interval.1,
            });
        }
        if j0 < 0 {
            return Err(EstimatorError::InvalidLevels {
                message: format!("j0 must be nonnegative, got {j0}"),
            });
        }
        if j_max < j0 {
            return Err(EstimatorError::InvalidLevels {
                message: format!("j_max = {j_max} is smaller than j0 = {j0}"),
            });
        }
        let scaling = SketchLevel::new(&basis, interval, j0, Generator::Scaling);
        let details = (j0..=j_max)
            .map(|j| SketchLevel::new(&basis, interval, j, Generator::Wavelet))
            .collect();
        Ok(Self {
            basis,
            interval,
            count: 0,
            scaling,
            details,
        })
    }

    /// Creates an empty sketch on `[0, 1]` sized for roughly `expected_n`
    /// observations with the paper's defaults (Symmlet 8, level rules of
    /// Theorem 3.1 / Section 5.1).
    pub fn sized_for(expected_n: usize) -> Result<Self, EstimatorError> {
        let n = expected_n.max(2);
        let j0 = crate::estimator::default_coarse_level(n, 8);
        let j_max = crate::estimator::cv_max_level(n);
        Self::new(WaveletFamily::Symmlet(8), (0.0, 1.0), j0, j_max)
    }

    /// The wavelet basis the sketch accumulates in.
    pub fn basis(&self) -> &Arc<WaveletBasis> {
        &self.basis
    }

    /// The estimation interval.
    pub fn interval(&self) -> (f64, f64) {
        self.interval
    }

    /// Number of observations accumulated.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether the sketch has seen no observations.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The coarse scaling level `j0`.
    pub fn coarse_level(&self) -> i32 {
        self.scaling.level
    }

    /// The highest detail level accumulated.
    pub fn max_level(&self) -> i32 {
        self.details
            .last()
            .map(|l| l.level)
            .unwrap_or(self.scaling.level)
    }

    /// Ingests one observation.
    pub fn push(&mut self, x: f64) {
        self.push_batch(std::slice::from_ref(&x));
    }

    /// Ingests a batch of observations with the per-level constants
    /// (`2^j`, support length, translation window) hoisted out of the
    /// per-observation loop. Numerically identical to pushing the values
    /// one by one.
    pub fn push_batch(&mut self, values: &[f64]) {
        self.count += values.len();
        self.scaling.push_batch(&self.basis, values);
        for level in &mut self.details {
            level.push_batch(&self.basis, values);
        }
    }

    /// Ingests many observations via [`push_batch`](Self::push_batch),
    /// buffering the iterator in fixed-size chunks so arbitrarily long
    /// (or lazy) sources ingest with bounded memory.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for_each_batch(values, |chunk| self.push_batch(chunk));
    }

    /// Checks that `other` accumulates the same coefficients as `self`
    /// (same wavelet family, interval and resolution levels).
    pub fn is_compatible(&self, other: &Self) -> Result<(), EstimatorError> {
        let incompatible = |message: String| EstimatorError::IncompatibleSketches { message };
        if self.basis.family() != other.basis.family() {
            return Err(incompatible(format!(
                "wavelet families differ: {} vs {}",
                self.basis.family().name(),
                other.basis.family().name()
            )));
        }
        if self.interval != other.interval {
            return Err(incompatible(format!(
                "intervals differ: [{}, {}] vs [{}, {}]",
                self.interval.0, self.interval.1, other.interval.0, other.interval.1
            )));
        }
        if self.coarse_level() != other.coarse_level() || self.max_level() != other.max_level() {
            return Err(incompatible(format!(
                "resolution levels differ: {}..={} vs {}..={}",
                self.coarse_level(),
                self.max_level(),
                other.coarse_level(),
                other.max_level()
            )));
        }
        Ok(())
    }

    /// Folds another sketch into this one. After the merge, `self` is
    /// exactly the sketch a single stream over the concatenation of both
    /// inputs would have produced (the raw sums and sums of squares add;
    /// the count-weighted recombination of the coefficient means happens
    /// when [`snapshot`](Self::snapshot) divides by the merged count).
    ///
    /// Fails with [`EstimatorError::IncompatibleSketches`] when the two
    /// sketches do not accumulate the same coefficients.
    pub fn merge(&mut self, other: &Self) -> Result<(), EstimatorError> {
        self.is_compatible(other)?;
        self.count += other.count;
        self.scaling.merge(&other.scaling);
        for (mine, theirs) in self.details.iter_mut().zip(&other.details) {
            mine.merge(theirs);
        }
        Ok(())
    }

    /// The empirical coefficients of everything accumulated so far — the
    /// input of the cross-validation + thresholding pipeline. Cheap: the
    /// sums of squares are shared by [`Arc`], only the coefficient means
    /// are materialised.
    pub fn snapshot(&self) -> Result<EmpiricalCoefficients, EstimatorError> {
        if self.count == 0 {
            return Err(EstimatorError::EmptySample);
        }
        Ok(EmpiricalCoefficients::from_parts(
            Arc::clone(&self.basis),
            self.count,
            self.interval,
            self.scaling.snapshot(self.count),
            self.details
                .iter()
                .map(|l| l.snapshot(self.count))
                .collect(),
        ))
    }

    /// Runs the downstream model-selection pipeline (cross-validated
    /// per-level thresholds, data-driven `ĵ1`, thresholding) on the
    /// current accumulation state — equivalent to a batch CV fit with the
    /// same levels on the concatenation of everything pushed or merged in.
    pub fn estimate(&self, rule: ThresholdRule) -> Result<WaveletDensityEstimate, EstimatorError> {
        let coefficients = self.snapshot()?;
        let cv = cross_validate(&coefficients, rule);
        let profile: ThresholdProfile = cv.thresholds();
        let thresholded: Vec<ThresholdedLevel> = coefficients
            .details()
            .iter()
            .map(|level| {
                ThresholdedLevel::from_coefficients(level, rule, profile.level(level.level))
            })
            .collect();
        Ok(WaveletDensityEstimate::from_parts(
            Arc::clone(&self.basis),
            self.interval,
            self.count,
            rule,
            coefficients.scaling().clone(),
            thresholded,
            profile,
            cv.j1,
            Some(cv),
        ))
    }

    /// Serializes the sketch to a compact little-endian binary form
    /// (magic + version header, wavelet family, interval, count, levels,
    /// then the raw sums and sums of squares of every level).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        let (family_tag, order) = encode_family(self.basis.family());
        out.push(family_tag);
        out.extend_from_slice(&(order as u16).to_le_bytes());
        out.extend_from_slice(&self.interval.0.to_le_bytes());
        out.extend_from_slice(&self.interval.1.to_le_bytes());
        out.extend_from_slice(&(self.count as u64).to_le_bytes());
        out.extend_from_slice(&self.coarse_level().to_le_bytes());
        out.extend_from_slice(&self.max_level().to_le_bytes());
        for level in std::iter::once(&self.scaling).chain(&self.details) {
            out.extend_from_slice(&(level.sums.len() as u64).to_le_bytes());
            for v in &level.sums {
                out.extend_from_slice(&v.to_le_bytes());
            }
            for v in level.sum_squares.iter() {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    fn serialized_len(&self) -> usize {
        let header = MAGIC.len() + 2 + 3 + 16 + 8 + 8;
        let levels: usize = std::iter::once(&self.scaling)
            .chain(&self.details)
            .map(|l| 8 + 16 * l.sums.len())
            .sum();
        header + levels
    }

    /// Deserializes a sketch previously produced by
    /// [`to_bytes`](Self::to_bytes), rebuilding the wavelet basis from the
    /// encoded family. Fails with
    /// [`EstimatorError::InvalidSerialization`] on any malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, EstimatorError> {
        let mut reader = Reader::new(bytes);
        let magic = reader.take(MAGIC.len())?;
        if magic != MAGIC {
            return Err(invalid("bad magic bytes"));
        }
        let version = reader.u16()?;
        if version != FORMAT_VERSION {
            return Err(invalid(&format!(
                "unsupported format version {version} (expected {FORMAT_VERSION})"
            )));
        }
        let family_tag = reader.u8()?;
        let order = reader.u16()? as usize;
        let family = decode_family(family_tag, order)?;
        let lo = reader.f64()?;
        let hi = reader.f64()?;
        let count = reader.u64()? as usize;
        let j0 = reader.i32()?;
        let j_max = reader.i32()?;
        let mut sketch = Self::new(family, (lo, hi), j0, j_max)?;
        sketch.count = count;
        read_level(&mut reader, &mut sketch.scaling)?;
        for level in &mut sketch.details {
            read_level(&mut reader, level)?;
        }
        if !reader.is_done() {
            return Err(invalid("trailing bytes after the last level"));
        }
        // Consistency between the count and the level payloads: a sketch
        // of zero observations has identically zero sums, so a corrupted
        // count field cannot smuggle phantom mass past an is_empty()
        // check (and the later division by count).
        if count == 0 {
            let has_mass = std::iter::once(&sketch.scaling)
                .chain(&sketch.details)
                .any(|level| {
                    level.sums.iter().any(|v| *v != 0.0)
                        || level.sum_squares.iter().any(|v| *v != 0.0)
                });
            if has_mass {
                return Err(invalid("count is zero but level sums are nonzero"));
            }
        }
        Ok(sketch)
    }
}

/// Feeds `values` to `flush` in fixed-size batches so arbitrarily long
/// (or lazy) sources are consumed with bounded memory. The single home of
/// the streaming chunk policy, shared by [`CoefficientSketch::extend`]
/// and the engine crate's streaming ingestion. The trailing (possibly
/// empty) batch is flushed too; batch consumers treat an empty slice as a
/// no-op.
pub fn for_each_batch<I: IntoIterator<Item = f64>>(values: I, mut flush: impl FnMut(&[f64])) {
    const CHUNK: usize = 1024;
    let mut buffer = Vec::with_capacity(CHUNK);
    for x in values {
        buffer.push(x);
        if buffer.len() == CHUNK {
            flush(&buffer);
            buffer.clear();
        }
    }
    flush(&buffer);
}

const MAGIC: &[u8] = b"WDSK";
const FORMAT_VERSION: u16 = 1;

fn invalid(message: &str) -> EstimatorError {
    EstimatorError::InvalidSerialization {
        message: message.to_string(),
    }
}

fn encode_family(family: WaveletFamily) -> (u8, usize) {
    match family {
        WaveletFamily::Haar => (0, 1),
        WaveletFamily::Daubechies(n) => (1, n),
        WaveletFamily::Symmlet(n) => (2, n),
    }
}

fn decode_family(tag: u8, order: usize) -> Result<WaveletFamily, EstimatorError> {
    match tag {
        0 => Ok(WaveletFamily::Haar),
        1 => Ok(WaveletFamily::Daubechies(order)),
        2 => Ok(WaveletFamily::Symmlet(order)),
        _ => Err(invalid(&format!("unknown wavelet family tag {tag}"))),
    }
}

fn read_level(reader: &mut Reader<'_>, level: &mut SketchLevel) -> Result<(), EstimatorError> {
    let len = reader.u64()? as usize;
    if len != level.sums.len() {
        return Err(invalid(&format!(
            "level {} stores {} translations, payload has {len}",
            level.level,
            level.sums.len()
        )));
    }
    for slot in &mut level.sums {
        let value = reader.f64()?;
        if !value.is_finite() {
            return Err(invalid(&format!("non-finite sum {value} in level payload")));
        }
        *slot = value;
    }
    let squares = Arc::make_mut(&mut level.sum_squares);
    for slot in squares.iter_mut() {
        let value = reader.f64()?;
        // Sums of squares are nonnegative by construction; anything else
        // is corruption and would poison cross-validation downstream.
        if !value.is_finite() || value < 0.0 {
            return Err(invalid(&format!(
                "invalid sum of squares {value} in level payload"
            )));
        }
        *slot = value;
    }
    Ok(())
}

/// A bounds-checked little-endian cursor over a byte slice.
struct Reader<'a> {
    bytes: &'a [u8],
    offset: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, offset: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], EstimatorError> {
        let end = self
            .offset
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| invalid("payload truncated"))?;
        let slice = &self.bytes[self.offset..end];
        self.offset = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, EstimatorError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, EstimatorError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn i32(&mut self) -> Result<i32, EstimatorError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, EstimatorError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn f64(&mut self) -> Result<f64, EstimatorError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn is_done(&self) -> bool {
        self.offset == self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use wavedens_processes::seeded_rng;

    fn sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = seeded_rng(seed);
        (0..n).map(|_| rng.gen::<f64>()).collect()
    }

    #[test]
    fn merge_matches_single_stream_sketch() {
        let data = sample(900, 1);
        let mut single = CoefficientSketch::sized_for(900).unwrap();
        single.push_batch(&data);
        let mut left = CoefficientSketch::sized_for(900).unwrap();
        let mut right = CoefficientSketch::sized_for(900).unwrap();
        left.push_batch(&data[..311]);
        right.push_batch(&data[311..]);
        left.merge(&right).unwrap();
        assert_eq!(left.count(), single.count());
        let a = left.snapshot().unwrap();
        let b = single.snapshot().unwrap();
        for (la, lb) in
            std::iter::once((a.scaling(), b.scaling())).chain(a.details().iter().zip(b.details()))
        {
            assert_eq!(la.k_start, lb.k_start);
            for (va, vb) in la.values.iter().zip(&lb.values) {
                assert!((va - vb).abs() < 1e-12 * (1.0 + vb.abs()), "{va} vs {vb}");
            }
            for (sa, sb) in la.sum_squares.iter().zip(lb.sum_squares.iter()) {
                assert!((sa - sb).abs() < 1e-12 * (1.0 + sb.abs()), "{sa} vs {sb}");
            }
        }
    }

    #[test]
    fn merge_of_empty_sketch_is_identity() {
        let data = sample(256, 2);
        let mut sketch = CoefficientSketch::sized_for(256).unwrap();
        sketch.push_batch(&data);
        let before = sketch.snapshot().unwrap().scaling().values.clone();
        let empty = CoefficientSketch::sized_for(256).unwrap();
        sketch.merge(&empty).unwrap();
        assert_eq!(sketch.count(), 256);
        assert_eq!(sketch.snapshot().unwrap().scaling().values, before);
    }

    #[test]
    fn incompatible_sketches_are_rejected() {
        let base = CoefficientSketch::new(WaveletFamily::Symmlet(8), (0.0, 1.0), 1, 5).unwrap();
        let mut probe = base.clone();
        let other_family =
            CoefficientSketch::new(WaveletFamily::Daubechies(4), (0.0, 1.0), 1, 5).unwrap();
        let other_interval =
            CoefficientSketch::new(WaveletFamily::Symmlet(8), (0.0, 2.0), 1, 5).unwrap();
        let other_levels =
            CoefficientSketch::new(WaveletFamily::Symmlet(8), (0.0, 1.0), 1, 6).unwrap();
        for other in [&other_family, &other_interval, &other_levels] {
            assert!(matches!(
                probe.merge(other).unwrap_err(),
                EstimatorError::IncompatibleSketches { .. }
            ));
        }
        // The failed merges must not have touched the state.
        assert_eq!(probe.count(), 0);
    }

    #[test]
    fn empty_sketch_cannot_snapshot_or_estimate() {
        let sketch = CoefficientSketch::sized_for(100).unwrap();
        assert!(sketch.is_empty());
        assert!(matches!(
            sketch.snapshot().unwrap_err(),
            EstimatorError::EmptySample
        ));
        assert!(matches!(
            sketch.estimate(ThresholdRule::Soft).unwrap_err(),
            EstimatorError::EmptySample
        ));
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(matches!(
            CoefficientSketch::new(WaveletFamily::Symmlet(8), (1.0, 0.0), 1, 5).unwrap_err(),
            EstimatorError::InvalidInterval { .. }
        ));
        assert!(matches!(
            CoefficientSketch::new(WaveletFamily::Symmlet(8), (0.0, 1.0), 5, 1).unwrap_err(),
            EstimatorError::InvalidLevels { .. }
        ));
        assert!(matches!(
            CoefficientSketch::new(WaveletFamily::Symmlet(8), (0.0, 1.0), -1, 1).unwrap_err(),
            EstimatorError::InvalidLevels { .. }
        ));
    }

    #[test]
    fn serialization_round_trips() {
        let data = sample(500, 3);
        let mut sketch =
            CoefficientSketch::new(WaveletFamily::Symmlet(8), (0.0, 1.0), 1, 6).unwrap();
        sketch.push_batch(&data);
        let bytes = sketch.to_bytes();
        assert_eq!(bytes.len(), sketch.serialized_len());
        let restored = CoefficientSketch::from_bytes(&bytes).unwrap();
        assert_eq!(restored.count(), sketch.count());
        assert_eq!(restored.interval(), sketch.interval());
        assert_eq!(restored.coarse_level(), sketch.coarse_level());
        assert_eq!(restored.max_level(), sketch.max_level());
        let a = sketch.estimate(ThresholdRule::Soft).unwrap();
        let b = restored.estimate(ThresholdRule::Soft).unwrap();
        for i in 0..=100 {
            let x = i as f64 / 100.0;
            assert_eq!(a.evaluate(x), b.evaluate(x), "mismatch at {x}");
        }
        // A deserialized sketch keeps accumulating and merging.
        let mut restored = restored;
        restored.push_batch(&sample(100, 4));
        assert_eq!(restored.count(), 600);
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        let mut sketch = CoefficientSketch::new(WaveletFamily::Haar, (0.0, 1.0), 0, 1).unwrap();
        sketch.push_batch(&sample(32, 5));
        let bytes = sketch.to_bytes();
        // Truncations at every prefix length must error, never panic.
        for len in 0..bytes.len() {
            assert!(
                CoefficientSketch::from_bytes(&bytes[..len]).is_err(),
                "truncation to {len} bytes must be rejected"
            );
        }
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            CoefficientSketch::from_bytes(&bad).unwrap_err(),
            EstimatorError::InvalidSerialization { .. }
        ));
        // Bad version.
        let mut bad = bytes.clone();
        bad[4] = 0xFF;
        assert!(CoefficientSketch::from_bytes(&bad).is_err());
        // Bad family tag.
        let mut bad = bytes.clone();
        bad[6] = 9;
        assert!(CoefficientSketch::from_bytes(&bad).is_err());
        // Trailing garbage.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(CoefficientSketch::from_bytes(&bad).is_err());
        // A corrupted count (zero) with intact nonzero level sums must
        // not deserialize into a sketch that claims to be empty: the
        // count field sits at bytes 25..33 of the header.
        let mut bad = bytes.clone();
        bad[25..33].copy_from_slice(&0_u64.to_le_bytes());
        assert!(CoefficientSketch::from_bytes(&bad).is_err());
        // Non-finite sums are rejected; the first scaling sum starts
        // right after the header (41 bytes) and the level length (8).
        let mut bad = bytes.clone();
        bad[49..57].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(CoefficientSketch::from_bytes(&bad).is_err());
        // Negative sums of squares are rejected (they are sums of squares
        // of reals). The squares block follows the sums block.
        let squares_offset = 49 + 8 * sketch.snapshot().unwrap().scaling().len();
        let mut bad = bytes.clone();
        bad[squares_offset..squares_offset + 8].copy_from_slice(&(-1.0_f64).to_le_bytes());
        assert!(CoefficientSketch::from_bytes(&bad).is_err());
    }

    #[test]
    fn estimate_matches_streaming_pipeline() {
        let data = sample(700, 6);
        let mut sketch = CoefficientSketch::sized_for(700).unwrap();
        sketch.extend(data.iter().copied());
        let estimate = sketch.estimate(ThresholdRule::Soft).unwrap();
        assert_eq!(estimate.sample_size(), 700);
        assert!((estimate.integral() - 1.0).abs() < 0.1);
    }
}
