//! A streaming (online) variant of the wavelet density estimator.
//!
//! The empirical coefficients `α̂_{j,k}` and `β̂_{j,k}` are sample means of
//! `δ_{j,k}(X_i)`, so they (and the sums of squares needed by
//! cross-validation) can be maintained incrementally as observations
//! arrive. This makes the estimator usable over data streams — the setting
//! that motivates the selectivity-estimation application crate — while
//! producing *exactly* the same estimate as a batch fit on the observations
//! seen so far.

use crate::coefficients::{EmpiricalCoefficients, Generator, LevelCoefficients};
use crate::cv::cross_validate;
use crate::error::EstimatorError;
use crate::estimator::{ThresholdedLevel, WaveletDensityEstimate};
use crate::threshold::{ThresholdProfile, ThresholdRule, ThresholdSelection};
use std::sync::Arc;
use wavedens_wavelets::{WaveletBasis, WaveletFamily};

/// Running sums for one resolution level.
#[derive(Debug, Clone)]
struct RunningLevel {
    level: i32,
    generator: Generator,
    k_start: i64,
    sums: Vec<f64>,
    sum_squares: Vec<f64>,
}

impl RunningLevel {
    fn new(basis: &WaveletBasis, interval: (f64, f64), level: i32, generator: Generator) -> Self {
        let range = basis.translations_covering(level, interval.0, interval.1);
        let k_start = *range.start();
        let count = (*range.end() - k_start + 1).max(0) as usize;
        Self {
            level,
            generator,
            k_start,
            sums: vec![0.0; count],
            sum_squares: vec![0.0; count],
        }
    }

    fn push(&mut self, basis: &WaveletBasis, x: f64) {
        let support = basis.support_length();
        let position = (self.level as f64).exp2() * x;
        let k_lo = ((position - support).floor() as i64 + 1).max(self.k_start);
        let k_hi = ((position).ceil() as i64 - 1).min(self.k_start + self.sums.len() as i64 - 1);
        for k in k_lo..=k_hi {
            let value = match self.generator {
                Generator::Scaling => basis.phi_jk(self.level, k, x),
                Generator::Wavelet => basis.psi_jk(self.level, k, x),
            };
            let idx = (k - self.k_start) as usize;
            self.sums[idx] += value;
            self.sum_squares[idx] += value * value;
        }
    }

    fn snapshot(&self, n: usize) -> LevelCoefficients {
        LevelCoefficients {
            level: self.level,
            generator: self.generator,
            k_start: self.k_start,
            values: self.sums.iter().map(|s| s / n as f64).collect(),
            sum_squares: self.sum_squares.clone(),
        }
    }
}

/// An online wavelet density estimator over a data stream.
///
/// Unlike [`crate::estimator::WaveletDensityEstimator`], the resolution
/// levels are fixed up front (they cannot depend on the unknown final
/// sample size); by default the constructor sizes them for `expected_n`
/// observations using the same rules as the batch estimator.
#[derive(Debug, Clone)]
pub struct StreamingWaveletEstimator {
    basis: Arc<WaveletBasis>,
    interval: (f64, f64),
    rule: ThresholdRule,
    scaling: RunningLevel,
    details: Vec<RunningLevel>,
    count: usize,
}

impl StreamingWaveletEstimator {
    /// Creates a streaming estimator on `interval` with levels
    /// `j0..=j_max`.
    pub fn new(
        family: WaveletFamily,
        interval: (f64, f64),
        rule: ThresholdRule,
        j0: i32,
        j_max: i32,
    ) -> Result<Self, EstimatorError> {
        if interval.0 >= interval.1 || !interval.0.is_finite() || !interval.1.is_finite() {
            return Err(EstimatorError::InvalidInterval {
                lo: interval.0,
                hi: interval.1,
            });
        }
        if j0 < 0 || j_max < j0 {
            return Err(EstimatorError::InvalidLevels {
                message: format!("need 0 ≤ j0 ≤ j_max, got j0={j0}, j_max={j_max}"),
            });
        }
        let basis = Arc::new(WaveletBasis::new(family)?);
        let scaling = RunningLevel::new(&basis, interval, j0, Generator::Scaling);
        let details = (j0..=j_max)
            .map(|j| RunningLevel::new(&basis, interval, j, Generator::Wavelet))
            .collect();
        Ok(Self {
            basis,
            interval,
            rule,
            scaling,
            details,
            count: 0,
        })
    }

    /// Creates a streaming estimator sized for roughly `expected_n`
    /// observations on `[0, 1]` using the paper's level rules.
    pub fn with_expected_size(
        rule: ThresholdRule,
        expected_n: usize,
    ) -> Result<Self, EstimatorError> {
        let family = WaveletFamily::Symmlet(8);
        let j0 = crate::estimator::default_coarse_level(expected_n.max(2), 8);
        let j_max = crate::estimator::cv_max_level(expected_n.max(2));
        Self::new(family, (0.0, 1.0), rule, j0, j_max)
    }

    /// Number of observations pushed so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The estimation interval.
    pub fn interval(&self) -> (f64, f64) {
        self.interval
    }

    /// Ingests one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.scaling.push(&self.basis, x);
        for level in &mut self.details {
            level.push(&self.basis, x);
        }
    }

    /// Ingests many observations.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for x in values {
            self.push(x);
        }
    }

    /// Produces the current estimate, cross-validating the thresholds on
    /// the observations seen so far (equivalent to a batch CV fit with the
    /// same levels).
    pub fn estimate(&self) -> Result<WaveletDensityEstimate, EstimatorError> {
        if self.count == 0 {
            return Err(EstimatorError::EmptySample);
        }
        let scaling = self.scaling.snapshot(self.count);
        let details: Vec<LevelCoefficients> = self
            .details
            .iter()
            .map(|l| l.snapshot(self.count))
            .collect();
        let coefficients = EmpiricalCoefficients::from_parts(
            Arc::clone(&self.basis),
            self.count,
            self.interval,
            scaling.clone(),
            details.clone(),
        );
        let cv = cross_validate(&coefficients, self.rule);
        let profile: ThresholdProfile = cv.thresholds();
        let thresholded: Vec<ThresholdedLevel> = details
            .iter()
            .map(|level| {
                ThresholdedLevel::from_coefficients(level, self.rule, profile.level(level.level))
            })
            .collect();
        Ok(WaveletDensityEstimate::from_parts(
            Arc::clone(&self.basis),
            self.interval,
            self.count,
            self.rule,
            scaling,
            thresholded,
            profile,
            cv.j1,
            Some(cv),
        ))
    }

    /// Convenience: the current estimate's value at `x` (0 before any data).
    pub fn density_at(&self, x: f64) -> f64 {
        match self.estimate() {
            Ok(est) => est.evaluate(x),
            Err(_) => 0.0,
        }
    }

    /// Which threshold-selection scheme this streaming estimator mirrors
    /// (always cross-validation).
    pub fn selection(&self) -> ThresholdSelection {
        ThresholdSelection::CrossValidation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::WaveletDensityEstimator;
    use rand::Rng;
    use wavedens_processes::seeded_rng;

    fn sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = seeded_rng(seed);
        (0..n).map(|_| rng.gen::<f64>()).collect()
    }

    #[test]
    fn streaming_matches_batch_estimator_exactly() {
        let n = 700;
        let data = sample(n, 3);
        let j0 = crate::estimator::default_coarse_level(n, 8);
        let j_max = crate::estimator::cv_max_level(n);
        let mut streaming = StreamingWaveletEstimator::new(
            WaveletFamily::Symmlet(8),
            (0.0, 1.0),
            ThresholdRule::Soft,
            j0,
            j_max,
        )
        .unwrap();
        streaming.extend(data.iter().copied());
        let online = streaming.estimate().unwrap();
        let batch = WaveletDensityEstimator::stcv()
            .with_levels(Some(j0), Some(j_max))
            .fit(&data)
            .unwrap();
        for i in 0..=50 {
            let x = i as f64 / 50.0;
            assert!(
                (online.evaluate(x) - batch.evaluate(x)).abs() < 1e-10,
                "streaming and batch disagree at {x}"
            );
        }
        assert_eq!(online.highest_level(), batch.highest_level());
    }

    #[test]
    fn streaming_matches_batch_on_dependent_data() {
        // Same equivalence as above, but under the conditions the streaming
        // estimator is built for: weakly dependent inserts with a
        // non-uniform marginal, and the hard-thresholding rule. The two
        // code paths share the CV and thresholding code but build the
        // coefficients differently, so the estimates must agree to
        // numerical round-off everywhere, not just at a few points.
        use wavedens_processes::{DependenceCase, SineUniformMixture};
        let n = 800;
        let mut rng = seeded_rng(21);
        let data = DependenceCase::NonCausalMa.simulate(&SineUniformMixture::paper(), n, &mut rng);
        let j0 = crate::estimator::default_coarse_level(n, 8);
        let j_max = crate::estimator::cv_max_level(n);
        for rule in [ThresholdRule::Hard, ThresholdRule::Soft] {
            let mut streaming = StreamingWaveletEstimator::new(
                WaveletFamily::Symmlet(8),
                (0.0, 1.0),
                rule,
                j0,
                j_max,
            )
            .unwrap();
            streaming.extend(data.iter().copied());
            let online = streaming.estimate().unwrap();
            let batch = WaveletDensityEstimator::new(rule, ThresholdSelection::CrossValidation)
                .with_levels(Some(j0), Some(j_max))
                .fit(&data)
                .unwrap();
            let grid = crate::grid::Grid::new(0.0, 1.0, 257);
            let online_values = online.evaluate_on(&grid);
            let batch_values = batch.evaluate_on(&grid);
            for (i, (a, b)) in online_values.iter().zip(&batch_values).enumerate() {
                assert!(
                    (a - b).abs() < 1e-9,
                    "{rule:?}: streaming and batch disagree at grid point {i}: {a} vs {b}"
                );
            }
            assert!((online.integral() - batch.integral()).abs() < 1e-9);
            assert_eq!(online.highest_level(), batch.highest_level());
            assert_eq!(online.sample_size(), batch.sample_size());
        }
    }

    #[test]
    fn estimate_improves_as_data_arrives() {
        let mut streaming =
            StreamingWaveletEstimator::with_expected_size(ThresholdRule::Soft, 2048).unwrap();
        let data = sample(2048, 9);
        streaming.extend(data[..128].iter().copied());
        let early = streaming.estimate().unwrap();
        streaming.extend(data[128..].iter().copied());
        let late = streaming.estimate().unwrap();
        let grid = crate::grid::Grid::new(0.05, 0.95, 91);
        let truth: Vec<f64> = grid.evaluate(|_| 1.0);
        let err = |est: &WaveletDensityEstimate| {
            grid.integrate_abs_power(&est.evaluate_on(&grid), &truth, 2.0)
        };
        assert!(
            err(&late) < err(&early) + 1e-12,
            "error should not grow with more data: {} -> {}",
            err(&early),
            err(&late)
        );
        assert_eq!(streaming.count(), 2048);
    }

    #[test]
    fn empty_stream_cannot_estimate() {
        let streaming =
            StreamingWaveletEstimator::with_expected_size(ThresholdRule::Hard, 100).unwrap();
        assert!(matches!(
            streaming.estimate().unwrap_err(),
            EstimatorError::EmptySample
        ));
        assert_eq!(streaming.density_at(0.5), 0.0);
        assert_eq!(streaming.interval(), (0.0, 1.0));
        assert_eq!(streaming.selection(), ThresholdSelection::CrossValidation);
    }

    #[test]
    fn invalid_configuration_is_rejected() {
        assert!(StreamingWaveletEstimator::new(
            WaveletFamily::Symmlet(8),
            (1.0, 0.0),
            ThresholdRule::Hard,
            1,
            5
        )
        .is_err());
        assert!(StreamingWaveletEstimator::new(
            WaveletFamily::Symmlet(8),
            (0.0, 1.0),
            ThresholdRule::Hard,
            5,
            1
        )
        .is_err());
    }
}
