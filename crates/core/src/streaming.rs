//! A streaming (online) variant of the wavelet density estimator.
//!
//! The empirical coefficients `α̂_{j,k}` and `β̂_{j,k}` are sample means of
//! `δ_{j,k}(X_i)`, so they (and the sums of squares needed by
//! cross-validation) can be maintained incrementally as observations
//! arrive. This makes the estimator usable over data streams — the setting
//! that motivates the selectivity-estimation application crate — while
//! producing *exactly* the same estimate as a batch fit on the observations
//! seen so far.
//!
//! The accumulation state lives in a [`CoefficientSketch`]; this type is a
//! thin layer binding a sketch to a thresholding rule. Because sketches
//! are mergeable, two streaming estimators over partitions of a stream can
//! be combined ([`CoefficientSketch::merge`]) into exactly the estimator a
//! single stream would have produced — the basis of the sharded ingest in
//! the `wavedens-engine` crate.

use crate::error::EstimatorError;
use crate::estimator::WaveletDensityEstimate;
use crate::sketch::CoefficientSketch;
use crate::threshold::{ThresholdRule, ThresholdSelection};
use wavedens_wavelets::WaveletFamily;

/// An online wavelet density estimator over a data stream.
///
/// Unlike [`crate::estimator::WaveletDensityEstimator`], the resolution
/// levels are fixed up front (they cannot depend on the unknown final
/// sample size); by default the constructor sizes them for `expected_n`
/// observations using the same rules as the batch estimator.
#[derive(Debug, Clone)]
pub struct StreamingWaveletEstimator {
    sketch: CoefficientSketch,
    rule: ThresholdRule,
}

impl StreamingWaveletEstimator {
    /// Creates a streaming estimator on `interval` with levels
    /// `j0..=j_max`.
    pub fn new(
        family: WaveletFamily,
        interval: (f64, f64),
        rule: ThresholdRule,
        j0: i32,
        j_max: i32,
    ) -> Result<Self, EstimatorError> {
        Ok(Self {
            sketch: CoefficientSketch::new(family, interval, j0, j_max)?,
            rule,
        })
    }

    /// Wraps an existing accumulation state (for example one merged from
    /// several shards) with a thresholding rule.
    pub fn from_sketch(sketch: CoefficientSketch, rule: ThresholdRule) -> Self {
        Self { sketch, rule }
    }

    /// Creates a streaming estimator sized for roughly `expected_n`
    /// observations on `[0, 1]` using the paper's level rules.
    pub fn with_expected_size(
        rule: ThresholdRule,
        expected_n: usize,
    ) -> Result<Self, EstimatorError> {
        Ok(Self {
            sketch: CoefficientSketch::sized_for(expected_n)?,
            rule,
        })
    }

    /// Number of observations pushed so far.
    pub fn count(&self) -> usize {
        self.sketch.count()
    }

    /// The estimation interval.
    pub fn interval(&self) -> (f64, f64) {
        self.sketch.interval()
    }

    /// The underlying accumulation state.
    pub fn sketch(&self) -> &CoefficientSketch {
        &self.sketch
    }

    /// Consumes the estimator, returning its accumulation state (for
    /// example to merge it into another shard's sketch or ship it to a
    /// different node).
    pub fn into_sketch(self) -> CoefficientSketch {
        self.sketch
    }

    /// Ingests one observation.
    pub fn push(&mut self, x: f64) {
        self.sketch.push(x);
    }

    /// Ingests a batch of observations.
    ///
    /// Numerically identical to pushing the values one by one (the
    /// per-translation accumulation order is the same), but the per-level
    /// constants — `2^j`, the support length, the stored translation
    /// window — are computed once per level instead of once per
    /// observation, which is markedly faster for bulk inserts.
    pub fn push_batch(&mut self, values: &[f64]) {
        self.sketch.push_batch(values);
    }

    /// Ingests many observations via [`push_batch`](Self::push_batch),
    /// buffering the iterator in fixed-size chunks so arbitrarily long
    /// (or lazy) sources ingest with bounded memory.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        self.sketch.extend(values);
    }

    /// Produces the current estimate, cross-validating the thresholds on
    /// the observations seen so far (equivalent to a batch CV fit with the
    /// same levels).
    pub fn estimate(&self) -> Result<WaveletDensityEstimate, EstimatorError> {
        self.sketch.estimate(self.rule)
    }

    /// Convenience: the current estimate's value at `x` (0 before any data).
    ///
    /// Only the empty stream maps to the silent 0 fallback; any other
    /// estimation failure indicates an internal inconsistency and trips a
    /// debug assertion (returning 0 in release builds).
    pub fn density_at(&self, x: f64) -> f64 {
        match self.estimate() {
            Ok(est) => est.evaluate(x),
            Err(EstimatorError::EmptySample) => 0.0,
            Err(err) => {
                debug_assert!(false, "streaming estimate failed unexpectedly: {err}");
                0.0
            }
        }
    }

    /// Which threshold-selection scheme this streaming estimator mirrors
    /// (always cross-validation).
    pub fn selection(&self) -> ThresholdSelection {
        ThresholdSelection::CrossValidation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::WaveletDensityEstimator;
    use rand::Rng;
    use wavedens_processes::seeded_rng;

    fn sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = seeded_rng(seed);
        (0..n).map(|_| rng.gen::<f64>()).collect()
    }

    #[test]
    fn streaming_matches_batch_estimator_exactly() {
        let n = 700;
        let data = sample(n, 3);
        let j0 = crate::estimator::default_coarse_level(n, 8);
        let j_max = crate::estimator::cv_max_level(n);
        let mut streaming = StreamingWaveletEstimator::new(
            WaveletFamily::Symmlet(8),
            (0.0, 1.0),
            ThresholdRule::Soft,
            j0,
            j_max,
        )
        .unwrap();
        streaming.extend(data.iter().copied());
        let online = streaming.estimate().unwrap();
        let batch = WaveletDensityEstimator::stcv()
            .with_levels(Some(j0), Some(j_max))
            .fit(&data)
            .unwrap();
        for i in 0..=50 {
            let x = i as f64 / 50.0;
            assert!(
                (online.evaluate(x) - batch.evaluate(x)).abs() < 1e-10,
                "streaming and batch disagree at {x}"
            );
        }
        assert_eq!(online.highest_level(), batch.highest_level());
    }

    #[test]
    fn streaming_matches_batch_on_dependent_data() {
        // Same equivalence as above, but under the conditions the streaming
        // estimator is built for: weakly dependent inserts with a
        // non-uniform marginal, and the hard-thresholding rule. The two
        // code paths share the CV and thresholding code but build the
        // coefficients differently, so the estimates must agree to
        // numerical round-off everywhere, not just at a few points.
        use wavedens_processes::{DependenceCase, SineUniformMixture};
        let n = 800;
        let mut rng = seeded_rng(21);
        let data = DependenceCase::NonCausalMa.simulate(&SineUniformMixture::paper(), n, &mut rng);
        let j0 = crate::estimator::default_coarse_level(n, 8);
        let j_max = crate::estimator::cv_max_level(n);
        for rule in [ThresholdRule::Hard, ThresholdRule::Soft] {
            let mut streaming = StreamingWaveletEstimator::new(
                WaveletFamily::Symmlet(8),
                (0.0, 1.0),
                rule,
                j0,
                j_max,
            )
            .unwrap();
            streaming.extend(data.iter().copied());
            let online = streaming.estimate().unwrap();
            let batch = WaveletDensityEstimator::new(rule, ThresholdSelection::CrossValidation)
                .with_levels(Some(j0), Some(j_max))
                .fit(&data)
                .unwrap();
            let grid = crate::grid::Grid::new(0.0, 1.0, 257);
            let online_values = online.evaluate_on(&grid);
            let batch_values = batch.evaluate_on(&grid);
            for (i, (a, b)) in online_values.iter().zip(&batch_values).enumerate() {
                assert!(
                    (a - b).abs() < 1e-9,
                    "{rule:?}: streaming and batch disagree at grid point {i}: {a} vs {b}"
                );
            }
            assert!((online.integral() - batch.integral()).abs() < 1e-9);
            assert_eq!(online.highest_level(), batch.highest_level());
            assert_eq!(online.sample_size(), batch.sample_size());
        }
    }

    #[test]
    fn estimate_improves_as_data_arrives() {
        let mut streaming =
            StreamingWaveletEstimator::with_expected_size(ThresholdRule::Soft, 2048).unwrap();
        let data = sample(2048, 9);
        streaming.extend(data[..128].iter().copied());
        let early = streaming.estimate().unwrap();
        streaming.extend(data[128..].iter().copied());
        let late = streaming.estimate().unwrap();
        let grid = crate::grid::Grid::new(0.05, 0.95, 91);
        let truth: Vec<f64> = grid.evaluate(|_| 1.0);
        let err = |est: &WaveletDensityEstimate| {
            grid.integrate_abs_power(&est.evaluate_on(&grid), &truth, 2.0)
        };
        assert!(
            err(&late) < err(&early) + 1e-12,
            "error should not grow with more data: {} -> {}",
            err(&early),
            err(&late)
        );
        assert_eq!(streaming.count(), 2048);
    }

    #[test]
    fn push_batch_is_bitwise_identical_to_repeated_push() {
        use wavedens_processes::{DependenceCase, SineUniformMixture};
        let n = 600;
        let mut rng = seeded_rng(33);
        let data = DependenceCase::ExpandingMap.simulate(&SineUniformMixture::paper(), n, &mut rng);
        let mut one_by_one =
            StreamingWaveletEstimator::with_expected_size(ThresholdRule::Hard, n).unwrap();
        for &x in &data {
            one_by_one.push(x);
        }
        let mut batched =
            StreamingWaveletEstimator::with_expected_size(ThresholdRule::Hard, n).unwrap();
        batched.push_batch(&data);
        assert_eq!(one_by_one.count(), batched.count());
        let a = one_by_one.estimate().unwrap();
        let b = batched.estimate().unwrap();
        // The per-translation accumulation order is identical, so the two
        // ingestion paths must agree bit for bit, not just approximately.
        for i in 0..=200 {
            let x = i as f64 / 200.0;
            assert_eq!(a.evaluate(x), b.evaluate(x), "mismatch at x = {x}");
        }
        assert_eq!(a.highest_level(), b.highest_level());
    }

    #[test]
    fn snapshots_share_sum_squares_without_copying() {
        let mut streaming =
            StreamingWaveletEstimator::with_expected_size(ThresholdRule::Soft, 256).unwrap();
        streaming.push_batch(&sample(256, 15));
        // Two successive estimates without intervening pushes must share
        // the same sum-of-squares allocation (Arc, not clone).
        let first = streaming.estimate().unwrap();
        let second = streaming.estimate().unwrap();
        let a = &first.scaling_coefficients().sum_squares;
        let b = &second.scaling_coefficients().sum_squares;
        assert!(
            std::sync::Arc::ptr_eq(a, b),
            "re-estimation should not reallocate sum_squares"
        );
        // Pushing after a snapshot copy-on-writes instead of corrupting
        // the outstanding snapshot.
        let before: Vec<f64> = first.scaling_coefficients().sum_squares.to_vec();
        streaming.push(0.5);
        assert_eq!(*first.scaling_coefficients().sum_squares, before);
        let third = streaming.estimate().unwrap();
        assert!(!std::sync::Arc::ptr_eq(
            a,
            &third.scaling_coefficients().sum_squares
        ));
    }

    #[test]
    fn empty_stream_cannot_estimate() {
        let streaming =
            StreamingWaveletEstimator::with_expected_size(ThresholdRule::Hard, 100).unwrap();
        assert!(matches!(
            streaming.estimate().unwrap_err(),
            EstimatorError::EmptySample
        ));
        assert_eq!(streaming.density_at(0.5), 0.0);
        assert_eq!(streaming.interval(), (0.0, 1.0));
        assert_eq!(streaming.selection(), ThresholdSelection::CrossValidation);
    }

    #[test]
    fn invalid_configuration_is_rejected() {
        assert!(StreamingWaveletEstimator::new(
            WaveletFamily::Symmlet(8),
            (1.0, 0.0),
            ThresholdRule::Hard,
            1,
            5
        )
        .is_err());
        assert!(StreamingWaveletEstimator::new(
            WaveletFamily::Symmlet(8),
            (0.0, 1.0),
            ThresholdRule::Hard,
            5,
            1
        )
        .is_err());
    }
}
