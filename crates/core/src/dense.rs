//! Dense-grid cumulative representation of a density estimate.
//!
//! Integrating a wavelet density estimate over a query range with a fresh
//! quadrature sweep costs hundreds to thousands of pointwise `evaluate`
//! calls per query, each of which re-derives the active translation range
//! of every level and interpolates the `φ`/`ψ` tables. A
//! [`CumulativeEstimate`] pays that cost **once**: the density is
//! evaluated on a dense uniform grid with the per-coefficient strided
//! sweep ([`WaveletDensityEstimate::evaluate_dense`]) and turned into a
//! prefix-sum table of trapezoidal masses, after which `cdf(x)` and
//! `range_mass(lo, hi)` are O(1) — an index computation plus a linear
//! interpolation. This mirrors how tree/histogram synopses answer range
//! mass from stored prefix aggregates.

use crate::estimator::WaveletDensityEstimate;
use crate::grid::Grid;

/// A precomputed cumulative distribution table built from a density
/// estimate on a dense uniform grid.
///
/// Node masses are the trapezoidal prefix integrals of the density,
/// projected onto nondecreasing sequences with the pool-adjacent-violators
/// algorithm so that [`cdf`](Self::cdf) is a genuine distribution function
/// even where the underlying wavelet estimate dips negative; between
/// nodes the mass is interpolated linearly. Consequently:
///
/// * `cdf` is nondecreasing and nonnegative, with `cdf` constant at the
///   total mass beyond the interval;
/// * `range_mass(a, b) = cdf(b) − cdf(a)` is exactly additive over
///   adjacent ranges and never negative;
/// * the isotonic projection is the L2-closest monotone sequence to the
///   raw signed prefix integrals, so wherever the density is nonnegative
///   (everywhere, for a well-behaved fit) the node values agree with the
///   trapezoidal quadrature exactly, and off-node values differ by at
///   most O(grid_step²).
#[derive(Debug, Clone, PartialEq)]
pub struct CumulativeEstimate {
    grid: Grid,
    cumulative: Vec<f64>,
}

/// Default number of grid points used when a caller does not specify a
/// resolution: fine enough that the O(step²) interpolation error is far
/// below the statistical error of any estimate, small enough that the
/// table stays a few tens of kilobytes.
pub const DEFAULT_CDF_POINTS: usize = 4097;

impl CumulativeEstimate {
    /// Builds the cumulative table of `estimate` on a dense grid of
    /// `points` points (at least 2) spanning the estimation interval.
    pub fn from_estimate(estimate: &WaveletDensityEstimate, points: usize) -> Self {
        let (lo, hi) = estimate.interval();
        let grid = Grid::new(lo, hi, points.max(2));
        let density = estimate.evaluate_dense(&grid);
        Self::from_density(grid, &density)
    }

    /// Builds the cumulative table from density values already sampled on
    /// `grid` (one value per grid point). Only the prefix masses are
    /// retained; the raw density values are not stored.
    ///
    /// # Panics
    /// Panics if `density.len() != grid.len()`.
    pub fn from_density(grid: Grid, density: &[f64]) -> Self {
        assert_eq!(
            density.len(),
            grid.len(),
            "density values must match the grid"
        );
        let step = grid.step();
        let mut cumulative = Vec::with_capacity(density.len());
        let mut running = 0.0_f64;
        cumulative.push(0.0);
        for pair in density.windows(2) {
            running += 0.5 * (pair[0] + pair[1]) * step;
            cumulative.push(running);
        }
        // A locally negative density (wavelet estimates oscillate around
        // sharp features) makes the raw prefix integrals dip; project
        // them onto the closest nondecreasing sequence so the CDF is a
        // genuine distribution function without displacing mass globally.
        isotonic_projection(&mut cumulative);
        for value in &mut cumulative {
            *value = value.max(0.0);
        }
        Self { grid, cumulative }
    }

    /// The evaluation grid backing the table.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Total mass of the table, `cdf(hi)`; ≈ 1 for a density estimate
    /// fitted on data living inside the interval.
    pub fn total_mass(&self) -> f64 {
        *self.cumulative.last().expect("grids are nonempty")
    }

    /// The cumulative mass below `x`, clamped to the grid interval:
    /// 0 for `x ≤ lo`, [`total_mass`](Self::total_mass) for `x ≥ hi`.
    /// O(1): one index computation plus a linear interpolation.
    pub fn cdf(&self, x: f64) -> f64 {
        let lo = self.grid.lo();
        // NaN fails every comparison, so without an explicit check it
        // would fall through both boundary guards and index the table
        // with garbage.
        if x.is_nan() || x <= lo {
            return 0.0;
        }
        if x >= self.grid.hi() {
            return self.total_mass();
        }
        let position = (x - lo) / self.grid.step();
        let cell = (position as usize).min(self.cumulative.len() - 2);
        let frac = position - cell as f64;
        let lo_mass = self.cumulative[cell];
        let hi_mass = self.cumulative[cell + 1];
        lo_mass + frac * (hi_mass - lo_mass)
    }

    /// The estimated mass of the range `[lo, hi]`,
    /// `cdf(hi) − cdf(lo)`; 0 when the range is empty, reversed, or
    /// carries a NaN bound (a NaN must not slip past the reversed-range
    /// guard and turn into a negative mass). Nonnegative and exactly
    /// additive over adjacent ranges.
    pub fn range_mass(&self, lo: f64, hi: f64) -> f64 {
        if lo.is_nan() || hi.is_nan() || hi <= lo {
            return 0.0;
        }
        self.cdf(hi) - self.cdf(lo)
    }

    /// The *probability* of the range: [`range_mass`](Self::range_mass)
    /// normalized by [`total_mass`](Self::total_mass) and clamped to
    /// `[0, 1]`.
    ///
    /// A density estimate's tabulated mass drifts away from 1 whenever the
    /// grid truncates the support or the (oscillating) wavelet estimate
    /// integrates to slightly more or less than one; the raw range mass is
    /// then a biased selectivity and can even exceed 1. Dividing by the
    /// total mass conditions on the tabulated support, which is the
    /// quantity `P(lo ≤ X ≤ hi)` callers actually want. Returns 0 when the
    /// table carries (numerically) no mass at all.
    pub fn selectivity(&self, lo: f64, hi: f64) -> f64 {
        let total = self.total_mass();
        if total <= TOTAL_MASS_FLOOR {
            return 0.0;
        }
        (self.range_mass(lo, hi) / total).clamp(0.0, 1.0)
    }
}

/// Below this total mass a cumulative table is treated as carrying no
/// mass: normalizing by it would amplify pure numerical noise.
const TOTAL_MASS_FLOOR: f64 = 1e-12;

/// In-place isotonic regression (pool-adjacent-violators): replaces
/// `values` with the nondecreasing sequence closest to it in L2. Runs in
/// O(n).
fn isotonic_projection(values: &mut [f64]) {
    // Blocks of pooled entries, stored as (mean, count).
    let mut blocks: Vec<(f64, usize)> = Vec::with_capacity(values.len());
    for &value in values.iter() {
        let mut mean = value;
        let mut count = 1_usize;
        while let Some(&(previous_mean, previous_count)) = blocks.last() {
            if previous_mean <= mean {
                break;
            }
            mean = (previous_mean * previous_count as f64 + mean * count as f64)
                / (previous_count + count) as f64;
            count += previous_count;
            blocks.pop();
        }
        blocks.push((mean, count));
    }
    let mut index = 0;
    for (mean, count) in blocks {
        for slot in values[index..index + count].iter_mut() {
            *slot = mean;
        }
        index += count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::WaveletDensityEstimator;
    use rand::Rng;
    use wavedens_processes::{seeded_rng, SineUniformMixture, TargetDensity};

    fn sine_sample(n: usize, seed: u64) -> Vec<f64> {
        let target = SineUniformMixture::paper();
        let mut rng = seeded_rng(seed);
        (0..n).map(|_| target.quantile(rng.gen::<f64>())).collect()
    }

    fn fitted_cumulative(seed: u64) -> (WaveletDensityEstimate, CumulativeEstimate) {
        let estimate = WaveletDensityEstimator::stcv()
            .fit(&sine_sample(1024, seed))
            .unwrap();
        let cumulative = estimate.cumulative(DEFAULT_CDF_POINTS);
        (estimate, cumulative)
    }

    #[test]
    fn dense_evaluation_matches_pointwise_evaluation() {
        let (estimate, _) = fitted_cumulative(1);
        let grid = Grid::new(0.0, 1.0, 777);
        let dense = estimate.evaluate_dense(&grid);
        let pointwise = estimate.evaluate_on(&grid);
        for (i, (a, b)) in dense.iter().zip(&pointwise).enumerate() {
            assert!(
                (a - b).abs() < 1e-10,
                "dense and pointwise disagree at grid point {i}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn dense_evaluation_matches_on_offset_intervals() {
        // A non-unit interval exercises the grid-index/support arithmetic.
        let data: Vec<f64> = sine_sample(512, 2).iter().map(|x| 2.0 * x - 0.5).collect();
        let estimate = WaveletDensityEstimator::stcv()
            .with_interval(-0.5, 1.5)
            .fit(&data)
            .unwrap();
        let grid = Grid::new(-0.5, 1.5, 501);
        let dense = estimate.evaluate_dense(&grid);
        let pointwise = estimate.evaluate_on(&grid);
        for (a, b) in dense.iter().zip(&pointwise) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn cdf_is_monotone_and_spans_the_mass() {
        let (_, cumulative) = fitted_cumulative(3);
        assert_eq!(cumulative.cdf(-1.0), 0.0);
        assert_eq!(cumulative.cdf(0.0), 0.0);
        assert!((cumulative.cdf(2.0) - cumulative.total_mass()).abs() < 1e-15);
        assert!((cumulative.total_mass() - 1.0).abs() < 0.05);
        let mut previous = 0.0;
        for i in 0..=1000 {
            let x = i as f64 / 1000.0;
            let value = cumulative.cdf(x);
            assert!(
                value >= previous,
                "cdf decreased at x = {x}: {value} < {previous}"
            );
            previous = value;
        }
    }

    #[test]
    fn range_mass_is_additive_and_matches_quadrature() {
        let (estimate, cumulative) = fitted_cumulative(4);
        for &(a, b, c) in &[(0.1, 0.4, 0.9), (0.0, 0.5, 1.0), (0.33, 0.34, 0.35)] {
            let whole = cumulative.range_mass(a, c);
            let split = cumulative.range_mass(a, b) + cumulative.range_mass(b, c);
            assert!(
                (whole - split).abs() < 1e-12,
                "additivity violated on [{a}, {c}] split at {b}"
            );
        }
        // Against a direct trapezoidal quadrature of the density.
        for &(lo, hi) in &[(0.05, 0.3), (0.2, 0.8), (0.6, 0.61)] {
            let grid = Grid::new(lo, hi, 4096);
            let direct = grid.integrate(&estimate.evaluate_dense(&grid));
            let fast = cumulative.range_mass(lo, hi);
            assert!(
                (fast - direct).abs() < 5e-4,
                "range [{lo}, {hi}]: cdf {fast} vs quadrature {direct}"
            );
        }
    }

    #[test]
    fn degenerate_and_reversed_ranges_have_zero_mass() {
        let (_, cumulative) = fitted_cumulative(5);
        assert_eq!(cumulative.range_mass(0.4, 0.4), 0.0);
        assert_eq!(cumulative.range_mass(0.8, 0.2), 0.0);
        assert!(cumulative.range_mass(0.0, 1.0) > 0.9);
    }

    /// Regression for the NaN-bounds hole: NaN compares false with
    /// everything, so `hi <= lo` never fired and a NaN bound walked
    /// straight into the grid-index arithmetic, yielding garbage (or a
    /// negative mass from `cdf(hi) − cdf(NaN)`).
    #[test]
    fn non_finite_query_bounds_answer_zero_mass() {
        let (_, cumulative) = fitted_cumulative(6);
        assert_eq!(cumulative.cdf(f64::NAN), 0.0);
        for (lo, hi) in [
            (f64::NAN, 0.5),
            (0.2, f64::NAN),
            (f64::NAN, f64::NAN),
            (f64::INFINITY, f64::NEG_INFINITY),
        ] {
            assert_eq!(cumulative.range_mass(lo, hi), 0.0, "[{lo}, {hi}]");
            assert_eq!(cumulative.selectivity(lo, hi), 0.0, "[{lo}, {hi}]");
        }
        // Infinite but *ordered* bounds are fine: they clamp to the grid.
        let everything = cumulative.range_mass(f64::NEG_INFINITY, f64::INFINITY);
        assert_eq!(everything, cumulative.total_mass());
        assert_eq!(
            cumulative.selectivity(f64::NEG_INFINITY, f64::INFINITY),
            1.0
        );
    }

    #[test]
    fn from_density_builds_the_uniform_cdf() {
        let grid = Grid::new(0.0, 1.0, 101);
        let cumulative = CumulativeEstimate::from_density(grid, &[1.0; 101]);
        assert!((cumulative.total_mass() - 1.0).abs() < 1e-12);
        for i in 0..=10 {
            let x = i as f64 / 10.0;
            assert!((cumulative.cdf(x) - x).abs() < 1e-12, "cdf({x})");
        }
        assert_eq!(cumulative.grid().len(), 101);
    }

    #[test]
    fn selectivity_normalizes_the_range_mass() {
        // A table whose mass drifted to 0.5: the raw range mass is biased
        // by exactly the drift, the normalized selectivity is not.
        let grid = Grid::new(0.0, 1.0, 101);
        let cumulative = CumulativeEstimate::from_density(grid, &[0.5; 101]);
        assert!((cumulative.total_mass() - 0.5).abs() < 1e-12);
        assert!((cumulative.range_mass(0.0, 1.0) - 0.5).abs() < 1e-12);
        assert!((cumulative.selectivity(0.0, 1.0) - 1.0).abs() < 1e-12);
        assert!((cumulative.selectivity(0.0, 0.5) - 0.5).abs() < 1e-12);
        // Mass above 1 (the oscillating-estimate case) is normalized down
        // instead of clamped to a biased value.
        let grid = Grid::new(0.0, 1.0, 101);
        let inflated = CumulativeEstimate::from_density(grid, &[1.25; 101]);
        assert!((inflated.selectivity(0.0, 0.8) - 0.8).abs() < 1e-12);
        // A (numerically) massless table answers 0 rather than amplifying
        // noise by a huge normalization factor.
        let grid = Grid::new(0.0, 1.0, 11);
        let empty = CumulativeEstimate::from_density(grid, &[0.0; 11]);
        assert_eq!(empty.selectivity(0.2, 0.9), 0.0);
    }

    #[test]
    fn negative_density_dips_do_not_break_monotonicity() {
        let grid = Grid::new(0.0, 1.0, 11);
        let density = vec![1.0, 1.0, -2.0, -2.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let cumulative = CumulativeEstimate::from_density(grid, &density);
        let mut previous = 0.0;
        for i in 0..=100 {
            let x = i as f64 / 100.0;
            let value = cumulative.cdf(x);
            assert!(value >= previous, "cdf decreased at {x}");
            previous = value;
        }
    }

    #[test]
    #[should_panic(expected = "density values must match the grid")]
    fn mismatched_density_length_panics() {
        let grid = Grid::new(0.0, 1.0, 11);
        let _ = CumulativeEstimate::from_density(grid, &[1.0; 7]);
    }
}
