//! Shared helpers for the `wavedens` Criterion benchmark suite.
//!
//! Every table and figure of the paper has a corresponding bench target
//! (see `benches/`); each bench prints a reduced-scale version of the
//! table/figure it regenerates (so `cargo bench` output doubles as a smoke
//! reproduction) and then measures the wall-clock cost of the underlying
//! computation. The full-scale reproductions live in the
//! `wavedens-experiments` binaries.

#![forbid(unsafe_code)]

use wavedens_experiments::ExperimentConfig;

/// The reduced-scale configuration used inside benchmark loops: few
/// replications and a smaller sample size so a full `cargo bench` run
/// finishes in minutes on a laptop.
pub fn bench_config() -> ExperimentConfig {
    ExperimentConfig::default()
        .with_replications(3)
        .with_sample_size(512)
}

/// A slightly larger configuration used for the one-off printed summaries.
pub fn summary_config() -> ExperimentConfig {
    ExperimentConfig::default()
        .with_replications(10)
        .with_sample_size(1 << 10)
}

/// Deterministic sample of the paper's Case/target combination used by the
/// micro-benchmarks.
pub fn paper_sample(n: usize, seed: u64) -> Vec<f64> {
    use wavedens_processes::{seeded_rng, DependenceCase, SineUniformMixture};
    let mut rng = seeded_rng(seed);
    DependenceCase::ExpandingMap.simulate(&SineUniformMixture::paper(), n, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_are_small() {
        assert!(bench_config().replications <= 5);
        assert!(bench_config().sample_size <= 1024);
        assert_eq!(summary_config().sample_size, 1024);
    }

    #[test]
    fn paper_sample_is_deterministic() {
        assert_eq!(paper_sample(16, 1), paper_sample(16, 1));
        assert_ne!(paper_sample(16, 1), paper_sample(16, 2));
    }
}
