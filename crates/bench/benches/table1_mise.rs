//! Bench target regenerating Table 1 (MISE of HTCV/STCV under the three
//! dependence cases) at reduced scale, and measuring the cost of one
//! Monte-Carlo cell.

use criterion::{criterion_group, criterion_main, Criterion};
use wavedens_bench::{bench_config, summary_config};
use wavedens_core::ThresholdRule;
use wavedens_experiments::case_mise;
use wavedens_processes::DependenceCase;

fn table1(c: &mut Criterion) {
    // One-off reduced-scale reproduction printed alongside the timings.
    let config = summary_config();
    println!("\nTable 1 (reduced scale, {} reps):", config.replications);
    for rule in [ThresholdRule::Hard, ThresholdRule::Soft] {
        let row: Vec<String> = DependenceCase::ALL
            .into_iter()
            .map(|case| format!("{:.4}", case_mise(&config, case, rule).mise))
            .collect();
        println!("  {}CV: {}", rule.short_name(), row.join(" / "));
    }

    let mut group = c.benchmark_group("table1_mise");
    group.sample_size(10);
    for case in DependenceCase::ALL {
        group.bench_function(format!("stcv_{}", case.id()), |b| {
            b.iter(|| case_mise(&bench_config(), case, ThresholdRule::Soft).mise)
        });
    }
    group.bench_function("htcv_iid", |b| {
        b.iter(|| case_mise(&bench_config(), DependenceCase::Iid, ThresholdRule::Hard).mise)
    });
    group.finish();
}

criterion_group!(benches, table1);
criterion_main!(benches);
