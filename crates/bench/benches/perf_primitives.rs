//! Performance micro-benchmarks of the core primitives: filter
//! construction, pointwise evaluation, empirical coefficients,
//! cross-validation, estimator fitting/evaluation, kernel bandwidth
//! selection and process simulation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::sync::Arc;
use wavedens_bench::paper_sample;
use wavedens_core::{
    cross_validate, EmpiricalCoefficients, Grid, KernelDensityEstimator, ThresholdRule,
    WaveletDensityEstimator,
};
use wavedens_processes::{seeded_rng, DependenceCase, SineUniformMixture};
use wavedens_wavelets::{Dwt, OrthonormalFilter, PointwiseEvaluator, WaveletBasis, WaveletFamily};

fn primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_primitives");
    group.sample_size(20);

    group.bench_function("filter_construction_sym8", |b| {
        b.iter(|| OrthonormalFilter::new(WaveletFamily::Symmlet(8)).unwrap())
    });

    let basis = Arc::new(WaveletBasis::new(WaveletFamily::Symmlet(8)).unwrap());
    group.bench_function("basis_table_construction_sym8", |b| {
        b.iter(|| WaveletBasis::new(WaveletFamily::Symmlet(8)).unwrap())
    });

    let evaluator = PointwiseEvaluator::new(WaveletFamily::Symmlet(8)).unwrap();
    group.bench_function("daubechies_lagarias_psi_point", |b| {
        b.iter(|| evaluator.psi(7.123456))
    });
    group.bench_function("table_psi_point", |b| b.iter(|| basis.psi(7.123456)));

    let data = paper_sample(1 << 10, 42);
    group.bench_function("empirical_coefficients_n1024", |b| {
        b.iter(|| {
            EmpiricalCoefficients::compute(Arc::clone(&basis), &data, (0.0, 1.0), 1, 10).unwrap()
        })
    });

    // The ingest fast path (strided gather, shared interpolation weights)
    // against the scalar per-translation reference on the same sketch
    // shape — the single-thread speedup `engine_throughput` records at
    // scale.
    let sketch_template =
        wavedens_core::CoefficientSketch::new(WaveletFamily::Symmlet(8), (0.0, 1.0), 1, 10)
            .unwrap();
    group.bench_function("sketch_push_batch_gather_n1024", |b| {
        b.iter_batched(
            || sketch_template.clone(),
            |mut sketch| {
                sketch.push_batch(&data);
                sketch
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("sketch_push_batch_scalar_n1024", |b| {
        b.iter_batched(
            || sketch_template.clone(),
            |mut sketch| {
                sketch.push_batch_scalar(&data);
                sketch
            },
            BatchSize::SmallInput,
        )
    });

    let coeffs =
        EmpiricalCoefficients::compute(Arc::clone(&basis), &data, (0.0, 1.0), 1, 10).unwrap();
    group.bench_function("cross_validation_n1024", |b| {
        b.iter(|| cross_validate(&coeffs, ThresholdRule::Soft))
    });

    group.bench_function("stcv_fit_n1024", |b| {
        b.iter(|| {
            WaveletDensityEstimator::stcv()
                .with_basis(Arc::clone(&basis))
                .fit(&data)
                .unwrap()
        })
    });

    let estimate = WaveletDensityEstimator::stcv()
        .with_basis(Arc::clone(&basis))
        .fit(&data)
        .unwrap();
    let grid = Grid::unit_interval();
    group.bench_function("estimate_evaluate_grid_512", |b| {
        b.iter(|| estimate.evaluate_on(&grid))
    });

    group.bench_function("kernel_cv_bandwidth_n1024", |b| {
        b.iter(|| {
            KernelDensityEstimator::cross_validated()
                .fit(&data)
                .unwrap()
        })
    });

    group.bench_function("simulate_case3_n1024", |b| {
        b.iter_batched(
            || seeded_rng(7),
            |mut rng| {
                DependenceCase::NonCausalMa.simulate(
                    &SineUniformMixture::paper(),
                    1 << 10,
                    &mut rng,
                )
            },
            BatchSize::SmallInput,
        )
    });

    let dwt = Dwt::new(WaveletFamily::Symmlet(8)).unwrap();
    let signal: Vec<f64> = (0..1024).map(|i| (i as f64 * 0.01).sin()).collect();
    group.bench_function("dwt_decompose_1024x5", |b| {
        b.iter(|| dwt.decompose(&signal, 5).unwrap())
    });

    group.finish();
}

criterion_group!(benches, primitives);
criterion_main!(benches);
