//! Benchmarks of the selectivity-estimation application: synopsis
//! construction, incremental maintenance and query answering, against the
//! histogram baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use wavedens_bench::paper_sample;
use wavedens_selectivity::{
    EmpiricalSelectivity, HistogramSelectivity, RangeQuery, SelectivityEstimator,
    WaveletSelectivity,
};

fn selectivity(c: &mut Criterion) {
    let data = paper_sample(1 << 12, 5);
    let truth = EmpiricalSelectivity::new(&data).unwrap();
    let query = RangeQuery::new(0.2, 0.45).unwrap();
    let wavelet = WaveletSelectivity::fit(&data).unwrap();
    let histogram = HistogramSelectivity::fit(&data, 64);
    println!(
        "\nSelectivity of [0.2, 0.45]: exact {:.4}, wavelet {:.4}, 64-bucket histogram {:.4}",
        truth.estimate(&query),
        wavelet.estimate(&query),
        histogram.estimate(&query)
    );

    let mut group = c.benchmark_group("selectivity");
    group.sample_size(10);
    group.bench_function("build_wavelet_synopsis_4096", |b| {
        b.iter(|| WaveletSelectivity::fit(&data).unwrap())
    });
    group.bench_function("build_histogram_64_4096", |b| {
        b.iter(|| HistogramSelectivity::fit(&data, 64))
    });
    let mut refreshed = WaveletSelectivity::fit(&data).unwrap();
    refreshed.refresh().unwrap();
    group.bench_function("wavelet_query", |b| b.iter(|| refreshed.estimate(&query)));
    group.bench_function("histogram_query", |b| b.iter(|| histogram.estimate(&query)));
    group.finish();
}

criterion_group!(benches, selectivity);
criterion_main!(benches);
