//! Bench target regenerating Figure 5 (wavelet vs kernel estimators on the
//! bimodal Gaussian mixture) at reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use wavedens_bench::{bench_config, summary_config};
use wavedens_experiments::kernel_comparison_curves;
use wavedens_processes::DependenceCase;

fn fig5(c: &mut Criterion) {
    let cmp = kernel_comparison_curves(&summary_config(), DependenceCase::ExpandingMap);
    println!(
        "\nFigure 5 (reduced scale, Case 2): MISE wavelet {:.4}, kernel(rot) {:.4}, kernel(cv) {:.4}",
        cmp.mise[0], cmp.mise[1], cmp.mise[2]
    );

    let mut group = c.benchmark_group("fig5_kernel_comparison");
    group.sample_size(10);
    for case in DependenceCase::ALL {
        group.bench_function(format!("comparison_{}", case.id()), |b| {
            b.iter(|| kernel_comparison_curves(&bench_config(), case).mise)
        });
    }
    group.finish();
}

criterion_group!(benches, fig5);
criterion_main!(benches);
