//! Bench target regenerating Figures 1 and 2 (mean HTCV/STCV estimate
//! curves) at reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use wavedens_bench::{bench_config, summary_config};
use wavedens_core::ThresholdRule;
use wavedens_experiments::case_mise;
use wavedens_processes::DependenceCase;

fn curves(c: &mut Criterion) {
    let config = summary_config();
    for (figure, rule) in [(1, ThresholdRule::Hard), (2, ThresholdRule::Soft)] {
        let summary = case_mise(&config, DependenceCase::ExpandingMap, rule);
        let mid = summary.mean_estimate[summary.mean_estimate.len() / 2];
        println!(
            "Figure {figure} (reduced scale): mean {}CV estimate at x=0.5 is {:.3} (true {:.3})",
            rule.short_name(),
            mid,
            summary.true_density[summary.true_density.len() / 2]
        );
    }

    let mut group = c.benchmark_group("fig1_fig2_curves");
    group.sample_size(10);
    group.bench_function("mean_htcv_curve_case3", |b| {
        b.iter(|| {
            case_mise(
                &bench_config(),
                DependenceCase::NonCausalMa,
                ThresholdRule::Hard,
            )
            .mean_estimate
        })
    });
    group.bench_function("mean_stcv_curve_case1", |b| {
        b.iter(|| {
            case_mise(&bench_config(), DependenceCase::Iid, ThresholdRule::Soft).mean_estimate
        })
    });
    group.finish();
}

criterion_group!(benches, curves);
criterion_main!(benches);
