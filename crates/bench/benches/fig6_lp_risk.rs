//! Bench target regenerating Figure 6 (mean Lp risk as a function of p) at
//! reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use wavedens_bench::{bench_config, summary_config};
use wavedens_experiments::lp_risk_profile;
use wavedens_processes::DependenceCase;

fn fig6(c: &mut Criterion) {
    let p_values: Vec<f64> = vec![1.0, 2.0, 4.0, 8.0, 16.0, 20.0];
    let profile = lp_risk_profile(&summary_config(), DependenceCase::Iid, &p_values);
    println!("\nFigure 6 (reduced scale, Case 1): p, wavelet, kernel(rot), kernel(cv)");
    for (i, p) in profile.p_values.iter().enumerate() {
        println!(
            "  {p:4.1}  {:7.3}  {:7.3}  {:7.3}",
            profile.wavelet[i], profile.kernel_rot[i], profile.kernel_cv[i]
        );
    }

    let mut group = c.benchmark_group("fig6_lp_risk");
    group.sample_size(10);
    group.bench_function("lp_profile_case3", |b| {
        b.iter(|| lp_risk_profile(&bench_config(), DependenceCase::NonCausalMa, &p_values).wavelet)
    });
    group.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
