//! Bench target regenerating Figures 7 and 8 (mean estimates and integrated
//! moments on Liverani–Saussol–Vaienti maps) at reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use wavedens_bench::{bench_config, summary_config};
use wavedens_experiments::lsv_study;

fn lsv(c: &mut Criterion) {
    println!("\nFigure 7/8 (reduced scale): integrated 1st and 10th moments");
    for alpha in [0.2, 0.5, 0.8] {
        let summary = lsv_study(&summary_config(), alpha, 10);
        println!(
            "  α'={alpha}: wavelet m1={:.3} m10={:.3}; kernel m1={:.3} m10={:.3}",
            summary.wavelet_moments[0],
            summary.wavelet_moments[9],
            summary.kernel_moments[0],
            summary.kernel_moments[9]
        );
    }

    let mut group = c.benchmark_group("fig7_fig8_lsv");
    group.sample_size(10);
    for alpha in [0.1_f64, 0.5, 0.9] {
        group.bench_function(format!("lsv_alpha_{alpha}"), |b| {
            b.iter(|| lsv_study(&bench_config(), alpha, 5).wavelet_moments)
        });
    }
    group.finish();
}

criterion_group!(benches, lsv);
criterion_main!(benches);
