//! Ablation bench: threshold-selection rules (penalised vs literal CV,
//! theoretical K√(j/n), linear projection) and convergence-rate sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use wavedens_bench::{bench_config, summary_config};
use wavedens_experiments::{rate_study, threshold_ablation};
use wavedens_processes::DependenceCase;

fn ablation(c: &mut Criterion) {
    println!("\nThreshold-rule ablation (reduced scale, Case 2):");
    for row in threshold_ablation(&summary_config(), DependenceCase::ExpandingMap) {
        println!(
            "  {:40} MISE {:.4}  sparsity {:.2}",
            row.label, row.mise, row.mean_sparsity
        );
    }
    println!("Rate sweep (reduced scale, Case 1):");
    for row in rate_study(
        &summary_config().with_replications(5),
        DependenceCase::Iid,
        &[256, 1024],
    ) {
        println!(
            "  n={:5}  wavelet {:.4}  kernel-cv {:.4}",
            row.n, row.mise_wavelet, row.mise_kernel_cv
        );
    }

    let mut group = c.benchmark_group("ablation_thresholds");
    group.sample_size(10);
    group.bench_function("ablation_case1", |b| {
        b.iter(|| threshold_ablation(&bench_config().with_replications(1), DependenceCase::Iid))
    });
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
