//! Query-throughput benchmark of the selectivity synopsis: insert 10k
//! rows, answer 1k range queries, comparing the precomputed-CDF fast path
//! against the per-query quadrature path it replaced.
//!
//! Besides the usual Criterion timings, the run writes the headline
//! numbers to `BENCH_query_throughput.json` at the repository root so the
//! performance trajectory of the query path is tracked across PRs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Instant;
use wavedens_bench::paper_sample;
use wavedens_core::WaveletDensityEstimate;
use wavedens_processes::seeded_rng;
use wavedens_selectivity::{
    integrate_density, RangeQuery, SelectivityEstimator, WaveletSelectivity, WorkloadGenerator,
};

const ROWS: usize = 10_000;
const QUERIES: usize = 1_000;
/// Wall-clock repetitions per measured path; the minimum total is
/// reported to suppress scheduler noise.
const REPEATS: usize = 5;

/// Minimum total wall time of `routine` over [`REPEATS`] runs.
fn min_total_seconds(mut routine: impl FnMut() -> f64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPEATS {
        let start = Instant::now();
        black_box(routine());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn query_throughput(c: &mut Criterion) {
    let data = paper_sample(ROWS, 11);
    let mut rng = seeded_rng(29);
    let workload: Vec<RangeQuery> = WorkloadGenerator::analytical().draw_many(QUERIES, &mut rng);

    // Ingestion: 10k rows through the batched streaming path.
    let insert_start = Instant::now();
    let mut synopsis = WaveletSelectivity::with_expected_rows(ROWS).expect("synopsis");
    synopsis.observe_many(data.iter().copied());
    let insert_seconds = insert_start.elapsed().as_secs_f64();

    // One cross-validation rebuild + dense CDF construction.
    let rebuild_start = Instant::now();
    synopsis.refresh().expect("refresh");
    let rebuild_seconds = rebuild_start.elapsed().as_secs_f64();
    let density: WaveletDensityEstimate = synopsis.refresh().expect("refresh").clone();

    // Fast path: warm-cache CDF queries.
    let cdf_seconds =
        min_total_seconds(|| workload.iter().map(|q| synopsis.estimate(q)).sum::<f64>());

    // Reference path: fresh trapezoidal quadrature per query (what every
    // warm-cache query cost before the CDF fast path).
    let integration_seconds = min_total_seconds(|| {
        workload
            .iter()
            .map(|q| integrate_density(q, |x| density.evaluate(x)))
            .sum::<f64>()
    });

    // The two paths must agree on the answers they speed up.
    let mean_abs_difference = workload
        .iter()
        .map(|q| (synopsis.estimate(q) - integrate_density(q, |x| density.evaluate(x))).abs())
        .sum::<f64>()
        / QUERIES as f64;

    // A stale-cache burst must trigger exactly one rebuild.
    let rebuilds_before = synopsis.rebuild_count();
    synopsis.observe(0.5);
    for q in &workload {
        black_box(synopsis.estimate(q));
    }
    let stale_burst_rebuilds = synopsis.rebuild_count() - rebuilds_before;

    let speedup = integration_seconds / cdf_seconds;
    println!(
        "\nquery_throughput: {ROWS} rows, {QUERIES} queries\n\
         insert           {insert_seconds:10.6} s\n\
         rebuild (CV+CDF) {rebuild_seconds:10.6} s\n\
         CDF path         {cdf_seconds:10.6} s  ({:10.0} queries/s)\n\
         integration path {integration_seconds:10.6} s  ({:10.0} queries/s)\n\
         speedup          {speedup:10.1}×\n\
         mean |Δ|         {mean_abs_difference:10.2e}\n\
         stale-burst rebuilds {stale_burst_rebuilds}",
        QUERIES as f64 / cdf_seconds,
        QUERIES as f64 / integration_seconds,
    );

    // Throughput numbers from hosts with different core counts are not
    // comparable; record the host's parallelism next to them.
    let host_threads = std::thread::available_parallelism().map_or(0, |n| n.get());

    let json = format!(
        "{{\n  \"bench\": \"query_throughput\",\n  \"available_parallelism\": {host_threads},\n  \
         \"rows\": {ROWS},\n  \"queries\": {QUERIES},\n  \
         \"insert_seconds\": {insert_seconds:.6},\n  \"rebuild_seconds\": {rebuild_seconds:.6},\n  \
         \"cdf_path\": {{ \"total_seconds\": {cdf_seconds:.6}, \"queries_per_second\": {:.0} }},\n  \
         \"integration_path\": {{ \"total_seconds\": {integration_seconds:.6}, \"queries_per_second\": {:.0} }},\n  \
         \"speedup\": {speedup:.1},\n  \"stale_burst_rebuilds\": {stale_burst_rebuilds},\n  \
         \"mean_abs_difference\": {mean_abs_difference:.3e}\n}}\n",
        QUERIES as f64 / cdf_seconds,
        QUERIES as f64 / integration_seconds,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_query_throughput.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }

    let mut group = c.benchmark_group("query_throughput");
    group.sample_size(10);
    let query = RangeQuery::new(0.2, 0.45).expect("valid query");
    group.bench_function("cdf_query", |b| b.iter(|| synopsis.estimate(&query)));
    group.bench_function("integration_query", |b| {
        b.iter(|| integrate_density(&query, |x| density.evaluate(x)))
    });
    group.finish();
}

criterion_group!(benches, query_throughput);
criterion_main!(benches);
