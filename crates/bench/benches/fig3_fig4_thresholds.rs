//! Bench target regenerating Figures 3 and 4 (cross-validated threshold
//! levels and thresholded-coefficient proportions per resolution level) at
//! reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use wavedens_bench::{bench_config, summary_config};
use wavedens_core::ThresholdRule;
use wavedens_experiments::case_mise;
use wavedens_processes::DependenceCase;

fn thresholds(c: &mut Criterion) {
    let summary = case_mise(&summary_config(), DependenceCase::Iid, ThresholdRule::Soft);
    println!("\nFigure 3/4 (reduced scale, STCV, Case 1):");
    for (i, level) in summary.levels.iter().enumerate() {
        println!(
            "  level {level}: mean λ̂ = {:.4}, mean thresholded fraction = {:.2}",
            summary.mean_thresholds[i], summary.mean_killed_fraction[i]
        );
    }

    let mut group = c.benchmark_group("fig3_fig4_thresholds");
    group.sample_size(10);
    group.bench_function("threshold_profile_case2_htcv", |b| {
        b.iter(|| {
            case_mise(
                &bench_config(),
                DependenceCase::ExpandingMap,
                ThresholdRule::Hard,
            )
            .mean_thresholds
        })
    });
    group.finish();
}

criterion_group!(benches, thresholds);
criterion_main!(benches);
