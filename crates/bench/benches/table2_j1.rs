//! Bench target regenerating Table 2 (mean data-driven highest level ĵ1)
//! at reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use wavedens_bench::{bench_config, summary_config};
use wavedens_core::ThresholdRule;
use wavedens_experiments::case_mise;
use wavedens_processes::DependenceCase;

fn table2(c: &mut Criterion) {
    let config = summary_config();
    println!("\nTable 2 (reduced scale, {} reps):", config.replications);
    for rule in [ThresholdRule::Hard, ThresholdRule::Soft] {
        let row: Vec<String> = DependenceCase::ALL
            .into_iter()
            .map(|case| format!("{:.2}", case_mise(&config, case, rule).mean_j1))
            .collect();
        println!("  {}CV mean ĵ1: {}", rule.short_name(), row.join(" / "));
    }

    let mut group = c.benchmark_group("table2_j1");
    group.sample_size(10);
    group.bench_function("mean_j1_case2_stcv", |b| {
        b.iter(|| {
            case_mise(
                &bench_config(),
                DependenceCase::ExpandingMap,
                ThresholdRule::Soft,
            )
            .mean_j1
        })
    });
    group.finish();
}

criterion_group!(benches, table2);
criterion_main!(benches);
