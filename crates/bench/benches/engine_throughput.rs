//! Throughput benchmark of the multi-attribute synopsis engine: the
//! single-thread strided-gather ingest fast path against the scalar
//! reference scatter (swept across the kernel backends), work-stealing
//! sharded ingest scaling over the 1-shard baseline, plus a mixed
//! workload where cached range queries are served concurrently with
//! ingest bursts while the writers pay (and time) the synopsis rebuilds.
//!
//! Besides the usual Criterion timings, the run writes the headline
//! numbers to `BENCH_engine_throughput.json` at the repository root so
//! the scaling trajectory of the engine is tracked across PRs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;
use wavedens_bench::paper_sample;
use wavedens_core::{CoefficientSketch, DEFAULT_CDF_POINTS};
use wavedens_engine::{
    AttributeSynopsis, CompactionPolicy, RefreshedSynopsis, ShardedIngest, SynopsisCatalog,
    SynopsisConfig, WindowPolicy, WindowedIngest,
};
use wavedens_wavelets::kernels::{self, Backend};

/// Rows ingested per attribute (and per ingest-scaling run).
const ROWS: usize = 50_000;
/// Attributes in the mixed-workload catalog phase.
const ATTRIBUTES: usize = 3;
/// Shard counts swept in the ingest-scaling phase.
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
/// Wall-clock repetitions per measured configuration; the minimum is
/// reported to suppress scheduler noise.
const REPEATS: usize = 5;

fn min_seconds(mut routine: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPEATS {
        let start = Instant::now();
        routine();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Nearest-rank percentile of an ascending-sorted sample (`q` in [0, 1]).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn engine_throughput(c: &mut Criterion) {
    let data = paper_sample(ROWS, 41);
    let template = CoefficientSketch::sized_for(ROWS).expect("template");

    // Warm-up: one untimed ingest settles backend detection, the chunk
    // autotuner probe and the cache hierarchy before anything is timed.
    {
        let mut sketch = template.clone();
        sketch.push_batch(&data);
        black_box(sketch.count());
    }

    // Phase 0 — single-thread ingest fast path: the strided-gather
    // `push_batch` against the scalar per-translation reference
    // (`push_batch_scalar`), identical sketch configuration and rows.
    // This isolates the basis-evaluation speedup from sharding and merge
    // effects, so it is comparable across runners of any core count.
    let scalar_seconds = min_seconds(|| {
        let mut sketch = template.clone();
        sketch.push_batch_scalar(&data);
        black_box(sketch.count());
    });
    let fast_seconds = min_seconds(|| {
        let mut sketch = template.clone();
        sketch.push_batch(&data);
        black_box(sketch.count());
    });
    let fast_path_speedup = scalar_seconds / fast_seconds;
    println!(
        "single-thread ingest of {ROWS} rows: scalar {scalar_seconds:.4} s \
         ({:.0} rows/s), gather fast path {fast_seconds:.4} s ({:.0} rows/s) \
         — {fast_path_speedup:.2}×",
        ROWS as f64 / scalar_seconds,
        ROWS as f64 / fast_seconds,
    );

    // Phase 0b — the same single-thread ingest pinned to each kernel
    // backend in turn. The spread between `scalar` and `lanes`/
    // `intrinsics` is exactly what the SIMD kernels buy; `intrinsics`
    // is reported only where the build and the CPU provide it.
    let mut simd_series: Vec<(&'static str, f64)> = Vec::new();
    for backend in [Backend::Scalar, Backend::Lanes, Backend::Intrinsics] {
        if backend == Backend::Intrinsics && !kernels::intrinsics_available() {
            continue;
        }
        kernels::set_backend_override(Some(backend));
        let seconds = min_seconds(|| {
            let mut sketch = template.clone();
            sketch.push_batch(&data);
            black_box(sketch.count());
        });
        println!(
            "  backend {:<10} {seconds:.4} s ({:.0} rows/s)",
            backend.name(),
            ROWS as f64 / seconds
        );
        simd_series.push((backend.name(), seconds));
    }
    kernels::set_backend_override(None);

    // The shard threads can only spread over the cores the host grants;
    // on a 1-core runner the >1 shard points would measure scheduler
    // round-robin rather than scaling, so they are skipped (and the skip
    // is recorded in the JSON). The fast-path and backend series are
    // single-threaded and meaningful everywhere.
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let shard_counts: &[usize] = if cores > 1 {
        &SHARD_COUNTS
    } else {
        &SHARD_COUNTS[..1]
    };
    if shard_counts.len() < SHARD_COUNTS.len() {
        println!("1 core available: skipping the multi-shard scaling points");
    }

    // Phase 1 — ingest scaling: the same bulk load through the swept
    // shard counts, filled by the work-stealing pool and merged at the
    // end (the merge is part of the measured cost: it is what estimate
    // time pays).
    let mut ingest_seconds = Vec::new();
    for &shards in shard_counts {
        let seconds = min_seconds(|| {
            let sharded = ShardedIngest::new(&template, shards).expect("shards");
            sharded.ingest_parallel(&data);
            black_box(sharded.merged().expect("merge"));
        });
        println!(
            "ingest {ROWS} rows, {shards} shard(s): {seconds:.4} s \
             ({:.0} rows/s)",
            ROWS as f64 / seconds
        );
        ingest_seconds.push((shards, seconds));
    }
    let baseline = ingest_seconds[0].1;
    let best = ingest_seconds
        .iter()
        .copied()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("nonempty");
    let speedup = baseline / best.1;
    println!(
        "best: {} shard(s), {speedup:.2}× over the 1-shard baseline",
        best.0
    );

    // Phase 2 — mixed workload: ATTRIBUTES writers ingesting bursts and
    // paying (and timing) the synopsis rebuilds, while two readers
    // answer range queries the whole time from the atomically swapped
    // snapshots via the cached read path. Readers never rebuild, so the
    // query-latency series measures the estimator alone; rebuild cost is
    // reported as its own latency series from the writer side.
    let catalog = SynopsisCatalog::new();
    let names: Vec<String> = (0..ATTRIBUTES).map(|i| format!("attr{i}")).collect();
    let config = SynopsisConfig::default()
        .with_expected_rows(ROWS)
        .with_shards(4);
    for name in &names {
        catalog.register(name, config.clone()).expect("register");
    }
    let streams: Vec<Vec<f64>> = (0..ATTRIBUTES)
        .map(|i| paper_sample(ROWS, 50 + i as u64))
        .collect();

    // Prime every attribute with its first burst and one untimed refresh
    // so the cached read path is live before any reader starts; the
    // timed rebuilds below are then all incremental (the steady state),
    // not the one-off first build.
    const BURSTS: usize = 8;
    for (name, stream) in names.iter().zip(&streams) {
        let first = &stream[..ROWS.div_ceil(BURSTS)];
        catalog.ingest_parallel(name, first).expect("registered");
        catalog.refresh(name).expect("registered");
    }

    let queries_answered = AtomicUsize::new(0);
    let writers_done = AtomicBool::new(false);
    let mut query_latencies: Vec<f64> = Vec::new();
    let mut rebuild_latencies: Vec<f64> = Vec::new();
    let concurrent_start = Instant::now();
    std::thread::scope(|scope| {
        let mut writer_handles = Vec::new();
        for (name, stream) in names.iter().zip(&streams) {
            let catalog = &catalog;
            writer_handles.push(scope.spawn(move || {
                let mut rebuilds = Vec::new();
                for chunk in stream.chunks(ROWS.div_ceil(BURSTS)).skip(1) {
                    catalog.ingest_parallel(name, chunk).expect("registered");
                    let start = Instant::now();
                    catalog.refresh(name).expect("registered");
                    rebuilds.push(start.elapsed().as_secs_f64());
                }
                rebuilds
            }));
        }
        let mut latency_handles = Vec::new();
        for reader in 0..2 {
            let catalog = &catalog;
            let names = &names;
            let queries_answered = &queries_answered;
            let writers_done = &writers_done;
            latency_handles.push(scope.spawn(move || {
                let mut latencies = Vec::new();
                let mut i = 0usize;
                while !writers_done.load(Ordering::Acquire) || i < 500 {
                    let name = &names[(reader + i) % names.len()];
                    let lo = (i % 60) as f64 / 100.0;
                    let start = Instant::now();
                    let s = catalog
                        .selectivity_cached(name, lo, lo + 0.25)
                        .expect("registered")
                        .expect("primed before readers started");
                    latencies.push(start.elapsed().as_secs_f64());
                    assert!((0.0..=1.0).contains(&s));
                    queries_answered.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
                latencies
            }));
        }
        // Release the readers once every writer's rows have landed.
        while catalog.total_rows() < ATTRIBUTES * ROWS {
            std::thread::yield_now();
        }
        writers_done.store(true, Ordering::Release);
        for handle in writer_handles {
            rebuild_latencies.extend(handle.join().expect("writer"));
        }
        for handle in latency_handles {
            query_latencies.extend(handle.join().expect("reader"));
        }
    });
    let concurrent_seconds = concurrent_start.elapsed().as_secs_f64();
    let queries = queries_answered.load(Ordering::Relaxed);
    let rebuilds: usize = names
        .iter()
        .map(|name| catalog.attribute(name).expect("registered").rebuild_count())
        .sum();
    query_latencies.sort_by(f64::total_cmp);
    let latency_p50 = percentile(&query_latencies, 0.50);
    let latency_p99 = percentile(&query_latencies, 0.99);
    let latency_max = query_latencies.last().copied().unwrap_or(0.0);
    rebuild_latencies.sort_by(f64::total_cmp);
    let rebuild_p50 = percentile(&rebuild_latencies, 0.50);
    let rebuild_p99 = percentile(&rebuild_latencies, 0.99);
    let rebuild_max = rebuild_latencies.last().copied().unwrap_or(0.0);
    println!(
        "mixed load: {queries} queries answered in {concurrent_seconds:.3} s \
         ({:.0} queries/s) while {} rows were ingested and {rebuilds} \
         rebuilds ran; query latency p50 {:.6} ms, p99 {:.6} ms, max {:.3} ms; \
         rebuild latency p50 {:.3} ms, p99 {:.3} ms, max {:.3} ms",
        queries as f64 / concurrent_seconds,
        ATTRIBUTES * ROWS,
        latency_p50 * 1e3,
        latency_p99 * 1e3,
        latency_max * 1e3,
        rebuild_p50 * 1e3,
        rebuild_p99 * 1e3,
        rebuild_max * 1e3,
    );

    // Phase 3 — synopsis size: the paper's n = 8192 workload, dense wire
    // frames (legacy v1 and current v2) vs the level-truncated compacted
    // frame the engine ships.
    const SIZE_ROWS: usize = 8192;
    let paper_rows = paper_sample(SIZE_ROWS, 77);
    let size_config = SynopsisConfig::default()
        .with_expected_rows(SIZE_ROWS)
        .with_shards(1);
    let size_synopsis = AttributeSynopsis::new(&size_config).expect("synopsis");
    size_synopsis.ingest(&paper_rows);
    let dense = size_synopsis.merged_sketch().expect("merged");
    let dense_v1_bytes = dense.to_bytes_v1().len();
    let dense_v2_bytes = dense.to_bytes().len();
    let compacted_bytes = size_synopsis
        .ship(CompactionPolicy::InactiveTail)
        .expect("ship")
        .len();
    let compaction_ratio = dense_v1_bytes as f64 / compacted_bytes as f64;
    println!(
        "synopsis size at n = {SIZE_ROWS}: dense v1 {dense_v1_bytes} B, dense v2 \
         {dense_v2_bytes} B, compacted {compacted_bytes} B \
         ({compaction_ratio:.1}× smaller than dense v1)"
    );

    // Phase 4 — refresh latency under repeated small-batch ingest: the
    // incremental path (guard-owned scratch merge + CV cache) against a
    // full cross-validation rebuild from a freshly merged sketch per
    // batch. Both paths pay the same base load, ingest and CDF
    // construction; the delta is what the incremental machinery saves.
    const REFRESH_BATCHES: usize = 32;
    const BATCH_ROWS: usize = 64;
    let refresh_batches: Vec<Vec<f64>> = (0..REFRESH_BATCHES)
        .map(|i| paper_sample(BATCH_ROWS, 200 + i as u64))
        .collect();
    let full_refresh_seconds = min_seconds(|| {
        let synopsis = AttributeSynopsis::new(&size_config).expect("synopsis");
        synopsis.ingest(&paper_rows);
        for batch in &refresh_batches {
            synopsis.ingest(batch);
            let sketch = synopsis.merged_sketch().expect("merged");
            black_box(
                RefreshedSynopsis::build(&sketch, synopsis.rule(), DEFAULT_CDF_POINTS)
                    .expect("full rebuild"),
            );
        }
    });
    let incremental_refresh_seconds = min_seconds(|| {
        let synopsis = AttributeSynopsis::new(&size_config).expect("synopsis");
        synopsis.ingest(&paper_rows);
        for batch in &refresh_batches {
            synopsis.ingest(batch);
            black_box(synopsis.refreshed().expect("incremental rebuild"));
        }
    });
    let refresh_speedup = full_refresh_seconds / incremental_refresh_seconds;
    println!(
        "refresh after {REFRESH_BATCHES} batches of {BATCH_ROWS} rows on {SIZE_ROWS} base \
         rows: full CV {:.2} ms/refresh, incremental {:.2} ms/refresh \
         ({refresh_speedup:.2}× faster)",
        full_refresh_seconds * 1e3 / REFRESH_BATCHES as f64,
        incremental_refresh_seconds * 1e3 / REFRESH_BATCHES as f64,
    );

    // Phase 5 — sliding-window ingest: the same bulk load through a
    // 4-shard ring of 4 slices with an advance per epoch, folded at the
    // end. Steady-state windowed ingest should track the landmark sharded
    // path (the ring only redirects batches to the current slice); the
    // separately measured advance is the whole cost of "subtracting" a
    // retired slice — an O(1) swap per shard plus an out-of-lock clear,
    // paid once per time slice instead of a rebuild.
    const WINDOW_SLICES: usize = 4;
    const WINDOW_EPOCHS: usize = 4;
    let window_policy = WindowPolicy::SlidingSlices(WINDOW_SLICES);
    let windowed_seconds = min_seconds(|| {
        let ring = WindowedIngest::new(&template, 4, window_policy).expect("ring");
        for chunk in data.chunks(ROWS.div_ceil(WINDOW_EPOCHS)) {
            ring.ingest_parallel(chunk);
            ring.advance_all();
        }
        black_box(ring.merged().expect("fold"));
    });
    // Advance cost alone, every advance retiring a populated slice.
    const ADVANCES: usize = 64;
    let advance_ring = WindowedIngest::new(&template, 4, window_policy).expect("ring");
    let mut advance_seconds = 0.0;
    for i in 0..ADVANCES + WINDOW_SLICES {
        advance_ring.ingest_parallel(&data[..1024]);
        let start = Instant::now();
        advance_ring.advance_all();
        // Skip the warm-up advances that only grow the ring.
        if i >= WINDOW_SLICES {
            advance_seconds += start.elapsed().as_secs_f64();
        }
    }
    let advance_micros = advance_seconds * 1e6 / ADVANCES as f64;
    println!(
        "windowed ingest of {ROWS} rows ({WINDOW_SLICES}-slice ring, \
         {WINDOW_EPOCHS} advances, 4 shards): {windowed_seconds:.4} s \
         ({:.0} rows/s); advance retiring a 1024-row slice: {advance_micros:.1} µs",
        ROWS as f64 / windowed_seconds,
    );

    let ingest_json: Vec<String> = ingest_seconds
        .iter()
        .map(|(shards, seconds)| {
            format!(
                "    \"shards_{shards}\": {{ \"seconds\": {seconds:.6}, \"rows_per_second\": {:.0} }}",
                ROWS as f64 / seconds
            )
        })
        .collect();
    let simd_json: Vec<String> = simd_series
        .iter()
        .map(|(name, seconds)| {
            format!(
                "    \"{name}\": {{ \"seconds\": {seconds:.6}, \"rows_per_second\": {:.0} }}",
                ROWS as f64 / seconds
            )
        })
        .collect();
    // Record the core count — plus the wavelet family and table
    // resolution the basis evaluation ran at — so runs on different
    // machines (multi-core runners in particular) stay comparable.
    let scaling_note = if shard_counts.len() < SHARD_COUNTS.len() {
        ",\n  \"ingest_scaling_note\": \"multi-shard points skipped: 1 core available\""
    } else {
        ""
    };
    let family = template.basis().family().name();
    let table_levels = template.basis().table().levels();
    let json = format!(
        "{{\n  \"bench\": \"engine_throughput\",\n  \"rows_per_attribute\": {ROWS},\n  \
         \"attributes\": {ATTRIBUTES},\n  \"available_parallelism\": {cores},\n  \
         \"wavelet_family\": \"{family}\",\n  \"table_levels\": {table_levels},\n  \
         \"ingest_fast_path\": {{\n    \"rows\": {ROWS},\n    \
         \"scalar_seconds\": {scalar_seconds:.6},\n    \
         \"scalar_rows_per_second\": {:.0},\n    \
         \"fast_seconds\": {fast_seconds:.6},\n    \
         \"fast_rows_per_second\": {:.0},\n    \
         \"speedup\": {fast_path_speedup:.2}\n  }},\n  \
         \"simd\": {{\n{}\n  }},\n  \
         \"ingest_scaling\": {{\n{}\n  }}{scaling_note},\n  \
         \"best_shards\": {},\n  \"ingest_speedup_over_1_shard\": {speedup:.2},\n  \
         \"concurrent\": {{\n    \"queries\": {queries},\n    \"seconds\": {concurrent_seconds:.6},\n    \
         \"queries_per_second\": {:.0},\n    \"rebuilds\": {rebuilds},\n    \
         \"query_latency_p50_ms\": {:.6},\n    \
         \"query_latency_p99_ms\": {:.6},\n    \
         \"query_latency_max_ms\": {:.3},\n    \
         \"rebuild_latency_p50_ms\": {:.3},\n    \
         \"rebuild_latency_p99_ms\": {:.3},\n    \
         \"rebuild_latency_max_ms\": {:.3}\n  }},\n  \
         \"synopsis_size\": {{\n    \"rows\": {SIZE_ROWS},\n    \
         \"dense_v1_bytes\": {dense_v1_bytes},\n    \"dense_v2_bytes\": {dense_v2_bytes},\n    \
         \"compacted_bytes\": {compacted_bytes},\n    \
         \"compaction_ratio_over_dense_v1\": {compaction_ratio:.2}\n  }},\n  \
         \"incremental_refresh\": {{\n    \"base_rows\": {SIZE_ROWS},\n    \
         \"batches\": {REFRESH_BATCHES},\n    \"rows_per_batch\": {BATCH_ROWS},\n    \
         \"full_cv_seconds\": {full_refresh_seconds:.6},\n    \
         \"incremental_seconds\": {incremental_refresh_seconds:.6},\n    \
         \"refresh_speedup\": {refresh_speedup:.2}\n  }},\n  \
         \"windowed_ingest\": {{\n    \"rows\": {ROWS},\n    \
         \"ring_slices\": {WINDOW_SLICES},\n    \"advances\": {WINDOW_EPOCHS},\n    \
         \"seconds\": {windowed_seconds:.6},\n    \
         \"rows_per_second\": {:.0},\n    \
         \"advance_retire_1024_rows_micros\": {advance_micros:.1}\n  }}\n}}\n",
        ROWS as f64 / scalar_seconds,
        ROWS as f64 / fast_seconds,
        simd_json.join(",\n"),
        ingest_json.join(",\n"),
        best.0,
        queries as f64 / concurrent_seconds,
        latency_p50 * 1e3,
        latency_p99 * 1e3,
        latency_max * 1e3,
        rebuild_p50 * 1e3,
        rebuild_p99 * 1e3,
        rebuild_max * 1e3,
        ROWS as f64 / windowed_seconds,
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_engine_throughput.json"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }

    // Criterion micro-benchmarks on the merge and query hot paths.
    let sharded = ShardedIngest::new(&template, 4).expect("shards");
    sharded.ingest_parallel(&data);
    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    group.bench_function("merge_4_shards", |b| {
        b.iter(|| black_box(sharded.merged().expect("merge")))
    });
    group.bench_function("catalog_query", |b| {
        b.iter(|| black_box(catalog.selectivity("attr0", 0.2, 0.45).expect("registered")))
    });
    group.finish();
}

criterion_group!(benches, engine_throughput);
criterion_main!(benches);
