//! A named registry of attribute synopses — the multi-attribute face of
//! the engine.
//!
//! A query optimiser tracks selectivities for many table columns at once;
//! the catalog maps attribute names to [`AttributeSynopsis`] instances so
//! one process can ingest and answer for all of them concurrently. The
//! registry itself is read-mostly (attributes are registered once, then
//! ingested into and queried forever), so it sits behind an [`RwLock`]
//! whose write lock is only taken at registration time; every per-row and
//! per-query operation proceeds under the shared read lock against the
//! attribute's own `Arc`.

use crate::joint::JointSynopsis;
use crate::synopsis::{AttributeSynopsis, RefreshedSynopsis, SynopsisConfig};
use std::collections::BTreeMap;
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard};
use wavedens_core::{CompactionPolicy, EstimatorError};

/// Errors raised by the catalog.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The named attribute has not been registered.
    UnknownAttribute {
        /// The attribute name that failed to resolve.
        name: String,
    },
    /// The named attribute pair has not been registered.
    UnknownPair {
        /// The first member of the pair that failed to resolve.
        first: String,
        /// The second member of the pair that failed to resolve.
        second: String,
    },
    /// A pair registration named an attribute that is already registered
    /// standalone with a *different* configuration. Serving the same
    /// attribute under two silently diverging configs would let the
    /// marginal and joint estimates disagree about basics (thresholding
    /// rule, expected scale), so the conflict is refused instead.
    ConflictingConfig {
        /// The attribute whose standalone config differs from the pair's.
        attribute: String,
    },
    /// Building a synopsis (or its sketch) failed.
    Estimator(EstimatorError),
    /// A thread panicked while *mutating* shared engine state, and the
    /// state cannot be repaired automatically. Read paths never raise
    /// this — they recover and keep answering — but mutating paths
    /// (registration) refuse to build on top of a possibly
    /// half-completed mutation.
    Poisoned {
        /// Which structure the crashed thread was mutating.
        context: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownAttribute { name } => {
                write!(f, "attribute {name:?} is not registered in the catalog")
            }
            EngineError::UnknownPair { first, second } => {
                write!(
                    f,
                    "attribute pair ({first:?}, {second:?}) is not registered in the catalog"
                )
            }
            EngineError::ConflictingConfig { attribute } => {
                write!(
                    f,
                    "attribute {attribute:?} is already registered standalone with a \
                     different configuration"
                )
            }
            EngineError::Estimator(err) => write!(f, "estimator error: {err}"),
            EngineError::Poisoned { context } => {
                write!(f, "{context} was poisoned by a panicked writer")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Estimator(err) => Some(err),
            _ => None,
        }
    }
}

impl From<EstimatorError> for EngineError {
    fn from(err: EstimatorError) -> Self {
        EngineError::Estimator(err)
    }
}

/// A named multi-attribute registry of synopses.
///
/// All methods take `&self`: the catalog is designed to be shared across
/// threads behind a plain reference or an [`Arc`], with writers ingesting
/// into different attributes (or different shards of one attribute) and
/// readers querying concurrently — including while an attribute's
/// synopsis is being rebuilt.
#[derive(Debug, Default)]
pub struct SynopsisCatalog {
    attributes: RwLock<BTreeMap<String, Arc<AttributeSynopsis>>>,
    /// Joint synopses keyed by attribute pair, registered via
    /// [`register_pair`](Self::register_pair). Separate lock from the
    /// marginal registry: pair registration must read the marginal map
    /// (for the config-conflict check) without holding its own write
    /// lock against readers.
    pairs: RwLock<BTreeMap<(String, String), Arc<JointSynopsis>>>,
}

impl SynopsisCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires the registry read lock, recovering from poisoning.
    ///
    /// The registry map is only mutated by [`Self::register`], whose
    /// `BTreeMap::insert` either completed or never ran when a writer
    /// panicked — readers cannot observe a torn entry, so read paths keep
    /// answering. The poison flag is deliberately *not* cleared: the
    /// mutating path in `register` keeps refusing with
    /// [`EngineError::Poisoned`] until the catalog is rebuilt.
    fn read_registry(&self) -> RwLockReadGuard<'_, BTreeMap<String, Arc<AttributeSynopsis>>> {
        self.attributes
            .read()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers an attribute with the given configuration, returning its
    /// synopsis. Registering an existing name is idempotent: the existing
    /// synopsis is returned untouched (and keeps its data).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Poisoned`] if a previous registration
    /// panicked mid-insert: unlike the read paths (which recover), adding
    /// attributes on top of a possibly half-completed mutation is refused.
    pub fn register(
        &self,
        name: &str,
        config: SynopsisConfig,
    ) -> Result<Arc<AttributeSynopsis>, EngineError> {
        {
            let attributes = self.read_registry();
            if let Some(existing) = attributes.get(name) {
                return Ok(Arc::clone(existing));
            }
        }
        let mut attributes = self.attributes.write().map_err(|_| EngineError::Poisoned {
            context: "catalog registry".to_string(),
        })?;
        // Double-checked: another writer may have registered the name
        // between the read and write locks.
        if let Some(existing) = attributes.get(name) {
            return Ok(Arc::clone(existing));
        }
        let synopsis = Arc::new(AttributeSynopsis::new(&config)?);
        attributes.insert(name.to_string(), Arc::clone(&synopsis));
        Ok(synopsis)
    }

    /// Acquires the pair-registry read lock, recovering from poisoning
    /// with the same wholesale-insert argument as
    /// [`read_registry`](Self::read_registry).
    fn read_pairs(&self) -> RwLockReadGuard<'_, BTreeMap<(String, String), Arc<JointSynopsis>>> {
        self.pairs.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a joint synopsis for the ordered attribute pair
    /// `(first, second)`, returning it. Registering an existing pair is
    /// idempotent: the existing synopsis is returned untouched.
    ///
    /// # Errors
    ///
    /// * [`EngineError::ConflictingConfig`] if either member attribute is
    ///   already registered standalone with a configuration different
    ///   from `config` — the marginal and joint estimates of one
    ///   attribute must agree on thresholding rule, expected scale and
    ///   the rest of the config, or their answers silently diverge.
    /// * [`EngineError::Estimator`] if the pair names the same attribute
    ///   twice, the config is windowed (pairs do not support windows
    ///   yet), or building the tensor sketch fails.
    /// * [`EngineError::Poisoned`] if a previous pair registration
    ///   panicked mid-insert.
    pub fn register_pair(
        &self,
        first: &str,
        second: &str,
        config: SynopsisConfig,
    ) -> Result<Arc<JointSynopsis>, EngineError> {
        if first == second {
            return Err(EstimatorError::InvalidParameter {
                message: format!(
                    "a joint synopsis needs two distinct attributes, got {first:?} twice"
                ),
            }
            .into());
        }
        let key = (first.to_string(), second.to_string());
        {
            let pairs = self.read_pairs();
            if let Some(existing) = pairs.get(&key) {
                return Ok(Arc::clone(existing));
            }
        }
        // A member already registered standalone must carry the same
        // configuration, or the marginal and joint paths for that
        // attribute would silently disagree.
        {
            let attributes = self.read_registry();
            for name in [first, second] {
                if let Some(standalone) = attributes.get(name) {
                    if standalone.config() != &config {
                        return Err(EngineError::ConflictingConfig {
                            attribute: name.to_string(),
                        });
                    }
                }
            }
        }
        let mut pairs = self.pairs.write().map_err(|_| EngineError::Poisoned {
            context: "catalog pair registry".to_string(),
        })?;
        // Double-checked: another writer may have registered the pair
        // between the read and write locks.
        if let Some(existing) = pairs.get(&key) {
            return Ok(Arc::clone(existing));
        }
        let joint = Arc::new(JointSynopsis::new(&config)?);
        pairs.insert(key, Arc::clone(&joint));
        Ok(joint)
    }

    /// The joint synopsis of a registered attribute pair.
    pub fn pair(&self, first: &str, second: &str) -> Option<Arc<JointSynopsis>> {
        self.read_pairs()
            .get(&(first.to_string(), second.to_string()))
            .map(Arc::clone)
    }

    /// Resolves a pair or errors with [`EngineError::UnknownPair`].
    fn resolve_pair(&self, first: &str, second: &str) -> Result<Arc<JointSynopsis>, EngineError> {
        self.pair(first, second)
            .ok_or_else(|| EngineError::UnknownPair {
                first: first.to_string(),
                second: second.to_string(),
            })
    }

    /// Ingests a batch of `(x, y)` row pairs into a registered pair.
    pub fn ingest_pair(
        &self,
        first: &str,
        second: &str,
        rows: &[(f64, f64)],
    ) -> Result<(), EngineError> {
        self.resolve_pair(first, second)?.ingest(rows);
        Ok(())
    }

    /// Bulk-loads row pairs into a registered pair with parallel sharded
    /// ingestion.
    pub fn ingest_pair_parallel(
        &self,
        first: &str,
        second: &str,
        rows: &[(f64, f64)],
    ) -> Result<(), EngineError> {
        self.resolve_pair(first, second)?.ingest_parallel(rows);
        Ok(())
    }

    /// Estimated joint selectivity
    /// `P(first ∈ x_range, second ∈ y_range)` for a registered pair (0
    /// while it has no rows). Fallible like
    /// [`selectivity`](Self::selectivity): rebuild failures surface as
    /// [`EngineError::Estimator`].
    pub fn joint_selectivity(
        &self,
        first: &str,
        second: &str,
        x_range: (f64, f64),
        y_range: (f64, f64),
    ) -> Result<f64, EngineError> {
        Ok(self
            .resolve_pair(first, second)?
            .try_joint_selectivity(x_range, y_range)?)
    }

    /// Serializes a registered pair's merged, `policy`-compacted tensor
    /// sketch to the v4 wire frame ([`JointSynopsis::ship`]).
    pub fn ship_pair(
        &self,
        first: &str,
        second: &str,
        policy: CompactionPolicy,
    ) -> Result<Vec<u8>, EngineError> {
        Ok(self.resolve_pair(first, second)?.ship(policy)?)
    }

    /// Names of all registered attribute pairs (sorted).
    pub fn pair_names(&self) -> Vec<(String, String)> {
        self.read_pairs().keys().cloned().collect()
    }

    /// Number of registered attribute pairs.
    pub fn pair_count(&self) -> usize {
        self.read_pairs().len()
    }

    /// The synopsis of a registered attribute.
    pub fn attribute(&self, name: &str) -> Option<Arc<AttributeSynopsis>> {
        self.read_registry().get(name).map(Arc::clone)
    }

    /// Resolves an attribute or errors with
    /// [`EngineError::UnknownAttribute`].
    fn resolve(&self, name: &str) -> Result<Arc<AttributeSynopsis>, EngineError> {
        self.attribute(name)
            .ok_or_else(|| EngineError::UnknownAttribute {
                name: name.to_string(),
            })
    }

    /// Ingests a batch of values into a registered attribute.
    pub fn ingest(&self, name: &str, values: &[f64]) -> Result<(), EngineError> {
        self.resolve(name)?.ingest(values);
        Ok(())
    }

    /// Bulk-loads values into a registered attribute with parallel
    /// sharded ingestion.
    pub fn ingest_parallel(&self, name: &str, values: &[f64]) -> Result<(), EngineError> {
        self.resolve(name)?.ingest_parallel(values);
        Ok(())
    }

    /// Advances a registered attribute's sketch window: retires its
    /// oldest slice and opens a fresh one. Returns `true` if the
    /// attribute runs a windowed policy, `false` for landmark attributes
    /// (for which this is a no-op). See [`AttributeSynopsis::advance`].
    pub fn advance(&self, name: &str) -> Result<bool, EngineError> {
        Ok(self.resolve(name)?.advance())
    }

    /// Serializes a registered windowed attribute's *current* window
    /// slice to the windowed wire frame. See
    /// [`AttributeSynopsis::ship_window_slice`].
    pub fn ship_window_slice(&self, name: &str) -> Result<Vec<u8>, EngineError> {
        Ok(self.resolve(name)?.ship_window_slice()?)
    }

    /// Estimated selectivity `P(lo ≤ X ≤ hi)` for a registered attribute
    /// (0 while the attribute has no rows). Uses the fallible
    /// [`AttributeSynopsis::try_selectivity`], so a failed synopsis
    /// rebuild surfaces as [`EngineError::Estimator`] instead of silently
    /// answering 0.
    pub fn selectivity(&self, name: &str, lo: f64, hi: f64) -> Result<f64, EngineError> {
        Ok(self.resolve(name)?.try_selectivity(lo, hi)?)
    }

    /// Estimated selectivity from the attribute's latest built snapshot,
    /// with zero rebuild work on this thread
    /// ([`AttributeSynopsis::selectivity_cached`]): `None` until a first
    /// snapshot exists — latency-sensitive readers use this and leave
    /// rebuilds to the ingesting side
    /// ([`refresh`](Self::refresh)).
    pub fn selectivity_cached(
        &self,
        name: &str,
        lo: f64,
        hi: f64,
    ) -> Result<Option<f64>, EngineError> {
        Ok(self.resolve(name)?.selectivity_cached(lo, hi))
    }

    /// Rebuilds a registered attribute's snapshot now if stale, blocking
    /// on its rebuild guard ([`AttributeSynopsis::refresh`]) — the
    /// maintenance entry point for the write side.
    pub fn refresh(&self, name: &str) -> Result<Option<Arc<RefreshedSynopsis>>, EngineError> {
        Ok(self.resolve(name)?.refresh()?)
    }

    /// Serializes a registered attribute's merged, `policy`-compacted
    /// sketch to the binary wire frame ([`AttributeSynopsis::ship`]) for
    /// shipping to another node.
    pub fn ship(&self, name: &str, policy: CompactionPolicy) -> Result<Vec<u8>, EngineError> {
        Ok(self.resolve(name)?.ship(policy)?)
    }

    /// The refreshed synopsis of a registered attribute (`None` while it
    /// has no rows).
    pub fn refreshed(&self, name: &str) -> Result<Option<Arc<RefreshedSynopsis>>, EngineError> {
        Ok(self.resolve(name)?.refreshed()?)
    }

    /// Names of all registered attributes (sorted).
    pub fn names(&self) -> Vec<String> {
        self.read_registry().keys().cloned().collect()
    }

    /// Number of registered attributes.
    pub fn len(&self) -> usize {
        self.read_registry().len()
    }

    /// Whether no attribute is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total rows ingested across all attributes and attribute pairs.
    pub fn total_rows(&self) -> usize {
        let marginal: usize = self
            .read_registry()
            .values()
            .map(|synopsis| synopsis.rows())
            .sum();
        let joint: usize = self.read_pairs().values().map(|joint| joint.rows()).sum();
        marginal + joint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use wavedens_processes::seeded_rng;

    fn sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = seeded_rng(seed);
        (0..n).map(|_| rng.gen::<f64>()).collect()
    }

    fn small_config() -> SynopsisConfig {
        SynopsisConfig::default()
            .with_expected_rows(1024)
            .with_shards(2)
    }

    #[test]
    fn register_is_idempotent_and_keeps_data() {
        let catalog = SynopsisCatalog::new();
        let first = catalog.register("a", small_config()).unwrap();
        first.ingest(&sample(100, 1));
        let second = catalog.register("a", small_config()).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(second.rows(), 100);
        assert_eq!(catalog.len(), 1);
        assert!(!catalog.is_empty());
    }

    #[test]
    fn unknown_attributes_error() {
        let catalog = SynopsisCatalog::new();
        assert!(matches!(
            catalog.ingest("missing", &[0.5]).unwrap_err(),
            EngineError::UnknownAttribute { .. }
        ));
        assert!(matches!(
            catalog.selectivity("missing", 0.0, 1.0).unwrap_err(),
            EngineError::UnknownAttribute { .. }
        ));
        assert!(catalog.attribute("missing").is_none());
        let err = catalog.refreshed("missing").unwrap_err();
        assert!(format!("{err}").contains("missing"));
    }

    #[test]
    fn attributes_are_independent() {
        let catalog = SynopsisCatalog::new();
        catalog.register("uniform", small_config()).unwrap();
        catalog.register("peaked", small_config()).unwrap();
        catalog.ingest("uniform", &sample(2048, 2)).unwrap();
        // A point mass near 0.25 (jittered so the estimate stays sane).
        let peaked: Vec<f64> = sample(2048, 3).iter().map(|u| 0.2 + 0.1 * u).collect();
        catalog.ingest_parallel("peaked", &peaked).unwrap();
        let u = catalog.selectivity("uniform", 0.2, 0.3).unwrap();
        let p = catalog.selectivity("peaked", 0.2, 0.3).unwrap();
        assert!((u - 0.1).abs() < 0.05, "uniform selectivity {u}");
        assert!(p > 0.9, "peaked selectivity {p}");
        assert_eq!(catalog.total_rows(), 4096);
        assert_eq!(catalog.names(), vec!["peaked", "uniform"]);
    }

    #[test]
    fn shipping_an_attribute_round_trips_compactly() {
        let catalog = SynopsisCatalog::new();
        catalog.register("x", small_config()).unwrap();
        catalog.ingest("x", &sample(2048, 5)).unwrap();
        let frame = catalog.ship("x", CompactionPolicy::InactiveTail).unwrap();
        let restored = wavedens_core::CoefficientSketch::from_bytes(&frame).unwrap();
        assert_eq!(restored.count(), 2048);
        assert!(matches!(
            catalog
                .ship("missing", CompactionPolicy::Dense)
                .unwrap_err(),
            EngineError::UnknownAttribute { .. }
        ));
    }

    #[test]
    fn windowed_attributes_advance_through_the_catalog() {
        use wavedens_core::WindowPolicy;
        let catalog = SynopsisCatalog::new();
        catalog
            .register(
                "recent",
                small_config().with_window(WindowPolicy::SlidingSlices(2)),
            )
            .unwrap();
        catalog.register("lifetime", small_config()).unwrap();
        catalog.ingest("recent", &sample(512, 7)).unwrap();
        // Landmark attributes report the advance as a no-op.
        assert!(!catalog.advance("lifetime").unwrap());
        assert!(catalog.advance("recent").unwrap());
        catalog.ingest("recent", &sample(256, 8)).unwrap();
        // The second advance of a two-slice ring retires the 512-row slice.
        assert!(catalog.advance("recent").unwrap());
        assert_eq!(catalog.attribute("recent").unwrap().rows(), 256);
        // Current-slice shipping works for windowed attributes only.
        catalog.ingest("recent", &sample(64, 9)).unwrap();
        let frame = catalog.ship_window_slice("recent").unwrap();
        let restored = wavedens_core::CoefficientSketch::from_bytes(&frame).unwrap();
        assert_eq!(restored.count(), 64);
        assert!(matches!(
            catalog.ship_window_slice("lifetime").unwrap_err(),
            EngineError::Estimator(_)
        ));
        assert!(matches!(
            catalog.advance("missing").unwrap_err(),
            EngineError::UnknownAttribute { .. }
        ));
    }

    #[test]
    fn poisoned_registry_keeps_answering_reads_but_refuses_registration() {
        let catalog = SynopsisCatalog::new();
        catalog.register("x", small_config()).unwrap();
        catalog.ingest("x", &sample(1024, 6)).unwrap();
        // A writer panics while holding the registry write lock.
        let crash = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = catalog.attributes.write().unwrap();
            panic!("simulated registration crash");
        }));
        assert!(crash.is_err());
        // Read paths recover and keep answering.
        assert_eq!(catalog.names(), vec!["x"]);
        assert_eq!(catalog.total_rows(), 1024);
        assert!(catalog.selectivity("x", 0.0, 1.0).unwrap() > 0.9);
        // Registering an *existing* name resolves under the read path.
        assert!(catalog.register("x", small_config()).is_ok());
        // Registering a new name needs the write lock and is refused.
        assert!(matches!(
            catalog.register("y", small_config()).unwrap_err(),
            EngineError::Poisoned { .. }
        ));
    }

    fn correlated(n: usize, seed: u64, noise: f64) -> Vec<(f64, f64)> {
        let mut rng = seeded_rng(seed);
        (0..n)
            .map(|_| {
                let x: f64 = rng.gen();
                let y = (x + noise * (2.0 * rng.gen::<f64>() - 1.0)).rem_euclid(1.0);
                (x, y)
            })
            .collect()
    }

    #[test]
    fn pair_registration_is_idempotent_and_serves_joint_queries() {
        let catalog = SynopsisCatalog::new();
        let first = catalog.register_pair("x", "y", small_config()).unwrap();
        let second = catalog.register_pair("x", "y", small_config()).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(catalog.pair_count(), 1);
        assert_eq!(
            catalog.pair_names(),
            vec![("x".to_string(), "y".to_string())]
        );
        catalog
            .ingest_pair_parallel("x", "y", &correlated(2048, 20, 0.05))
            .unwrap();
        assert_eq!(catalog.total_rows(), 2048);
        let diagonal = catalog
            .joint_selectivity("x", "y", (0.3, 0.55), (0.3, 0.55))
            .unwrap();
        assert!(diagonal > 0.15, "diagonal square: {diagonal}");
        // Unregistered pairs error.
        assert!(matches!(
            catalog.ingest_pair("a", "b", &[(0.5, 0.5)]).unwrap_err(),
            EngineError::UnknownPair { .. }
        ));
        assert!(matches!(
            catalog
                .joint_selectivity("y", "x", (0.0, 1.0), (0.0, 1.0))
                .unwrap_err(),
            EngineError::UnknownPair { .. }
        ));
        assert!(catalog.pair("y", "x").is_none());
    }

    /// Regression: a pair registration naming an attribute that already
    /// has a standalone synopsis with a *different* config must be
    /// refused with [`EngineError::ConflictingConfig`] — not silently
    /// accepted with two diverging configurations for one attribute.
    #[test]
    fn pair_with_conflicting_member_config_is_rejected() {
        let catalog = SynopsisCatalog::new();
        catalog.register("amount", small_config()).unwrap();
        let different = small_config().with_expected_rows(9999);
        let err = catalog
            .register_pair("amount", "quantity", different)
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::ConflictingConfig {
                attribute: "amount".to_string()
            }
        );
        assert!(format!("{err}").contains("amount"));
        assert_eq!(
            catalog.pair_count(),
            0,
            "the conflicting pair must not register"
        );
        // The same config as the standalone member is accepted…
        catalog
            .register_pair("amount", "quantity", small_config())
            .unwrap();
        // …and the conflict check also covers the second member.
        catalog
            .register(
                "discount",
                small_config().with_rule(wavedens_core::ThresholdRule::Hard),
            )
            .unwrap();
        assert!(matches!(
            catalog
                .register_pair("quantity", "discount", small_config())
                .unwrap_err(),
            EngineError::ConflictingConfig { attribute } if attribute == "discount"
        ));
    }

    #[test]
    fn degenerate_and_windowed_pairs_are_rejected() {
        use wavedens_core::WindowPolicy;
        let catalog = SynopsisCatalog::new();
        assert!(matches!(
            catalog.register_pair("x", "x", small_config()).unwrap_err(),
            EngineError::Estimator(EstimatorError::InvalidParameter { .. })
        ));
        assert!(matches!(
            catalog
                .register_pair(
                    "x",
                    "y",
                    small_config().with_window(WindowPolicy::SlidingSlices(2))
                )
                .unwrap_err(),
            EngineError::Estimator(EstimatorError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn shipping_a_pair_round_trips_the_tensor_frame() {
        let catalog = SynopsisCatalog::new();
        catalog.register_pair("x", "y", small_config()).unwrap();
        catalog
            .ingest_pair("x", "y", &correlated(2048, 21, 0.08))
            .unwrap();
        let frame = catalog
            .ship_pair("x", "y", CompactionPolicy::InactiveTail)
            .unwrap();
        let restored = wavedens_core::TensorSketch::from_bytes(&frame).unwrap();
        assert_eq!(restored.count(), 2048);
        assert_eq!(restored.dims(), 2);
        assert!(matches!(
            catalog
                .ship_pair("a", "b", CompactionPolicy::Dense)
                .unwrap_err(),
            EngineError::UnknownPair { .. }
        ));
    }

    #[test]
    fn refreshed_exposes_the_density_estimate() {
        let catalog = SynopsisCatalog::new();
        catalog.register("x", small_config()).unwrap();
        assert!(catalog.refreshed("x").unwrap().is_none());
        catalog.ingest("x", &sample(1024, 4)).unwrap();
        let refreshed = catalog.refreshed("x").unwrap().unwrap();
        assert_eq!(refreshed.density().sample_size(), 1024);
        assert!((refreshed.cumulative().total_mass() - 1.0).abs() < 0.1);
    }
}
