//! # wavedens-engine
//!
//! A concurrent, multi-attribute **synopsis engine** on top of the
//! mergeable [`CoefficientSketch`](wavedens_core::CoefficientSketch):
//! the piece that turns the single-attribute, single-threaded estimator of
//! `wavedens-core` into something a query optimiser can run under heavy
//! traffic.
//!
//! The design splits the estimator state along the line the paper's
//! mathematics draws anyway: the empirical coefficients are *sample
//! means* (plus sums of squares and a count), so **accumulation** is a
//! mergeable sketch that shards across threads and nodes, while **model
//! selection** (cross-validated thresholds, data-driven `ĵ1`, CDF table)
//! runs downstream on the merged state. Concretely:
//!
//! * [`ShardedIngest`] — N per-shard sketches behind mutexes. Bulk loads
//!   fan the rows out to all shards with scoped threads
//!   ([`ShardedIngest::ingest_parallel`]); streaming inserts round-robin
//!   one shard per batch so writers on different shards never contend.
//!   At estimate time the shards merge (weighted sketch addition) into
//!   exactly the single-stream state.
//! * [`AttributeSynopsis`] — one attribute's sharded sketch plus a cached
//!   [`RefreshedSynopsis`] (thresholded density estimate + precomputed
//!   CDF table) behind an atomically swapped [`std::sync::Arc`]. Readers
//!   clone the `Arc` under a briefly held read lock and answer range
//!   queries in O(1); a stale cache is rebuilt by **one** thread while
//!   concurrent readers keep answering from the previous snapshot — a
//!   rebuild never blocks the read path.
//! * [`WindowedIngest`] — the streaming sibling of [`ShardedIngest`]:
//!   per-shard *rings* of time-sliced sketches. [`WindowedIngest::advance_all`]
//!   retires the oldest slice in O(1) per shard, so sliding-window and
//!   exponentially-decayed estimates subtract old data by dropping a
//!   slice instead of un-merging it. Selected per attribute via
//!   [`SynopsisConfig::with_window`] and a [`WindowPolicy`].
//! * [`JointSynopsis`] — the 2-D sibling of [`AttributeSynopsis`]: a
//!   sharded [`TensorSketch`](wavedens_core::TensorSketch) over `(x, y)`
//!   row pairs whose refreshed snapshot answers
//!   `joint_selectivity((a₁, b₁), (a₂, b₂))` — rectangle mass by
//!   inclusion–exclusion over a precomputed joint CDF grid — capturing
//!   the cross-attribute correlation the product of two marginal
//!   synopses misses.
//! * [`SynopsisCatalog`] — a named registry of attribute synopses (and
//!   attribute-*pair* synopses, keyed `(a, b)`), so one process serves
//!   selectivity estimates for many table columns at once.
//!
//! ```
//! use wavedens_engine::{SynopsisCatalog, SynopsisConfig};
//!
//! let catalog = SynopsisCatalog::new();
//! let config = SynopsisConfig::default().with_expected_rows(2000);
//! catalog.register("orders.amount", config).unwrap();
//! let values: Vec<f64> = (0..2000).map(|i| (i as f64 * 0.37) % 1.0).collect();
//! catalog.ingest("orders.amount", &values).unwrap();
//! let s = catalog.selectivity("orders.amount", 0.2, 0.5).unwrap();
//! assert!((s - 0.3).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod joint;
pub mod sharded;
pub mod synopsis;
pub mod windowed;

pub use catalog::{EngineError, SynopsisCatalog};
pub use joint::{JointSynopsis, RefreshedJoint};
pub use sharded::{MergeableSketch, ShardedIngest};
pub use synopsis::{AttributeSynopsis, RefreshedSynopsis, SynopsisConfig};
pub use windowed::WindowedIngest;

// Re-exported so engine users can pick a shipping policy or window policy
// without a direct `wavedens_core` dependency.
pub use wavedens_core::{CompactionPolicy, WindowPolicy};
