//! Windowed sketch ingestion: the streaming sibling of
//! [`ShardedIngest`](crate::sharded::ShardedIngest).
//!
//! Each shard owns a full [`WindowedSketch`] ring behind a [`Mutex`];
//! batches land in the shard's *current* slice exactly like sharded
//! ingest (round-robin placement, scatter-outside-the-lock for long
//! batches), and [`advance_all`](WindowedIngest::advance_all) closes the
//! current time slice on every shard. Because all shards advance
//! together, the shard rings stay aligned slice-for-slice and the merged
//! window over all shards is the mergeable-sketch state over exactly the
//! rows of the live slices.
//!
//! # Short critical sections
//!
//! Both the ingest path and the advance path keep the per-shard lock
//! hold times independent of the batch length and the slice size. Long
//! batches scatter into a pooled scratch sketch first (the PR-5 pattern
//! shared with `ShardedIngest`) and lock only for the element-wise
//! merge; `advance_all` rotates each ring by *swapping* a cleared
//! scratch sketch in as the fresh slice ([`WindowedSketch::advance_swap`]
//! is O(1)) and clears the retired slice outside the lock, where the
//! O(level tables) zeroing cannot stall writers.
//!
//! Shard mutexes recover from poisoning the same way sharded ingest
//! does: a crashed writer's ring is reset wholesale (its rows leave the
//! running counter) and the poison flag is cleared, so one panic cannot
//! kill the attribute.

use crate::sharded::{
    lock_scratch_pool, MAX_POOLED_SCRATCH, MIN_PARALLEL_CHUNK, PARALLEL_CHUNKS_PER_SHARD,
    SCATTER_OUTSIDE_LOCK_MIN,
};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use wavedens_core::{CoefficientSketch, EstimatorError, WindowPolicy, WindowedSketch};

/// N per-shard windowed sketch rings with round-robin batch placement,
/// collective advance, and policy-weighted window merges.
#[derive(Debug)]
pub struct WindowedIngest {
    shards: Vec<Mutex<WindowedSketch>>,
    /// Empty sketch the slices (and pooled scratches) are cloned from.
    template: CoefficientSketch,
    /// The window policy every read folds the rings through.
    policy: WindowPolicy,
    /// Cleared scratch sketches shared by the out-of-lock scatter path
    /// and the advance swap.
    scratch: Mutex<Vec<CoefficientSketch>>,
    /// Rows currently *live* across all shards: grows with every batch,
    /// shrinks when an advance retires a slice.
    rows: AtomicUsize,
    next: AtomicUsize,
    /// Advances performed — the logical clock all shard rings share.
    advances: AtomicU64,
}

impl WindowedIngest {
    /// Creates `shards ≥ 1` shards, each a ring of the size `policy`
    /// calls for, every slice an empty clone of `template`. Fails on
    /// [`WindowPolicy::Landmark`] (no ring to keep — use
    /// [`ShardedIngest`](crate::sharded::ShardedIngest)) and on invalid
    /// policy parameters or a nonempty template.
    pub fn new(
        template: &CoefficientSketch,
        shards: usize,
        policy: WindowPolicy,
    ) -> Result<Self, EstimatorError> {
        let shards = shards.max(1);
        let rings: Result<Vec<_>, _> = (0..shards)
            .map(|_| WindowedSketch::from_policy(template, policy).map(Mutex::new))
            .collect();
        Ok(Self {
            shards: rings?,
            template: template.clone(),
            policy,
            scratch: Mutex::new(Vec::new()),
            rows: AtomicUsize::new(0),
            next: AtomicUsize::new(0),
            advances: AtomicU64::new(0),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The window policy reads fold the rings through.
    pub fn policy(&self) -> WindowPolicy {
        self.policy
    }

    /// Advances performed so far.
    pub fn advances(&self) -> u64 {
        self.advances.load(Ordering::Acquire)
    }

    /// Rows currently live in the window across all shards (lock-free).
    pub fn total_count(&self) -> usize {
        self.rows.load(Ordering::Acquire)
    }

    /// Whether the window currently holds no rows (lock-free).
    pub fn is_empty(&self) -> bool {
        self.total_count() == 0
    }

    /// Locks shard `index`, recovering from a poisoned mutex by resetting
    /// the whole ring — the crashed writer may have torn the current
    /// slice's sums, and a ring whose slices disagree about time is worse
    /// than an empty one. The ring's live rows leave the running counter
    /// and the poison flag is cleared so the repair runs exactly once.
    fn lock_shard(&self, index: usize) -> MutexGuard<'_, WindowedSketch> {
        match self.shards[index].lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                self.shards[index].clear_poison();
                let lost = guard.count();
                guard.clear();
                let _ = self
                    .rows
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |rows| {
                        Some(rows.saturating_sub(lost))
                    });
                guard
            }
        }
    }

    /// Ingests one batch into the current slice of a round-robin-chosen
    /// shard. Long batches scatter into a pooled scratch outside the
    /// lock, exactly like sharded ingest.
    pub fn ingest(&self, values: &[f64]) {
        if values.is_empty() {
            return;
        }
        let shard = self.next.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        self.scatter_into_shard(shard, values);
        self.rows.fetch_add(values.len(), Ordering::Release);
    }

    fn scatter_into_shard(&self, shard: usize, values: &[f64]) {
        if values.len() >= SCATTER_OUTSIDE_LOCK_MIN {
            let mut local = self.take_scratch();
            local.push_batch(values);
            self.lock_shard(shard)
                .merge_into_current(&local)
                .expect("scratch is cloned from the slice template");
            self.return_scratch(local);
        } else {
            self.lock_shard(shard).push_batch(values);
        }
    }

    /// Bulk-loads `values` into the current time slice by splitting them
    /// into contiguous chunks assigned to shards round-robin and
    /// scattered on the global work-stealing pool (same chunking policy
    /// as
    /// [`ShardedIngest::ingest_parallel`](crate::sharded::ShardedIngest::ingest_parallel)).
    pub fn ingest_parallel(&self, values: &[f64]) {
        if values.is_empty() {
            return;
        }
        let shards = self.shards.len();
        let chunk = values
            .len()
            .div_ceil(shards * PARALLEL_CHUNKS_PER_SHARD)
            .max(MIN_PARALLEL_CHUNK);
        if shards == 1 || values.len() <= chunk {
            let shard = self.next.fetch_add(1, Ordering::Relaxed) % shards;
            self.scatter_into_shard(shard, values);
        } else {
            workpool::WorkPool::global().scope(|scope| {
                scope.spawn_batch(
                    values
                        .chunks(chunk)
                        .enumerate()
                        .map(|(i, slice)| move || self.scatter_into_shard(i % shards, slice)),
                );
            });
        }
        self.rows.fetch_add(values.len(), Ordering::Release);
    }

    /// Closes the current time slice on every shard and retires the
    /// oldest when the rings are full. Returns the number of rows that
    /// left the window.
    ///
    /// Each shard's lock is held only for the O(1)
    /// [`advance_swap`](WindowedSketch::advance_swap) — a cleared scratch
    /// sketch swaps in as the fresh slice, and the retired slice is
    /// cleared (the O(level tables) part) outside the lock, then returned
    /// to the pool. Concurrent writers racing an advance land their batch
    /// atomically in either the old or the new slice, never torn across
    /// both.
    pub fn advance_all(&self) -> usize {
        let mut retired_rows = 0;
        for shard in 0..self.shards.len() {
            let replacement = self.take_scratch();
            let retired = {
                let mut ring = self.lock_shard(shard);
                ring.advance_swap(replacement)
                    .expect("scratch is cloned from the slice template")
            };
            retired_rows += retired.count();
            // Zero the retired slice outside the critical section.
            self.return_scratch(retired);
        }
        let _ = self
            .rows
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |rows| {
                Some(rows.saturating_sub(retired_rows))
            });
        self.advances.fetch_add(1, Ordering::Release);
        retired_rows
    }

    /// The policy-weighted merged window over all shards — the mergeable
    /// sketch state over exactly the live rows (sliding) or the
    /// λ-decayed fold of the live slices (decay).
    pub fn merged(&self) -> Result<CoefficientSketch, EstimatorError> {
        let mut merged = {
            let ring = self.lock_shard(0);
            ring.merged_window(self.policy)?
        };
        for shard in 1..self.shards.len() {
            let ring = self.lock_shard(shard);
            ring.merge_window_append(&mut merged, self.policy)?;
        }
        Ok(merged)
    }

    /// [`merged`](Self::merged) into a caller-provided scratch sketch,
    /// reusing its allocations — the allocation-free merge path of the
    /// engine's incremental refresh. `target`'s level stamps advance
    /// strictly (per-slice stamps fold into it through the scaled
    /// copy/merge), so `CvCache`/`DenseEvalCache` consumers stay sound
    /// across advances.
    pub fn merge_into(&self, target: &mut CoefficientSketch) -> Result<(), EstimatorError> {
        {
            let first = self.lock_shard(0);
            first.merge_window_into(target, self.policy)?;
        }
        for shard in 1..self.shards.len() {
            let ring = self.lock_shard(shard);
            ring.merge_window_append(target, self.policy)?;
        }
        Ok(())
    }

    /// Ships the current (age-0) time slice merged across all shards as a
    /// windowed v3 frame. Receivers with window support place it in their
    /// own ring via `CoefficientSketch::from_bytes_with_window`; plain
    /// `from_bytes` consumers read it as an ordinary sketch.
    pub fn ship_current_slice(&self) -> Result<Vec<u8>, EstimatorError> {
        let mut merged: Option<CoefficientSketch> = None;
        let mut ring_slices = 1;
        for shard in 0..self.shards.len() {
            let ring = self.lock_shard(shard);
            ring_slices = ring.ring_slices();
            let slice = ring.slice(0).expect("the current slice is always live");
            match &mut merged {
                None => merged = Some(slice.clone()),
                Some(target) => target.merge(slice)?,
            }
        }
        let merged = merged.expect("at least one shard");
        let meta = wavedens_core::WindowSliceMeta {
            slice_age: 0,
            ring_slices: ring_slices as u32,
            advances: self.advances(),
            decay_lambda: self.policy.decay_lambda(),
        };
        Ok(merged.to_bytes_with_window(&meta))
    }

    fn take_scratch(&self) -> CoefficientSketch {
        lock_scratch_pool(&self.scratch)
            .pop()
            .unwrap_or_else(|| self.template.clone())
    }

    fn return_scratch(&self, mut sketch: CoefficientSketch) {
        sketch.clear();
        let mut pool = lock_scratch_pool(&self.scratch);
        if pool.len() < MAX_POOLED_SCRATCH {
            pool.push(sketch);
        }
    }
}

impl Clone for WindowedIngest {
    fn clone(&self) -> Self {
        let rings: Vec<WindowedSketch> = (0..self.shards.len())
            .map(|shard| self.lock_shard(shard).clone())
            .collect();
        let rows = rings.iter().map(|ring| ring.count()).sum();
        Self {
            shards: rings.into_iter().map(Mutex::new).collect(),
            template: self.template.clone(),
            policy: self.policy,
            scratch: Mutex::new(Vec::new()),
            rows: AtomicUsize::new(rows),
            next: AtomicUsize::new(self.next.load(Ordering::Relaxed)),
            advances: AtomicU64::new(self.advances.load(Ordering::Acquire)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use wavedens_processes::seeded_rng;

    fn sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = seeded_rng(seed);
        (0..n).map(|_| rng.gen::<f64>()).collect()
    }

    fn template(n: usize) -> CoefficientSketch {
        CoefficientSketch::sized_for(n).unwrap()
    }

    #[test]
    fn landmark_policy_is_rejected() {
        assert!(WindowedIngest::new(&template(100), 2, WindowPolicy::Landmark).is_err());
        assert!(WindowedIngest::new(&template(100), 2, WindowPolicy::SlidingSlices(0)).is_err());
        assert!(
            WindowedIngest::new(&template(100), 2, WindowPolicy::ExponentialDecay(1.5)).is_err()
        );
    }

    /// Sliding window over all live slices, before any retirement, equals
    /// the plain sharded fit on the same rows.
    #[test]
    fn sliding_window_matches_lifetime_before_retirement() {
        let data = sample(1200, 21);
        let windowed =
            WindowedIngest::new(&template(1200), 2, WindowPolicy::SlidingSlices(4)).unwrap();
        for (i, chunk) in data.chunks(400).enumerate() {
            if i > 0 {
                windowed.advance_all();
            }
            windowed.ingest(chunk);
        }
        assert_eq!(windowed.total_count(), data.len());
        assert_eq!(windowed.advances(), 2);
        let mut single = template(1200);
        single.push_batch(&data);
        let merged = windowed.merged().unwrap();
        assert_eq!(merged.count(), single.count());
        let a = merged.snapshot().unwrap();
        let b = single.snapshot().unwrap();
        for (la, lb) in a.details().iter().zip(b.details()) {
            for (va, vb) in la.values.iter().zip(&lb.values) {
                assert!((va - vb).abs() < 1e-12 * (1.0 + vb.abs()));
            }
        }
    }

    /// Advancing past the ring size retires the oldest rows: the live
    /// count drops and the merged window covers only the survivors.
    #[test]
    fn advance_retires_the_oldest_slice() {
        let windowed =
            WindowedIngest::new(&template(1000), 1, WindowPolicy::SlidingSlices(2)).unwrap();
        windowed.ingest(&sample(100, 22));
        windowed.advance_all();
        windowed.ingest(&sample(60, 23));
        assert_eq!(windowed.total_count(), 160);
        // The 2-slice ring is full: this advance retires the 100-row
        // slice.
        let retired = windowed.advance_all();
        assert_eq!(retired, 100);
        assert_eq!(windowed.total_count(), 60);
        windowed.ingest(&sample(40, 24));
        assert_eq!(windowed.total_count(), 100);
        assert_eq!(windowed.merged().unwrap().count(), 100);
    }

    /// Decay-weighted windows scale retired history instead of dropping
    /// it: the merged count is the λ-weighted sum of slice counts.
    #[test]
    fn decay_window_weights_slices_geometrically() {
        let lambda = 0.5;
        let windowed =
            WindowedIngest::new(&template(1000), 1, WindowPolicy::ExponentialDecay(lambda))
                .unwrap();
        windowed.ingest(&sample(400, 25));
        windowed.advance_all();
        windowed.ingest(&sample(200, 26));
        // Weighted count: 200·λ⁰ + 400·λ¹ = 400.
        assert_eq!(windowed.merged().unwrap().count(), 400);
    }

    /// The current slice ships as a v3 frame that plain consumers read as
    /// an ordinary sketch and windowed consumers read with metadata.
    #[test]
    fn current_slice_ships_and_restores() {
        let windowed =
            WindowedIngest::new(&template(1000), 2, WindowPolicy::SlidingSlices(3)).unwrap();
        windowed.ingest(&sample(300, 27));
        windowed.advance_all();
        windowed.ingest(&sample(120, 28));
        let frame = windowed.ship_current_slice().unwrap();
        let plain = CoefficientSketch::from_bytes(&frame).unwrap();
        assert_eq!(plain.count(), 120);
        let (slice, meta) = CoefficientSketch::from_bytes_with_window(&frame).unwrap();
        let meta = meta.expect("windowed frame carries metadata");
        assert_eq!(slice.count(), 120);
        assert_eq!(meta.slice_age, 0);
        assert_eq!(meta.ring_slices, 3);
        assert_eq!(meta.advances, 1);
        assert_eq!(meta.decay_lambda, 1.0);
    }

    /// A panicked writer poisons one ring; the next access repairs it and
    /// the window keeps answering.
    #[test]
    fn poisoned_ring_recovers() {
        let windowed =
            WindowedIngest::new(&template(1000), 2, WindowPolicy::SlidingSlices(2)).unwrap();
        windowed.ingest(&sample(300, 29));
        let crash = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = windowed.shards[0].lock().unwrap();
            panic!("simulated writer crash");
        }));
        assert!(crash.is_err());
        assert!(windowed.shards[0].is_poisoned());
        windowed.ingest(&sample(100, 30));
        let merged = windowed.merged().unwrap();
        assert_eq!(merged.count(), 100);
        assert!(!windowed.shards[0].is_poisoned());
    }
}
