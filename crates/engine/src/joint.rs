//! An attribute *pair*'s synopsis: a sharded 2-D tensor sketch plus an
//! atomically swapped cache of the refreshed joint estimate.
//!
//! A query optimiser that multiplies two marginal selectivities assumes
//! the attributes are independent; on correlated columns (`y ≈ x`, say)
//! that product can be off by an order of magnitude. A [`JointSynopsis`]
//! accumulates `(x, y)` row pairs into a sharded
//! [`TensorSketch`] — the dimension-generic
//! sibling of the 1-D coefficient sketch — and answers
//! `joint_selectivity((a₁, b₁), (a₂, b₂))` from a precomputed joint CDF
//! grid by inclusion–exclusion of four corner lookups, capturing exactly
//! the correlation the independence assumption throws away.
//!
//! The concurrency machinery is the same as
//! [`AttributeSynopsis`](crate::AttributeSynopsis): writers touch one
//! shard and bump an epoch, readers clone an `Arc` snapshot under a
//! briefly held read lock, and a stale cache is rebuilt by exactly one
//! thread while concurrent readers keep answering from the previous
//! snapshot.

use crate::sharded::ShardedIngest;
use crate::synopsis::SynopsisConfig;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard};
use wavedens_core::{
    CompactionPolicy, EstimatorError, TensorCumulative, TensorEstimate, TensorSketch, ThresholdRule,
};

/// Per-axis resolution cap of the joint CDF grid: a full-resolution 1-D
/// table squared would be ~16M nodes; 257² ≈ 66k nodes answers rectangle
/// queries to well below the estimation error.
const MAX_JOINT_CDF_POINTS: usize = 257;

/// The refreshed state of a joint synopsis: the thresholded 2-D tensor
/// estimate plus its precomputed joint CDF grid. Immutable once built;
/// shared with readers via [`Arc`].
#[derive(Debug, Clone)]
pub struct RefreshedJoint {
    estimate: TensorEstimate,
    cumulative: TensorCumulative,
}

impl RefreshedJoint {
    /// Runs the joint model-selection pipeline (level-wise CV thresholds
    /// over the flattened tensor levels + joint CDF grid construction) on
    /// an accumulation state.
    pub fn build(
        sketch: &TensorSketch,
        rule: ThresholdRule,
        cdf_points: usize,
    ) -> Result<Self, EstimatorError> {
        let estimate = sketch.thresholded(rule)?;
        let cumulative = estimate.cumulative(cdf_points, cdf_points);
        Ok(Self {
            estimate,
            cumulative,
        })
    }

    /// The thresholded joint density estimate.
    pub fn estimate(&self) -> &TensorEstimate {
        &self.estimate
    }

    /// The precomputed joint CDF grid.
    pub fn cumulative(&self) -> &TensorCumulative {
        &self.cumulative
    }

    /// Estimated joint selectivity `P(x ∈ x_range, y ∈ y_range)`; O(1)
    /// from the CDF grid (four bilinear corner lookups), normalised by
    /// the grid's total mass exactly as the 1-D synopsis normalises its
    /// range masses.
    pub fn selectivity(&self, x_range: (f64, f64), y_range: (f64, f64)) -> f64 {
        self.cumulative.selectivity(x_range, y_range)
    }
}

/// A cache entry: the refreshed joint synopsis and the ingest epoch it
/// covers.
#[derive(Debug, Clone)]
struct CachedJoint {
    epoch: u64,
    joint: Arc<RefreshedJoint>,
}

/// State owned by whichever thread holds the rebuild guard: the scratch
/// sketch the shards merge into, allocated once and reused every refresh.
#[derive(Debug, Default)]
struct RefreshState {
    scratch: Option<TensorSketch>,
}

/// One attribute pair's synopsis: a sharded 2-D tensor sketch filled by
/// writers plus an atomically swapped `Arc` of the latest refreshed joint
/// estimate. See the module docs for the concurrency model (identical to
/// [`AttributeSynopsis`](crate::AttributeSynopsis)).
#[derive(Debug)]
pub struct JointSynopsis {
    backend: ShardedIngest<TensorSketch>,
    rule: ThresholdRule,
    /// Per-axis CDF grid resolution (clamped to `[2, 257]`).
    cdf_points: usize,
    /// Bumped after every completed ingest batch; the cache is fresh when
    /// its recorded epoch matches.
    epoch: AtomicU64,
    cache: RwLock<Option<CachedJoint>>,
    /// Serialises rebuilds; readers `try_lock` it so at most one becomes
    /// the rebuilder while the rest serve the previous snapshot.
    rebuild_guard: Mutex<RefreshState>,
    rebuilds: AtomicUsize,
}

impl JointSynopsis {
    /// Creates an empty joint synopsis from a configuration: a 2-D tensor
    /// sketch sized for `config.expected_rows` pairs on the unit square,
    /// sharded `config.shards` ways, thresholded with `config.rule` at
    /// refresh time.
    ///
    /// Windowed policies are not supported for pairs yet — a windowed
    /// config is rejected with [`EstimatorError::InvalidParameter`]
    /// rather than silently degraded to a landmark synopsis.
    pub fn new(config: &SynopsisConfig) -> Result<Self, EstimatorError> {
        if config.window.is_windowed() {
            return Err(EstimatorError::InvalidParameter {
                message: "joint synopses do not support windowed policies yet".to_string(),
            });
        }
        let template = TensorSketch::sized_for_pairs(config.expected_rows.max(16))?;
        Ok(Self {
            backend: ShardedIngest::new(&template, config.shards)?,
            rule: config.rule,
            cdf_points: config.cdf_points.clamp(2, MAX_JOINT_CDF_POINTS),
            epoch: AtomicU64::new(0),
            cache: RwLock::new(None),
            rebuild_guard: Mutex::new(RefreshState::default()),
            rebuilds: AtomicUsize::new(0),
        })
    }

    /// The thresholding rule applied at refresh time.
    pub fn rule(&self) -> ThresholdRule {
        self.rule
    }

    /// Number of ingest shards.
    pub fn shard_count(&self) -> usize {
        self.backend.shard_count()
    }

    /// Total row pairs ingested so far, O(1) from the atomic running
    /// counter.
    pub fn rows(&self) -> usize {
        self.backend.total_count()
    }

    /// Number of joint rebuilds performed so far (one per stale-cache
    /// refresh, regardless of how many queries hit the stale cache).
    pub fn rebuild_count(&self) -> usize {
        self.rebuilds.load(Ordering::Relaxed)
    }

    /// The number of completed ingest batches (the staleness clock the
    /// refresh cache is keyed to).
    pub fn ingest_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Ingests one batch of `(x, y)` row pairs into a single shard
    /// (round-robin), marking the cache stale.
    pub fn ingest(&self, rows: &[(f64, f64)]) {
        if rows.is_empty() {
            return;
        }
        self.backend.ingest(rows);
        // Bump *after* the push so a concurrent rebuild can never tag a
        // cache that misses this batch with the post-batch epoch.
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Ingests a bulk load by fanning the pairs out across the shards on
    /// the global work-stealing pool
    /// ([`ShardedIngest::ingest_parallel`]).
    pub fn ingest_parallel(&self, rows: &[(f64, f64)]) {
        if rows.is_empty() {
            return;
        }
        self.backend.ingest_parallel(rows);
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// The merged 2-D accumulation state across all shards.
    pub fn merged_sketch(&self) -> Result<TensorSketch, EstimatorError> {
        self.backend.merged()
    }

    /// The merged accumulation state compacted under `policy` with this
    /// synopsis' thresholding rule (see [`TensorSketch::compact`]; the
    /// default [`CompactionPolicy::InactiveTail`] is lossless).
    pub fn compacted_sketch(
        &self,
        policy: CompactionPolicy,
    ) -> Result<TensorSketch, EstimatorError> {
        self.merged_sketch()?.compact(policy, self.rule)
    }

    /// Serializes the merged, `policy`-compacted accumulation state to
    /// the v4 tensor wire frame — what one node sends another so the 2-D
    /// sketch can be [`TensorSketch::from_bytes`]-restored and merged (or
    /// estimated) where it lands.
    pub fn ship(&self, policy: CompactionPolicy) -> Result<Vec<u8>, EstimatorError> {
        Ok(self.compacted_sketch(policy)?.to_bytes())
    }

    /// The current refreshed joint synopsis, rebuilding at most once if
    /// the cache is stale; `None` when no pairs have been ingested yet.
    pub fn refreshed(&self) -> Result<Option<Arc<RefreshedJoint>>, EstimatorError> {
        let epoch = self.epoch.load(Ordering::Acquire);
        {
            let cache = self.read_cache();
            if let Some(cached) = cache.as_ref() {
                if cached.epoch == epoch {
                    return Ok(Some(Arc::clone(&cached.joint)));
                }
            }
        }
        match self.rebuild_guard.try_lock() {
            Ok(mut state) => self.rebuild_locked(&mut state),
            Err(std::sync::TryLockError::WouldBlock) => {
                // Another thread is rebuilding: serve the previous
                // snapshot if one exists…
                if let Some(cached) = self.read_cache().as_ref() {
                    return Ok(Some(Arc::clone(&cached.joint)));
                }
                // …otherwise this is the very first build: wait for it.
                let mut state = self.lock_rebuild_guard();
                self.rebuild_locked(&mut state)
            }
            Err(std::sync::TryLockError::Poisoned(poisoned)) => {
                // A rebuilder panicked mid-refresh; its scratch may be
                // mid-update, so restart the incremental state and
                // rebuild from the shards — the source of truth.
                let mut state = poisoned.into_inner();
                self.rebuild_guard.clear_poison();
                *state = RefreshState::default();
                self.rebuild_locked(&mut state)
            }
        }
    }

    /// Reads the cache `RwLock`, recovering from poisoning: the cached
    /// value is an `Option` swapped wholesale under the write lock, so a
    /// panicked writer cannot have left it torn. Clears the poison flag.
    fn read_cache(&self) -> RwLockReadGuard<'_, Option<CachedJoint>> {
        self.cache.read().unwrap_or_else(|poisoned| {
            self.cache.clear_poison();
            poisoned.into_inner()
        })
    }

    /// Locks the rebuild guard, recovering from poisoning by resetting
    /// the scratch state. Clears the poison flag so the reset happens
    /// once per crash.
    fn lock_rebuild_guard(&self) -> MutexGuard<'_, RefreshState> {
        self.rebuild_guard.lock().unwrap_or_else(|poisoned| {
            let mut state = poisoned.into_inner();
            self.rebuild_guard.clear_poison();
            *state = RefreshState::default();
            state
        })
    }

    /// Rebuilds the cache if still stale: the shards merge into the
    /// guard-owned scratch sketch (no allocation after the first
    /// refresh), the CV+threshold pipeline and CDF grid run outside any
    /// reader-visible lock, and the cache `Arc` is swapped wholesale.
    /// Caller must hold `rebuild_guard`.
    fn rebuild_locked(
        &self,
        state: &mut RefreshState,
    ) -> Result<Option<Arc<RefreshedJoint>>, EstimatorError> {
        let epoch = self.epoch.load(Ordering::Acquire);
        {
            let cache = self.read_cache();
            if let Some(cached) = cache.as_ref() {
                if cached.epoch == epoch {
                    return Ok(Some(Arc::clone(&cached.joint)));
                }
            }
        }
        let sketch = match state.scratch.as_mut() {
            Some(scratch) => {
                self.backend.merge_into(scratch)?;
                &*scratch
            }
            None => state.scratch.insert(self.backend.merged()?),
        };
        if sketch.is_empty() {
            return Ok(None);
        }
        let built = Arc::new(RefreshedJoint::build(sketch, self.rule, self.cdf_points)?);
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
        let mut cache = self.cache.write().unwrap_or_else(|poisoned| {
            self.cache.clear_poison();
            poisoned.into_inner()
        });
        *cache = Some(CachedJoint {
            epoch,
            joint: Arc::clone(&built),
        });
        Ok(Some(built))
    }

    /// Estimated joint selectivity
    /// `P(x ∈ x_range, y ∈ y_range)` from the (lazily refreshed) joint
    /// CDF grid; 0 while no pairs have been ingested, and 0 for empty or
    /// reversed ranges. NaN bounds are rejected with
    /// [`EstimatorError::InvalidQueryBounds`], mirroring the 1-D
    /// synopsis.
    pub fn try_joint_selectivity(
        &self,
        x_range: (f64, f64),
        y_range: (f64, f64),
    ) -> Result<f64, EstimatorError> {
        for &(lo, hi) in &[x_range, y_range] {
            if lo.is_nan() || hi.is_nan() {
                return Err(EstimatorError::InvalidQueryBounds { lo, hi });
            }
        }
        Ok(match self.refreshed()? {
            Some(joint) => joint.selectivity(x_range, y_range),
            None => 0.0,
        })
    }

    /// Infallible wrapper over
    /// [`try_joint_selectivity`](Self::try_joint_selectivity): NaN
    /// bounds answer 0 (the mass of an empty range); any other failure
    /// trips a debug assertion and answers 0 in release builds.
    pub fn joint_selectivity(&self, x_range: (f64, f64), y_range: (f64, f64)) -> f64 {
        match self.try_joint_selectivity(x_range, y_range) {
            Ok(selectivity) => selectivity,
            Err(EstimatorError::InvalidQueryBounds { .. }) => 0.0,
            Err(err) => {
                debug_assert!(false, "joint refresh failed unexpectedly: {err}");
                0.0
            }
        }
    }
}

impl Clone for JointSynopsis {
    fn clone(&self) -> Self {
        // Load the epoch *before* cloning the shards (same race argument
        // as the 1-D synopsis clone): an ingest landing in between leaves
        // the clone's epoch behind its shard data, which merely costs one
        // conservative rebuild — never a forever-stale cache.
        let epoch = self.epoch.load(Ordering::Acquire);
        Self {
            backend: self.backend.clone(),
            rule: self.rule,
            cdf_points: self.cdf_points,
            epoch: AtomicU64::new(epoch),
            cache: RwLock::new(self.read_cache().clone()),
            rebuild_guard: Mutex::new(RefreshState::default()),
            rebuilds: AtomicUsize::new(self.rebuild_count()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use wavedens_core::WindowPolicy;
    use wavedens_processes::seeded_rng;

    fn correlated(n: usize, seed: u64, noise: f64) -> Vec<(f64, f64)> {
        let mut rng = seeded_rng(seed);
        (0..n)
            .map(|_| {
                let x: f64 = rng.gen();
                let y = (x + noise * (2.0 * rng.gen::<f64>() - 1.0)).rem_euclid(1.0);
                (x, y)
            })
            .collect()
    }

    fn config(shards: usize) -> SynopsisConfig {
        // Hard thresholding: shipped frames then carry coefficient-sparse
        // payloads (the survivors ship verbatim), which the round-trip
        // test's shrink assertion relies on.
        SynopsisConfig::default()
            .with_expected_rows(4096)
            .with_shards(shards)
            .with_rule(wavedens_core::ThresholdRule::Hard)
    }

    #[test]
    fn empty_joint_answers_zero_without_rebuilding() {
        let joint = JointSynopsis::new(&config(2)).unwrap();
        assert_eq!(joint.joint_selectivity((0.2, 0.8), (0.2, 0.8)), 0.0);
        assert_eq!(joint.rows(), 0);
        assert_eq!(joint.rebuild_count(), 0);
        assert!(joint.refreshed().unwrap().is_none());
    }

    #[test]
    fn stale_cache_burst_rebuilds_exactly_once() {
        let joint = JointSynopsis::new(&config(2)).unwrap();
        joint.ingest_parallel(&correlated(4096, 1, 0.05));
        assert_eq!(joint.rebuild_count(), 0, "ingest must stay lazy");
        for i in 0..25 {
            let lo = i as f64 / 50.0;
            let s = joint.joint_selectivity((lo, lo + 0.3), (lo, lo + 0.3));
            assert!((0.0..=1.0).contains(&s));
        }
        assert_eq!(joint.rebuild_count(), 1);
        joint.ingest(&[(0.5, 0.5)]);
        for _ in 0..10 {
            joint.joint_selectivity((0.1, 0.9), (0.1, 0.9));
        }
        assert_eq!(joint.rebuild_count(), 2);
    }

    #[test]
    fn correlated_data_beats_the_independence_assumption() {
        // y tracks x closely, so the mass of a diagonal square is ~ its
        // side length, while independence predicts the side squared.
        let joint = JointSynopsis::new(&config(4)).unwrap();
        joint.ingest_parallel(&correlated(8192, 2, 0.05));
        let s = joint.joint_selectivity((0.3, 0.55), (0.3, 0.55));
        assert!(
            s > 0.15,
            "diagonal square must hold ~a quarter of the mass, got {s}"
        );
        // An anti-diagonal square holds almost nothing.
        let off = joint.joint_selectivity((0.05, 0.3), (0.6, 0.9));
        assert!(off < 0.05, "off-diagonal mass {off}");
    }

    #[test]
    fn uncorrelated_data_matches_the_product_of_marginals() {
        let mut rng = seeded_rng(3);
        let rows: Vec<(f64, f64)> = (0..4096).map(|_| (rng.gen(), rng.gen())).collect();
        let joint = JointSynopsis::new(&config(2)).unwrap();
        joint.ingest_parallel(&rows);
        let s = joint.joint_selectivity((0.2, 0.6), (0.3, 0.8));
        assert!((s - 0.4 * 0.5).abs() < 0.05, "independent uniforms: {s}");
    }

    #[test]
    fn windowed_configs_are_rejected() {
        let config = config(2).with_window(WindowPolicy::SlidingSlices(2));
        assert!(matches!(
            JointSynopsis::new(&config),
            Err(EstimatorError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn shipped_joint_frames_round_trip() {
        let joint = JointSynopsis::new(&config(2)).unwrap();
        joint.ingest_parallel(&correlated(4096, 5, 0.05));
        let frame = joint.ship(CompactionPolicy::InactiveTail).unwrap();
        let restored = TensorSketch::from_bytes(&frame).unwrap();
        assert_eq!(restored.count(), 4096);
        assert_eq!(restored.dims(), 2);
        // The restored sketch estimates like the local merged state.
        let local = joint
            .merged_sketch()
            .unwrap()
            .thresholded(joint.rule())
            .unwrap()
            .cumulative(65, 65);
        let remote = restored
            .thresholded(joint.rule())
            .unwrap()
            .cumulative(65, 65);
        let q = ((0.25, 0.75), (0.25, 0.75));
        assert_eq!(local.selectivity(q.0, q.1), remote.selectivity(q.0, q.1));
        // The compacted frame is much smaller than the dense framing.
        let dense = joint.merged_sketch().unwrap().to_bytes_dense();
        assert!(
            dense.len() >= 5 * frame.len(),
            "dense {} vs shipped {}",
            dense.len(),
            frame.len()
        );
    }

    #[test]
    fn nan_bounds_error_on_the_fallible_path() {
        let joint = JointSynopsis::new(&config(1)).unwrap();
        joint.ingest(&correlated(512, 6, 0.1));
        assert!(matches!(
            joint.try_joint_selectivity((f64::NAN, 0.5), (0.0, 1.0)),
            Err(EstimatorError::InvalidQueryBounds { .. })
        ));
        assert!(matches!(
            joint.try_joint_selectivity((0.0, 1.0), (0.5, f64::NAN)),
            Err(EstimatorError::InvalidQueryBounds { .. })
        ));
        assert_eq!(joint.joint_selectivity((f64::NAN, 0.5), (0.0, 1.0)), 0.0);
        // Reversed ranges normalise to zero mass, not an error.
        assert_eq!(
            joint.try_joint_selectivity((0.9, 0.1), (0.0, 1.0)).unwrap(),
            0.0
        );
    }

    #[test]
    fn clone_preserves_cache_and_counters() {
        let joint = JointSynopsis::new(&config(2)).unwrap();
        joint.ingest(&correlated(1024, 7, 0.1));
        let s = joint.joint_selectivity((0.2, 0.7), (0.2, 0.7));
        let clone = joint.clone();
        assert_eq!(clone.rebuild_count(), 1);
        assert_eq!(clone.rows(), 1024);
        assert_eq!(clone.joint_selectivity((0.2, 0.7), (0.2, 0.7)), s);
        assert_eq!(clone.rebuild_count(), 1, "clone reuses the cached grid");
    }

    #[test]
    fn readers_see_the_old_snapshot_until_refresh() {
        let joint = JointSynopsis::new(&config(2)).unwrap();
        joint.ingest(&correlated(1024, 8, 0.1));
        let first = joint.refreshed().unwrap().unwrap();
        joint.ingest(&[(0.5, 0.5); 16]);
        let again = joint.refreshed().unwrap().unwrap();
        assert!(!Arc::ptr_eq(&first, &again), "stale cache must rebuild");
        let third = joint.refreshed().unwrap().unwrap();
        assert!(Arc::ptr_eq(&again, &third));
        assert_eq!(joint.rebuild_count(), 2);
    }
}
