//! Sharded sketch ingestion: N per-shard [`CoefficientSketch`]es filled
//! concurrently and merged at estimate time.
//!
//! Because sketches merge by plain addition of their running sums, any
//! partition of the rows across shards reproduces — after one merge pass —
//! exactly the accumulation state a single stream over all rows would
//! have produced (up to floating-point summation order). Ingestion
//! therefore parallelises embarrassingly: each shard owns its sketch
//! behind a [`Mutex`], writers touch exactly one shard per batch, and the
//! merge at estimate time costs one element-wise vector addition per
//! shard, independent of the number of rows ingested.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use wavedens_core::{CoefficientSketch, EstimatorError};

/// N per-shard sketches with round-robin batch placement and scoped-thread
/// parallel bulk loads.
#[derive(Debug)]
pub struct ShardedIngest {
    shards: Vec<Mutex<CoefficientSketch>>,
    next: AtomicUsize,
}

impl ShardedIngest {
    /// Creates `shards ≥ 1` shards, each an empty clone of `template`.
    ///
    /// The template carries the basis, interval and resolution levels; it
    /// must be empty so that every shard starts from the same zero state.
    pub fn new(template: &CoefficientSketch, shards: usize) -> Result<Self, EstimatorError> {
        if !template.is_empty() {
            return Err(EstimatorError::InvalidParameter {
                message: format!(
                    "shard template must be an empty sketch, it has {} observations",
                    template.count()
                ),
            });
        }
        let shards = shards.max(1);
        Ok(Self {
            shards: (0..shards).map(|_| Mutex::new(template.clone())).collect(),
            next: AtomicUsize::new(0),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total number of observations across all shards.
    pub fn total_count(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.lock().expect("shard poisoned").count())
            .sum()
    }

    /// Whether no shard has seen any observation.
    pub fn is_empty(&self) -> bool {
        self.total_count() == 0
    }

    /// Ingests one batch into a single shard, chosen round-robin so that
    /// concurrent writers spread across shards and rarely contend on the
    /// same mutex.
    pub fn ingest(&self, values: &[f64]) {
        if values.is_empty() {
            return;
        }
        let shard = self.next.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        self.shards[shard]
            .lock()
            .expect("shard poisoned")
            .push_batch(values);
    }

    /// Bulk-loads `values` by splitting them into one contiguous chunk per
    /// shard and filling all shards concurrently with scoped threads.
    ///
    /// Wall-clock ingest time scales with the number of cores (each shard
    /// performs the per-level scatter for its chunk only); the estimate
    /// remains equivalent to a single-stream fit because the shards merge
    /// at estimate time.
    pub fn ingest_parallel(&self, values: &[f64]) {
        if values.is_empty() {
            return;
        }
        let chunk = values.len().div_ceil(self.shards.len());
        std::thread::scope(|scope| {
            for (shard, slice) in self.shards.iter().zip(values.chunks(chunk)) {
                scope.spawn(move || {
                    shard.lock().expect("shard poisoned").push_batch(slice);
                });
            }
        });
    }

    /// Merges all shards into one sketch — the accumulation state a single
    /// stream over every ingested row would have produced. Shards are
    /// locked one at a time, so concurrent writers are stalled for at most
    /// one shard-clone each.
    pub fn merged(&self) -> Result<CoefficientSketch, EstimatorError> {
        let mut merged = self.shards[0].lock().expect("shard poisoned").clone();
        for shard in &self.shards[1..] {
            let snapshot = shard.lock().expect("shard poisoned").clone();
            merged.merge(&snapshot)?;
        }
        Ok(merged)
    }

    /// [`merged`](Self::merged) into a caller-provided scratch sketch,
    /// reusing its allocations instead of cloning every shard — the
    /// allocation-free merge path of the engine's incremental refresh.
    /// `target` must be compatible with the shard template (any previous
    /// merge result is); its prior contents are overwritten.
    pub fn merge_into(&self, target: &mut CoefficientSketch) -> Result<(), EstimatorError> {
        {
            let first = self.shards[0].lock().expect("shard poisoned");
            target.copy_from(&first)?;
        }
        for shard in &self.shards[1..] {
            let snapshot = shard.lock().expect("shard poisoned");
            target.merge(&snapshot)?;
        }
        Ok(())
    }
}

impl Clone for ShardedIngest {
    fn clone(&self) -> Self {
        Self {
            shards: self
                .shards
                .iter()
                .map(|shard| Mutex::new(shard.lock().expect("shard poisoned").clone()))
                .collect(),
            next: AtomicUsize::new(self.next.load(Ordering::Relaxed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use wavedens_processes::seeded_rng;

    fn sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = seeded_rng(seed);
        (0..n).map(|_| rng.gen::<f64>()).collect()
    }

    fn template(n: usize) -> CoefficientSketch {
        CoefficientSketch::sized_for(n).unwrap()
    }

    #[test]
    fn parallel_ingest_matches_single_stream() {
        let data = sample(2000, 1);
        let sharded = ShardedIngest::new(&template(2000), 4).unwrap();
        sharded.ingest_parallel(&data);
        assert_eq!(sharded.total_count(), 2000);
        assert_eq!(sharded.shard_count(), 4);
        let mut single = template(2000);
        single.push_batch(&data);
        let merged = sharded.merged().unwrap();
        let a = merged.snapshot().unwrap();
        let b = single.snapshot().unwrap();
        for (la, lb) in a.details().iter().zip(b.details()) {
            for (va, vb) in la.values.iter().zip(&lb.values) {
                assert!((va - vb).abs() < 1e-12 * (1.0 + vb.abs()));
            }
        }
    }

    #[test]
    fn round_robin_ingest_spreads_batches() {
        let sharded = ShardedIngest::new(&template(100), 3).unwrap();
        for chunk in sample(90, 2).chunks(10) {
            sharded.ingest(chunk);
        }
        // 9 batches of 10 over 3 shards: every shard saw 3 batches.
        for shard in &sharded.shards {
            assert_eq!(shard.lock().unwrap().count(), 30);
        }
    }

    #[test]
    fn empty_batches_do_not_advance_the_cursor() {
        let sharded = ShardedIngest::new(&template(10), 2).unwrap();
        sharded.ingest(&[]);
        sharded.ingest_parallel(&[]);
        assert!(sharded.is_empty());
        assert_eq!(sharded.next.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn nonempty_template_is_rejected() {
        let mut t = template(10);
        t.push(0.5);
        assert!(matches!(
            ShardedIngest::new(&t, 2).unwrap_err(),
            EstimatorError::InvalidParameter { .. }
        ));
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let sharded = ShardedIngest::new(&template(10), 0).unwrap();
        assert_eq!(sharded.shard_count(), 1);
        sharded.ingest(&[0.25, 0.75]);
        assert_eq!(sharded.merged().unwrap().count(), 2);
    }

    #[test]
    fn clone_copies_the_shard_state() {
        let sharded = ShardedIngest::new(&template(100), 2).unwrap();
        sharded.ingest(&sample(50, 3));
        let cloned = sharded.clone();
        assert_eq!(cloned.total_count(), 50);
        // The clone is independent.
        sharded.ingest(&sample(50, 4));
        assert_eq!(cloned.total_count(), 50);
        assert_eq!(sharded.total_count(), 100);
    }
}
