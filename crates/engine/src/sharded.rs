//! Sharded sketch ingestion: N per-shard [`CoefficientSketch`]es filled
//! concurrently and merged at estimate time.
//!
//! Because sketches merge by plain addition of their running sums, any
//! partition of the rows across shards reproduces — after one merge pass —
//! exactly the accumulation state a single stream over all rows would
//! have produced (up to floating-point summation order). Ingestion
//! therefore parallelises embarrassingly: each shard owns its sketch
//! behind a [`Mutex`], writers touch exactly one shard per batch, and the
//! merge at estimate time costs one element-wise vector addition per
//! shard, independent of the number of rows ingested.
//!
//! # Short critical sections
//!
//! For batches worth the detour (`SCATTER_OUTSIDE_LOCK_MIN` rows or
//! more), a writer does **not** evaluate basis functions while holding the
//! shard lock. It first scatters the whole batch into a pooled scratch
//! sketch — the expensive per-row, per-level, per-translation gather —
//! and then locks the shard only for the element-wise add of the scratch
//! sums ([`CoefficientSketch::merge`]), whose cost is proportional to the
//! level table sizes, not to the batch length. Concurrent writers that
//! land on the same shard therefore no longer serialize the basis
//! evaluation, only the cheap vector addition. Small batches skip the
//! detour: their in-lock scatter is already shorter than a full
//! element-wise merge.
//!
//! # Poisoned shards
//!
//! A writer that panics while holding a shard lock poisons the mutex.
//! Propagating that panic to every later ingest and query — what a bare
//! `lock().expect(…)` does — turns one crashed writer into a permanently
//! dead attribute. All the state behind these locks is repair-safe, so
//! the locks recover instead: a poisoned shard is cleared (dropping the
//! possibly-torn sums of the crashed batch and the shard's earlier rows,
//! which the running row counter gives back), a poisoned scratch pool is
//! emptied, and the poison flag is reset so the repair runs once, not on
//! every subsequent access.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use wavedens_core::{CoefficientSketch, EstimatorError, TensorSketch};

/// The accumulation-state contract sharded ingestion relies on: a sketch
/// whose state is a plain sum of per-row contributions, so that any
/// partition of the rows across shard instances merges back into exactly
/// the single-stream state. Implemented by the 1-D
/// [`CoefficientSketch`] (rows are scalars) and the 2-D
/// [`TensorSketch`] (rows are `(x, y)` pairs), which is what lets one
/// ingest structure serve both marginal and joint synopses.
pub trait MergeableSketch: Clone + Send + Sync + std::fmt::Debug {
    /// One observation: `f64` for marginal sketches, `(f64, f64)` for
    /// joint ones.
    type Row: Copy + Send + Sync;

    /// Observations accumulated so far.
    fn count(&self) -> usize;

    /// Whether no observation has been accumulated.
    fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Resets to the empty state in place, keeping allocations.
    fn clear(&mut self);

    /// Accumulates a batch of rows.
    fn push_rows(&mut self, rows: &[Self::Row]);

    /// Merges a compatible sketch (addition of accumulation state).
    fn merge(&mut self, other: &Self) -> Result<(), EstimatorError>;

    /// Overwrites this sketch with a compatible source, reusing
    /// allocations.
    fn copy_from(&mut self, source: &Self) -> Result<(), EstimatorError>;
}

impl MergeableSketch for CoefficientSketch {
    type Row = f64;

    fn count(&self) -> usize {
        CoefficientSketch::count(self)
    }

    fn clear(&mut self) {
        CoefficientSketch::clear(self);
    }

    fn push_rows(&mut self, rows: &[f64]) {
        self.push_batch(rows);
    }

    fn merge(&mut self, other: &Self) -> Result<(), EstimatorError> {
        CoefficientSketch::merge(self, other)
    }

    fn copy_from(&mut self, source: &Self) -> Result<(), EstimatorError> {
        CoefficientSketch::copy_from(self, source)
    }
}

/// Joint (2-D) sketches shard exactly like marginal ones; the template
/// handed to [`ShardedIngest::new`] must be 2-dimensional, since rows
/// are `(x, y)` pairs ([`TensorSketch::push_pairs`] checks).
impl MergeableSketch for TensorSketch {
    type Row = (f64, f64);

    fn count(&self) -> usize {
        TensorSketch::count(self)
    }

    fn clear(&mut self) {
        TensorSketch::clear(self);
    }

    fn push_rows(&mut self, rows: &[(f64, f64)]) {
        self.push_pairs(rows);
    }

    fn merge(&mut self, other: &Self) -> Result<(), EstimatorError> {
        TensorSketch::merge(self, other)
    }

    fn copy_from(&mut self, source: &Self) -> Result<(), EstimatorError> {
        TensorSketch::copy_from(self, source)
    }
}

/// Batch length from which [`ShardedIngest::ingest`] scatters outside the
/// shard lock (into a pooled scratch sketch) and locks only for the
/// element-wise add. Below it the whole batch is pushed under the lock:
/// the scatter of a few dozen rows is cheaper than merging the full level
/// tables, so the detour would lengthen the critical section instead of
/// shrinking it.
pub(crate) const SCATTER_OUTSIDE_LOCK_MIN: usize = 256;

/// Minimum rows per pool task of [`ShardedIngest::ingest_parallel`]:
/// queueing a task for a handful of rows costs more than scattering
/// them, so tiny bulk loads run inline (or on fewer tasks than shards).
pub(crate) const MIN_PARALLEL_CHUNK: usize = 256;

/// Target pool tasks per shard in
/// [`ShardedIngest::ingest_parallel`]: splitting each shard's share into
/// a few chunks (instead of one monolithic chunk per shard) leaves
/// surplus tasks in the work-stealing deques, so a worker that finishes
/// early takes over a queued chunk rather than idling at the join.
pub(crate) const PARALLEL_CHUNKS_PER_SHARD: usize = 4;

/// Upper bound on pooled scratch sketches kept alive for the
/// out-of-lock scatter path; more concurrent writers than this simply
/// allocate (and drop) a scratch for the duration of their batch.
pub(crate) const MAX_POOLED_SCRATCH: usize = 8;

/// Locks a scratch pool, recovering from poisoning by emptying it: pooled
/// scratches are cheap to re-clone from the template, so dropping them is
/// always a safe repair. Clears the poison flag — the repair runs once.
pub(crate) fn lock_scratch_pool<T>(pool: &Mutex<Vec<T>>) -> MutexGuard<'_, Vec<T>> {
    match pool.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            let mut guard = poisoned.into_inner();
            pool.clear_poison();
            guard.clear();
            guard
        }
    }
}

/// N per-shard sketches with round-robin batch placement and
/// work-stealing parallel bulk loads.
///
/// Generic over the sketch type: the default `S = CoefficientSketch`
/// ingests scalar rows for marginal synopses, `S = TensorSketch` ingests
/// `(x, y)` pairs for joint ones — same sharding, same short critical
/// sections, same poison recovery.
#[derive(Debug)]
pub struct ShardedIngest<S: MergeableSketch = CoefficientSketch> {
    shards: Vec<Mutex<S>>,
    /// Empty sketch the shards (and pooled scratches) are cloned from.
    template: S,
    /// Cleared scratch sketches for the out-of-lock scatter path.
    scratch: Mutex<Vec<S>>,
    /// Running total of ingested rows, bumped after each batch lands, so
    /// [`total_count`](Self::total_count) (and the staleness checks built
    /// on it) never has to take the N shard locks.
    rows: AtomicUsize,
    next: AtomicUsize,
}

impl<S: MergeableSketch> ShardedIngest<S> {
    /// Creates `shards ≥ 1` shards, each an empty clone of `template`.
    ///
    /// The template carries the basis, interval and resolution levels; it
    /// must be empty so that every shard starts from the same zero state.
    pub fn new(template: &S, shards: usize) -> Result<Self, EstimatorError> {
        if !template.is_empty() {
            return Err(EstimatorError::InvalidParameter {
                message: format!(
                    "shard template must be an empty sketch, it has {} observations",
                    template.count()
                ),
            });
        }
        let shards = shards.max(1);
        Ok(Self {
            shards: (0..shards).map(|_| Mutex::new(template.clone())).collect(),
            template: template.clone(),
            scratch: Mutex::new(Vec::new()),
            rows: AtomicUsize::new(0),
            next: AtomicUsize::new(0),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total number of observations across all shards, read from the
    /// atomic running counter — O(1) and lock-free, where it used to lock
    /// every shard in turn. The counter is bumped after a batch's rows
    /// have landed, so it never reports rows the shards do not contain.
    pub fn total_count(&self) -> usize {
        self.rows.load(Ordering::Acquire)
    }

    /// Whether no shard has seen any observation (lock-free).
    pub fn is_empty(&self) -> bool {
        self.total_count() == 0
    }

    /// Locks shard `index`, recovering from a poisoned mutex. The panicked
    /// writer may have left the sketch mid-scatter with torn sums, so the
    /// repair drops the shard's accumulation wholesale: `clear()` the
    /// sketch, give its rows back to the running counter, and reset the
    /// poison flag so the repair runs exactly once per crash. Later
    /// ingests and merges then see a structurally sound (merely smaller)
    /// shard instead of a propagated panic.
    fn lock_shard(&self, index: usize) -> MutexGuard<'_, S> {
        match self.shards[index].lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                self.shards[index].clear_poison();
                let lost = guard.count();
                guard.clear();
                // The crashed batch was never added to `rows` (the counter
                // is bumped after a batch lands), so only previously
                // landed rows are subtracted; saturate rather than assume
                // the interleaving.
                let _ = self
                    .rows
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |rows| {
                        Some(rows.saturating_sub(lost))
                    });
                guard
            }
        }
    }

    /// Ingests one batch into a single shard, chosen round-robin so that
    /// concurrent writers spread across shards and rarely contend on the
    /// same mutex.
    ///
    /// Batches of `SCATTER_OUTSIDE_LOCK_MIN` rows or more scatter into a
    /// pooled scratch sketch *before* taking the shard lock, which is then
    /// held only for the element-wise add — see the module docs.
    pub fn ingest(&self, values: &[S::Row]) {
        if values.is_empty() {
            return;
        }
        let shard = self.next.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        self.scatter_into_shard(shard, values);
        self.rows.fetch_add(values.len(), Ordering::Release);
    }

    /// Lands one batch in `shard`: long batches scatter into a pooled
    /// scratch sketch first and lock only for the element-wise merge,
    /// short ones push directly under the lock (see the module docs).
    fn scatter_into_shard(&self, shard: usize, values: &[S::Row]) {
        if values.len() >= SCATTER_OUTSIDE_LOCK_MIN {
            let mut local = self.take_scratch();
            local.push_rows(values);
            self.lock_shard(shard)
                .merge(&local)
                .expect("scratch is cloned from the shard template");
            self.return_scratch(local);
        } else {
            self.lock_shard(shard).push_rows(values);
        }
    }

    /// Bulk-loads `values` by splitting them into contiguous chunks —
    /// about `PARALLEL_CHUNKS_PER_SHARD` (4) per shard — assigned to shards
    /// round-robin and scattered on the global work-stealing pool
    /// ([`workpool::WorkPool`]), so a worker that finishes its chunk
    /// early steals a queued one instead of idling while the slowest
    /// shard finishes.
    ///
    /// Chunks hold at least `MIN_PARALLEL_CHUNK` rows so tiny bulk loads
    /// do not pay task-queue overhead per handful of rows; with a single
    /// shard — or when the whole load fits one chunk — the batch is
    /// scattered inline on the calling thread, no pool involved at all.
    /// Chunks long enough for the out-of-lock path scatter into pooled
    /// scratch sketches (one in hand per running worker task) and hold
    /// their shard lock only for the element-wise merge.
    ///
    /// Wall-clock ingest time scales with the number of cores; the
    /// estimate remains equivalent to a single-stream fit because the
    /// shards merge at estimate time.
    pub fn ingest_parallel(&self, values: &[S::Row]) {
        if values.is_empty() {
            return;
        }
        let shards = self.shards.len();
        let chunk = values
            .len()
            .div_ceil(shards * PARALLEL_CHUNKS_PER_SHARD)
            .max(MIN_PARALLEL_CHUNK);
        if shards == 1 || values.len() <= chunk {
            // Inline, but still round-robin and still short-critical-
            // section: a large single-shard load scatters outside the
            // lock exactly like an `ingest` batch would.
            let shard = self.next.fetch_add(1, Ordering::Relaxed) % shards;
            self.scatter_into_shard(shard, values);
        } else {
            workpool::WorkPool::global().scope(|scope| {
                scope.spawn_batch(
                    values
                        .chunks(chunk)
                        .enumerate()
                        .map(|(i, slice)| move || self.scatter_into_shard(i % shards, slice)),
                );
            });
        }
        self.rows.fetch_add(values.len(), Ordering::Release);
    }

    /// Merges all shards into one sketch — the accumulation state a single
    /// stream over every ingested row would have produced. Shards are
    /// locked one at a time, so concurrent writers are stalled for at most
    /// one shard-clone each.
    pub fn merged(&self) -> Result<S, EstimatorError> {
        let mut merged = self.lock_shard(0).clone();
        for shard in 1..self.shards.len() {
            let snapshot = self.lock_shard(shard).clone();
            merged.merge(&snapshot)?;
        }
        Ok(merged)
    }

    /// [`merged`](Self::merged) into a caller-provided scratch sketch,
    /// reusing its allocations instead of cloning every shard — the
    /// allocation-free merge path of the engine's incremental refresh.
    /// `target` must be compatible with the shard template (any previous
    /// merge result is); its prior contents are overwritten.
    pub fn merge_into(&self, target: &mut S) -> Result<(), EstimatorError> {
        {
            let first = self.lock_shard(0);
            target.copy_from(&first)?;
        }
        for shard in 1..self.shards.len() {
            let snapshot = self.lock_shard(shard);
            target.merge(&snapshot)?;
        }
        Ok(())
    }

    /// Pops a cleared scratch sketch from the pool, cloning the template
    /// when the pool is dry (first use, or more concurrent writers than
    /// pooled scratches).
    fn take_scratch(&self) -> S {
        lock_scratch_pool(&self.scratch)
            .pop()
            .unwrap_or_else(|| self.template.clone())
    }

    /// Clears a scratch sketch (keeping its allocations) and returns it to
    /// the pool, unless the pool is already full.
    fn return_scratch(&self, mut sketch: S) {
        sketch.clear();
        let mut pool = lock_scratch_pool(&self.scratch);
        if pool.len() < MAX_POOLED_SCRATCH {
            pool.push(sketch);
        }
    }
}

impl<S: MergeableSketch> Clone for ShardedIngest<S> {
    fn clone(&self) -> Self {
        // Clone the shard contents first so the row counter can be
        // recomputed from exactly the cloned state: the clone is then
        // self-consistent even if writers raced the per-shard locks.
        let sketches: Vec<S> = (0..self.shards.len())
            .map(|shard| self.lock_shard(shard).clone())
            .collect();
        let rows = sketches.iter().map(|sketch| sketch.count()).sum();
        Self {
            shards: sketches.into_iter().map(Mutex::new).collect(),
            template: self.template.clone(),
            scratch: Mutex::new(Vec::new()),
            rows: AtomicUsize::new(rows),
            next: AtomicUsize::new(self.next.load(Ordering::Relaxed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use wavedens_processes::seeded_rng;

    fn sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = seeded_rng(seed);
        (0..n).map(|_| rng.gen::<f64>()).collect()
    }

    fn template(n: usize) -> CoefficientSketch {
        CoefficientSketch::sized_for(n).unwrap()
    }

    #[test]
    fn parallel_ingest_matches_single_stream() {
        let data = sample(2000, 1);
        let sharded = ShardedIngest::new(&template(2000), 4).unwrap();
        sharded.ingest_parallel(&data);
        assert_eq!(sharded.total_count(), 2000);
        assert_eq!(sharded.shard_count(), 4);
        let mut single = template(2000);
        single.push_batch(&data);
        let merged = sharded.merged().unwrap();
        let a = merged.snapshot().unwrap();
        let b = single.snapshot().unwrap();
        for (la, lb) in a.details().iter().zip(b.details()) {
            for (va, vb) in la.values.iter().zip(&lb.values) {
                assert!((va - vb).abs() < 1e-12 * (1.0 + vb.abs()));
            }
        }
    }

    #[test]
    fn round_robin_ingest_spreads_batches() {
        let sharded = ShardedIngest::new(&template(100), 3).unwrap();
        for chunk in sample(90, 2).chunks(10) {
            sharded.ingest(chunk);
        }
        // 9 batches of 10 over 3 shards: every shard saw 3 batches.
        for shard in &sharded.shards {
            assert_eq!(shard.lock().unwrap().count(), 30);
        }
        assert_eq!(sharded.total_count(), 90);
    }

    /// Batches long enough for the out-of-lock scatter path must land in
    /// the shard sketches (via the element-wise merge) exactly like the
    /// in-lock path lands short ones: merged state and running counter
    /// both match a single-stream fit.
    #[test]
    fn scratch_merge_ingest_matches_single_stream() {
        let data = sample(3 * SCATTER_OUTSIDE_LOCK_MIN + 57, 7);
        let sharded = ShardedIngest::new(&template(1000), 2).unwrap();
        // Mix of long batches (scratch path) and short ones (direct path).
        let (long, rest) = data.split_at(2 * SCATTER_OUTSIDE_LOCK_MIN);
        sharded.ingest(long);
        for chunk in rest.chunks(40) {
            sharded.ingest(chunk);
        }
        assert_eq!(sharded.total_count(), data.len());
        let mut single = template(1000);
        single.push_batch(&data);
        let merged = sharded.merged().unwrap();
        assert_eq!(merged.count(), single.count());
        let a = merged.snapshot().unwrap();
        let b = single.snapshot().unwrap();
        for (la, lb) in
            std::iter::once((a.scaling(), b.scaling())).chain(a.details().iter().zip(b.details()))
        {
            for (va, vb) in la.values.iter().zip(&lb.values) {
                assert!((va - vb).abs() < 1e-12 * (1.0 + vb.abs()), "{va} vs {vb}");
            }
        }
        // The scratch was cleared and pooled for reuse.
        assert_eq!(sharded.scratch.lock().unwrap().len(), 1);
        assert!(sharded.scratch.lock().unwrap()[0].is_empty());
    }

    /// The atomic counter stays exact under concurrent writers on both
    /// ingest paths.
    #[test]
    fn total_count_is_exact_under_concurrent_ingest() {
        let sharded = ShardedIngest::new(&template(2000), 3).unwrap();
        let rows = sample(4000, 8);
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let sharded = &sharded;
                let rows = &rows;
                scope.spawn(move || {
                    for chunk in rows[worker * 1000..(worker + 1) * 1000].chunks(300) {
                        sharded.ingest(chunk);
                    }
                });
            }
        });
        assert_eq!(sharded.total_count(), 4000);
        assert_eq!(sharded.merged().unwrap().count(), 4000);
    }

    #[test]
    fn small_parallel_loads_run_inline() {
        // A load below the minimum chunk size lands on shard 0 without
        // spawning; the other shards stay untouched.
        let sharded = ShardedIngest::new(&template(100), 4).unwrap();
        sharded.ingest_parallel(&sample(MIN_PARALLEL_CHUNK / 2, 9));
        assert_eq!(
            sharded.shards[0].lock().unwrap().count(),
            MIN_PARALLEL_CHUNK / 2
        );
        for shard in &sharded.shards[1..] {
            assert_eq!(shard.lock().unwrap().count(), 0);
        }
        // A larger load still spreads, with every chunk at least the
        // minimum size (the last one possibly shorter).
        let sharded = ShardedIngest::new(&template(1000), 4).unwrap();
        sharded.ingest_parallel(&sample(2 * MIN_PARALLEL_CHUNK + 10, 10));
        let counts: Vec<usize> = sharded
            .shards
            .iter()
            .map(|shard| shard.lock().unwrap().count())
            .collect();
        assert_eq!(counts.iter().sum::<usize>(), 2 * MIN_PARALLEL_CHUNK + 10);
        assert!(counts.iter().filter(|&&c| c > 0).count() <= 3);
        assert!(counts[0] >= MIN_PARALLEL_CHUNK);
    }

    #[test]
    fn empty_batches_do_not_advance_the_cursor() {
        let sharded = ShardedIngest::new(&template(10), 2).unwrap();
        sharded.ingest(&[]);
        sharded.ingest_parallel(&[]);
        assert!(sharded.is_empty());
        assert_eq!(sharded.next.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn nonempty_template_is_rejected() {
        let mut t = template(10);
        t.push(0.5);
        assert!(matches!(
            ShardedIngest::new(&t, 2).unwrap_err(),
            EstimatorError::InvalidParameter { .. }
        ));
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let sharded = ShardedIngest::new(&template(10), 0).unwrap();
        assert_eq!(sharded.shard_count(), 1);
        sharded.ingest(&[0.25, 0.75]);
        assert_eq!(sharded.merged().unwrap().count(), 2);
    }

    /// A writer panicking while holding a shard lock must not take the
    /// whole ingest structure down with it: the next access repairs the
    /// shard (dropping its possibly-torn rows) and everything keeps
    /// answering.
    #[test]
    fn poisoned_shard_recovers_instead_of_propagating() {
        let sharded = ShardedIngest::new(&template(1000), 2).unwrap();
        // 500 rows land on shard 0 (first round-robin pick).
        sharded.ingest(&sample(500, 11));
        assert_eq!(sharded.total_count(), 500);
        // Simulate a writer crash while holding shard 0's lock.
        let crash = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = sharded.shards[0].lock().unwrap();
            panic!("simulated writer crash");
        }));
        assert!(crash.is_err());
        assert!(sharded.shards[0].is_poisoned());
        // Ingest keeps working (round-robin sends this batch to shard 1).
        sharded.ingest(&sample(100, 12));
        // The merge touches the poisoned shard, repairs it once (shard 0's
        // torn state is dropped and its rows given back) and answers.
        let merged = sharded.merged().unwrap();
        assert_eq!(merged.count(), 100);
        assert_eq!(sharded.total_count(), 100);
        assert!(!sharded.shards[0].is_poisoned());
        // The repair is not repeated: rows ingested after it survive the
        // next merge.
        sharded.ingest(&sample(200, 13));
        assert_eq!(sharded.merged().unwrap().count(), 300);
    }

    /// A poisoned scratch pool is emptied and keeps serving: the long-
    /// batch scatter path still lands its rows.
    #[test]
    fn poisoned_scratch_pool_recovers() {
        let sharded = ShardedIngest::new(&template(1000), 1).unwrap();
        let crash = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = sharded.scratch.lock().unwrap();
            panic!("simulated crash while holding the pool");
        }));
        assert!(crash.is_err());
        let data = sample(2 * SCATTER_OUTSIDE_LOCK_MIN, 14);
        sharded.ingest(&data);
        assert_eq!(sharded.merged().unwrap().count(), data.len());
    }

    /// The generic ingest path serves 2-D tensor sketches identically:
    /// sharded pair ingestion merges back into the single-stream state.
    #[test]
    fn tensor_shards_match_single_stream() {
        let mut rng = seeded_rng(21);
        let rows: Vec<(f64, f64)> = (0..1200).map(|_| (rng.gen(), rng.gen())).collect();
        let template = TensorSketch::sized_for_pairs(1200).unwrap();
        let sharded: ShardedIngest<TensorSketch> = ShardedIngest::new(&template, 3).unwrap();
        for chunk in rows.chunks(90) {
            sharded.ingest(chunk);
        }
        sharded.ingest_parallel(&rows[..600]);
        assert_eq!(sharded.total_count(), 1800);
        let mut single = template.clone();
        single.push_pairs(&rows);
        single.push_pairs(&rows[..600]);
        let merged = sharded.merged().unwrap();
        assert_eq!(MergeableSketch::count(&merged), 1800);
        let a = merged.snapshot_levels().unwrap();
        let b = single.snapshot_levels().unwrap();
        for (la, lb) in a.iter().zip(&b) {
            for (va, vb) in la.values.iter().zip(&lb.values) {
                assert!((va - vb).abs() < 1e-12 * (1.0 + vb.abs()), "{va} vs {vb}");
            }
        }
    }

    #[test]
    fn clone_copies_the_shard_state() {
        let sharded = ShardedIngest::new(&template(100), 2).unwrap();
        sharded.ingest(&sample(50, 3));
        let cloned = sharded.clone();
        assert_eq!(cloned.total_count(), 50);
        // The clone is independent.
        sharded.ingest(&sample(50, 4));
        assert_eq!(cloned.total_count(), 50);
        assert_eq!(sharded.total_count(), 100);
    }
}
