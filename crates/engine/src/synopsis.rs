//! One attribute's synopsis: a sharded sketch plus an atomically swapped
//! cache of the refreshed (thresholded + CDF-tabulated) estimate.

use crate::sharded::ShardedIngest;
use crate::windowed::WindowedIngest;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard};
use wavedens_core::{
    CoefficientSketch, CompactionPolicy, CumulativeEstimate, CvCache, DenseEvalCache,
    EstimatorError, ThresholdRule, WaveletDensityEstimate, WindowPolicy, DEFAULT_CDF_POINTS,
};

/// Configuration of an [`AttributeSynopsis`].
///
/// Compared with `PartialEq` when an attribute participates in both a
/// standalone synopsis and a registered pair: the catalog refuses a pair
/// whose member is already registered with a *different* configuration
/// (see [`crate::SynopsisCatalog::register_pair`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SynopsisConfig {
    /// Thresholding nonlinearity applied at refresh time (default soft,
    /// the paper's STCV).
    pub rule: ThresholdRule,
    /// Rough number of rows the sketch levels are sized for (the paper's
    /// level rules need an anticipated sample size; default 4096).
    pub expected_rows: usize,
    /// Number of ingest shards (default: the machine's available
    /// parallelism).
    pub shards: usize,
    /// Resolution of the precomputed CDF table (default
    /// [`DEFAULT_CDF_POINTS`]).
    pub cdf_points: usize,
    /// How the synopsis weights history (default
    /// [`WindowPolicy::Landmark`]: one lifetime sketch). Windowed
    /// policies maintain per-shard slice rings; see
    /// [`AttributeSynopsis::advance`].
    pub window: WindowPolicy,
}

impl Default for SynopsisConfig {
    fn default() -> Self {
        Self {
            rule: ThresholdRule::Soft,
            expected_rows: 4096,
            shards: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            cdf_points: DEFAULT_CDF_POINTS,
            window: WindowPolicy::Landmark,
        }
    }
}

impl SynopsisConfig {
    /// Sets the expected row count.
    pub fn with_expected_rows(mut self, rows: usize) -> Self {
        self.expected_rows = rows;
        self
    }

    /// Sets the shard count (clamped to at least 1).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the thresholding rule.
    pub fn with_rule(mut self, rule: ThresholdRule) -> Self {
        self.rule = rule;
        self
    }

    /// Sets the window policy (validated when the synopsis is built).
    pub fn with_window(mut self, window: WindowPolicy) -> Self {
        self.window = window;
        self
    }
}

/// The refreshed state of a synopsis: the thresholded density estimate
/// plus its precomputed cumulative (CDF) table. Immutable once built;
/// shared with readers via [`Arc`].
#[derive(Debug, Clone)]
pub struct RefreshedSynopsis {
    density: WaveletDensityEstimate,
    cumulative: CumulativeEstimate,
}

impl RefreshedSynopsis {
    /// Runs the model-selection pipeline (cross-validated thresholds +
    /// dense CDF construction) on an accumulation state.
    pub fn build(
        sketch: &CoefficientSketch,
        rule: ThresholdRule,
        cdf_points: usize,
    ) -> Result<Self, EstimatorError> {
        let density = sketch.estimate(rule)?;
        let cumulative = density.cumulative(cdf_points);
        Ok(Self {
            density,
            cumulative,
        })
    }

    /// The delta-aware variant of [`build`](Self::build): runs the
    /// cross-validation through a [`CvCache`] (unchanged levels skip the
    /// candidate scan, dirty levels repair the previous order instead of
    /// re-sorting) and the CDF construction through a [`DenseEvalCache`]
    /// (basis-function values on the fixed grid are interpolated once and
    /// replayed). Bitwise identical to `build` for any cache state; this
    /// is what the engine's incremental refresh calls with the caches it
    /// keeps across rebuilds.
    pub fn build_cached(
        sketch: &CoefficientSketch,
        rule: ThresholdRule,
        cdf_points: usize,
        cv: &mut CvCache,
        dense: &mut DenseEvalCache,
    ) -> Result<Self, EstimatorError> {
        let density = sketch.estimate_with_cache(rule, cv)?;
        let cumulative = density.cumulative_cached(cdf_points, dense);
        Ok(Self {
            density,
            cumulative,
        })
    }

    /// The thresholded density estimate.
    pub fn density(&self) -> &WaveletDensityEstimate {
        &self.density
    }

    /// The precomputed cumulative (CDF) table.
    pub fn cumulative(&self) -> &CumulativeEstimate {
        &self.cumulative
    }

    /// Estimated selectivity `P(lo ≤ X ≤ hi)`; O(1) from the CDF table.
    ///
    /// The range mass is normalized by the table's total mass
    /// ([`CumulativeEstimate::selectivity`]): an oscillating wavelet
    /// estimate (or a truncated support) makes the tabulated mass drift
    /// from 1, and the raw range mass would then be biased by exactly that
    /// drift — and could even exceed 1.
    pub fn selectivity(&self, lo: f64, hi: f64) -> f64 {
        self.cumulative.selectivity(lo, hi)
    }
}

/// A cache entry: the refreshed synopsis and the ingest epoch it covers.
#[derive(Debug, Clone)]
struct CachedSynopsis {
    epoch: u64,
    synopsis: Arc<RefreshedSynopsis>,
}

/// State owned by whichever thread holds the rebuild guard: the scratch
/// sketch the shards are merged into (allocated once, reused every
/// refresh) and the cross-validation cache that lets unchanged levels skip
/// the candidate scan and dirty levels re-sort incrementally.
#[derive(Debug, Default)]
struct RefreshState {
    scratch: Option<CoefficientSketch>,
    cv: CvCache,
    dense: DenseEvalCache,
}

/// The ingest structure behind a synopsis: one lifetime sharded sketch
/// ([`WindowPolicy::Landmark`]) or per-shard windowed slice rings. Both
/// expose the same merge surface, so the refresh path is policy-blind.
#[derive(Debug, Clone)]
enum IngestBackend {
    Landmark(ShardedIngest),
    Windowed(WindowedIngest),
}

impl IngestBackend {
    fn ingest(&self, values: &[f64]) {
        match self {
            Self::Landmark(shards) => shards.ingest(values),
            Self::Windowed(rings) => rings.ingest(values),
        }
    }

    fn ingest_parallel(&self, values: &[f64]) {
        match self {
            Self::Landmark(shards) => shards.ingest_parallel(values),
            Self::Windowed(rings) => rings.ingest_parallel(values),
        }
    }

    fn total_count(&self) -> usize {
        match self {
            Self::Landmark(shards) => shards.total_count(),
            Self::Windowed(rings) => rings.total_count(),
        }
    }

    fn shard_count(&self) -> usize {
        match self {
            Self::Landmark(shards) => shards.shard_count(),
            Self::Windowed(rings) => rings.shard_count(),
        }
    }

    fn merged(&self) -> Result<CoefficientSketch, EstimatorError> {
        match self {
            Self::Landmark(shards) => shards.merged(),
            Self::Windowed(rings) => rings.merged(),
        }
    }

    fn merge_into(&self, target: &mut CoefficientSketch) -> Result<(), EstimatorError> {
        match self {
            Self::Landmark(shards) => shards.merge_into(target),
            Self::Windowed(rings) => rings.merge_into(target),
        }
    }
}

/// One attribute's synopsis: a sharded sketch filled by writers plus an
/// atomically swapped `Arc` of the latest refreshed estimate.
///
/// # Concurrency model
///
/// * **Writers** ([`ingest`](Self::ingest) /
///   [`ingest_parallel`](Self::ingest_parallel)) touch only their shard's
///   mutex and bump the ingest epoch; they never build estimates.
/// * **Readers** ([`selectivity`](Self::selectivity) /
///   [`refreshed`](Self::refreshed)) clone the cached
///   `Arc<RefreshedSynopsis>` under a briefly held read lock and answer
///   from the CDF table in O(1).
/// * When the cache is stale (the epoch moved), the **first** reader to
///   notice becomes the rebuilder: it merges the shards, runs one
///   cross-validation + CDF construction *outside* any reader-visible
///   lock, and swaps the cache `Arc`. Readers arriving during the rebuild
///   keep answering from the previous snapshot — they are never blocked
///   by a rebuild (the only blocking case is the very first build, when
///   no snapshot exists yet). A burst of stale-cache queries therefore
///   triggers exactly one rebuild, never one per query
///   ([`rebuild_count`](Self::rebuild_count) exposes the counter).
#[derive(Debug)]
pub struct AttributeSynopsis {
    backend: IngestBackend,
    /// The configuration this synopsis was built from (kept verbatim so
    /// the catalog can detect config conflicts at pair registration).
    config: SynopsisConfig,
    rule: ThresholdRule,
    cdf_points: usize,
    /// Bumped after every completed ingest batch; the cache is fresh when
    /// its recorded epoch matches.
    epoch: AtomicU64,
    cache: RwLock<Option<CachedSynopsis>>,
    /// Serialises rebuilds; readers `try_lock` it so at most one becomes
    /// the rebuilder while the rest serve the previous snapshot. The
    /// rebuilder also gets the incremental [`RefreshState`] (scratch
    /// sketch + CV cache) that makes repeated refreshes cheap.
    rebuild_guard: Mutex<RefreshState>,
    rebuilds: AtomicUsize,
}

impl AttributeSynopsis {
    /// Creates an empty synopsis from a configuration. Fails on invalid
    /// window-policy parameters (zero-slice sliding window, decay factor
    /// outside `(0, 1]`).
    pub fn new(config: &SynopsisConfig) -> Result<Self, EstimatorError> {
        config.window.validate()?;
        let template = CoefficientSketch::sized_for(config.expected_rows.max(16))?;
        let backend = if config.window.is_windowed() {
            IngestBackend::Windowed(WindowedIngest::new(
                &template,
                config.shards,
                config.window,
            )?)
        } else {
            IngestBackend::Landmark(ShardedIngest::new(&template, config.shards)?)
        };
        Ok(Self {
            backend,
            config: config.clone(),
            rule: config.rule,
            cdf_points: config.cdf_points.max(2),
            epoch: AtomicU64::new(0),
            cache: RwLock::new(None),
            rebuild_guard: Mutex::new(RefreshState::default()),
            rebuilds: AtomicUsize::new(0),
        })
    }

    /// The configuration this synopsis was built from, verbatim.
    pub fn config(&self) -> &SynopsisConfig {
        &self.config
    }

    /// The thresholding rule applied at refresh time.
    pub fn rule(&self) -> ThresholdRule {
        self.rule
    }

    /// Number of ingest shards.
    pub fn shard_count(&self) -> usize {
        self.backend.shard_count()
    }

    /// The window policy this synopsis weights history with
    /// ([`WindowPolicy::Landmark`] unless configured otherwise).
    pub fn window_policy(&self) -> WindowPolicy {
        match &self.backend {
            IngestBackend::Landmark(_) => WindowPolicy::Landmark,
            IngestBackend::Windowed(rings) => rings.policy(),
        }
    }

    /// Total rows currently contributing to the synopsis — all rows ever
    /// ingested for a landmark synopsis, the rows live in the window for
    /// a windowed one. O(1) from an atomic running counter, so
    /// observability probes and staleness checks never take the per-shard
    /// locks.
    pub fn rows(&self) -> usize {
        self.backend.total_count()
    }

    /// Number of cross-validation rebuilds performed so far: increments
    /// once per stale-cache refresh, regardless of how many queries hit
    /// the stale cache.
    pub fn rebuild_count(&self) -> usize {
        self.rebuilds.load(Ordering::Relaxed)
    }

    /// Ingests one batch of attribute values into a single shard
    /// (round-robin), marking the cache stale.
    pub fn ingest(&self, values: &[f64]) {
        if values.is_empty() {
            return;
        }
        self.backend.ingest(values);
        // Bump *after* the push so a concurrent rebuild can never tag a
        // cache that misses this batch with the post-batch epoch.
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Closes the current time slice of a windowed synopsis: every shard
    /// ring rotates, the oldest slice retires when the rings are full,
    /// and the cache is marked stale so the next query refreshes over the
    /// new window. Returns `true` when an advance happened; `false` (and
    /// does nothing) on a landmark synopsis, which keeps no slices.
    pub fn advance(&self) -> bool {
        match &self.backend {
            IngestBackend::Landmark(_) => false,
            IngestBackend::Windowed(rings) => {
                rings.advance_all();
                self.epoch.fetch_add(1, Ordering::Release);
                true
            }
        }
    }

    /// Ships the current (age-0) time slice of a windowed synopsis as a
    /// windowed v3 wire frame (slice metadata + compact sketch body);
    /// receivers without window support restore it as a plain sketch.
    /// Fails with [`EstimatorError::InvalidParameter`] on a landmark
    /// synopsis.
    pub fn ship_window_slice(&self) -> Result<Vec<u8>, EstimatorError> {
        match &self.backend {
            IngestBackend::Landmark(_) => Err(EstimatorError::InvalidParameter {
                message: "a landmark synopsis keeps no window slices to ship".to_string(),
            }),
            IngestBackend::Windowed(rings) => rings.ship_current_slice(),
        }
    }

    /// Ingests a bulk load by fanning the rows out across the shards on
    /// the global work-stealing pool
    /// ([`ShardedIngest::ingest_parallel`]).
    pub fn ingest_parallel(&self, values: &[f64]) {
        if values.is_empty() {
            return;
        }
        self.backend.ingest_parallel(values);
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Ingests from an iterator in fixed-size batches (bounded memory for
    /// lazy or unbounded sources), using the same chunk policy as
    /// [`CoefficientSketch::extend`].
    pub fn ingest_stream<I: IntoIterator<Item = f64>>(&self, values: I) {
        wavedens_core::sketch::for_each_batch(values, |chunk| self.ingest(chunk));
    }

    /// The merged accumulation state across all shards (for example to
    /// serialize and ship to another node). For a windowed synopsis this
    /// is the policy-weighted merged window — exactly what queries see.
    pub fn merged_sketch(&self) -> Result<CoefficientSketch, EstimatorError> {
        self.backend.merged()
    }

    /// The merged accumulation state compacted under `policy` with this
    /// synopsis' thresholding rule — the sketch to serialize when shipping
    /// the attribute to another node (see
    /// [`CoefficientSketch::compact`]: the default
    /// [`CompactionPolicy::InactiveTail`] is lossless).
    pub fn compacted_sketch(
        &self,
        policy: CompactionPolicy,
    ) -> Result<CoefficientSketch, EstimatorError> {
        self.merged_sketch()?.compact(policy, self.rule)
    }

    /// Serializes the merged, `policy`-compacted accumulation state to the
    /// binary wire frame — what one node sends another so the sketch can
    /// be [`CoefficientSketch::from_bytes`]-restored and merged (or
    /// estimated) where it lands.
    pub fn ship(&self, policy: CompactionPolicy) -> Result<Vec<u8>, EstimatorError> {
        Ok(self.compacted_sketch(policy)?.to_bytes())
    }

    /// The number of completed ingest batches (the staleness clock the
    /// refresh cache is keyed to). Exposed for observability and for
    /// race-regression tests: a consistent synopsis never reports an epoch
    /// ahead of the batches its shards actually contain.
    pub fn ingest_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The latest built snapshot without any rebuild work — the
    /// never-blocking read path. `None` until the first
    /// [`refreshed`](Self::refreshed) / [`refresh`](Self::refresh) builds
    /// one; possibly stale by the batches ingested since the last
    /// refresh. Use this from latency-sensitive readers and leave the
    /// rebuilds to whoever ingests (or to a maintenance task calling
    /// [`refresh`](Self::refresh)): a reader on this path never pays a
    /// merge or cross-validation, so rebuild cost cannot masquerade as
    /// query latency.
    pub fn cached(&self) -> Option<Arc<RefreshedSynopsis>> {
        self.read_cache()
            .as_ref()
            .map(|cached| Arc::clone(&cached.synopsis))
    }

    /// Estimated selectivity from the latest built snapshot, with zero
    /// rebuild work on this thread ([`cached`](Self::cached)): `None`
    /// until a first snapshot exists, `Some(0.0)` for NaN or reversed
    /// bounds (mirroring [`selectivity`](Self::selectivity)).
    pub fn selectivity_cached(&self, lo: f64, hi: f64) -> Option<f64> {
        if lo.is_nan() || hi.is_nan() {
            return Some(0.0);
        }
        self.cached().map(|synopsis| synopsis.selectivity(lo, hi))
    }

    /// Rebuilds the snapshot now if the cache is stale, blocking on the
    /// rebuild guard — the explicit maintenance entry point for whoever
    /// owns the write side (the mixed-load benchmark's writers call and
    /// time this, so rebuild latency is reported as its own series).
    /// Returns the fresh snapshot, `None` when no rows are ingested.
    pub fn refresh(&self) -> Result<Option<Arc<RefreshedSynopsis>>, EstimatorError> {
        let mut state = self.lock_rebuild_guard();
        self.rebuild_locked(&mut state)
    }

    /// The current refreshed synopsis, rebuilding at most once if the
    /// cache is stale; `None` when no rows have been ingested yet.
    ///
    /// Readers arriving while another thread rebuilds are served the
    /// previous snapshot (stale by exactly the in-flight batch), so the
    /// read path never waits on a cross-validation run once a first
    /// snapshot exists. Readers that must never pay (or wait on the
    /// first build of) a rebuild use [`cached`](Self::cached) /
    /// [`selectivity_cached`](Self::selectivity_cached) instead.
    pub fn refreshed(&self) -> Result<Option<Arc<RefreshedSynopsis>>, EstimatorError> {
        let epoch = self.epoch.load(Ordering::Acquire);
        {
            let cache = self.read_cache();
            if let Some(cached) = cache.as_ref() {
                if cached.epoch == epoch {
                    return Ok(Some(Arc::clone(&cached.synopsis)));
                }
            }
        }
        match self.rebuild_guard.try_lock() {
            Ok(mut state) => self.rebuild_locked(&mut state),
            Err(std::sync::TryLockError::WouldBlock) => {
                // Another thread is rebuilding: serve the previous
                // snapshot if one exists…
                if let Some(cached) = self.read_cache().as_ref() {
                    return Ok(Some(Arc::clone(&cached.synopsis)));
                }
                // …otherwise this is the very first build: wait for it.
                let mut state = self.lock_rebuild_guard();
                self.rebuild_locked(&mut state)
            }
            Err(std::sync::TryLockError::Poisoned(poisoned)) => {
                // A rebuilder panicked mid-refresh (used to propagate the
                // panic to every later query). Its scratch and caches may
                // be mid-update, so restart the incremental state and
                // rebuild from the shards — the source of truth.
                let mut state = poisoned.into_inner();
                self.rebuild_guard.clear_poison();
                *state = RefreshState::default();
                self.rebuild_locked(&mut state)
            }
        }
    }

    /// Reads the cache `RwLock`, recovering from poisoning: the cached
    /// value is an `Option` swapped wholesale under the write lock, so a
    /// panicked writer cannot have left it torn — the previous snapshot
    /// stays servable. Clears the poison flag.
    fn read_cache(&self) -> RwLockReadGuard<'_, Option<CachedSynopsis>> {
        self.cache.read().unwrap_or_else(|poisoned| {
            self.cache.clear_poison();
            poisoned.into_inner()
        })
    }

    /// Locks the rebuild guard, recovering from poisoning by resetting
    /// the incremental [`RefreshState`] (the panicked rebuilder may have
    /// torn its scratch sketch or caches mid-update). Clears the poison
    /// flag so the reset happens once per crash.
    fn lock_rebuild_guard(&self) -> MutexGuard<'_, RefreshState> {
        self.rebuild_guard.lock().unwrap_or_else(|poisoned| {
            let mut state = poisoned.into_inner();
            self.rebuild_guard.clear_poison();
            *state = RefreshState::default();
            state
        })
    }

    /// Rebuilds the cache if still stale, incrementally: the shards merge
    /// into the guard-owned scratch sketch (no allocation after the first
    /// refresh) and cross-validation runs through the guard-owned
    /// [`CvCache`], so only the levels dirtied since the previous refresh
    /// pay a full candidate re-sort. Caller must hold `rebuild_guard`.
    fn rebuild_locked(
        &self,
        state: &mut RefreshState,
    ) -> Result<Option<Arc<RefreshedSynopsis>>, EstimatorError> {
        let epoch = self.epoch.load(Ordering::Acquire);
        {
            let cache = self.read_cache();
            if let Some(cached) = cache.as_ref() {
                if cached.epoch == epoch {
                    return Ok(Some(Arc::clone(&cached.synopsis)));
                }
            }
        }
        let sketch = match state.scratch.as_mut() {
            Some(scratch) => {
                self.backend.merge_into(scratch)?;
                &*scratch
            }
            None => state.scratch.insert(self.backend.merged()?),
        };
        if sketch.is_empty() {
            return Ok(None);
        }
        let built = Arc::new(RefreshedSynopsis::build_cached(
            sketch,
            self.rule,
            self.cdf_points,
            &mut state.cv,
            &mut state.dense,
        )?);
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
        let mut cache = self.cache.write().unwrap_or_else(|poisoned| {
            // Same repair-safety argument as `read_cache`: the value is
            // swapped wholesale, never torn.
            self.cache.clear_poison();
            poisoned.into_inner()
        });
        *cache = Some(CachedSynopsis {
            epoch,
            synopsis: Arc::clone(&built),
        });
        Ok(Some(built))
    }

    /// Estimated selectivity `P(lo ≤ X ≤ hi)` from the (lazily refreshed)
    /// CDF table; 0 while no rows have been ingested, and 0 for an empty
    /// or reversed range (`hi ≤ lo`). NaN bounds are rejected with
    /// [`EstimatorError::InvalidQueryBounds`] — they compare false with
    /// everything, so they would otherwise slip past the reversed-range
    /// normalization. Infinite bounds are fine (the CDF table clamps).
    /// Rebuild failures surface as the error (this is what
    /// [`crate::SynopsisCatalog`] calls, so estimator errors propagate to
    /// the query instead of being silently mapped to 0).
    pub fn try_selectivity(&self, lo: f64, hi: f64) -> Result<f64, EstimatorError> {
        if lo.is_nan() || hi.is_nan() {
            return Err(EstimatorError::InvalidQueryBounds { lo, hi });
        }
        Ok(match self.refreshed()? {
            Some(synopsis) => synopsis.selectivity(lo, hi),
            None => 0.0,
        })
    }

    /// Infallible wrapper over [`try_selectivity`](Self::try_selectivity).
    ///
    /// NaN query bounds are a caller error, not an internal
    /// inconsistency: they answer 0 (the mass of an empty range), the
    /// same normalization [`CumulativeEstimate::range_mass`] applies.
    /// Estimation failures other than that indicate an internal
    /// inconsistency: they trip a debug assertion and answer 0 in
    /// release builds, mirroring the core estimator's fallback policy.
    pub fn selectivity(&self, lo: f64, hi: f64) -> f64 {
        match self.try_selectivity(lo, hi) {
            Ok(selectivity) => selectivity,
            Err(EstimatorError::InvalidQueryBounds { .. }) => 0.0,
            Err(err) => {
                debug_assert!(false, "synopsis refresh failed unexpectedly: {err}");
                0.0
            }
        }
    }
}

impl Clone for AttributeSynopsis {
    fn clone(&self) -> Self {
        // Load the epoch *before* cloning the shards: an ingest landing in
        // between then leaves the clone's epoch behind its shard data,
        // which merely costs one conservative rebuild. The opposite order
        // produced a clone whose epoch claimed coverage of a batch its
        // shards never saw — its cache, once rebuilt at that epoch, served
        // a stale estimate forever.
        let epoch = self.epoch.load(Ordering::Acquire);
        Self {
            backend: self.backend.clone(),
            config: self.config.clone(),
            rule: self.rule,
            cdf_points: self.cdf_points,
            epoch: AtomicU64::new(epoch),
            cache: RwLock::new(self.read_cache().clone()),
            rebuild_guard: Mutex::new(RefreshState::default()),
            rebuilds: AtomicUsize::new(self.rebuild_count()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use wavedens_processes::seeded_rng;

    fn sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = seeded_rng(seed);
        (0..n).map(|_| rng.gen::<f64>()).collect()
    }

    fn config(shards: usize) -> SynopsisConfig {
        SynopsisConfig::default()
            .with_expected_rows(2048)
            .with_shards(shards)
    }

    #[test]
    fn empty_synopsis_answers_zero_without_rebuilding() {
        let synopsis = AttributeSynopsis::new(&config(2)).unwrap();
        assert_eq!(synopsis.selectivity(0.2, 0.8), 0.0);
        assert_eq!(synopsis.rows(), 0);
        assert_eq!(synopsis.rebuild_count(), 0);
        assert!(synopsis.refreshed().unwrap().is_none());
    }

    /// The cached read path must cost readers zero rebuild work: no
    /// first build, no staleness-triggered rebuild — those belong to
    /// [`AttributeSynopsis::refresh`] on the write side.
    #[test]
    fn cached_read_path_never_rebuilds() {
        let synopsis = AttributeSynopsis::new(&config(2)).unwrap();
        assert!(synopsis.cached().is_none());
        assert_eq!(synopsis.selectivity_cached(0.2, 0.8), None);
        synopsis.ingest(&sample(2048, 31));
        // Still no snapshot: the cached path does not trigger the first
        // build either.
        assert!(synopsis.cached().is_none());
        assert_eq!(synopsis.rebuild_count(), 0);
        let built = synopsis.refresh().unwrap().unwrap();
        assert_eq!(synopsis.rebuild_count(), 1);
        // New rows make the snapshot stale; the cached path serves the
        // previous snapshot without rebuilding.
        synopsis.ingest(&sample(512, 32));
        let cached = synopsis.cached().unwrap();
        assert!(Arc::ptr_eq(&cached, &built));
        let sel = synopsis.selectivity_cached(0.25, 0.75).unwrap();
        assert!((0.0..=1.0).contains(&sel));
        assert_eq!(synopsis.rebuild_count(), 1);
        // NaN bounds answer the empty-range mass, not a panic or a miss.
        assert_eq!(synopsis.selectivity_cached(f64::NAN, 0.5), Some(0.0));
        // An explicit refresh catches the snapshot up.
        let fresh = synopsis.refresh().unwrap().unwrap();
        assert!(!Arc::ptr_eq(&fresh, &built));
        assert_eq!(synopsis.rebuild_count(), 2);
    }

    #[test]
    fn stale_cache_burst_rebuilds_exactly_once() {
        let synopsis = AttributeSynopsis::new(&config(2)).unwrap();
        synopsis.ingest_parallel(&sample(2048, 1));
        assert_eq!(synopsis.rebuild_count(), 0, "ingest must stay lazy");
        for i in 0..50 {
            let lo = i as f64 / 100.0;
            let s = synopsis.selectivity(lo, lo + 0.3);
            assert!((0.0..=1.0).contains(&s));
        }
        assert_eq!(synopsis.rebuild_count(), 1);
        synopsis.ingest(&[0.5]);
        for _ in 0..50 {
            synopsis.selectivity(0.1, 0.9);
        }
        assert_eq!(synopsis.rebuild_count(), 2);
    }

    #[test]
    fn sharded_estimate_matches_uniform_mass() {
        let synopsis = AttributeSynopsis::new(&config(4)).unwrap();
        synopsis.ingest_parallel(&sample(4096, 2));
        // Uniform data: selectivity of a range is its width.
        for (lo, hi) in [(0.1, 0.4), (0.25, 0.75), (0.0, 1.0)] {
            let s = synopsis.selectivity(lo, hi);
            assert!((s - (hi - lo)).abs() < 0.05, "[{lo}, {hi}] -> {s}");
        }
    }

    #[test]
    fn readers_see_the_old_snapshot_until_refresh() {
        let synopsis = AttributeSynopsis::new(&config(2)).unwrap();
        synopsis.ingest(&sample(1024, 3));
        let first = synopsis.refreshed().unwrap().unwrap();
        // Ingest marks the cache stale but the cached Arc stays valid.
        synopsis.ingest(&[0.5; 64]);
        let again = synopsis.refreshed().unwrap().unwrap();
        assert!(!Arc::ptr_eq(&first, &again), "stale cache must rebuild");
        assert_eq!(synopsis.rebuild_count(), 2);
        // Without ingests, the Arc is reused as-is.
        let third = synopsis.refreshed().unwrap().unwrap();
        assert!(Arc::ptr_eq(&again, &third));
        assert_eq!(synopsis.rebuild_count(), 2);
    }

    #[test]
    fn clone_preserves_cache_and_counters() {
        let synopsis = AttributeSynopsis::new(&config(2)).unwrap();
        synopsis.ingest(&sample(512, 4));
        let s = synopsis.selectivity(0.2, 0.7);
        let clone = synopsis.clone();
        assert_eq!(clone.rebuild_count(), 1);
        assert_eq!(clone.rows(), 512);
        assert_eq!(clone.selectivity(0.2, 0.7), s);
        assert_eq!(clone.rebuild_count(), 1, "clone reuses the cached CDF");
    }

    /// Regression for the clone/ingest epoch race: the old `Clone` cloned
    /// the shards *before* loading the epoch, so an ingest landing in
    /// between produced a clone whose epoch claimed coverage of a batch
    /// its shards never saw — and whose cache, once rebuilt at that epoch,
    /// served a stale estimate forever. With the epoch loaded first the
    /// invariant below holds across every interleaving: each single-row
    /// ingest bumps the epoch *after* the row lands, so a consistent
    /// clone's epoch never exceeds the rows its shards contain.
    #[test]
    fn clone_epoch_never_claims_unseen_batches() {
        let synopsis = Arc::new(AttributeSynopsis::new(&config(2)).unwrap());
        synopsis.ingest(&sample(256, 6));
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let writer = {
                let synopsis = Arc::clone(&synopsis);
                let stop = &stop;
                scope.spawn(move || {
                    let rows = sample(4096, 7);
                    for row in rows {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        synopsis.ingest(std::slice::from_ref(&row));
                    }
                })
            };
            for _ in 0..200 {
                let clone = synopsis.clone();
                // Batches are single rows and the epoch is bumped after
                // the push, so epoch ≤ rows at every consistent snapshot.
                let epoch = clone.ingest_epoch();
                let rows = clone.rows() as u64;
                assert!(
                    epoch <= rows,
                    "clone epoch {epoch} claims more single-row batches than \
                     its shards contain ({rows})"
                );
            }
            stop.store(true, Ordering::Release);
            writer.join().expect("writer");
        });
    }

    #[test]
    fn try_selectivity_exposes_the_fallible_path() {
        let synopsis = AttributeSynopsis::new(&config(2)).unwrap();
        assert_eq!(synopsis.try_selectivity(0.1, 0.9).unwrap(), 0.0);
        synopsis.ingest(&sample(1024, 8));
        let fallible = synopsis.try_selectivity(0.2, 0.8).unwrap();
        let infallible = synopsis.selectivity(0.2, 0.8);
        assert_eq!(fallible, infallible);
        assert!((0.0..=1.0).contains(&fallible));
    }

    #[test]
    fn incremental_refresh_matches_a_cold_rebuild() {
        // The same ingest history replayed into two synopses; one is
        // refreshed after every batch (exercising the scratch + CV cache
        // reuse), the other built cold at the end. Identical machinery ⇒
        // identical answers, bit for bit.
        let incremental = AttributeSynopsis::new(&config(1)).unwrap();
        let cold = AttributeSynopsis::new(&config(1)).unwrap();
        let data = sample(2048, 9);
        for chunk in data.chunks(128) {
            incremental.ingest(chunk);
            incremental.refreshed().unwrap().unwrap();
            cold.ingest(chunk);
        }
        assert!(incremental.rebuild_count() >= 10);
        for (lo, hi) in [(0.0, 0.3), (0.25, 0.5), (0.1, 0.95), (0.0, 1.0)] {
            assert_eq!(
                incremental.selectivity(lo, hi),
                cold.selectivity(lo, hi),
                "[{lo}, {hi}]"
            );
        }
        assert_eq!(cold.rebuild_count(), 1);
    }

    #[test]
    fn shipped_frames_are_compacted_and_lossless() {
        let synopsis = AttributeSynopsis::new(
            &SynopsisConfig::default()
                .with_expected_rows(4096)
                .with_shards(2),
        )
        .unwrap();
        synopsis.ingest_parallel(&sample(4096, 10));
        let dense = synopsis.merged_sketch().unwrap();
        let shipped = synopsis.ship(CompactionPolicy::InactiveTail).unwrap();
        assert!(
            shipped.len() * 5 <= dense.to_bytes_v1().len(),
            "shipped {} bytes vs dense {}",
            shipped.len(),
            dense.to_bytes_v1().len()
        );
        let restored = CoefficientSketch::from_bytes(&shipped).unwrap();
        let a = restored.estimate(synopsis.rule()).unwrap();
        let b = dense.estimate(synopsis.rule()).unwrap();
        for i in 0..=100 {
            let x = i as f64 / 100.0;
            assert_eq!(a.evaluate(x), b.evaluate(x), "x = {x}");
        }
        // The compacted sketch is also directly inspectable.
        let compacted = synopsis
            .compacted_sketch(CompactionPolicy::InactiveTail)
            .unwrap();
        assert!(compacted.max_level() < dense.max_level());
    }

    #[test]
    fn merged_sketch_round_trips_through_serialization() {
        let synopsis = AttributeSynopsis::new(&config(3)).unwrap();
        synopsis.ingest_parallel(&sample(900, 5));
        let sketch = synopsis.merged_sketch().unwrap();
        let restored = CoefficientSketch::from_bytes(&sketch.to_bytes()).unwrap();
        assert_eq!(restored.count(), 900);
        let a = sketch.estimate(ThresholdRule::Soft).unwrap();
        let b = restored.estimate(ThresholdRule::Soft).unwrap();
        for i in 0..=50 {
            let x = i as f64 / 50.0;
            assert_eq!(a.evaluate(x), b.evaluate(x));
        }
    }

    #[test]
    fn windowed_synopsis_forgets_retired_slices() {
        let windowed =
            AttributeSynopsis::new(&config(2).with_window(WindowPolicy::SlidingSlices(2))).unwrap();
        assert_eq!(windowed.window_policy(), WindowPolicy::SlidingSlices(2));
        // Old regime: values clustered low.
        let low: Vec<f64> = sample(1024, 11).iter().map(|u| 0.1 + 0.2 * u).collect();
        windowed.ingest_parallel(&low);
        assert!(windowed.selectivity(0.0, 0.4) > 0.8);
        assert!(windowed.advance());
        // New regime: values clustered high. After the ring retires the
        // low slice, the synopsis tracks only the recent distribution.
        let high: Vec<f64> = sample(1024, 12).iter().map(|u| 0.7 + 0.2 * u).collect();
        windowed.ingest_parallel(&high);
        windowed.advance();
        assert_eq!(windowed.rows(), 1024, "retired rows leave the count");
        assert!(windowed.selectivity(0.6, 1.0) > 0.8);
        assert!(windowed.selectivity(0.0, 0.4) < 0.1);
        // A landmark synopsis reports advance() as a no-op and refuses
        // slice shipping.
        let landmark = AttributeSynopsis::new(&config(1)).unwrap();
        assert!(!landmark.advance());
        assert!(landmark.ship_window_slice().is_err());
    }

    #[test]
    fn windowed_clone_is_independent() {
        let synopsis =
            AttributeSynopsis::new(&config(2).with_window(WindowPolicy::ExponentialDecay(0.5)))
                .unwrap();
        synopsis.ingest(&sample(512, 13));
        let clone = synopsis.clone();
        clone.advance();
        clone.ingest(&sample(128, 14));
        // λ = 0.5: the clone's merged mass is 128·1 + 512·0.5.
        assert_eq!(clone.merged_sketch().unwrap().count(), 128 + 256);
        // The original never advanced, so its slice is still whole.
        assert_eq!(synopsis.merged_sketch().unwrap().count(), 512);
    }

    #[test]
    fn nan_query_bounds_error_instead_of_lying() {
        let synopsis = AttributeSynopsis::new(&config(2)).unwrap();
        synopsis.ingest(&sample(512, 15));
        assert!(matches!(
            synopsis.try_selectivity(f64::NAN, 0.5).unwrap_err(),
            EstimatorError::InvalidQueryBounds { .. }
        ));
        assert!(matches!(
            synopsis.try_selectivity(0.5, f64::NAN).unwrap_err(),
            EstimatorError::InvalidQueryBounds { .. }
        ));
        // The infallible path answers 0 instead of panicking in debug.
        assert_eq!(synopsis.selectivity(f64::NAN, 0.5), 0.0);
        // Reversed bounds are not an error: they normalize to zero mass.
        assert_eq!(synopsis.try_selectivity(0.9, 0.1).unwrap(), 0.0);
    }

    /// Regression for the hardening sweep: a thread that panics while
    /// holding the rebuild guard and the cache write lock used to poison
    /// every later query (`panic!("synopsis cache poisoned")`). Both locks
    /// now repair themselves — the guard restarts with fresh scratch
    /// state, the cache rebuilds — so queries keep answering.
    #[test]
    fn panicked_rebuild_thread_does_not_poison_queries() {
        let synopsis = Arc::new(AttributeSynopsis::new(&config(2)).unwrap());
        synopsis.ingest(&sample(1024, 16));
        let before = synopsis.try_selectivity(0.2, 0.8).unwrap();
        assert!(before > 0.0);
        synopsis.ingest(&sample(64, 17));
        std::thread::scope(|scope| {
            let crashed = scope.spawn({
                let synopsis = Arc::clone(&synopsis);
                move || {
                    let _guard = synopsis.rebuild_guard.lock().unwrap();
                    let _cache = synopsis.cache.write().unwrap();
                    panic!("simulated rebuild crash");
                }
            });
            assert!(crashed.join().is_err(), "the rebuild thread must panic");
        });
        let after = synopsis.try_selectivity(0.2, 0.8).unwrap();
        assert!(
            (after - before).abs() < 0.05,
            "queries must keep answering after a crashed rebuild: {after} vs {before}"
        );
        assert!(synopsis.refreshed().unwrap().is_some());
    }
}
