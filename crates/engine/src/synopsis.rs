//! One attribute's synopsis: a sharded sketch plus an atomically swapped
//! cache of the refreshed (thresholded + CDF-tabulated) estimate.

use crate::sharded::ShardedIngest;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use wavedens_core::{
    CoefficientSketch, CumulativeEstimate, EstimatorError, ThresholdRule, WaveletDensityEstimate,
    DEFAULT_CDF_POINTS,
};

/// Configuration of an [`AttributeSynopsis`].
#[derive(Debug, Clone)]
pub struct SynopsisConfig {
    /// Thresholding nonlinearity applied at refresh time (default soft,
    /// the paper's STCV).
    pub rule: ThresholdRule,
    /// Rough number of rows the sketch levels are sized for (the paper's
    /// level rules need an anticipated sample size; default 4096).
    pub expected_rows: usize,
    /// Number of ingest shards (default: the machine's available
    /// parallelism).
    pub shards: usize,
    /// Resolution of the precomputed CDF table (default
    /// [`DEFAULT_CDF_POINTS`]).
    pub cdf_points: usize,
}

impl Default for SynopsisConfig {
    fn default() -> Self {
        Self {
            rule: ThresholdRule::Soft,
            expected_rows: 4096,
            shards: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            cdf_points: DEFAULT_CDF_POINTS,
        }
    }
}

impl SynopsisConfig {
    /// Sets the expected row count.
    pub fn with_expected_rows(mut self, rows: usize) -> Self {
        self.expected_rows = rows;
        self
    }

    /// Sets the shard count (clamped to at least 1).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the thresholding rule.
    pub fn with_rule(mut self, rule: ThresholdRule) -> Self {
        self.rule = rule;
        self
    }
}

/// The refreshed state of a synopsis: the thresholded density estimate
/// plus its precomputed cumulative (CDF) table. Immutable once built;
/// shared with readers via [`Arc`].
#[derive(Debug, Clone)]
pub struct RefreshedSynopsis {
    density: WaveletDensityEstimate,
    cumulative: CumulativeEstimate,
}

impl RefreshedSynopsis {
    /// Runs the model-selection pipeline (cross-validated thresholds +
    /// dense CDF construction) on an accumulation state.
    pub fn build(
        sketch: &CoefficientSketch,
        rule: ThresholdRule,
        cdf_points: usize,
    ) -> Result<Self, EstimatorError> {
        let density = sketch.estimate(rule)?;
        let cumulative = density.cumulative(cdf_points);
        Ok(Self {
            density,
            cumulative,
        })
    }

    /// The thresholded density estimate.
    pub fn density(&self) -> &WaveletDensityEstimate {
        &self.density
    }

    /// The precomputed cumulative (CDF) table.
    pub fn cumulative(&self) -> &CumulativeEstimate {
        &self.cumulative
    }

    /// Estimated selectivity `P(lo ≤ X ≤ hi)`, clamped to `[0, 1]`;
    /// O(1) from the CDF table.
    pub fn selectivity(&self, lo: f64, hi: f64) -> f64 {
        self.cumulative.range_mass(lo, hi).clamp(0.0, 1.0)
    }
}

/// A cache entry: the refreshed synopsis and the ingest epoch it covers.
#[derive(Debug, Clone)]
struct CachedSynopsis {
    epoch: u64,
    synopsis: Arc<RefreshedSynopsis>,
}

/// One attribute's synopsis: a sharded sketch filled by writers plus an
/// atomically swapped `Arc` of the latest refreshed estimate.
///
/// # Concurrency model
///
/// * **Writers** ([`ingest`](Self::ingest) /
///   [`ingest_parallel`](Self::ingest_parallel)) touch only their shard's
///   mutex and bump the ingest epoch; they never build estimates.
/// * **Readers** ([`selectivity`](Self::selectivity) /
///   [`refreshed`](Self::refreshed)) clone the cached
///   `Arc<RefreshedSynopsis>` under a briefly held read lock and answer
///   from the CDF table in O(1).
/// * When the cache is stale (the epoch moved), the **first** reader to
///   notice becomes the rebuilder: it merges the shards, runs one
///   cross-validation + CDF construction *outside* any reader-visible
///   lock, and swaps the cache `Arc`. Readers arriving during the rebuild
///   keep answering from the previous snapshot — they are never blocked
///   by a rebuild (the only blocking case is the very first build, when
///   no snapshot exists yet). A burst of stale-cache queries therefore
///   triggers exactly one rebuild, never one per query
///   ([`rebuild_count`](Self::rebuild_count) exposes the counter).
#[derive(Debug)]
pub struct AttributeSynopsis {
    shards: ShardedIngest,
    rule: ThresholdRule,
    cdf_points: usize,
    /// Bumped after every completed ingest batch; the cache is fresh when
    /// its recorded epoch matches.
    epoch: AtomicU64,
    cache: RwLock<Option<CachedSynopsis>>,
    /// Serialises rebuilds; readers `try_lock` it so at most one becomes
    /// the rebuilder while the rest serve the previous snapshot.
    rebuild_guard: Mutex<()>,
    rebuilds: AtomicUsize,
}

impl AttributeSynopsis {
    /// Creates an empty synopsis from a configuration.
    pub fn new(config: &SynopsisConfig) -> Result<Self, EstimatorError> {
        let template = CoefficientSketch::sized_for(config.expected_rows.max(16))?;
        Ok(Self {
            shards: ShardedIngest::new(&template, config.shards)?,
            rule: config.rule,
            cdf_points: config.cdf_points.max(2),
            epoch: AtomicU64::new(0),
            cache: RwLock::new(None),
            rebuild_guard: Mutex::new(()),
            rebuilds: AtomicUsize::new(0),
        })
    }

    /// The thresholding rule applied at refresh time.
    pub fn rule(&self) -> ThresholdRule {
        self.rule
    }

    /// Number of ingest shards.
    pub fn shard_count(&self) -> usize {
        self.shards.shard_count()
    }

    /// Total rows ingested so far.
    pub fn rows(&self) -> usize {
        self.shards.total_count()
    }

    /// Number of cross-validation rebuilds performed so far: increments
    /// once per stale-cache refresh, regardless of how many queries hit
    /// the stale cache.
    pub fn rebuild_count(&self) -> usize {
        self.rebuilds.load(Ordering::Relaxed)
    }

    /// Ingests one batch of attribute values into a single shard
    /// (round-robin), marking the cache stale.
    pub fn ingest(&self, values: &[f64]) {
        if values.is_empty() {
            return;
        }
        self.shards.ingest(values);
        // Bump *after* the push so a concurrent rebuild can never tag a
        // cache that misses this batch with the post-batch epoch.
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Ingests a bulk load by fanning the rows out to every shard with
    /// scoped threads ([`ShardedIngest::ingest_parallel`]).
    pub fn ingest_parallel(&self, values: &[f64]) {
        if values.is_empty() {
            return;
        }
        self.shards.ingest_parallel(values);
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Ingests from an iterator in fixed-size batches (bounded memory for
    /// lazy or unbounded sources), using the same chunk policy as
    /// [`CoefficientSketch::extend`].
    pub fn ingest_stream<I: IntoIterator<Item = f64>>(&self, values: I) {
        wavedens_core::sketch::for_each_batch(values, |chunk| self.ingest(chunk));
    }

    /// The merged accumulation state across all shards (for example to
    /// serialize and ship to another node).
    pub fn merged_sketch(&self) -> Result<CoefficientSketch, EstimatorError> {
        self.shards.merged()
    }

    /// The current refreshed synopsis, rebuilding at most once if the
    /// cache is stale; `None` when no rows have been ingested yet.
    ///
    /// Readers arriving while another thread rebuilds are served the
    /// previous snapshot (stale by exactly the in-flight batch), so the
    /// read path never waits on a cross-validation run once a first
    /// snapshot exists.
    pub fn refreshed(&self) -> Result<Option<Arc<RefreshedSynopsis>>, EstimatorError> {
        let epoch = self.epoch.load(Ordering::Acquire);
        {
            let cache = self.cache.read().expect("synopsis cache poisoned");
            if let Some(cached) = cache.as_ref() {
                if cached.epoch == epoch {
                    return Ok(Some(Arc::clone(&cached.synopsis)));
                }
            }
        }
        match self.rebuild_guard.try_lock() {
            Ok(_guard) => self.rebuild(),
            Err(std::sync::TryLockError::WouldBlock) => {
                // Another thread is rebuilding: serve the previous
                // snapshot if one exists…
                if let Some(cached) = self.cache.read().expect("synopsis cache poisoned").as_ref() {
                    return Ok(Some(Arc::clone(&cached.synopsis)));
                }
                // …otherwise this is the very first build: wait for it.
                let _guard = self.rebuild_guard.lock().expect("rebuild guard poisoned");
                self.rebuild()
            }
            Err(std::sync::TryLockError::Poisoned(err)) => {
                panic!("rebuild guard poisoned: {err}")
            }
        }
    }

    /// Rebuilds the cache if still stale. Caller must hold
    /// `rebuild_guard`.
    fn rebuild(&self) -> Result<Option<Arc<RefreshedSynopsis>>, EstimatorError> {
        let epoch = self.epoch.load(Ordering::Acquire);
        {
            let cache = self.cache.read().expect("synopsis cache poisoned");
            if let Some(cached) = cache.as_ref() {
                if cached.epoch == epoch {
                    return Ok(Some(Arc::clone(&cached.synopsis)));
                }
            }
        }
        let sketch = self.shards.merged()?;
        if sketch.is_empty() {
            return Ok(None);
        }
        let built = Arc::new(RefreshedSynopsis::build(
            &sketch,
            self.rule,
            self.cdf_points,
        )?);
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
        *self.cache.write().expect("synopsis cache poisoned") = Some(CachedSynopsis {
            epoch,
            synopsis: Arc::clone(&built),
        });
        Ok(Some(built))
    }

    /// Estimated selectivity `P(lo ≤ X ≤ hi)` from the (lazily refreshed)
    /// CDF table; 0 while no rows have been ingested.
    ///
    /// Estimation failures other than the empty-sample case indicate an
    /// internal inconsistency: they trip a debug assertion and answer 0 in
    /// release builds, mirroring the core estimator's fallback policy.
    pub fn selectivity(&self, lo: f64, hi: f64) -> f64 {
        match self.refreshed() {
            Ok(Some(synopsis)) => synopsis.selectivity(lo, hi),
            Ok(None) => 0.0,
            Err(err) => {
                debug_assert!(false, "synopsis refresh failed unexpectedly: {err}");
                0.0
            }
        }
    }
}

impl Clone for AttributeSynopsis {
    fn clone(&self) -> Self {
        Self {
            shards: self.shards.clone(),
            rule: self.rule,
            cdf_points: self.cdf_points,
            epoch: AtomicU64::new(self.epoch.load(Ordering::Acquire)),
            cache: RwLock::new(self.cache.read().expect("synopsis cache poisoned").clone()),
            rebuild_guard: Mutex::new(()),
            rebuilds: AtomicUsize::new(self.rebuild_count()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use wavedens_processes::seeded_rng;

    fn sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = seeded_rng(seed);
        (0..n).map(|_| rng.gen::<f64>()).collect()
    }

    fn config(shards: usize) -> SynopsisConfig {
        SynopsisConfig::default()
            .with_expected_rows(2048)
            .with_shards(shards)
    }

    #[test]
    fn empty_synopsis_answers_zero_without_rebuilding() {
        let synopsis = AttributeSynopsis::new(&config(2)).unwrap();
        assert_eq!(synopsis.selectivity(0.2, 0.8), 0.0);
        assert_eq!(synopsis.rows(), 0);
        assert_eq!(synopsis.rebuild_count(), 0);
        assert!(synopsis.refreshed().unwrap().is_none());
    }

    #[test]
    fn stale_cache_burst_rebuilds_exactly_once() {
        let synopsis = AttributeSynopsis::new(&config(2)).unwrap();
        synopsis.ingest_parallel(&sample(2048, 1));
        assert_eq!(synopsis.rebuild_count(), 0, "ingest must stay lazy");
        for i in 0..50 {
            let lo = i as f64 / 100.0;
            let s = synopsis.selectivity(lo, lo + 0.3);
            assert!((0.0..=1.0).contains(&s));
        }
        assert_eq!(synopsis.rebuild_count(), 1);
        synopsis.ingest(&[0.5]);
        for _ in 0..50 {
            synopsis.selectivity(0.1, 0.9);
        }
        assert_eq!(synopsis.rebuild_count(), 2);
    }

    #[test]
    fn sharded_estimate_matches_uniform_mass() {
        let synopsis = AttributeSynopsis::new(&config(4)).unwrap();
        synopsis.ingest_parallel(&sample(4096, 2));
        // Uniform data: selectivity of a range is its width.
        for (lo, hi) in [(0.1, 0.4), (0.25, 0.75), (0.0, 1.0)] {
            let s = synopsis.selectivity(lo, hi);
            assert!((s - (hi - lo)).abs() < 0.05, "[{lo}, {hi}] -> {s}");
        }
    }

    #[test]
    fn readers_see_the_old_snapshot_until_refresh() {
        let synopsis = AttributeSynopsis::new(&config(2)).unwrap();
        synopsis.ingest(&sample(1024, 3));
        let first = synopsis.refreshed().unwrap().unwrap();
        // Ingest marks the cache stale but the cached Arc stays valid.
        synopsis.ingest(&[0.5; 64]);
        let again = synopsis.refreshed().unwrap().unwrap();
        assert!(!Arc::ptr_eq(&first, &again), "stale cache must rebuild");
        assert_eq!(synopsis.rebuild_count(), 2);
        // Without ingests, the Arc is reused as-is.
        let third = synopsis.refreshed().unwrap().unwrap();
        assert!(Arc::ptr_eq(&again, &third));
        assert_eq!(synopsis.rebuild_count(), 2);
    }

    #[test]
    fn clone_preserves_cache_and_counters() {
        let synopsis = AttributeSynopsis::new(&config(2)).unwrap();
        synopsis.ingest(&sample(512, 4));
        let s = synopsis.selectivity(0.2, 0.7);
        let clone = synopsis.clone();
        assert_eq!(clone.rebuild_count(), 1);
        assert_eq!(clone.rows(), 512);
        assert_eq!(clone.selectivity(0.2, 0.7), s);
        assert_eq!(clone.rebuild_count(), 1, "clone reuses the cached CDF");
    }

    #[test]
    fn merged_sketch_round_trips_through_serialization() {
        let synopsis = AttributeSynopsis::new(&config(3)).unwrap();
        synopsis.ingest_parallel(&sample(900, 5));
        let sketch = synopsis.merged_sketch().unwrap();
        let restored = CoefficientSketch::from_bytes(&sketch.to_bytes()).unwrap();
        assert_eq!(restored.count(), 900);
        let a = sketch.estimate(ThresholdRule::Soft).unwrap();
        let b = restored.estimate(ThresholdRule::Soft).unwrap();
        for i in 0..=50 {
            let x = i as f64 / 50.0;
            assert_eq!(a.evaluate(x), b.evaluate(x));
        }
    }
}
