//! Workspace file discovery (std-only, no `walkdir`).

use std::io;
use std::path::{Path, PathBuf};

/// The directories the pass walks, relative to the workspace root. The
/// other `vendor/` shims (rand/proptest/criterion) mimic external
/// crates' APIs and are deliberately out of scope; `vendor/workpool` is
/// first-party concurrency code and is held to the same bar as
/// `crates/`.
pub const WALK_ROOTS: [&str; 5] = ["crates", "src", "tests", "examples", "vendor/workpool"];

/// Collects every `.rs` file under the walk roots, returned as
/// `(workspace-relative path with / separators, absolute path)` pairs
/// in sorted order (deterministic reports).
pub fn workspace_sources(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut files = Vec::new();
    for walk_root in WALK_ROOTS {
        let dir = root.join(walk_root);
        if dir.is_dir() {
            collect(&dir, &mut files)?;
        }
    }
    let mut out: Vec<(String, PathBuf)> = files
        .into_iter()
        .map(|absolute| {
            let relative = absolute
                .strip_prefix(root)
                .unwrap_or(&absolute)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            (relative, absolute)
        })
        .collect();
    out.sort();
    Ok(out)
}

fn collect(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // Build artifacts can nest anywhere via `CARGO_TARGET_DIR`.
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect(&path, files)?;
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}
