//! `lock-poison-recovery`: no `.lock().unwrap()` (or `.expect`) outside
//! test code.
//!
//! The engine's hardening contract (PR 6) is that a panicked writer
//! never takes the read path down with it: every lock access recovers
//! from poisoning with `unwrap_or_else(|poisoned| poisoned.into_inner())`,
//! which is sound because every critical section leaves the guarded
//! state consistent at unlock. A bare `unwrap`/`expect` on a lock
//! reintroduces the cascade.

use crate::report::Violation;
use crate::scan::{is_ident_byte, SourceFile};

/// Zero-argument guard acquisitions whose result must not be unwrapped.
const ACQUIRERS: [&str; 3] = ["lock", "read", "write"];

pub fn check(file: &SourceFile) -> Vec<Violation> {
    if file.is_test_path() {
        return Vec::new();
    }
    let bytes = file.masked.as_bytes();
    let mut violations = Vec::new();
    for acquirer in ACQUIRERS {
        for offset in file.find_ident(acquirer) {
            // Must be a zero-arg method call: `.lock()`.
            if offset == 0 || bytes[offset - 1] != b'.' {
                continue;
            }
            let mut i = offset + acquirer.len();
            if bytes.get(i) != Some(&b'(') || bytes.get(i + 1) != Some(&b')') {
                continue;
            }
            i += 2;
            // Skip whitespace (the chain may wrap to the next line).
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if bytes.get(i) != Some(&b'.') {
                continue;
            }
            let rest = &file.masked[i + 1..];
            let fatal = rest.starts_with("unwrap()")
                || (rest.starts_with("expect")
                    && rest[6..].trim_start().starts_with('(')
                    && !rest.starts_with("expect_err"));
            if !fatal {
                continue;
            }
            // `unwrap()` must itself be a full method name, not a prefix
            // of `unwrap_or_else`.
            if rest.starts_with("unwrap()") {
                let after = i + 1 + "unwrap".len();
                if after < bytes.len() && is_ident_byte(bytes[after]) {
                    continue;
                }
            }
            let line = file.line_of(offset);
            if file.is_test_line(line) {
                continue;
            }
            violations.push(Violation {
                rule: "lock-poison-recovery",
                path: file.path.clone(),
                line,
                message: format!(
                    "`.{acquirer}()` followed by unwrap/expect panics forever once a writer \
                     has poisoned the lock"
                ),
                suggestion: "recover instead: `.lock().unwrap_or_else(|poisoned| \
                             poisoned.into_inner())` (see crates/engine/src/sharded.rs)"
                    .to_string(),
            });
        }
    }
    violations
}
