//! `unsafe-confined`: `unsafe` lives only in
//! `crates/wavelets/src/kernels.rs`, and every use there is
//! SAFETY-commented.
//!
//! The AVX2 kernels are the one place the workspace accepts unsafe —
//! behind runtime feature detection, bitwise-pinned against the scalar
//! reference. Everywhere else the crate roots carry
//! `#![forbid(unsafe_code)]`; this pass is the belt to that compiler
//! braces, and additionally enforces the `// SAFETY:` discipline inside
//! the kernel module itself (the compiler checks nothing about
//! comments).

use crate::report::Violation;
use crate::scan::SourceFile;

/// The one file allowed to contain `unsafe`.
const KERNELS: &str = "crates/wavelets/src/kernels.rs";

/// How many lines above an `unsafe` token a `SAFETY` comment may sit.
const SAFETY_WINDOW: usize = 4;

pub fn check(file: &SourceFile) -> Vec<Violation> {
    let mut violations = Vec::new();
    for offset in file.find_ident("unsafe") {
        let line = file.line_of(offset);
        if file.path != KERNELS {
            violations.push(Violation {
                rule: "unsafe-confined",
                path: file.path.clone(),
                line,
                message: "`unsafe` outside the AVX2 kernel module".to_string(),
                suggestion: format!(
                    "move the unsafe kernel into {KERNELS} behind the Backend dispatch, or \
                     find a safe formulation (the lane backends vectorize without unsafe)"
                ),
            });
        } else if !file.comment_near(line, SAFETY_WINDOW, "SAFETY") {
            violations.push(Violation {
                rule: "unsafe-confined",
                path: file.path.clone(),
                line,
                message: "`unsafe` without a `// SAFETY:` comment in the preceding lines"
                    .to_string(),
                suggestion: "state why the invariants hold: `// SAFETY: <which caller \
                             guarantee or runtime check makes this sound>`"
                    .to_string(),
            });
        }
    }
    violations
}
