//! `decode-alloc-cap`: wire-decode paths must cap before they allocate.
//!
//! A decoder function sizes buffers off header fields it has just read
//! from untrusted bytes. The contract (established by
//! `CoefficientSketch::from_bytes` and `TensorSketch::from_bytes`) is
//! that every such allocation happens only after the geometry has been
//! validated against an explicit `MAX_*` cap — so a hostile frame is
//! rejected while it is still just bytes, instead of reaching the
//! allocator with a 2^60 length.
//!
//! The pass is deliberately syntactic: inside every decode function
//! (`from_bytes*`, `decode*`, `read_*`), any `with_capacity(..)` or
//! `vec![..]` whose size argument is not a compile-time constant
//! requires a `MAX_`-prefixed cap identifier somewhere in the same
//! function body. That catches the dangerous shape — "allocation sized
//! by a variable in a function that never mentions a cap" — without
//! needing dataflow.

use crate::report::Violation;
use crate::scan::{is_ident_byte, matching_brace, SourceFile};

/// Whether a function name marks a wire-decode path.
pub fn is_decoder_name(name: &str) -> bool {
    name.contains("from_bytes") || name.contains("decode") || name.starts_with("read_")
}

pub fn check(file: &SourceFile) -> Vec<Violation> {
    let mut violations = Vec::new();
    let masked = file.masked.as_bytes();
    for span in &file.fns {
        if !is_decoder_name(&span.name) || span.body.is_empty() {
            continue;
        }
        let line = file.line_of(span.header);
        if file.is_test_line(line) || file.is_test_path() {
            continue;
        }
        let body = &file.masked[span.body.clone()];
        let has_cap = !crate::scan::find_ident_in(body, "MAX_SERIALIZED_LEVEL").is_empty()
            || !crate::scan::find_ident_in(body, "MAX_TENSOR_SLOTS").is_empty()
            || body_mentions_max(body);
        for (offset, argument) in allocation_arguments(masked, span.body.clone(), file) {
            if is_constant_size(&argument) || has_cap {
                continue;
            }
            violations.push(Violation {
                rule: "decode-alloc-cap",
                path: file.path.clone(),
                line: file.line_of(offset),
                message: format!(
                    "decode path `{}` sizes an allocation from `{}` with no MAX_* cap check \
                     in sight",
                    span.name,
                    argument.trim()
                ),
                suggestion: "validate the wire-read geometry against an explicit cap \
                             (MAX_SERIALIZED_LEVEL / MAX_TENSOR_SLOTS style) before sizing \
                             any buffer off it"
                    .to_string(),
            });
        }
    }
    violations
}

/// Whether the body references any `MAX_`-prefixed identifier.
fn body_mentions_max(body: &str) -> bool {
    let bytes = body.as_bytes();
    let mut from = 0;
    while let Some(pos) = body[from..].find("MAX_") {
        let start = from + pos;
        if start == 0 || !is_ident_byte(bytes[start - 1]) {
            return true;
        }
        from = start + 1;
    }
    false
}

/// Finds `with_capacity(arg)` and `vec![arg]` allocation sites inside
/// `body`, yielding `(offset, size-argument-text)`.
fn allocation_arguments(
    masked: &[u8],
    body: std::ops::Range<usize>,
    file: &SourceFile,
) -> Vec<(usize, String)> {
    let text = &file.masked;
    let mut sites = Vec::new();
    for offset in crate::scan::find_ident_in(text, "with_capacity") {
        if !body.contains(&offset) {
            continue;
        }
        let open = offset + "with_capacity".len();
        if masked.get(open) != Some(&b'(') {
            continue;
        }
        if let Some(close) = matching_delim(masked, open, b'(', b')') {
            sites.push((offset, text[open + 1..close].to_string()));
        }
    }
    for offset in crate::scan::find_ident_in(text, "vec") {
        if !body.contains(&offset) {
            continue;
        }
        if masked.get(offset + 3) != Some(&b'!') || masked.get(offset + 4) != Some(&b'[') {
            continue;
        }
        if let Some(close) = matching_delim(masked, offset + 4, b'[', b']') {
            let inner = &text[offset + 5..close];
            // `vec![elem; len]` — the length is what gets allocated.
            let size = inner.rsplit(';').next().unwrap_or(inner);
            sites.push((offset, size.to_string()));
        }
    }
    sites
}

/// Matches an arbitrary delimiter pair (reusing the brace matcher shape).
fn matching_delim(masked: &[u8], open: usize, open_byte: u8, close_byte: u8) -> Option<usize> {
    if open_byte == b'{' {
        return matching_brace(masked, open);
    }
    let mut depth = 0;
    for (i, &b) in masked.iter().enumerate().skip(open) {
        if b == open_byte {
            depth += 1;
        } else if b == close_byte {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Whether a size argument is a compile-time constant: every identifier
/// in it is an ALL_CAPS const (or it is all literals/operators).
fn is_constant_size(argument: &str) -> bool {
    let bytes = argument.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_alphabetic() || bytes[i] == b'_' {
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            let word = &argument[start..i];
            let all_caps = word
                .chars()
                .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_');
            if !all_caps {
                return false;
            }
        } else {
            i += 1;
        }
    }
    true
}
