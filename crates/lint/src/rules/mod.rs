//! The rule registry.
//!
//! Each rule is a pure function from a scanned [`SourceFile`] to its
//! violations, plus the metadata the reporter and `--explain` need. The
//! conventions shared by every pass:
//!
//! * match on [`SourceFile::masked`] (never on raw text), so comments
//!   and string payloads can't fire a rule;
//! * code under `#[cfg(test)]`/`#[test]`, files under `tests/`, and —
//!   where the rule says so — bench code are exempt;
//! * a finding on line `L` is suppressed by a
//!   `// lint:allow(rule) justification` waiver on line `L` or `L − 1`
//!   (the waiver-syntax check separately rejects waivers with no
//!   written justification).

use crate::report::Violation;
use crate::scan::SourceFile;

mod bench_honesty;
mod decode_alloc;
mod error_doc;
mod float_cmp;
mod locks;
mod panic_decode;
mod threads;
mod unsafe_confined;
mod wallclock;

/// One registered rule.
pub struct Rule {
    /// Stable kebab-case name (used in reports, waivers and baselines).
    pub name: &'static str,
    /// One-line summary for `--list-rules`.
    pub summary: &'static str,
    /// The full explain string for `--explain`.
    pub rationale: &'static str,
    /// The pass itself.
    pub check: fn(&SourceFile) -> Vec<Violation>,
}

/// Every rule, in documentation order.
pub fn all_rules() -> &'static [Rule] {
    &[
        Rule {
            name: "float-total-cmp",
            summary: "no partial_cmp on float sort/compare keys; use total_cmp",
            rationale: "A `partial_cmp(..).unwrap()` float sort panics on NaN and a \
                        `partial_cmp`-with-fallback sort silently reorders it, corrupting the \
                        CV threshold candidate order the adaptive estimator depends on. \
                        `f64::total_cmp` is a total order (IEEE 754 totalOrder), so the sort is \
                        deterministic for every input. Replace `a.partial_cmp(&b)` with \
                        `a.total_cmp(&b)` (or sort with `f64::total_cmp`).",
            check: float_cmp::check,
        },
        Rule {
            name: "lock-poison-recovery",
            summary: "no .lock()/.read()/.write() + unwrap/expect outside tests",
            rationale: "A panicked writer poisons its Mutex/RwLock; `.lock().unwrap()` then \
                        turns every later access into a cascading panic, taking the read path \
                        down with the writer. Production code recovers instead: \
                        `.lock().unwrap_or_else(|poisoned| poisoned.into_inner())` (the pattern \
                        used across crates/engine/src/sharded.rs), because every critical \
                        section leaves the shared state consistent at unlock.",
            check: locks::check,
        },
        Rule {
            name: "unsafe-confined",
            summary: "unsafe only in wavelets/src/kernels.rs, each use SAFETY-commented",
            rationale: "All unsafe is confined to the AVX2 kernel module \
                        `crates/wavelets/src/kernels.rs` (every other crate forbids \
                        `unsafe_code` at the root), and every `unsafe` block or fn there must \
                        carry a `// SAFETY:` comment within the four preceding lines stating \
                        why the invariants hold. Elsewhere, write safe code or move the kernel \
                        into `wavelets::kernels` behind the same runtime-detection dispatch.",
            check: unsafe_confined::check,
        },
        Rule {
            name: "decode-alloc-cap",
            summary: "decode-path allocations must be capped before trusting wire lengths",
            rationale: "A decoder that passes a wire-read length straight to `with_capacity` / \
                        `vec![` lets a hostile frame allocate gigabytes before the first \
                        payload check — a remote-crash vector once synopsis gossip ships \
                        frames between nodes. Validate the geometry against an explicit cap \
                        (`MAX_SERIALIZED_LEVEL` / `MAX_TENSOR_SLOTS` style) before sizing any \
                        buffer off header fields, as `CoefficientSketch::from_bytes` does.",
            check: decode_alloc::check,
        },
        Rule {
            name: "pool-not-raw-threads",
            summary: "no std::thread::spawn/scope outside vendor/workpool, benches, tests",
            rationale: "All parallelism routes through `vendor/workpool`'s work-stealing scope \
                        so fan-outs share one pool sized to the host, panics join \
                        deterministically, and shard imbalance is handled by stealing. Raw \
                        `std::thread::spawn`/`thread::scope` fan-outs bypass all three. Use \
                        `WorkPool::global().scope(|s| s.spawn(..))`, or waive with a written \
                        justification where scoped-borrow semantics genuinely require \
                        `thread::scope`.",
            check: threads::check,
        },
        Rule {
            name: "no-wallclock-in-core",
            summary: "Instant::now/SystemTime confined to core::autotune and benches",
            rationale: "The estimation pipeline is deterministic: the same rows produce \
                        bitwise the same sketch, which the equivalence tests and the \
                        replication protocol both rely on. Wall-clock reads are confined to \
                        `core::autotune` (which times candidate chunk sizes by design) and \
                        bench code. Anything else must take time as a parameter (logical \
                        ticks, like `WindowedSketch::advance`).",
            check: wallclock::check,
        },
        Rule {
            name: "panic-free-decode",
            summary: "no unwrap/expect/panic!/offset-indexing in decoder functions",
            rationale: "Decoder functions (`from_bytes*`, `decode*`, `read_*`) parse untrusted \
                        bytes: a reachable panic is a remote crash once frames arrive over the \
                        wire. Return `EstimatorError::InvalidSerialization` instead of \
                        unwrap/expect/panic!/unreachable!, and index the buffer through \
                        checked reads (`Reader::take`-style), never by raw offset arithmetic.",
            check: panic_decode::check,
        },
        Rule {
            name: "error-enum-doc",
            summary: "every variant of a pub *Error enum carries a doc comment",
            rationale: "Error enums are the API contract of every fallible path; an \
                        undocumented variant forces callers to read the raising code to learn \
                        what they're matching on. Every variant of a public `*Error` enum \
                        documents when it is raised and what the embedded fields mean.",
            check: error_doc::check,
        },
        Rule {
            name: "bench-honesty",
            summary: "bench JSON writers must record available_parallelism",
            rationale: "Benchmark JSON artifacts (`BENCH_*.json`) are compared across PRs run \
                        on different hosts; a throughput number without the core count that \
                        produced it invites bogus comparisons (this container has 1 core — \
                        shard scaling is meaningless on it). Every bench that writes a \
                        `BENCH_*.json` must record `std::thread::available_parallelism` in it.",
            check: bench_honesty::check,
        },
    ]
}

/// Looks a rule up by name.
pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    all_rules().iter().find(|rule| rule.name == name)
}

/// Runs every rule over one scanned file and applies its waivers:
/// waived findings are dropped, malformed waivers are reported via the
/// synthetic `waiver-syntax` rule.
pub fn check_file(file: &SourceFile) -> Vec<Violation> {
    let mut violations = Vec::new();
    for rule in all_rules() {
        for violation in (rule.check)(file) {
            let waived = file.waivers.iter().any(|waiver| {
                waiver.rule == violation.rule
                    && !waiver.justification.is_empty()
                    && (waiver.line == violation.line || waiver.line + 1 == violation.line)
            });
            if !waived {
                violations.push(violation);
            }
        }
    }
    for waiver in &file.waivers {
        let known = rule_by_name(&waiver.rule).is_some();
        if !known || waiver.justification.is_empty() {
            let what = if known {
                "waiver carries no justification".to_string()
            } else {
                format!("waiver names unknown rule `{}`", waiver.rule)
            };
            violations.push(Violation {
                rule: "waiver-syntax",
                path: file.path.clone(),
                line: waiver.line,
                message: what,
                suggestion: "write `// lint:allow(<rule>) <why this use is sound>` — the \
                             justification is required"
                    .to_string(),
            });
        }
    }
    violations.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    violations
}
