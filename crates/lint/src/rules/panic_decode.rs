//! `panic-free-decode`: decoder functions parse hostile bytes without a
//! reachable panic.
//!
//! Every `from_bytes*` / `decode*` / `read_*` function is on the wire
//! path: once synopsis gossip ships frames between nodes, a panic in a
//! decoder is a remote crash. The decoder mini-fuzz (every single-bit
//! flip and truncation of valid frames) enforces this dynamically; this
//! pass enforces it statically, so a new `unwrap` cannot land and wait
//! for the fuzz corpus to reach it. Indexing by wire-derived offset
//! arithmetic (`bytes[base + 4]`) is flagged too — checked cursor reads
//! (`Reader::take`) are the sanctioned shape.

use crate::report::Violation;
use crate::rules::decode_alloc::is_decoder_name;
use crate::scan::{is_ident_byte, SourceFile};

/// Panicking constructs forbidden in decoder bodies. Each needle is an
/// identifier; `!`-macros are matched with their bang.
const PANICKY: [&str; 5] = ["unwrap", "expect", "panic", "unreachable", "todo"];

pub fn check(file: &SourceFile) -> Vec<Violation> {
    if file.is_test_path() {
        return Vec::new();
    }
    let mut violations = Vec::new();
    let masked = file.masked.as_bytes();
    for span in &file.fns {
        if !is_decoder_name(&span.name) || span.body.is_empty() {
            continue;
        }
        let header_line = file.line_of(span.header);
        if file.is_test_line(header_line) {
            continue;
        }
        for needle in PANICKY {
            for offset in crate::scan::find_ident_in(&file.masked, needle) {
                if !span.body.contains(&offset) {
                    continue;
                }
                let after = offset + needle.len();
                let is_macro = masked.get(after) == Some(&b'!');
                let is_method =
                    masked.get(after) == Some(&b'(') && offset > 0 && masked[offset - 1] == b'.';
                // `debug_assert!`-style names don't match the ident
                // search (word boundaries), and `expect_err` etc. are
                // excluded by the exact-length boundary already.
                let firing = match needle {
                    "unwrap" | "expect" => is_method,
                    _ => is_macro,
                };
                if !firing {
                    continue;
                }
                violations.push(Violation {
                    rule: "panic-free-decode",
                    path: file.path.clone(),
                    line: file.line_of(offset),
                    message: format!(
                        "decoder `{}` contains `{}{}` — a reachable panic on hostile bytes",
                        span.name,
                        needle,
                        if is_macro { "!" } else { "()" }
                    ),
                    suggestion: "return Err(EstimatorError::InvalidSerialization { .. }) \
                                 instead; decoders must fail closed, never panic"
                        .to_string(),
                });
            }
        }
        violations.extend(offset_indexing(file, span));
    }
    violations
}

/// Flags `ident[a + b]`-style indexing inside a decoder body: indexing
/// by offset arithmetic panics out of range, where a checked cursor
/// read returns `Err`.
fn offset_indexing(file: &SourceFile, span: &crate::scan::FnSpan) -> Vec<Violation> {
    let masked = file.masked.as_bytes();
    let mut violations = Vec::new();
    let mut i = span.body.start;
    while i < span.body.end {
        if masked[i] != b'[' {
            i += 1;
            continue;
        }
        // Must be indexing (preceded by an identifier or `]`/`)`), not
        // an array literal or attribute.
        let prev = (0..i).rev().find(|&p| !masked[p].is_ascii_whitespace());
        let indexing = matches!(prev.map(|p| masked[p]),
            Some(b) if is_ident_byte(b) || b == b']' || b == b')');
        if !indexing {
            i += 1;
            continue;
        }
        let mut depth = 0;
        let mut j = i;
        let mut has_arithmetic = false;
        while j < span.body.end {
            match masked[j] {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                b'+' if depth == 1 => has_arithmetic = true,
                _ => {}
            }
            j += 1;
        }
        if has_arithmetic {
            violations.push(Violation {
                rule: "panic-free-decode",
                path: file.path.clone(),
                line: file.line_of(i),
                message: format!(
                    "decoder `{}` indexes a buffer by offset arithmetic — out-of-range \
                     panics on truncated frames",
                    span.name
                ),
                suggestion: "read through a checked cursor (`Reader::take`-style) that \
                             returns Err on short buffers"
                    .to_string(),
            });
        }
        i = j.max(i + 1);
    }
    violations
}
