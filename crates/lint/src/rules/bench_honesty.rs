//! `bench-honesty`: bench JSON artifacts record the host's parallelism.
//!
//! The `BENCH_*.json` files at the repo root are the performance
//! trajectory compared across PRs — which run on hosts with different
//! core counts. A throughput series that doesn't say how many cores
//! produced it invites bogus comparisons (the 1-core CI container
//! cannot show shard scaling, and must say so). Any bench that writes
//! such a file must call `std::thread::available_parallelism` and
//! record the result.

use crate::report::Violation;
use crate::scan::SourceFile;

pub fn check(file: &SourceFile) -> Vec<Violation> {
    if !file.is_bench_path() {
        return Vec::new();
    }
    // Writers are identified on the raw text: the artifact name lives
    // inside string literals (masked out of `masked`).
    let writes_bench_json = file.raw.contains("BENCH_")
        && (!file.find_ident("write").is_empty() || file.raw.contains("fs::write"));
    if !writes_bench_json {
        return Vec::new();
    }
    if !file.find_ident("available_parallelism").is_empty() {
        return Vec::new();
    }
    vec![Violation {
        rule: "bench-honesty",
        path: file.path.clone(),
        line: 1,
        message: "bench writes a BENCH_*.json without recording available_parallelism".to_string(),
        suggestion: "record `std::thread::available_parallelism()` in the JSON so \
                     cross-host comparisons can be discounted honestly"
            .to_string(),
    }]
}
