//! `no-wallclock-in-core`: determinism contract for the pipeline.
//!
//! The same rows must produce bitwise the same sketch — the equivalence
//! tests, the incremental-refresh proofs and the replication protocol
//! all lean on it. Wall-clock reads are allowed exactly where timing
//! *is* the job: `core::autotune` (probes chunk-size candidates on real
//! ingest work) and bench code. Everything else takes time as data
//! (logical ticks, like `WindowedSketch::advance`).

use crate::report::Violation;
use crate::scan::SourceFile;

/// Non-bench files allowed to read the clock.
const ALLOWED: [&str; 1] = ["crates/core/src/autotune.rs"];

pub fn check(file: &SourceFile) -> Vec<Violation> {
    if ALLOWED.contains(&file.path.as_str()) || file.is_bench_path() || file.is_test_path() {
        return Vec::new();
    }
    let mut violations = Vec::new();
    let mut offsets = file.find_exact("Instant::now");
    offsets.extend(file.find_ident("SystemTime"));
    for offset in offsets {
        let line = file.line_of(offset);
        if file.is_test_line(line) {
            continue;
        }
        violations.push(Violation {
            rule: "no-wallclock-in-core",
            path: file.path.clone(),
            line,
            message: "wall-clock read outside core::autotune and bench code breaks the \
                      determinism contract"
                .to_string(),
            suggestion: "take time as a parameter (logical ticks / caller-supplied \
                         timestamps); only core::autotune and benches may read the clock"
                .to_string(),
        });
    }
    violations
}
