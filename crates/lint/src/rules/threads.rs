//! `pool-not-raw-threads`: parallelism goes through `vendor/workpool`.
//!
//! PR 8 built the scoped work-stealing pool precisely so fan-outs share
//! one host-sized pool, join deterministically, and re-raise the first
//! task panic instead of losing it. A raw `std::thread::spawn` or
//! `thread::scope` in library/example code bypasses all of that.
//! Benches and tests are exempt (they orchestrate threads to *measure*
//! or to *provoke* races), as is the pool's own implementation.

use crate::report::Violation;
use crate::scan::SourceFile;

const NEEDLES: [&str; 2] = ["thread::spawn", "thread::scope"];

pub fn check(file: &SourceFile) -> Vec<Violation> {
    if file.path.starts_with("vendor/workpool/") || file.is_bench_path() || file.is_test_path() {
        return Vec::new();
    }
    let mut violations = Vec::new();
    for needle in NEEDLES {
        for offset in file.find_exact(needle) {
            let line = file.line_of(offset);
            if file.is_test_line(line) {
                continue;
            }
            violations.push(Violation {
                rule: "pool-not-raw-threads",
                path: file.path.clone(),
                line,
                message: format!("raw `{needle}` bypasses the vendor/workpool executor"),
                suggestion: "route the fan-out through `workpool::WorkPool::global().scope(|s| \
                             s.spawn(..))` (or spawn_batch), or waive with a written \
                             justification if scoped-borrow semantics genuinely require \
                             `thread::scope`"
                    .to_string(),
            });
        }
    }
    violations
}
