//! `error-enum-doc`: every variant of a public `*Error` enum is
//! documented.
//!
//! Error enums are the contract of every fallible path in the API; a
//! variant with no doc comment forces callers to read the raising code
//! to learn what they matched. The pass finds `pub enum FooError {`
//! items and requires each variant to be introduced by a `///` doc
//! comment (attributes may sit between the doc and the variant).

use crate::report::Violation;
use crate::scan::{is_ident_byte, matching_brace, SourceFile};

pub fn check(file: &SourceFile) -> Vec<Violation> {
    let mut violations = Vec::new();
    let masked = file.masked.as_bytes();
    for offset in file.find_ident("enum") {
        // Enum name: next identifier.
        let mut i = offset + 4;
        while i < masked.len() && !is_ident_byte(masked[i]) {
            i += 1;
        }
        let name_start = i;
        while i < masked.len() && is_ident_byte(masked[i]) {
            i += 1;
        }
        let name = &file.masked[name_start..i];
        if !name.ends_with("Error") {
            continue;
        }
        let enum_line = file.line_of(offset);
        if file.is_test_line(enum_line) || file.is_test_path() {
            continue;
        }
        // Body braces.
        while i < masked.len() && masked[i] != b'{' {
            i += 1;
        }
        let Some(close) = matching_brace(masked, i) else {
            continue;
        };
        for variant_line in variant_lines(file, i + 1, close) {
            if !has_doc_above(file, variant_line) {
                violations.push(Violation {
                    rule: "error-enum-doc",
                    path: file.path.clone(),
                    line: variant_line,
                    message: format!("undocumented variant of `{name}`"),
                    suggestion: "add a `///` doc comment stating when the variant is raised \
                                 and what its fields mean"
                        .to_string(),
                });
            }
        }
    }
    violations
}

/// Lines on which a variant starts: depth-0 (relative to the enum
/// body) lines whose first code character begins an identifier.
fn variant_lines(file: &SourceFile, body_start: usize, body_end: usize) -> Vec<usize> {
    let masked = file.masked.as_bytes();
    let mut lines = Vec::new();
    let mut depth = 0_i32;
    let mut i = body_start;
    let mut at_line_start = true;
    while i < body_end {
        match masked[i] {
            b'{' | b'(' | b'[' => {
                depth += 1;
                at_line_start = false;
            }
            b'}' | b')' | b']' => depth -= 1,
            b'\n' => at_line_start = true,
            b'#' => at_line_start = false,
            b if b.is_ascii_whitespace() => {}
            b if is_ident_byte(b) => {
                if at_line_start && depth == 0 {
                    lines.push(file.line_of(i));
                }
                at_line_start = false;
                // Skip the whole identifier so its tail doesn't re-test.
                while i + 1 < body_end && is_ident_byte(masked[i + 1]) {
                    i += 1;
                }
            }
            _ => at_line_start = false,
        }
        i += 1;
    }
    lines
}

/// Whether the variant on `line` has a `///` doc comment directly above
/// it (skipping attribute lines).
fn has_doc_above(file: &SourceFile, line: usize) -> bool {
    let mut probe = line - 1;
    while probe > 0 {
        let doc_here = file
            .comments
            .iter()
            .any(|c| c.first_line <= probe && c.last_line >= probe && c.text.starts_with("///"));
        if doc_here {
            return true;
        }
        // Attribute lines (`#[derive..]`, `#[non_exhaustive]`) may sit
        // between the doc and the variant; anything else ends the walk.
        let raw_line = raw_line(file, probe);
        if raw_line.trim_start().starts_with("#[") {
            probe -= 1;
            continue;
        }
        return false;
    }
    false
}

/// The raw text of a 1-based line.
fn raw_line(file: &SourceFile, line: usize) -> &str {
    file.raw.lines().nth(line - 1).unwrap_or("")
}
