//! `float-total-cmp`: no `partial_cmp` in workspace code.
//!
//! The workspace sorts f64 keys in several load-bearing places — the CV
//! candidate order, quantile pivots, latency histograms — and a partial
//! order corrupts all of them the moment a NaN appears. `partial_cmp`
//! has no legitimate use here: keys that are provably NaN-free still
//! sort correctly (and faster) under `total_cmp`, and keys that aren't
//! provably NaN-free must not go through a partial order at all.

use crate::report::Violation;
use crate::scan::SourceFile;

pub fn check(file: &SourceFile) -> Vec<Violation> {
    file.find_ident("partial_cmp")
        .into_iter()
        .map(|offset| {
            let line = file.line_of(offset);
            Violation {
                rule: "float-total-cmp",
                path: file.path.clone(),
                line,
                message: "`partial_cmp` on a float key is not a total order (NaN breaks it)"
                    .to_string(),
                suggestion: "replace `a.partial_cmp(&b)…` with `a.total_cmp(&b)` (or sort \
                             with `f64::total_cmp`)"
                    .to_string(),
            }
        })
        .collect()
}
