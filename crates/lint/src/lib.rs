//! `wavedens-lint` — dependency-free workspace invariant checks.
//!
//! The workspace carries a handful of invariants that `rustc` and
//! clippy cannot express: NaN-total float ordering, lock-poison
//! recovery, `unsafe` confinement, capped decode allocations, pooled
//! (not raw) threading, wall-clock confinement, panic-free decoders,
//! documented error enums, and honest bench artifacts. This crate is a
//! small comment/string-aware scanner plus one pass per invariant,
//! runnable three ways: `cargo run -p wavedens-lint`, the root
//! integration test `tests/workspace_lints.rs`, and the CI `lint` leg.
//! See `docs/LINTS.md` for the catalogue and waiver syntax.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod report;
pub mod rules;
pub mod scan;
pub mod walk;

pub use baseline::Baseline;
pub use report::Violation;
pub use scan::SourceFile;

use std::io;
use std::path::Path;

/// Scans every workspace source file and returns all violations, sorted
/// by (path, line, rule). Waivers are already applied.
pub fn analyze_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut violations = Vec::new();
    for (relative, absolute) in walk::workspace_sources(root)? {
        let raw = std::fs::read_to_string(&absolute)?;
        let file = SourceFile::scan(&relative, &raw);
        violations.extend(rules::check_file(&file));
    }
    violations
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Ok(violations)
}
