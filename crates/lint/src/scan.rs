//! Comment/string-aware source scanning.
//!
//! The rule passes do not parse Rust — they match small, well-defined
//! token patterns. What makes that sound is the *mask*: a copy of the
//! source in which every comment and every string/char-literal body has
//! been blanked to spaces, byte for byte. Matching on the mask can never
//! fire on prose ("the old `partial_cmp` sort…" in a doc comment) or on
//! string payloads (a lint rule's own needle), while byte offsets — and
//! therefore line numbers — stay identical to the raw source.
//!
//! Alongside the mask the scanner records the things that only comments
//! can carry: `// SAFETY:` justifications and `// lint:allow(rule)`
//! waivers; and two structural indexes the rules need: the line ranges
//! of `#[cfg(test)]` / `#[test]` items, and the body span of every `fn`.

use std::ops::Range;

/// One scanned source file, ready for the rule passes.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (stable across OSes,
    /// used verbatim in reports and baselines).
    pub path: String,
    /// The raw text, untouched.
    pub raw: String,
    /// Same length as `raw`; comments and literal bodies blanked.
    pub masked: String,
    /// Byte offset of the start of each line (line numbers are 1-based).
    line_starts: Vec<usize>,
    /// Every comment, with its (1-based, inclusive) line range.
    pub comments: Vec<Comment>,
    /// Parsed `lint:allow` waivers.
    pub waivers: Vec<Waiver>,
    /// `true` for each 1-based line inside a `#[cfg(test)]`/`#[test]`
    /// item (index 0 unused).
    test_lines: Vec<bool>,
    /// Body spans of every `fn` in the file.
    pub fns: Vec<FnSpan>,
}

/// A comment (line, block or doc) with its raw text.
#[derive(Debug)]
pub struct Comment {
    /// First line of the comment (1-based).
    pub first_line: usize,
    /// Last line of the comment (1-based, inclusive).
    pub last_line: usize,
    /// Raw text including the `//` / `/*` markers.
    pub text: String,
}

/// An inline `// lint:allow(rule) justification` waiver.
#[derive(Debug)]
pub struct Waiver {
    /// Line the waiver comment sits on (1-based). It covers findings on
    /// this line and on the line directly below, so it can trail the
    /// offending expression or sit on its own line above it.
    pub line: usize,
    /// The waived rule name.
    pub rule: String,
    /// The written justification (may be empty — the waiver-syntax
    /// check rejects that).
    pub justification: String,
}

/// The span of one `fn` item.
#[derive(Debug)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Byte offset of the `fn` keyword in `masked`.
    pub header: usize,
    /// Byte range of the body, *excluding* the outer braces. Empty for
    /// bodyless declarations (trait methods).
    pub body: Range<usize>,
}

impl SourceFile {
    /// Scans `raw` into a [`SourceFile`]. `path` should be
    /// workspace-relative with `/` separators.
    pub fn scan(path: &str, raw: &str) -> SourceFile {
        let (masked, comments) = mask_source(raw);
        let line_starts = line_starts(raw);
        let mut file = SourceFile {
            path: path.to_string(),
            raw: raw.to_string(),
            masked,
            line_starts,
            comments,
            waivers: Vec::new(),
            test_lines: Vec::new(),
            fns: Vec::new(),
        };
        file.waivers = parse_waivers(&file.comments);
        file.test_lines = mark_test_lines(&file);
        file.fns = find_fns(&file.masked);
        file
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Number of lines in the file.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// Whether a (1-based) line sits inside a `#[cfg(test)]`/`#[test]`
    /// item.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines.get(line).copied().unwrap_or(false)
    }

    /// Whether the file as a whole is test code: an integration-test
    /// file under a `tests/` directory.
    pub fn is_test_path(&self) -> bool {
        self.path.starts_with("tests/") || self.path.contains("/tests/")
    }

    /// Whether the file is bench code: under a `benches/` directory or
    /// anywhere in the bench crate.
    pub fn is_bench_path(&self) -> bool {
        self.path.contains("/benches/") || self.path.starts_with("crates/bench/")
    }

    /// Whether a comment whose line range intersects
    /// `[line.saturating_sub(back), line]` contains `needle`. Consecutive
    /// `//` lines form one logical block: if any line of the block lands
    /// in the window, the whole block's text counts — so a multi-line
    /// `// SAFETY:` paragraph is found even when only its tail is within
    /// `back` lines.
    pub fn comment_near(&self, line: usize, back: usize, needle: &str) -> bool {
        let first = line.saturating_sub(back);
        for (idx, comment) in self.comments.iter().enumerate() {
            if comment.last_line < first || comment.first_line > line {
                continue;
            }
            if comment.text.contains(needle) {
                return true;
            }
            // Walk up through directly adjacent comment lines (the rest
            // of this block, above the window).
            let mut j = idx;
            while j > 0 && self.comments[j - 1].last_line + 1 == self.comments[j].first_line {
                j -= 1;
                if self.comments[j].text.contains(needle) {
                    return true;
                }
            }
        }
        false
    }

    /// All byte offsets in `masked` at which `ident` occurs as a whole
    /// identifier (not as a prefix/suffix of a longer one).
    pub fn find_ident(&self, ident: &str) -> Vec<usize> {
        find_ident_in(&self.masked, ident)
    }

    /// All byte offsets in `masked` at which the exact substring occurs
    /// (no word-boundary requirement — for qualified paths like
    /// `thread::spawn`).
    pub fn find_exact(&self, needle: &str) -> Vec<usize> {
        let mut out = Vec::new();
        let mut from = 0;
        while let Some(pos) = self.masked[from..].find(needle) {
            out.push(from + pos);
            from += pos + needle.len();
        }
        out
    }
}

/// Whether `byte` can be part of an identifier.
pub fn is_ident_byte(byte: u8) -> bool {
    byte.is_ascii_alphanumeric() || byte == b'_'
}

/// Word-boundary substring search in arbitrary text.
pub fn find_ident_in(text: &str, ident: &str) -> Vec<usize> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = text[from..].find(ident) {
        let start = from + pos;
        let end = start + ident.len();
        let left_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let right_ok = end == bytes.len() || !is_ident_byte(bytes[end]);
        if left_ok && right_ok {
            out.push(start);
        }
        from = start + 1;
    }
    out
}

/// Byte offsets of every line start.
fn line_starts(raw: &str) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, b) in raw.bytes().enumerate() {
        if b == b'\n' && i + 1 < raw.len() {
            starts.push(i + 1);
        }
    }
    starts
}

/// Blanks comments and literal bodies to spaces (newlines kept, so byte
/// offsets and line numbers survive), collecting the comments.
fn mask_source(raw: &str) -> (String, Vec<Comment>) {
    let bytes = raw.as_bytes();
    let mut masked = bytes.to_vec();
    let mut comments = Vec::new();
    let mut line = 1_usize;
    let mut i = 0;

    // Blanks `range` in the mask, preserving newlines; counts the
    // newlines crossed so the caller can keep its line counter.
    fn blank(masked: &mut [u8], range: Range<usize>) -> usize {
        let mut newlines = 0;
        for slot in &mut masked[range] {
            if *slot == b'\n' {
                newlines += 1;
            } else {
                *slot = b' ';
            }
        }
        newlines
    }

    while i < bytes.len() {
        let b = bytes[i];
        // Fast path: consume a whole identifier/number run, then check
        // whether it was a raw/byte string prefix. Jumping over the run
        // prevents the `r` inside `for` (say) from being mistaken for a
        // raw-string sigil.
        if is_ident_byte(b) {
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            let word = &raw[start..i];
            let next = bytes.get(i).copied();
            let raw_prefix =
                (word == "r" || word == "br") && (next == Some(b'"') || next == Some(b'#'));
            if raw_prefix {
                if let Some(end) = raw_string_end(bytes, i) {
                    line += blank(&mut masked, i..end);
                    i = end;
                }
                continue;
            }
            if word == "b" && next == Some(b'"') {
                let end = cooked_string_end(bytes, i);
                line += blank(&mut masked, i + 1..end.saturating_sub(1).max(i + 1));
                i = end;
                continue;
            }
            if word == "b" && next == Some(b'\'') {
                if let Some(end) = char_literal_end(bytes, i + 1) {
                    line += blank(&mut masked, i + 2..end - 1);
                    i = end;
                }
                continue;
            }
            continue;
        }
        match b {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                comments.push(Comment {
                    first_line: line,
                    last_line: line,
                    text: raw[start..i].to_string(),
                });
                blank(&mut masked, start..i);
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let first_line = line;
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                comments.push(Comment {
                    first_line,
                    last_line: line,
                    text: raw[start..i].to_string(),
                });
                blank(&mut masked, start..i);
            }
            b'"' => {
                let end = cooked_string_end(bytes, i);
                line += blank(&mut masked, i + 1..end.saturating_sub(1).max(i + 1));
                i = end;
            }
            b'\'' => {
                // Char literal or lifetime. A char literal closes with a
                // `'` within a few bytes; a lifetime (`'env`, `'static`)
                // does not.
                if let Some(end) = char_literal_end(bytes, i) {
                    blank(&mut masked, i + 1..end - 1);
                    i = end;
                } else {
                    i += 1;
                }
            }
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    // The mask only ever rewrites ASCII bytes to spaces, so it is still
    // valid UTF-8.
    let masked = String::from_utf8(masked).expect("mask preserves UTF-8");
    (masked, comments)
}

/// End (exclusive) of a cooked string whose opening `"` is at `open`.
fn cooked_string_end(bytes: &[u8], open: usize) -> usize {
    let mut i = open + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    bytes.len()
}

/// End (exclusive) of a raw string whose hashes start at `from` (the
/// byte right after the `r`/`br` sigil). Returns `None` if `from` does
/// not actually open a raw string.
fn raw_string_end(bytes: &[u8], from: usize) -> Option<usize> {
    let mut hashes = 0;
    let mut i = from;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return None;
    }
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let tail = &bytes[i + 1..];
            if tail.len() >= hashes && tail[..hashes].iter().all(|&h| h == b'#') {
                return Some(i + 1 + hashes);
            }
        }
        i += 1;
    }
    Some(bytes.len())
}

/// End (exclusive) of a char literal whose opening `'` is at `open`, or
/// `None` when the quote starts a lifetime instead.
fn char_literal_end(bytes: &[u8], open: usize) -> Option<usize> {
    match bytes.get(open + 1)? {
        b'\\' => {
            // Escape: scan to the closing quote (handles `'\n'`, `'\''`,
            // `'\u{1F600}'`).
            let mut i = open + 2;
            while i < bytes.len() && i < open + 12 {
                if bytes[i] == b'\'' {
                    return Some(i + 1);
                }
                i += 1;
            }
            None
        }
        _ => {
            // `'x'` (possibly multi-byte): a closing quote within the
            // next 5 bytes makes it a literal; otherwise it's a
            // lifetime.
            let mut i = open + 2;
            while i < bytes.len() && i <= open + 5 {
                if bytes[i] == b'\'' {
                    return Some(i + 1);
                }
                if !(128..=255).contains(&bytes[i]) && i > open + 2 {
                    break;
                }
                i += 1;
            }
            None
        }
    }
}

/// Parses `lint:allow(rule) justification` waivers out of the comments.
fn parse_waivers(comments: &[Comment]) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for comment in comments {
        let text = comment
            .text
            .trim_start_matches('/')
            .trim_start_matches('!')
            .trim_start();
        let Some(rest) = text.strip_prefix("lint:allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            waivers.push(Waiver {
                line: comment.first_line,
                rule: String::new(),
                justification: String::new(),
            });
            continue;
        };
        let rules = &rest[..close];
        let justification = rest[close + 1..].trim().to_string();
        for rule in rules.split(',') {
            waivers.push(Waiver {
                line: comment.first_line,
                rule: rule.trim().to_string(),
                justification: justification.clone(),
            });
        }
    }
    waivers
}

/// Marks every line covered by a `#[cfg(test)]` or `#[test]` item.
fn mark_test_lines(file: &SourceFile) -> Vec<bool> {
    let mut test = vec![false; file.line_count() + 1];
    let masked = file.masked.as_bytes();
    for needle in ["#[cfg(test)]", "#[test]"] {
        for start in file.find_exact(needle) {
            let attr_end = start + needle.len();
            // The attribute covers the item that follows: everything up
            // to the matching `}` of the item's first block, or the
            // first `;` for a bodyless item (`mod tests;`).
            let mut i = attr_end;
            let mut open = None;
            while i < masked.len() {
                match masked[i] {
                    b'{' => {
                        open = Some(i);
                        break;
                    }
                    b';' => break,
                    _ => i += 1,
                }
            }
            let end = match open {
                Some(brace) => matching_brace(masked, brace).unwrap_or(masked.len() - 1),
                None => i.min(masked.len().saturating_sub(1)),
            };
            let first = file.line_of(start);
            let last = file.line_of(end);
            for flag in test
                .iter_mut()
                .take(last.min(file.line_count()) + 1)
                .skip(first)
            {
                *flag = true;
            }
        }
    }
    test
}

/// Offset of the `}` matching the `{` at `open` (in masked text, so
/// braces in strings/comments don't confuse the count).
pub fn matching_brace(masked: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0;
    for (i, &b) in masked.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Finds every `fn` item and its body span.
fn find_fns(masked: &str) -> Vec<FnSpan> {
    let bytes = masked.as_bytes();
    let mut fns = Vec::new();
    for header in find_ident_in(masked, "fn") {
        // Function name: the next identifier run.
        let mut i = header + 2;
        while i < bytes.len() && !is_ident_byte(bytes[i]) {
            // Anonymous `fn(..)` pointer types have `(` before any
            // identifier — not an item.
            if bytes[i] == b'(' {
                break;
            }
            i += 1;
        }
        let name_start = i;
        while i < bytes.len() && is_ident_byte(bytes[i]) {
            i += 1;
        }
        if i == name_start {
            continue;
        }
        let name = masked[name_start..i].to_string();
        // Body: first `{` before any top-level `;` (a `;` first means a
        // bodyless declaration).
        let mut body = 0..0;
        while i < bytes.len() {
            match bytes[i] {
                b'{' => {
                    if let Some(close) = matching_brace(bytes, i) {
                        body = i + 1..close;
                    }
                    break;
                }
                b';' => break,
                _ => i += 1,
            }
        }
        fns.push(FnSpan { name, header, body });
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_blanks_comments_and_strings_but_keeps_offsets() {
        let src = "let x = \"partial_cmp\"; // partial_cmp here\nlet y = 1;\n";
        let file = SourceFile::scan("demo.rs", src);
        assert_eq!(file.raw.len(), file.masked.len());
        assert!(file.find_ident("partial_cmp").is_empty());
        assert_eq!(file.find_ident("x").len(), 1);
        assert_eq!(file.comments.len(), 1);
        assert!(file.comments[0].text.contains("partial_cmp"));
    }

    #[test]
    fn raw_strings_and_char_literals_are_masked_lifetimes_are_not() {
        let src = "let s = r#\"unsafe { } \"#; let c = '{'; fn f<'a>(x: &'a str) {}\n";
        let file = SourceFile::scan("demo.rs", src);
        assert!(file.find_ident("unsafe").is_empty());
        // The masked `{` of the char literal must not unbalance braces:
        // the fn body is still found.
        assert_eq!(file.fns.len(), 1);
        assert_eq!(file.fns[0].name, "f");
    }

    #[test]
    fn nested_block_comments_mask_fully() {
        let src = "/* outer /* inner unsafe */ still comment */ let a = 1;\n";
        let file = SourceFile::scan("demo.rs", src);
        assert!(file.find_ident("unsafe").is_empty());
        assert_eq!(file.find_ident("a").len(), 1);
    }

    #[test]
    fn test_regions_cover_cfg_test_modules_and_test_fns() {
        let src = "fn prod() { lock(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn helper() { lock(); }\n}\n";
        let file = SourceFile::scan("demo.rs", src);
        assert!(!file.is_test_line(1));
        assert!(file.is_test_line(2));
        assert!(file.is_test_line(4));
    }

    #[test]
    fn waivers_parse_rule_and_justification() {
        let src = "// lint:allow(pool-not-raw-threads) scoped borrows need it\nlet x = 1;\n";
        let file = SourceFile::scan("demo.rs", src);
        assert_eq!(file.waivers.len(), 1);
        assert_eq!(file.waivers[0].rule, "pool-not-raw-threads");
        assert_eq!(file.waivers[0].justification, "scoped borrows need it");
        assert_eq!(file.waivers[0].line, 1);
    }

    #[test]
    fn fn_spans_have_names_and_bodies() {
        let src = "pub fn from_bytes(b: &[u8]) -> R {\n    inner();\n}\nfn decl();\n";
        let file = SourceFile::scan("demo.rs", src);
        assert_eq!(file.fns.len(), 2);
        assert_eq!(file.fns[0].name, "from_bytes");
        assert!(file.masked[file.fns[0].body.clone()].contains("inner"));
        assert_eq!(file.fns[1].name, "decl");
        assert!(file.fns[1].body.is_empty());
    }

    #[test]
    fn line_of_maps_offsets() {
        let src = "a\nbb\nccc\n";
        let file = SourceFile::scan("demo.rs", src);
        assert_eq!(file.line_of(0), 1);
        assert_eq!(file.line_of(2), 2);
        assert_eq!(file.line_of(5), 3);
        assert_eq!(file.line_count(), 3);
    }

    #[test]
    fn comment_near_sees_whole_comment_blocks() {
        // "SAFETY" sits on line 1, but the comment block's tail (line 3)
        // is within 4 lines of the item on line 6.
        let src = "// SAFETY: three\n// lines of\n// justification.\n\
                   #[attr_one]\n#[attr_two]\nfn item() {}\n\nfn far() {}\n";
        let file = SourceFile::scan("demo.rs", src);
        assert!(file.comment_near(6, 4, "SAFETY"));
        // A block entirely outside the window still doesn't count.
        assert!(!file.comment_near(8, 4, "SAFETY"));
    }
}
