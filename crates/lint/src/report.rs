//! Violation type and rendering.

use std::fmt;

/// One finding of one rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The rule that fired.
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// What is wrong, concretely.
    pub message: String,
    /// The `--fix`-style suggestion: what to write instead.
    pub suggestion: String,
}

impl Violation {
    /// The stable `rule path:line` key used by the baseline file.
    pub fn baseline_key(&self) -> String {
        format!("{} {}:{}", self.rule, self.path, self.line)
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Renders a report: one line per violation plus its suggestion.
pub fn render(violations: &[Violation], suggestions: bool) -> String {
    let mut out = String::new();
    for violation in violations {
        out.push_str(&violation.to_string());
        out.push('\n');
        if suggestions && !violation.suggestion.is_empty() {
            out.push_str("    fix: ");
            out.push_str(&violation.suggestion);
            out.push('\n');
        }
    }
    out
}
