//! The checked-in violation baseline.
//!
//! The baseline makes the pass adoptable incrementally: pre-existing
//! violations are listed in `lint-baseline.txt` and tolerated (reported
//! as "baselined", exit code 0), while anything *not* listed fails the
//! run — so the set can only shrink. `--write-baseline` regenerates the
//! file; `--deny-baseline-growth` additionally fails on *stale* entries
//! (listed violations that no longer fire), forcing the burn-down to be
//! recorded. The tree's baseline is empty and must stay that way.

use crate::report::Violation;
use std::collections::BTreeSet;
use std::io;
use std::path::Path;

/// The parsed baseline: a set of `rule path:line` keys.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: BTreeSet<String>,
}

impl Baseline {
    /// Loads the baseline file; a missing file is an empty baseline.
    pub fn load(path: &Path) -> io::Result<Baseline> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) if err.kind() == io::ErrorKind::NotFound => String::new(),
            Err(err) => return Err(err),
        };
        Ok(Self::parse(&text))
    }

    /// Parses baseline text: one `rule path:line` key per line, `#`
    /// comments and blank lines ignored.
    pub fn parse(text: &str) -> Baseline {
        let entries = text
            .lines()
            .map(str::trim)
            .filter(|line| !line.is_empty() && !line.starts_with('#'))
            .map(str::to_string)
            .collect();
        Baseline { entries }
    }

    /// Whether a violation is tolerated by the baseline.
    pub fn contains(&self, violation: &Violation) -> bool {
        self.entries.contains(&violation.baseline_key())
    }

    /// Number of baselined entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the baseline is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries that no longer correspond to any current violation —
    /// fixed findings whose baseline lines should be deleted.
    pub fn stale_entries(&self, current: &[Violation]) -> Vec<String> {
        let live: BTreeSet<String> = current.iter().map(Violation::baseline_key).collect();
        self.entries.difference(&live).cloned().collect()
    }

    /// Serializes a violation set as a fresh baseline file.
    pub fn render(violations: &[Violation]) -> String {
        let mut out = String::from(
            "# wavedens-lint baseline — tolerated pre-existing violations.\n\
             # One `rule path:line` key per line. Regenerate with\n\
             # `cargo run -p wavedens-lint -- --write-baseline`; the goal is an\n\
             # empty file (see docs/LINTS.md).\n",
        );
        let keys: BTreeSet<String> = violations.iter().map(Violation::baseline_key).collect();
        for key in keys {
            out.push_str(&key);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(rule: &'static str, path: &str, line: usize) -> Violation {
        Violation {
            rule,
            path: path.to_string(),
            line,
            message: String::new(),
            suggestion: String::new(),
        }
    }

    #[test]
    fn parse_tolerates_comments_and_blanks() {
        let baseline = Baseline::parse("# header\n\nfloat-total-cmp a.rs:3\n");
        assert_eq!(baseline.len(), 1);
        assert!(baseline.contains(&violation("float-total-cmp", "a.rs", 3)));
        assert!(!baseline.contains(&violation("float-total-cmp", "a.rs", 4)));
    }

    #[test]
    fn stale_entries_are_the_fixed_ones() {
        let baseline = Baseline::parse("r a.rs:1\nr b.rs:2\n");
        let current = vec![violation("r", "a.rs", 1)];
        assert_eq!(
            baseline.stale_entries(&current),
            vec!["r b.rs:2".to_string()]
        );
    }

    #[test]
    fn render_roundtrips() {
        let violations = vec![violation("r", "a.rs", 1), violation("q", "b.rs", 9)];
        let reparsed = Baseline::parse(&Baseline::render(&violations));
        assert!(violations.iter().all(|v| reparsed.contains(v)));
        assert_eq!(reparsed.len(), 2);
    }
}
