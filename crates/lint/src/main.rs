//! CLI for the workspace lint pass.
//!
//! ```text
//! cargo run -p wavedens-lint                       # report, exit 1 on new violations
//! cargo run -p wavedens-lint -- --write-baseline   # regenerate lint-baseline.txt
//! cargo run -p wavedens-lint -- --deny-baseline-growth  # CI mode: stale entries also fail
//! cargo run -p wavedens-lint -- --list-rules       # one line per rule
//! cargo run -p wavedens-lint -- --explain RULE     # full rationale for one rule
//! ```
//!
//! Exit codes: 0 clean (or fully baselined), 1 new violations (or stale
//! baseline under `--deny-baseline-growth`), 2 usage / IO error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use wavedens_lint::{analyze_workspace, baseline::Baseline, report, rules};

struct Options {
    root: PathBuf,
    write_baseline: bool,
    deny_baseline_growth: bool,
    list_rules: bool,
    explain: Option<String>,
}

fn usage() -> &'static str {
    "usage: wavedens-lint [--root DIR] [--write-baseline] [--deny-baseline-growth]\n\
     \u{20}                    [--list-rules] [--explain RULE]"
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        // The binary lives at crates/lint; the workspace root is two up.
        root: PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")),
        write_baseline: false,
        deny_baseline_growth: false,
        list_rules: false,
        explain: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let dir = args.next().ok_or("--root requires a directory")?;
                options.root = PathBuf::from(dir);
            }
            "--write-baseline" => options.write_baseline = true,
            "--deny-baseline-growth" => options.deny_baseline_growth = true,
            "--list-rules" => options.list_rules = true,
            "--explain" => {
                let rule = args.next().ok_or("--explain requires a rule name")?;
                options.explain = Some(rule);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };

    if options.list_rules {
        for rule in rules::all_rules() {
            println!("{:<22} {}", rule.name, rule.summary);
        }
        return ExitCode::SUCCESS;
    }
    if let Some(name) = &options.explain {
        return match rules::rule_by_name(name) {
            Some(rule) => {
                println!("{} — {}\n\n{}", rule.name, rule.summary, rule.rationale);
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown rule `{name}`; try --list-rules");
                ExitCode::from(2)
            }
        };
    }

    let violations = match analyze_workspace(&options.root) {
        Ok(violations) => violations,
        Err(err) => {
            eprintln!(
                "wavedens-lint: failed to scan {}: {err}",
                options.root.display()
            );
            return ExitCode::from(2);
        }
    };
    let baseline_path = options.root.join("lint-baseline.txt");

    if options.write_baseline {
        let rendered = Baseline::render(&violations);
        if let Err(err) = std::fs::write(&baseline_path, rendered) {
            eprintln!(
                "wavedens-lint: cannot write {}: {err}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
        println!(
            "wrote {} with {} entr{}",
            baseline_path.display(),
            violations.len(),
            if violations.len() == 1 { "y" } else { "ies" }
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match Baseline::load(&baseline_path) {
        Ok(baseline) => baseline,
        Err(err) => {
            eprintln!(
                "wavedens-lint: cannot read {}: {err}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
    };

    let (baselined, fresh): (Vec<_>, Vec<_>) = violations
        .iter()
        .cloned()
        .partition(|v| baseline.contains(v));

    if !fresh.is_empty() {
        print!("{}", report::render(&fresh, true));
        println!(
            "\nwavedens-lint: {} violation{} ({} baselined). Run `cargo run -p \
             wavedens-lint -- --explain RULE` for rationale, or waive a line with \
             `// lint:allow(RULE) justification`.",
            fresh.len(),
            if fresh.len() == 1 { "" } else { "s" },
            baselined.len()
        );
        return ExitCode::FAILURE;
    }

    let stale = baseline.stale_entries(&violations);
    if options.deny_baseline_growth && !stale.is_empty() {
        for entry in &stale {
            println!("stale baseline entry (violation fixed): {entry}");
        }
        println!(
            "\nwavedens-lint: baseline has {} stale entr{} — rerun with --write-baseline \
             to record the burn-down.",
            stale.len(),
            if stale.len() == 1 { "y" } else { "ies" }
        );
        return ExitCode::FAILURE;
    }

    println!(
        "wavedens-lint: clean ({} baselined, {} rules, {} stale)",
        baselined.len(),
        rules::all_rules().len(),
        stale.len()
    );
    ExitCode::SUCCESS
}
