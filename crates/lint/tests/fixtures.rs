//! Per-rule fixtures: for every rule, one snippet that fires it and one
//! clean counterpart, scanned in memory (no filesystem). These pin the
//! firing conditions — a rule that silently stops matching its own
//! target pattern fails here, not in a production diff six PRs later.

use wavedens_lint::rules::check_file;
use wavedens_lint::{SourceFile, Violation};

fn violations(path: &str, source: &str) -> Vec<Violation> {
    check_file(&SourceFile::scan(path, source))
}

fn fired(path: &str, source: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = violations(path, source)
        .into_iter()
        .map(|violation| violation.rule)
        .collect();
    rules.dedup();
    rules
}

#[test]
fn float_total_cmp_fires_and_total_cmp_is_clean() {
    let firing = "fn rank(a: f64, b: f64) -> std::cmp::Ordering { a.partial_cmp(&b).unwrap() }\n";
    assert_eq!(fired("crates/demo/src/lib.rs", firing), ["float-total-cmp"]);

    let clean = "fn rank(a: f64, b: f64) -> std::cmp::Ordering { a.total_cmp(&b) }\n";
    assert_eq!(fired("crates/demo/src/lib.rs", clean), [""; 0]);
}

#[test]
fn float_total_cmp_ignores_comments_and_strings() {
    let masked = "// partial_cmp is banned\nfn f() { let s = \"partial_cmp\"; }\n";
    assert_eq!(fired("crates/demo/src/lib.rs", masked), [""; 0]);
}

#[test]
fn lock_poison_recovery_fires_on_unwrap_and_expect() {
    let unwrap = "fn f(m: &std::sync::Mutex<u32>) -> u32 { *m.lock().unwrap() }\n";
    assert_eq!(
        fired("crates/demo/src/lib.rs", unwrap),
        ["lock-poison-recovery"]
    );

    let expect = "fn f(m: &std::sync::RwLock<u32>) -> u32 { *m.read().expect(\"lock\") }\n";
    assert_eq!(
        fired("crates/demo/src/lib.rs", expect),
        ["lock-poison-recovery"]
    );

    // The chain may wrap across lines and still fires.
    let wrapped = "fn f(m: &std::sync::Mutex<u32>) -> u32 {\n    *m.lock()\n        .unwrap()\n}\n";
    assert_eq!(
        fired("crates/demo/src/lib.rs", wrapped),
        ["lock-poison-recovery"]
    );
}

#[test]
fn lock_poison_recovery_accepts_recovery_and_test_code() {
    let recovered =
        "fn f(m: &std::sync::Mutex<u32>) -> u32 { *m.lock().unwrap_or_else(|p| p.into_inner()) }\n";
    assert_eq!(fired("crates/demo/src/lib.rs", recovered), [""; 0]);

    let in_test = "#[cfg(test)]\nmod tests {\n    fn f(m: &std::sync::Mutex<u32>) -> u32 { *m.lock().unwrap() }\n}\n";
    assert_eq!(fired("crates/demo/src/lib.rs", in_test), [""; 0]);

    let test_path = "fn f(m: &std::sync::Mutex<u32>) -> u32 { *m.lock().unwrap() }\n";
    assert_eq!(fired("tests/demo.rs", test_path), [""; 0]);
}

#[test]
fn unsafe_confined_fires_outside_the_kernel_module() {
    let firing = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    assert_eq!(fired("crates/demo/src/lib.rs", firing), ["unsafe-confined"]);
}

#[test]
fn unsafe_confined_requires_safety_comments_inside_it() {
    let uncommented = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    assert_eq!(
        fired("crates/wavelets/src/kernels.rs", uncommented),
        ["unsafe-confined"]
    );

    let commented = "// SAFETY: caller guarantees p is valid for reads.\n\
                     fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    assert_eq!(fired("crates/wavelets/src/kernels.rs", commented), [""; 0]);

    // A multi-line SAFETY paragraph above attributes still counts even
    // when only its tail is within the window.
    let block = "// SAFETY: a longer justification that\n// wraps over\n// three lines.\n\
                 #[inline]\n#[cold]\nunsafe fn g() {}\n";
    assert_eq!(fired("crates/wavelets/src/kernels.rs", block), [""; 0]);
}

#[test]
fn decode_alloc_cap_fires_on_uncapped_wire_sized_allocations() {
    let firing = "fn from_bytes(bytes: &[u8]) -> Vec<u8> {\n\
                  \x20   let n = bytes.len();\n\
                  \x20   Vec::with_capacity(n)\n}\n";
    assert_eq!(
        fired("crates/demo/src/lib.rs", firing),
        ["decode-alloc-cap"]
    );

    let vec_macro = "fn decode_frame(bytes: &[u8]) -> Vec<u8> {\n\
                     \x20   let n = bytes.len();\n\
                     \x20   vec![0u8; n]\n}\n";
    assert_eq!(
        fired("crates/demo/src/lib.rs", vec_macro),
        ["decode-alloc-cap"]
    );
}

#[test]
fn decode_alloc_cap_accepts_capped_or_constant_sizes() {
    let capped = "fn from_bytes(bytes: &[u8]) -> Vec<u8> {\n\
                  \x20   let n = bytes.len();\n\
                  \x20   if n > MAX_FRAME_BYTES { return Vec::new(); }\n\
                  \x20   Vec::with_capacity(n)\n}\n";
    assert_eq!(fired("crates/demo/src/lib.rs", capped), [""; 0]);

    let constant =
        "fn from_bytes(_bytes: &[u8]) -> Vec<u8> { Vec::with_capacity(HEADER_LEN * 2) }\n";
    assert_eq!(fired("crates/demo/src/lib.rs", constant), [""; 0]);

    // Non-decoder functions may size buffers freely.
    let not_decoder = "fn resample(n: usize) -> Vec<u8> { Vec::with_capacity(n) }\n";
    assert_eq!(fired("crates/demo/src/lib.rs", not_decoder), [""; 0]);
}

#[test]
fn pool_not_raw_threads_fires_outside_pool_bench_test() {
    let spawn = "fn f() { std::thread::spawn(|| {}); }\n";
    assert_eq!(
        fired("crates/demo/src/lib.rs", spawn),
        ["pool-not-raw-threads"]
    );

    let scope = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n";
    assert_eq!(fired("examples/demo.rs", scope), ["pool-not-raw-threads"]);
}

#[test]
fn pool_not_raw_threads_exempts_pool_bench_and_tests() {
    let src = "fn f() { std::thread::spawn(|| {}); }\n";
    assert_eq!(fired("vendor/workpool/src/lib.rs", src), [""; 0]);
    assert_eq!(fired("crates/bench/benches/demo.rs", src), [""; 0]);
    assert_eq!(fired("tests/demo.rs", src), [""; 0]);
}

#[test]
fn no_wallclock_in_core_fires_outside_autotune() {
    let instant = "fn f() -> std::time::Instant { std::time::Instant::now() }\n";
    assert_eq!(
        fired("crates/engine/src/lib.rs", instant),
        ["no-wallclock-in-core"]
    );

    let systemtime = "fn f() -> SystemTime { SystemTime::now() }\n";
    assert_eq!(
        fired("crates/core/src/sketch.rs", systemtime),
        ["no-wallclock-in-core"]
    );
}

#[test]
fn no_wallclock_in_core_allows_autotune_and_benches() {
    let src = "fn f() -> std::time::Instant { std::time::Instant::now() }\n";
    assert_eq!(fired("crates/core/src/autotune.rs", src), [""; 0]);
    assert_eq!(fired("crates/bench/benches/demo.rs", src), [""; 0]);
}

#[test]
fn panic_free_decode_fires_on_panicky_decoders() {
    let unwrap = "fn decode_frame(bytes: &[u8]) -> u8 { bytes.iter().next().unwrap() }\n";
    assert_eq!(
        fired("crates/demo/src/lib.rs", unwrap),
        ["panic-free-decode"]
    );

    let macro_panic = "fn from_bytes(bytes: &[u8]) -> u8 { panic!(\"bad frame\") }\n";
    assert_eq!(
        fired("crates/demo/src/lib.rs", macro_panic),
        ["panic-free-decode"]
    );

    let indexing = "fn read_header(bytes: &[u8], base: usize) -> u8 { bytes[base + 4] }\n";
    assert_eq!(
        fired("crates/demo/src/lib.rs", indexing),
        ["panic-free-decode"]
    );
}

#[test]
fn panic_free_decode_accepts_checked_decoders() {
    let checked = "fn from_bytes(bytes: &[u8]) -> Option<u8> {\n\
                   \x20   let first = bytes.first()?;\n\
                   \x20   Some(*first)\n}\n";
    assert_eq!(fired("crates/demo/src/lib.rs", checked), [""; 0]);

    // Literal and non-additive indexing are not offset arithmetic.
    let plain_index = "fn decode_slot(bytes: &[u8]) -> u8 { bytes[0] / bytes[1] }\n";
    assert_eq!(fired("crates/demo/src/lib.rs", plain_index), [""; 0]);

    // Panics outside decoder fns are someone else's business.
    let not_decoder = "fn merge(values: &[u8]) -> u8 { values.iter().next().unwrap() }\n";
    assert_eq!(fired("crates/demo/src/lib.rs", not_decoder), [""; 0]);
}

#[test]
fn error_enum_doc_fires_on_undocumented_variants() {
    let firing = "/// Parser errors.\npub enum DemoError {\n\
                  \x20   /// The header magic did not match.\n\
                  \x20   BadMagic,\n\
                  \x20   Truncated,\n}\n";
    let found = violations("crates/demo/src/lib.rs", firing);
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].rule, "error-enum-doc");
    assert_eq!(found[0].line, 5);
}

#[test]
fn error_enum_doc_accepts_documented_enums_and_non_error_enums() {
    let clean = "/// Parser errors.\npub enum DemoError {\n\
                 \x20   /// The header magic did not match.\n\
                 \x20   BadMagic,\n\
                 \x20   /// The frame ended mid-payload.\n\
                 \x20   #[allow(dead_code)]\n\
                 \x20   Truncated { offset: usize },\n}\n";
    assert_eq!(fired("crates/demo/src/lib.rs", clean), [""; 0]);

    let not_error = "pub enum Mode {\n    Fast,\n    Exact,\n}\n";
    assert_eq!(fired("crates/demo/src/lib.rs", not_error), [""; 0]);
}

#[test]
fn bench_honesty_fires_on_bench_json_without_parallelism() {
    let firing = "fn main() { std::fs::write(\"BENCH_demo.json\", \"{}\").ok(); }\n";
    assert_eq!(
        fired("crates/bench/benches/demo.rs", firing),
        ["bench-honesty"]
    );
}

#[test]
fn bench_honesty_accepts_recorded_parallelism_and_non_bench_files() {
    let clean = "fn main() {\n\
                 \x20   let threads = std::thread::available_parallelism().map_or(0, |n| n.get());\n\
                 \x20   std::fs::write(\"BENCH_demo.json\", format!(\"{{\\\"threads\\\":{threads}}}\")).ok();\n}\n";
    assert_eq!(fired("crates/bench/benches/demo.rs", clean), [""; 0]);

    // The rule only applies to bench code.
    let not_bench = "fn main() { std::fs::write(\"BENCH_demo.json\", \"{}\").ok(); }\n";
    assert_eq!(fired("crates/demo/src/main.rs", not_bench), [""; 0]);
}

#[test]
fn waivers_suppress_with_justification_only() {
    // Justified waiver on the violation's own line: suppressed.
    let same_line = "fn f() { std::thread::spawn(|| {}); } \
                     // lint:allow(pool-not-raw-threads) demo fixture needs a raw thread\n";
    assert_eq!(fired("crates/demo/src/lib.rs", same_line), [""; 0]);

    // Justified waiver on the line above: suppressed.
    let line_above = "// lint:allow(pool-not-raw-threads) demo fixture needs a raw thread\n\
                      fn f() { std::thread::spawn(|| {}); }\n";
    assert_eq!(fired("crates/demo/src/lib.rs", line_above), [""; 0]);

    // A waiver without justification suppresses nothing and is itself
    // reported.
    let bare = "// lint:allow(pool-not-raw-threads)\nfn f() { std::thread::spawn(|| {}); }\n";
    let found = fired("crates/demo/src/lib.rs", bare);
    assert!(found.contains(&"pool-not-raw-threads"), "{found:?}");
    assert!(found.contains(&"waiver-syntax"), "{found:?}");

    // A waiver naming an unknown rule is reported.
    let unknown = "// lint:allow(no-such-rule) because reasons\nfn f() {}\n";
    assert_eq!(fired("crates/demo/src/lib.rs", unknown), ["waiver-syntax"]);

    // A waiver two lines away does not reach the violation.
    let too_far = "// lint:allow(pool-not-raw-threads) too far away\n\n\
                   fn f() { std::thread::spawn(|| {}); }\n";
    assert_eq!(
        fired("crates/demo/src/lib.rs", too_far),
        ["pool-not-raw-threads"]
    );
}

#[test]
fn every_rule_has_a_summary_and_rationale() {
    for rule in wavedens_lint::rules::all_rules() {
        assert!(!rule.summary.is_empty(), "{} lacks a summary", rule.name);
        assert!(
            rule.rationale.len() > rule.summary.len(),
            "{} rationale should expand on its summary",
            rule.name
        );
        assert!(
            wavedens_lint::rules::rule_by_name(rule.name).is_some(),
            "{} must be findable by name",
            rule.name
        );
    }
}
