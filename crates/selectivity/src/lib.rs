//! # wavedens-selectivity
//!
//! Range-query **selectivity estimation** over (possibly weakly dependent)
//! attribute streams, built on the adaptive wavelet density estimator of
//! `wavedens-core`.
//!
//! This crate bridges the database framing of the reproduction target (see
//! DESIGN.md): a query optimiser needs `P(lo ≤ X ≤ hi)` for an attribute
//! whose values arrive as a stream and are often autocorrelated (sorted
//! inserts, sensor drift, sessionised workloads). The adaptive wavelet
//! estimator is a natural synopsis for this task because (i) its
//! coefficients are maintainable online, (ii) thresholding keeps the
//! synopsis small, and (iii) the paper's results guarantee near-minimax
//! accuracy even under weak dependence of the inserts.
//!
//! Provided estimators:
//!
//! * [`WaveletSelectivity`] — answers queries from a precomputed
//!   cumulative (CDF) table of the thresholded wavelet density estimate
//!   in O(1) per query (streaming or batch construction; a stale cache is
//!   rebuilt exactly once, not per query). A **one-attribute view** over
//!   the `wavedens-engine` machinery — the multi-attribute, concurrently
//!   ingested face of the same synopsis is
//!   [`wavedens_engine::SynopsisCatalog`];
//! * [`FittedWaveletSelectivity`] — the same fast path wrapped around an
//!   existing batch-fitted density estimate;
//! * [`HistogramSelectivity`] — the classic equi-width histogram baseline;
//! * [`KernelSelectivity`] — a kernel-density baseline (rule-of-thumb or
//!   CV bandwidth), answering from its own precomputed CDF table;
//! * [`EmpiricalSelectivity`] — exact answers from the stored sample
//!   (ground truth for evaluation).
//!
//! ```
//! use wavedens_selectivity::{RangeQuery, SelectivityEstimator, WaveletSelectivity};
//!
//! let data: Vec<f64> = (0..2000).map(|i| (i as f64 * 0.37) % 1.0).collect();
//! let synopsis = WaveletSelectivity::fit(&data).unwrap();
//! let q = RangeQuery::new(0.2, 0.5).unwrap();
//! let s = synopsis.estimate(&q);
//! assert!((s - 0.3).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod estimators;
pub mod workload;

pub use estimators::{
    integrate_density, EmpiricalSelectivity, FittedWaveletSelectivity, HistogramSelectivity,
    KernelSelectivity, SelectivityEstimator, WaveletSelectivity,
};
pub use workload::{
    evaluate_workload, RangeQuery, WorkloadError, WorkloadGenerator, WorkloadSummary,
};
