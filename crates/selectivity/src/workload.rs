//! Range queries, workload generation and accuracy evaluation.

use crate::estimators::SelectivityEstimator;
use rand::{Rng, RngCore};

/// A closed range predicate `lo ≤ X ≤ hi` on the attribute domain `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeQuery {
    lo: f64,
    hi: f64,
}

/// Errors from query/workload construction.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// The query bounds are reversed, non-finite or outside `[0, 1]`.
    InvalidRange {
        /// Requested lower bound.
        lo: f64,
        /// Requested upper bound.
        hi: f64,
    },
    /// The workload generator received an invalid parameter.
    InvalidParameter(String),
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::InvalidRange { lo, hi } => {
                write!(f, "invalid query range [{lo}, {hi}]")
            }
            WorkloadError::InvalidParameter(msg) => write!(f, "invalid workload parameter: {msg}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

impl RangeQuery {
    /// Creates a range query; bounds must satisfy `0 ≤ lo ≤ hi ≤ 1`.
    pub fn new(lo: f64, hi: f64) -> Result<Self, WorkloadError> {
        if !(lo.is_finite() && hi.is_finite()) || lo > hi || lo < 0.0 || hi > 1.0 {
            return Err(WorkloadError::InvalidRange { lo, hi });
        }
        Ok(Self { lo, hi })
    }

    /// Lower bound of the range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Width of the range.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Random workload generator: query centres uniform on `[0, 1]`, widths
/// uniform on `[min_width, max_width]`, clipped to the domain.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadGenerator {
    min_width: f64,
    max_width: f64,
}

impl WorkloadGenerator {
    /// Creates a generator with widths in `[min_width, max_width] ⊆ (0, 1]`.
    pub fn new(min_width: f64, max_width: f64) -> Result<Self, WorkloadError> {
        if !(0.0 < min_width && min_width <= max_width && max_width <= 1.0) {
            return Err(WorkloadError::InvalidParameter(format!(
                "need 0 < min_width ≤ max_width ≤ 1, got [{min_width}, {max_width}]"
            )));
        }
        Ok(Self {
            min_width,
            max_width,
        })
    }

    /// A typical analytical workload: ranges covering 5 % to 30 % of the
    /// domain.
    pub fn analytical() -> Self {
        Self::new(0.05, 0.3).expect("static parameters are valid")
    }

    /// Draws one query.
    pub fn draw(&self, rng: &mut dyn RngCore) -> RangeQuery {
        let width = rng.gen_range(self.min_width..=self.max_width);
        let centre = rng.gen_range(0.0..1.0);
        let lo = (centre - width / 2.0).max(0.0);
        let hi = (centre + width / 2.0).min(1.0);
        RangeQuery { lo, hi }
    }

    /// Draws a whole workload of `count` queries.
    pub fn draw_many(&self, count: usize, rng: &mut dyn RngCore) -> Vec<RangeQuery> {
        (0..count).map(|_| self.draw(rng)).collect()
    }
}

/// Accuracy summary of a selectivity estimator against ground truth over a
/// workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSummary {
    /// Number of queries evaluated.
    pub queries: usize,
    /// Mean absolute error of the selectivity estimates.
    pub mean_absolute_error: f64,
    /// Maximum absolute error.
    pub max_absolute_error: f64,
    /// Mean relative error, with the denominator floored at `1/n_ref` where
    /// `n_ref = 1000` to avoid division blow-ups on near-empty ranges.
    pub mean_relative_error: f64,
}

/// Evaluates an estimator against exact selectivities over a workload.
pub fn evaluate_workload(
    estimator: &dyn SelectivityEstimator,
    truth: &dyn SelectivityEstimator,
    workload: &[RangeQuery],
) -> WorkloadSummary {
    let mut abs_sum = 0.0;
    let mut abs_max = 0.0_f64;
    let mut rel_sum = 0.0;
    for query in workload {
        let est = estimator.estimate(query);
        let exact = truth.estimate(query);
        let err = (est - exact).abs();
        abs_sum += err;
        abs_max = abs_max.max(err);
        rel_sum += err / exact.max(1e-3);
    }
    let n = workload.len().max(1) as f64;
    WorkloadSummary {
        queries: workload.len(),
        mean_absolute_error: abs_sum / n,
        max_absolute_error: abs_max,
        mean_relative_error: rel_sum / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::EmpiricalSelectivity;
    use wavedens_processes::seeded_rng;

    #[test]
    fn range_query_validation() {
        assert!(RangeQuery::new(0.2, 0.8).is_ok());
        assert!(RangeQuery::new(0.8, 0.2).is_err());
        assert!(RangeQuery::new(-0.1, 0.5).is_err());
        assert!(RangeQuery::new(0.1, 1.5).is_err());
        assert!(RangeQuery::new(f64::NAN, 0.5).is_err());
        let q = RangeQuery::new(0.25, 0.75).unwrap();
        assert_eq!(q.width(), 0.5);
        assert_eq!(q.lo(), 0.25);
        assert_eq!(q.hi(), 0.75);
    }

    #[test]
    fn generator_respects_width_bounds() {
        let gen = WorkloadGenerator::new(0.1, 0.2).unwrap();
        let mut rng = seeded_rng(3);
        for q in gen.draw_many(500, &mut rng) {
            assert!(q.lo() >= 0.0 && q.hi() <= 1.0);
            // Clipping at the boundary can shrink a query but never enlarge
            // it.
            assert!(q.width() <= 0.2 + 1e-12);
            assert!(q.width() > 0.0);
        }
        assert!(WorkloadGenerator::new(0.0, 0.5).is_err());
        assert!(WorkloadGenerator::new(0.4, 0.2).is_err());
        assert!(WorkloadGenerator::new(0.4, 1.2).is_err());
    }

    #[test]
    fn evaluation_against_self_is_exact() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0).collect();
        let truth = EmpiricalSelectivity::new(&data).unwrap();
        let mut rng = seeded_rng(5);
        let workload = WorkloadGenerator::analytical().draw_many(100, &mut rng);
        let summary = evaluate_workload(&truth, &truth, &workload);
        assert_eq!(summary.queries, 100);
        assert_eq!(summary.mean_absolute_error, 0.0);
        assert_eq!(summary.max_absolute_error, 0.0);
        assert_eq!(summary.mean_relative_error, 0.0);
    }

    #[test]
    fn error_display() {
        let e = WorkloadError::InvalidRange { lo: 0.9, hi: 0.1 };
        assert!(format!("{e}").contains("0.9"));
        let e = WorkloadError::InvalidParameter("oops".into());
        assert!(format!("{e}").contains("oops"));
    }
}
