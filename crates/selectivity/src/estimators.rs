//! Selectivity estimators: the wavelet synopsis and its baselines.

use crate::workload::RangeQuery;
use std::sync::Arc;
use wavedens_core::{
    CumulativeEstimate, EstimatorError, Grid, KernelDensityEstimate, KernelDensityEstimator,
    ThresholdRule, WaveletDensityEstimate, WaveletDensityEstimator, DEFAULT_CDF_POINTS,
};
use wavedens_engine::{AttributeSynopsis, RefreshedSynopsis, SynopsisConfig};

/// Number of integration points per unit length used when turning a density
/// estimate into a range probability by quadrature.
const INTEGRATION_RESOLUTION: usize = 2048;

/// Anything that can answer range-selectivity queries on `[0, 1]`.
pub trait SelectivityEstimator {
    /// Short name used in evaluation reports.
    fn name(&self) -> String;

    /// Estimated selectivity `P(lo ≤ X ≤ hi)`, clamped to `[0, 1]`.
    fn estimate(&self, query: &RangeQuery) -> f64;
}

/// Integrates a density estimate over a query range by trapezoidal
/// quadrature, `INTEGRATION_RESOLUTION` points per unit length.
///
/// This is the slow reference path: every call re-evaluates the density
/// pointwise across the range. The wavelet synopses **and** the kernel
/// baseline answer queries from a precomputed [`CumulativeEstimate`]
/// instead and only use quadrature in tests and benchmarks (see the
/// `query_throughput` bench target).
pub fn integrate_density(query: &RangeQuery, density: impl Fn(f64) -> f64) -> f64 {
    let width = query.width();
    if width == 0.0 {
        return 0.0;
    }
    let points = ((INTEGRATION_RESOLUTION as f64 * width).ceil() as usize).max(8);
    let grid = Grid::new(query.lo(), query.hi(), points);
    grid.integrate(&grid.evaluate(density)).clamp(0.0, 1.0)
}

/// Ground truth: exact selectivity on the stored sample.
#[derive(Debug, Clone)]
pub struct EmpiricalSelectivity {
    sorted: Vec<f64>,
}

impl EmpiricalSelectivity {
    /// Stores (a sorted copy of) the sample. Non-finite values (NaN, ±∞)
    /// are rejected with [`EstimatorError::NonFiniteSample`]: they have no
    /// meaningful rank, so silently sorting them in (or panicking, as the
    /// previous `partial_cmp(..).expect(..)` did) would corrupt every
    /// subsequent count.
    pub fn new(data: &[f64]) -> Result<Self, EstimatorError> {
        if let Some((index, &value)) = data.iter().enumerate().find(|(_, v)| !v.is_finite()) {
            return Err(EstimatorError::NonFiniteSample { index, value });
        }
        let mut sorted = data.to_vec();
        sorted.sort_by(f64::total_cmp);
        Ok(Self { sorted })
    }
}

impl SelectivityEstimator for EmpiricalSelectivity {
    fn name(&self) -> String {
        "empirical".to_string()
    }

    fn estimate(&self, query: &RangeQuery) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let lo = self.sorted.partition_point(|&x| x < query.lo());
        let hi = self.sorted.partition_point(|&x| x <= query.hi());
        (hi - lo) as f64 / self.sorted.len() as f64
    }
}

/// The adaptive-wavelet selectivity synopsis.
///
/// A **one-attribute view** over the `wavedens-engine` machinery: the
/// synopsis owns an [`AttributeSynopsis`] (a sharded
/// [`wavedens_core::CoefficientSketch`] plus an atomically swapped cache
/// of the refreshed estimate), configured with a single shard so that
/// streaming inserts reproduce the single-stream fit bit for bit. The
/// multi-attribute face of the same machinery is
/// [`wavedens_engine::SynopsisCatalog`].
///
/// # Refresh / cache semantics
///
/// Queries are answered from a cached [`CumulativeEstimate`] in O(1) —
/// an index computation and a linear interpolation, no per-query
/// integration sweep. Ingesting rows marks the cache stale; the **first**
/// query (or an explicit [`refresh`](Self::refresh)) after that runs
/// exactly one cross-validation rebuild and one dense CDF construction,
/// and every further query reuses the result until the next insert. A
/// burst of queries against a stale cache therefore triggers **one**
/// rebuild, never one per query ([`rebuild_count`](Self::rebuild_count)
/// exposes the counter). Concurrent readers share the cached
/// `Arc<RefreshedSynopsis>` and are never blocked by an in-flight
/// rebuild: they keep answering from the previous snapshot until the
/// rebuilt one is swapped in (see [`AttributeSynopsis`]).
#[derive(Debug, Clone)]
pub struct WaveletSelectivity {
    synopsis: AttributeSynopsis,
    /// The snapshot pinned by the last explicit `refresh()` /
    /// `cumulative()` call, so those methods can hand out plain
    /// references.
    pinned: Option<Arc<RefreshedSynopsis>>,
}

impl WaveletSelectivity {
    /// Builds an empty synopsis sized for roughly `expected_rows` rows.
    pub fn with_expected_rows(expected_rows: usize) -> Result<Self, EstimatorError> {
        let config = SynopsisConfig::default()
            .with_rule(ThresholdRule::Soft)
            .with_expected_rows(expected_rows.max(16))
            .with_shards(1);
        Ok(Self {
            synopsis: AttributeSynopsis::new(&config)?,
            pinned: None,
        })
    }

    /// Builds the synopsis from a batch of values in `[0, 1]`.
    pub fn fit(data: &[f64]) -> Result<Self, EstimatorError> {
        let mut synopsis = Self::with_expected_rows(data.len().max(16))?;
        synopsis.observe_many(data.iter().copied());
        Ok(synopsis)
    }

    /// Ingests one attribute value, marking the cached estimate stale.
    pub fn observe(&mut self, value: f64) {
        self.synopsis.ingest(std::slice::from_ref(&value));
    }

    /// Ingests many attribute values in batched passes
    /// ([`AttributeSynopsis::ingest_stream`]), marking the cached
    /// estimate stale.
    pub fn observe_many<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        self.synopsis.ingest_stream(values);
    }

    /// Number of rows ingested.
    pub fn rows(&self) -> usize {
        self.synopsis.rows()
    }

    /// Number of cross-validation rebuilds performed so far: increments
    /// once per stale-cache refresh, regardless of how many queries hit
    /// the stale cache.
    pub fn rebuild_count(&self) -> usize {
        self.synopsis.rebuild_count()
    }

    /// The underlying engine synopsis (for example to share it with a
    /// catalog-driven component or inspect the merged sketch).
    pub fn attribute_synopsis(&self) -> &AttributeSynopsis {
        &self.synopsis
    }

    /// Refreshes (and returns) the thresholded density estimate backing the
    /// synopsis. A no-op when the cache is already fresh; called lazily by
    /// the first [`estimate`](SelectivityEstimator::estimate) after an
    /// insert otherwise.
    pub fn refresh(&mut self) -> Result<&WaveletDensityEstimate, EstimatorError> {
        match self.synopsis.refreshed()? {
            Some(refreshed) => {
                self.pinned = Some(refreshed);
                Ok(self.pinned.as_ref().expect("just pinned").density())
            }
            None => Err(EstimatorError::EmptySample),
        }
    }

    /// The cumulative (CDF) table answering the queries, refreshing it
    /// first if stale.
    pub fn cumulative(&mut self) -> Result<&CumulativeEstimate, EstimatorError> {
        self.refresh()?;
        Ok(self.pinned.as_ref().expect("refreshed above").cumulative())
    }
}

impl SelectivityEstimator for WaveletSelectivity {
    fn name(&self) -> String {
        "wavelet".to_string()
    }

    fn estimate(&self, query: &RangeQuery) -> f64 {
        self.synopsis.selectivity(query.lo(), query.hi())
    }
}

/// The classic equi-width histogram baseline.
#[derive(Debug, Clone)]
pub struct HistogramSelectivity {
    counts: Vec<f64>,
    total: f64,
}

impl HistogramSelectivity {
    /// Builds a histogram with `buckets ≥ 1` equal-width buckets over
    /// `[0, 1]`.
    pub fn fit(data: &[f64], buckets: usize) -> Self {
        let buckets = buckets.max(1);
        let mut counts = vec![0.0; buckets];
        for &x in data {
            let idx = ((x.clamp(0.0, 1.0)) * buckets as f64).floor() as usize;
            counts[idx.min(buckets - 1)] += 1.0;
        }
        Self {
            counts,
            total: data.len() as f64,
        }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }
}

impl SelectivityEstimator for HistogramSelectivity {
    fn name(&self) -> String {
        format!("histogram({})", self.counts.len())
    }

    fn estimate(&self, query: &RangeQuery) -> f64 {
        if self.total == 0.0 {
            return 0.0;
        }
        let buckets = self.counts.len() as f64;
        let mut mass = 0.0;
        for (i, &count) in self.counts.iter().enumerate() {
            let b_lo = i as f64 / buckets;
            let b_hi = (i + 1) as f64 / buckets;
            let overlap = (query.hi().min(b_hi) - query.lo().max(b_lo)).max(0.0);
            if overlap > 0.0 {
                // Uniform-spread assumption inside the bucket.
                mass += count * overlap / (b_hi - b_lo);
            }
        }
        (mass / self.total).clamp(0.0, 1.0)
    }
}

/// A kernel-density baseline.
///
/// Like the wavelet synopses, queries are answered from a
/// [`CumulativeEstimate`] precomputed at construction over the kernel
/// estimate's support (union `[0, 1]`), so each query costs O(1) instead
/// of a fresh trapezoid quadrature sweep over the range.
#[derive(Debug, Clone)]
pub struct KernelSelectivity {
    estimate: KernelDensityEstimate,
    cumulative: CumulativeEstimate,
    label: &'static str,
}

/// Grid resolution (points per unit length) of the kernel baseline's
/// precomputed CDF table: twice the quadrature resolution, so the O(step²)
/// interpolation error sits well below the reference path it replaces.
const KERNEL_CDF_RESOLUTION: usize = 2 * INTEGRATION_RESOLUTION;

impl KernelSelectivity {
    /// Epanechnikov kernel with the rule-of-thumb bandwidth.
    pub fn rule_of_thumb(data: &[f64]) -> Result<Self, EstimatorError> {
        Ok(Self::from_fit(
            KernelDensityEstimator::rule_of_thumb().fit(data)?,
            "kernel-rot",
        ))
    }

    /// Epanechnikov kernel with the least-squares CV bandwidth.
    pub fn cross_validated(data: &[f64]) -> Result<Self, EstimatorError> {
        Ok(Self::from_fit(
            KernelDensityEstimator::cross_validated().fit(data)?,
            "kernel-cv",
        ))
    }

    fn from_fit(estimate: KernelDensityEstimate, label: &'static str) -> Self {
        // Span the kernel's entire (truncated) support so the table's
        // total mass is the full integral even when data spill outside
        // [0, 1]; union with [0, 1] so every valid query lies on the grid.
        let (support_lo, support_hi) = estimate.support_interval();
        let lo = support_lo.min(0.0);
        let hi = support_hi.max(1.0);
        let points = ((hi - lo) * KERNEL_CDF_RESOLUTION as f64).ceil() as usize + 1;
        let grid = Grid::new(lo, hi, points.max(2));
        let cumulative = CumulativeEstimate::from_density(grid, &estimate.evaluate_on(&grid));
        Self {
            estimate,
            cumulative,
            label,
        }
    }

    /// The fitted kernel density estimate backing the synopsis.
    pub fn density(&self) -> &KernelDensityEstimate {
        &self.estimate
    }

    /// The precomputed cumulative (CDF) table answering the queries.
    pub fn cumulative(&self) -> &CumulativeEstimate {
        &self.cumulative
    }
}

impl SelectivityEstimator for KernelSelectivity {
    fn name(&self) -> String {
        self.label.to_string()
    }

    fn estimate(&self, query: &RangeQuery) -> f64 {
        // Normalized by the table's total mass: the truncated kernel
        // support makes the tabulated mass drift slightly from 1, and the
        // raw range mass would inherit that bias (and could exceed 1).
        self.cumulative.selectivity(query.lo(), query.hi())
    }
}

/// A batch-fitted wavelet selectivity estimator built from an existing
/// [`WaveletDensityEstimate`]; useful when the density estimate is already
/// available (e.g. shared with other components of a query optimiser).
/// The CDF table is precomputed at construction, so queries are O(1).
#[derive(Debug, Clone)]
pub struct FittedWaveletSelectivity {
    estimate: WaveletDensityEstimate,
    cumulative: CumulativeEstimate,
}

impl FittedWaveletSelectivity {
    /// Wraps an existing density estimate.
    pub fn new(estimate: WaveletDensityEstimate) -> Self {
        let cumulative = estimate.cumulative(DEFAULT_CDF_POINTS);
        Self {
            estimate,
            cumulative,
        }
    }

    /// Fits the STCV estimator to a batch of data.
    pub fn fit(data: &[f64]) -> Result<Self, EstimatorError> {
        Ok(Self::new(WaveletDensityEstimator::stcv().fit(data)?))
    }

    /// The wrapped density estimate.
    pub fn density(&self) -> &WaveletDensityEstimate {
        &self.estimate
    }
}

impl SelectivityEstimator for FittedWaveletSelectivity {
    fn name(&self) -> String {
        "wavelet-batch".to_string()
    }

    fn estimate(&self, query: &RangeQuery) -> f64 {
        // Normalized like every other CDF-backed path: an oscillating
        // wavelet estimate integrates to ≈ 1, not exactly 1.
        self.cumulative.selectivity(query.lo(), query.hi())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{evaluate_workload, WorkloadGenerator};
    use wavedens_processes::{seeded_rng, DependenceCase, SineUniformMixture};

    fn dependent_sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = seeded_rng(seed);
        DependenceCase::ExpandingMap.simulate(&SineUniformMixture::paper(), n, &mut rng)
    }

    /// Hardening sweep: reversed and NaN bounds must answer zero on every
    /// CDF-backed query path (wavelet and kernel), and the workload type
    /// refuses to construct such queries in the first place.
    #[test]
    fn kernel_and_wavelet_cdf_tables_reject_bad_bounds() {
        let data = dependent_sample(512, 40);
        let kernel = KernelSelectivity::rule_of_thumb(&data).unwrap();
        let mut wavelet = WaveletSelectivity::fit(&data).unwrap();
        for table in [kernel.cumulative(), wavelet.cumulative().unwrap()] {
            assert_eq!(table.range_mass(f64::NAN, 0.5), 0.0);
            assert_eq!(table.range_mass(0.2, f64::NAN), 0.0);
            assert_eq!(table.selectivity(f64::NAN, f64::NAN), 0.0);
            assert_eq!(table.range_mass(0.9, 0.1), 0.0);
            // Slightly below 1 on the kernel path: bandwidth tails put a
            // little of the table's mass outside [0, 1].
            assert!(table.selectivity(0.0, 1.0) > 0.9);
        }
        assert!(RangeQuery::new(f64::NAN, 0.5).is_err());
        assert!(RangeQuery::new(0.5, f64::NAN).is_err());
        assert!(RangeQuery::new(0.8, 0.2).is_err());
    }

    #[test]
    fn empirical_selectivity_counts_exactly() {
        let data = vec![0.1, 0.2, 0.3, 0.4, 0.5];
        let truth = EmpiricalSelectivity::new(&data).unwrap();
        let q = RangeQuery::new(0.15, 0.45).unwrap();
        assert!((truth.estimate(&q) - 0.6).abs() < 1e-12);
        let all = RangeQuery::new(0.0, 1.0).unwrap();
        assert_eq!(truth.estimate(&all), 1.0);
        let none = RangeQuery::new(0.6, 0.9).unwrap();
        assert_eq!(truth.estimate(&none), 0.0);
    }

    #[test]
    fn histogram_selectivity_interpolates_partial_buckets() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 + 0.5) / 1000.0).collect();
        let hist = HistogramSelectivity::fit(&data, 20);
        assert_eq!(hist.buckets(), 20);
        // Uniform data: any range's selectivity is its width.
        for (lo, hi) in [(0.0, 0.5), (0.12, 0.37), (0.81, 0.99)] {
            let q = RangeQuery::new(lo, hi).unwrap();
            assert!(
                (hist.estimate(&q) - (hi - lo)).abs() < 0.01,
                "range [{lo},{hi}]"
            );
        }
    }

    #[test]
    fn wavelet_synopsis_answers_range_queries_accurately() {
        let data = dependent_sample(2048, 1);
        let truth = EmpiricalSelectivity::new(&data).unwrap();
        let synopsis = WaveletSelectivity::fit(&data).unwrap();
        assert_eq!(synopsis.rows(), 2048);
        let mut rng = seeded_rng(9);
        let workload = WorkloadGenerator::analytical().draw_many(200, &mut rng);
        let summary = evaluate_workload(&synopsis, &truth, &workload);
        assert!(
            summary.mean_absolute_error < 0.03,
            "wavelet MAE {}",
            summary.mean_absolute_error
        );
        assert!(summary.max_absolute_error < 0.12);
    }

    #[test]
    fn wavelet_synopsis_beats_coarse_histogram_on_dependent_stream() {
        let data = dependent_sample(4096, 2);
        let truth = EmpiricalSelectivity::new(&data).unwrap();
        let wavelet = WaveletSelectivity::fit(&data).unwrap();
        let coarse_hist = HistogramSelectivity::fit(&data, 8);
        let mut rng = seeded_rng(11);
        let workload = WorkloadGenerator::new(0.02, 0.15)
            .unwrap()
            .draw_many(300, &mut rng);
        let w = evaluate_workload(&wavelet, &truth, &workload);
        let h = evaluate_workload(&coarse_hist, &truth, &workload);
        assert!(
            w.mean_absolute_error < h.mean_absolute_error,
            "wavelet {} vs 8-bucket histogram {}",
            w.mean_absolute_error,
            h.mean_absolute_error
        );
    }

    #[test]
    fn streaming_and_batch_synopses_agree() {
        let data = dependent_sample(1024, 3);
        let mut streaming = WaveletSelectivity::with_expected_rows(1024).unwrap();
        streaming.observe_many(data.iter().copied());
        streaming.refresh().unwrap();
        let q = RangeQuery::new(0.3, 0.6).unwrap();
        let batch = WaveletSelectivity::fit(&data).unwrap();
        assert!((streaming.estimate(&q) - batch.estimate(&q)).abs() < 1e-9);
    }

    #[test]
    fn stale_cache_query_burst_rebuilds_exactly_once() {
        let data = dependent_sample(1024, 7);
        let mut synopsis = WaveletSelectivity::fit(&data).unwrap();
        assert_eq!(synopsis.rebuild_count(), 0, "construction must stay lazy");
        let mut rng = seeded_rng(17);
        let workload = WorkloadGenerator::analytical().draw_many(100, &mut rng);
        for q in &workload {
            let s = synopsis.estimate(q);
            assert!((0.0..=1.0).contains(&s));
        }
        assert_eq!(
            synopsis.rebuild_count(),
            1,
            "a burst of stale-cache queries must trigger exactly one rebuild"
        );
        // Fresh cache: more queries, still one rebuild.
        for q in &workload {
            synopsis.estimate(q);
        }
        assert_eq!(synopsis.rebuild_count(), 1);
        // An insert marks the cache stale; the next burst costs one more.
        synopsis.observe(0.5);
        for q in &workload {
            synopsis.estimate(q);
        }
        assert_eq!(synopsis.rebuild_count(), 2);
        // An explicit refresh also counts once and makes queries free.
        synopsis.observe(0.25);
        synopsis.refresh().unwrap();
        for q in &workload {
            synopsis.estimate(q);
        }
        assert_eq!(synopsis.rebuild_count(), 3);
    }

    #[test]
    fn cached_cdf_matches_direct_quadrature() {
        let data = dependent_sample(2048, 8);
        let mut synopsis = WaveletSelectivity::fit(&data).unwrap();
        let density = synopsis.refresh().unwrap().clone();
        // Selectivities are normalized by the table's total mass; divide
        // the quadrature reference by the same constant.
        let total_mass = synopsis.cumulative().unwrap().total_mass();
        let mut rng = seeded_rng(23);
        let workload = WorkloadGenerator::new(0.01, 0.4)
            .unwrap()
            .draw_many(100, &mut rng);
        for q in &workload {
            let fast = synopsis.estimate(q);
            let slow = integrate_density(q, |x| density.evaluate(x)) / total_mass;
            assert!(
                (fast - slow).abs() < 2e-3,
                "[{}, {}]: cdf {fast} vs quadrature {slow}",
                q.lo(),
                q.hi()
            );
        }
    }

    #[test]
    fn cloned_synopsis_preserves_cache_and_counter() {
        let data = dependent_sample(512, 9);
        let synopsis = WaveletSelectivity::fit(&data).unwrap();
        let q = RangeQuery::new(0.2, 0.7).unwrap();
        let answer = synopsis.estimate(&q);
        let clone = synopsis.clone();
        assert_eq!(clone.rebuild_count(), 1);
        assert_eq!(clone.estimate(&q), answer);
        assert_eq!(clone.rebuild_count(), 1, "clone reuses the cached CDF");
    }

    #[test]
    fn non_finite_samples_are_rejected_with_a_pinpointed_error() {
        // The old partial_cmp(..).expect(..) sort panicked on NaN; now the
        // constructor reports which observation is broken.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = EmpiricalSelectivity::new(&[0.1, 0.4, bad, 0.9]).unwrap_err();
            assert!(
                matches!(err, EstimatorError::NonFiniteSample { index: 2, .. }),
                "{bad}: {err:?}"
            );
        }
        assert!(EmpiricalSelectivity::new(&[]).unwrap().sorted.is_empty());
    }

    #[test]
    fn kernel_cdf_fast_path_matches_quadrature() {
        let data = dependent_sample(1024, 21);
        let synopsis = KernelSelectivity::rule_of_thumb(&data).unwrap();
        let mut rng = seeded_rng(31);
        let workload = WorkloadGenerator::new(0.01, 0.4)
            .unwrap()
            .draw_many(100, &mut rng);
        for q in &workload {
            let fast = synopsis.estimate(q);
            let slow = integrate_density(q, |x| synopsis.density().evaluate(x));
            assert!(
                (fast - slow).abs() < 2e-3,
                "[{}, {}]: cdf {fast} vs quadrature {slow}",
                q.lo(),
                q.hi()
            );
        }
        // The table spans the kernel support: full-domain mass ≈ 1 even
        // though some smoothed mass spills just outside [0, 1].
        assert!((synopsis.cumulative().total_mass() - 1.0).abs() < 0.01);
    }

    #[test]
    fn kernel_baselines_work() {
        let data = dependent_sample(1024, 4);
        let truth = EmpiricalSelectivity::new(&data).unwrap();
        let rot = KernelSelectivity::rule_of_thumb(&data).unwrap();
        let cv = KernelSelectivity::cross_validated(&data).unwrap();
        assert_eq!(rot.name(), "kernel-rot");
        assert_eq!(cv.name(), "kernel-cv");
        let mut rng = seeded_rng(13);
        let workload = WorkloadGenerator::analytical().draw_many(100, &mut rng);
        for estimator in [&rot as &dyn SelectivityEstimator, &cv] {
            let summary = evaluate_workload(estimator, &truth, &workload);
            assert!(
                summary.mean_absolute_error < 0.05,
                "{}: MAE {}",
                estimator.name(),
                summary.mean_absolute_error
            );
        }
    }

    #[test]
    fn batch_fitted_wrapper_matches_direct_fit() {
        let data = dependent_sample(512, 5);
        let direct = FittedWaveletSelectivity::fit(&data).unwrap();
        let q = RangeQuery::new(0.1, 0.9).unwrap();
        let est = direct.estimate(&q);
        assert!(est > 0.5 && est <= 1.0, "estimate {est}");
        assert_eq!(direct.name(), "wavelet-batch");
    }

    #[test]
    fn empty_synopsis_returns_zero() {
        let synopsis = WaveletSelectivity::with_expected_rows(128).unwrap();
        let q = RangeQuery::new(0.2, 0.8).unwrap();
        assert_eq!(synopsis.estimate(&q), 0.0);
        assert_eq!(synopsis.rows(), 0);
    }

    #[test]
    fn estimates_are_clamped_to_unit_interval() {
        let data = dependent_sample(256, 6);
        let synopsis = WaveletSelectivity::fit(&data).unwrap();
        let q = RangeQuery::new(0.0, 1.0).unwrap();
        let s = synopsis.estimate(&q);
        assert!((0.0..=1.0).contains(&s));
        assert!(s > 0.9, "full-domain selectivity {s}");
    }
}
