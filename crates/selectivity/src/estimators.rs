//! Selectivity estimators: the wavelet synopsis and its baselines.

use crate::workload::RangeQuery;
use wavedens_core::{
    EstimatorError, Grid, KernelDensityEstimate, KernelDensityEstimator, StreamingWaveletEstimator,
    ThresholdRule, WaveletDensityEstimate, WaveletDensityEstimator,
};

/// Number of integration points per unit length used when turning a density
/// estimate into a range probability.
const INTEGRATION_RESOLUTION: usize = 2048;

/// Anything that can answer range-selectivity queries on `[0, 1]`.
pub trait SelectivityEstimator {
    /// Short name used in evaluation reports.
    fn name(&self) -> String;

    /// Estimated selectivity `P(lo ≤ X ≤ hi)`, clamped to `[0, 1]`.
    fn estimate(&self, query: &RangeQuery) -> f64;
}

/// Integrates a density estimate over a query range.
fn integrate_density(query: &RangeQuery, density: impl Fn(f64) -> f64) -> f64 {
    let width = query.width();
    if width == 0.0 {
        return 0.0;
    }
    let points = ((INTEGRATION_RESOLUTION as f64 * width).ceil() as usize).max(8);
    let grid = Grid::new(query.lo(), query.hi(), points);
    grid.integrate(&grid.evaluate(density)).clamp(0.0, 1.0)
}

/// Ground truth: exact selectivity on the stored sample.
#[derive(Debug, Clone)]
pub struct EmpiricalSelectivity {
    sorted: Vec<f64>,
}

impl EmpiricalSelectivity {
    /// Stores (a sorted copy of) the sample.
    pub fn new(data: &[f64]) -> Self {
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("data must not contain NaN"));
        Self { sorted }
    }
}

impl SelectivityEstimator for EmpiricalSelectivity {
    fn name(&self) -> String {
        "empirical".to_string()
    }

    fn estimate(&self, query: &RangeQuery) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let lo = self.sorted.partition_point(|&x| x < query.lo());
        let hi = self.sorted.partition_point(|&x| x <= query.hi());
        (hi - lo) as f64 / self.sorted.len() as f64
    }
}

/// The adaptive-wavelet selectivity synopsis.
///
/// Internally this is a [`StreamingWaveletEstimator`], so rows can keep
/// arriving after construction ([`WaveletSelectivity::observe`]); the
/// selectivity of a query is the integral of the current thresholded
/// density estimate over the query range.
#[derive(Debug, Clone)]
pub struct WaveletSelectivity {
    stream: StreamingWaveletEstimator,
    cached: Option<WaveletDensityEstimate>,
}

impl WaveletSelectivity {
    /// Builds an empty synopsis sized for roughly `expected_rows` rows.
    pub fn with_expected_rows(expected_rows: usize) -> Result<Self, EstimatorError> {
        Ok(Self {
            stream: StreamingWaveletEstimator::with_expected_size(
                ThresholdRule::Soft,
                expected_rows,
            )?,
            cached: None,
        })
    }

    /// Builds the synopsis from a batch of values in `[0, 1]`.
    pub fn fit(data: &[f64]) -> Result<Self, EstimatorError> {
        let mut synopsis = Self::with_expected_rows(data.len().max(16))?;
        synopsis.observe_many(data.iter().copied());
        Ok(synopsis)
    }

    /// Ingests one attribute value.
    pub fn observe(&mut self, value: f64) {
        self.cached = None;
        self.stream.push(value);
    }

    /// Ingests many attribute values.
    pub fn observe_many<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        self.cached = None;
        self.stream.extend(values);
    }

    /// Number of rows ingested.
    pub fn rows(&self) -> usize {
        self.stream.count()
    }

    /// Refreshes (and returns) the thresholded density estimate backing the
    /// synopsis. Called lazily by [`estimate`](SelectivityEstimator::estimate).
    pub fn refresh(&mut self) -> Result<&WaveletDensityEstimate, EstimatorError> {
        if self.cached.is_none() {
            self.cached = Some(self.stream.estimate()?);
        }
        Ok(self.cached.as_ref().expect("just populated"))
    }

    fn estimate_or_rebuild(&self, query: &RangeQuery) -> f64 {
        // Without interior mutability we rebuild the estimate when the cache
        // is stale; callers that issue many queries between inserts should
        // call `refresh` first.
        match &self.cached {
            Some(est) => integrate_density(query, |x| est.evaluate(x)),
            None => match self.stream.estimate() {
                Ok(est) => integrate_density(query, |x| est.evaluate(x)),
                Err(_) => 0.0,
            },
        }
    }
}

impl SelectivityEstimator for WaveletSelectivity {
    fn name(&self) -> String {
        "wavelet".to_string()
    }

    fn estimate(&self, query: &RangeQuery) -> f64 {
        self.estimate_or_rebuild(query)
    }
}

/// The classic equi-width histogram baseline.
#[derive(Debug, Clone)]
pub struct HistogramSelectivity {
    counts: Vec<f64>,
    total: f64,
}

impl HistogramSelectivity {
    /// Builds a histogram with `buckets ≥ 1` equal-width buckets over
    /// `[0, 1]`.
    pub fn fit(data: &[f64], buckets: usize) -> Self {
        let buckets = buckets.max(1);
        let mut counts = vec![0.0; buckets];
        for &x in data {
            let idx = ((x.clamp(0.0, 1.0)) * buckets as f64).floor() as usize;
            counts[idx.min(buckets - 1)] += 1.0;
        }
        Self {
            counts,
            total: data.len() as f64,
        }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }
}

impl SelectivityEstimator for HistogramSelectivity {
    fn name(&self) -> String {
        format!("histogram({})", self.counts.len())
    }

    fn estimate(&self, query: &RangeQuery) -> f64 {
        if self.total == 0.0 {
            return 0.0;
        }
        let buckets = self.counts.len() as f64;
        let mut mass = 0.0;
        for (i, &count) in self.counts.iter().enumerate() {
            let b_lo = i as f64 / buckets;
            let b_hi = (i + 1) as f64 / buckets;
            let overlap = (query.hi().min(b_hi) - query.lo().max(b_lo)).max(0.0);
            if overlap > 0.0 {
                // Uniform-spread assumption inside the bucket.
                mass += count * overlap / (b_hi - b_lo);
            }
        }
        (mass / self.total).clamp(0.0, 1.0)
    }
}

/// A kernel-density baseline.
#[derive(Debug, Clone)]
pub struct KernelSelectivity {
    estimate: KernelDensityEstimate,
    label: &'static str,
}

impl KernelSelectivity {
    /// Epanechnikov kernel with the rule-of-thumb bandwidth.
    pub fn rule_of_thumb(data: &[f64]) -> Result<Self, EstimatorError> {
        Ok(Self {
            estimate: KernelDensityEstimator::rule_of_thumb().fit(data)?,
            label: "kernel-rot",
        })
    }

    /// Epanechnikov kernel with the least-squares CV bandwidth.
    pub fn cross_validated(data: &[f64]) -> Result<Self, EstimatorError> {
        Ok(Self {
            estimate: KernelDensityEstimator::cross_validated().fit(data)?,
            label: "kernel-cv",
        })
    }
}

impl SelectivityEstimator for KernelSelectivity {
    fn name(&self) -> String {
        self.label.to_string()
    }

    fn estimate(&self, query: &RangeQuery) -> f64 {
        integrate_density(query, |x| self.estimate.evaluate(x))
    }
}

/// A batch-fitted wavelet selectivity estimator built from an existing
/// [`WaveletDensityEstimate`]; useful when the density estimate is already
/// available (e.g. shared with other components of a query optimiser).
#[derive(Debug, Clone)]
pub struct FittedWaveletSelectivity {
    estimate: WaveletDensityEstimate,
}

impl FittedWaveletSelectivity {
    /// Wraps an existing density estimate.
    pub fn new(estimate: WaveletDensityEstimate) -> Self {
        Self { estimate }
    }

    /// Fits the STCV estimator to a batch of data.
    pub fn fit(data: &[f64]) -> Result<Self, EstimatorError> {
        Ok(Self {
            estimate: WaveletDensityEstimator::stcv().fit(data)?,
        })
    }
}

impl SelectivityEstimator for FittedWaveletSelectivity {
    fn name(&self) -> String {
        "wavelet-batch".to_string()
    }

    fn estimate(&self, query: &RangeQuery) -> f64 {
        integrate_density(query, |x| self.estimate.evaluate(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{evaluate_workload, WorkloadGenerator};
    use wavedens_processes::{seeded_rng, DependenceCase, SineUniformMixture};

    fn dependent_sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = seeded_rng(seed);
        DependenceCase::ExpandingMap.simulate(&SineUniformMixture::paper(), n, &mut rng)
    }

    #[test]
    fn empirical_selectivity_counts_exactly() {
        let data = vec![0.1, 0.2, 0.3, 0.4, 0.5];
        let truth = EmpiricalSelectivity::new(&data);
        let q = RangeQuery::new(0.15, 0.45).unwrap();
        assert!((truth.estimate(&q) - 0.6).abs() < 1e-12);
        let all = RangeQuery::new(0.0, 1.0).unwrap();
        assert_eq!(truth.estimate(&all), 1.0);
        let none = RangeQuery::new(0.6, 0.9).unwrap();
        assert_eq!(truth.estimate(&none), 0.0);
    }

    #[test]
    fn histogram_selectivity_interpolates_partial_buckets() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 + 0.5) / 1000.0).collect();
        let hist = HistogramSelectivity::fit(&data, 20);
        assert_eq!(hist.buckets(), 20);
        // Uniform data: any range's selectivity is its width.
        for (lo, hi) in [(0.0, 0.5), (0.12, 0.37), (0.81, 0.99)] {
            let q = RangeQuery::new(lo, hi).unwrap();
            assert!(
                (hist.estimate(&q) - (hi - lo)).abs() < 0.01,
                "range [{lo},{hi}]"
            );
        }
    }

    #[test]
    fn wavelet_synopsis_answers_range_queries_accurately() {
        let data = dependent_sample(2048, 1);
        let truth = EmpiricalSelectivity::new(&data);
        let synopsis = WaveletSelectivity::fit(&data).unwrap();
        assert_eq!(synopsis.rows(), 2048);
        let mut rng = seeded_rng(9);
        let workload = WorkloadGenerator::analytical().draw_many(200, &mut rng);
        let summary = evaluate_workload(&synopsis, &truth, &workload);
        assert!(
            summary.mean_absolute_error < 0.03,
            "wavelet MAE {}",
            summary.mean_absolute_error
        );
        assert!(summary.max_absolute_error < 0.12);
    }

    #[test]
    fn wavelet_synopsis_beats_coarse_histogram_on_dependent_stream() {
        let data = dependent_sample(4096, 2);
        let truth = EmpiricalSelectivity::new(&data);
        let wavelet = WaveletSelectivity::fit(&data).unwrap();
        let coarse_hist = HistogramSelectivity::fit(&data, 8);
        let mut rng = seeded_rng(11);
        let workload = WorkloadGenerator::new(0.02, 0.15)
            .unwrap()
            .draw_many(300, &mut rng);
        let w = evaluate_workload(&wavelet, &truth, &workload);
        let h = evaluate_workload(&coarse_hist, &truth, &workload);
        assert!(
            w.mean_absolute_error < h.mean_absolute_error,
            "wavelet {} vs 8-bucket histogram {}",
            w.mean_absolute_error,
            h.mean_absolute_error
        );
    }

    #[test]
    fn streaming_and_batch_synopses_agree() {
        let data = dependent_sample(1024, 3);
        let mut streaming = WaveletSelectivity::with_expected_rows(1024).unwrap();
        streaming.observe_many(data.iter().copied());
        streaming.refresh().unwrap();
        let q = RangeQuery::new(0.3, 0.6).unwrap();
        let batch = WaveletSelectivity::fit(&data).unwrap();
        assert!((streaming.estimate(&q) - batch.estimate(&q)).abs() < 1e-9);
    }

    #[test]
    fn kernel_baselines_work() {
        let data = dependent_sample(1024, 4);
        let truth = EmpiricalSelectivity::new(&data);
        let rot = KernelSelectivity::rule_of_thumb(&data).unwrap();
        let cv = KernelSelectivity::cross_validated(&data).unwrap();
        assert_eq!(rot.name(), "kernel-rot");
        assert_eq!(cv.name(), "kernel-cv");
        let mut rng = seeded_rng(13);
        let workload = WorkloadGenerator::analytical().draw_many(100, &mut rng);
        for estimator in [&rot as &dyn SelectivityEstimator, &cv] {
            let summary = evaluate_workload(estimator, &truth, &workload);
            assert!(
                summary.mean_absolute_error < 0.05,
                "{}: MAE {}",
                estimator.name(),
                summary.mean_absolute_error
            );
        }
    }

    #[test]
    fn batch_fitted_wrapper_matches_direct_fit() {
        let data = dependent_sample(512, 5);
        let direct = FittedWaveletSelectivity::fit(&data).unwrap();
        let q = RangeQuery::new(0.1, 0.9).unwrap();
        let est = direct.estimate(&q);
        assert!(est > 0.5 && est <= 1.0, "estimate {est}");
        assert_eq!(direct.name(), "wavelet-batch");
    }

    #[test]
    fn empty_synopsis_returns_zero() {
        let synopsis = WaveletSelectivity::with_expected_rows(128).unwrap();
        let q = RangeQuery::new(0.2, 0.8).unwrap();
        assert_eq!(synopsis.estimate(&q), 0.0);
        assert_eq!(synopsis.rows(), 0);
    }

    #[test]
    fn estimates_are_clamped_to_unit_interval() {
        let data = dependent_sample(256, 6);
        let synopsis = WaveletSelectivity::fit(&data).unwrap();
        let q = RangeQuery::new(0.0, 1.0).unwrap();
        let s = synopsis.estimate(&q);
        assert!((0.0..=1.0).contains(&s));
        assert!(s > 0.9, "full-domain selectivity {s}");
    }
}
