//! Cascade-algorithm evaluation of the scaling function `φ` and mother
//! wavelet `ψ` on a dyadic grid.
//!
//! The scaling function of a compactly supported orthonormal wavelet has no
//! closed form; its values are determined by the two-scale refinement
//! equation
//!
//! ```text
//! φ(x) = √2 Σ_k h_k φ(2x − k),            ψ(x) = √2 Σ_k g_k φ(2x − k).
//! ```
//!
//! Values at the integers are the (suitably normalised) eigenvector of the
//! refinement matrix for eigenvalue 1; values at dyadic rationals
//! `m / 2^t` then follow exactly by applying the refinement equation level
//! by level. This is the classical cascade construction used by Wavelab's
//! `MakeWavelet`, which the paper relies on to approximate `ψ_{j,k}(X_i)` on
//! an equispaced grid.
//!
//! Besides pointwise lookup ([`WaveletTable::phi`]/[`psi`](WaveletTable::psi))
//! the table exposes two strided primitives that are mirror images of each
//! other:
//!
//! * [`WaveletTable::accumulate_phi`]/[`accumulate_psi`](WaveletTable::accumulate_psi)
//!   — **one basis function, many points**: sweep one `φ_{j,k}` over a
//!   uniform evaluation grid (the query-side dense-evaluation fast path);
//! * [`WaveletTable::gather_phi`]/[`gather_psi`](WaveletTable::gather_psi)
//!   — **one point, many basis functions**: read one observation at all
//!   active translations of a level (the ingest-side fast path). Because
//!   consecutive translations step the table argument by exactly 1, both
//!   directions reduce to a constant-stride walk over the table with
//!   interpolation weights computed once.

use crate::filters::{FilterError, OrthonormalFilter, WaveletFamily};
use crate::numerics::solve_linear_system;

/// Tabulated values of `φ` and `ψ` on the dyadic grid
/// `{ m 2^{-J} : 0 ≤ m ≤ (L-1) 2^J }` where `L` is the filter length and
/// `J = `[`WaveletTable::levels`].
///
/// Evaluation at arbitrary points uses linear interpolation between grid
/// nodes; with the default `J = 12` the interpolation error is far below the
/// statistical error of any density estimate built on top of it (and it can
/// be checked against the exact Daubechies–Lagarias evaluator in
/// [`crate::daubechies_lagarias`]).
#[derive(Debug, Clone)]
pub struct WaveletTable {
    filter: OrthonormalFilter,
    levels: u32,
    step: f64,
    phi: Vec<f64>,
    psi: Vec<f64>,
    /// Polyphase (phase-major) copies of `phi`/`psi` for the gather fast
    /// path, with node order reversed within a row:
    /// `poly[p · poly_row + (support − q)] = values[q · 2^J + p]`.
    /// Consecutive translations share the fractional phase `p` and step
    /// the node index `q` down by one — ascending reversed-row memory —
    /// so a gather reads two **contiguous forward** runs (rows `p` and
    /// `p + 1`) instead of striding `2^J` entries: ~2 cache lines per
    /// observation/level instead of one per translation, in a loop the
    /// compiler can vectorise.
    phi_poly: Vec<f64>,
    psi_poly: Vec<f64>,
    /// Row length of the polyphase layout (`support + 1` nodes).
    poly_row: usize,
}

/// Default dyadic refinement depth for tables (`2^-12 ≈ 2.4e-4` spacing).
pub const DEFAULT_TABLE_LEVELS: u32 = 12;

impl WaveletTable {
    /// Builds the table for `family` at the default resolution.
    pub fn new(family: WaveletFamily) -> Result<Self, FilterError> {
        Self::with_levels(family, DEFAULT_TABLE_LEVELS)
    }

    /// Builds the table for a filter that has already been constructed.
    pub fn from_filter(filter: OrthonormalFilter, levels: u32) -> Self {
        let (phi, psi) = cascade(&filter, levels);
        let step = 0.5_f64.powi(levels as i32);
        let support = filter.support_length();
        let phi_poly = polyphase(&phi, levels, support);
        let psi_poly = polyphase(&psi, levels, support);
        Self {
            filter,
            levels,
            step,
            phi,
            psi,
            phi_poly,
            psi_poly,
            poly_row: support + 1,
        }
    }

    /// Builds the table for `family` with grid spacing `2^-levels`.
    pub fn with_levels(family: WaveletFamily, levels: u32) -> Result<Self, FilterError> {
        let filter = OrthonormalFilter::new(family)?;
        Ok(Self::from_filter(filter, levels))
    }

    /// The underlying quadrature-mirror filter.
    pub fn filter(&self) -> &OrthonormalFilter {
        &self.filter
    }

    /// Dyadic refinement depth `J`; the grid spacing is `2^-J`.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Right endpoint of the common support `[0, 2N - 1]` of `φ` and `ψ`.
    pub fn support_end(&self) -> f64 {
        self.filter.support_length() as f64
    }

    /// The raw `φ` grid values (spacing `2^-J`, starting at 0).
    pub fn phi_values(&self) -> &[f64] {
        &self.phi
    }

    /// The raw `ψ` grid values.
    pub fn psi_values(&self) -> &[f64] {
        &self.psi
    }

    /// Evaluates the scaling function `φ(x)` (0 outside the support).
    pub fn phi(&self, x: f64) -> f64 {
        interpolate(&self.phi, self.step, x)
    }

    /// Evaluates the mother wavelet `ψ(x)` (0 outside the support).
    pub fn psi(&self, x: f64) -> f64 {
        interpolate(&self.psi, self.step, x)
    }

    /// Numerically integrates `φ` over its support with the trapezoidal rule
    /// on the table grid. Should be ≈ 1; exposed as a health check.
    pub fn phi_integral(&self) -> f64 {
        trapezoid(&self.phi, self.step)
    }

    /// Numerically integrates `ψ`; should be ≈ 0.
    pub fn psi_integral(&self) -> f64 {
        trapezoid(&self.psi, self.step)
    }

    /// Numerically integrates `ψ²`; should be ≈ 1.
    pub fn psi_l2_norm_sq(&self) -> f64 {
        let squared: Vec<f64> = self.psi.iter().map(|v| v * v).collect();
        trapezoid(&squared, self.step)
    }

    /// Accumulates `coeff · φ(start + i·stride)` into `out[i]` for every
    /// slot of `out`.
    ///
    /// This is the dense-evaluation fast path: when a density estimate is
    /// evaluated on a uniform grid, the table argument of one basis
    /// function `φ_{j,k}` advances by the constant `2^j · grid_step`
    /// between neighbouring grid points, so the whole support can be
    /// swept with one strided pass instead of re-deriving the active
    /// translation range at every point. Arguments outside the tabulated
    /// support contribute nothing, exactly as [`WaveletTable::phi`].
    pub fn accumulate_phi(&self, start: f64, stride: f64, coeff: f64, out: &mut [f64]) {
        accumulate_strided(&self.phi, self.step, start, stride, coeff, out);
    }

    /// Accumulates `coeff · ψ(start + i·stride)` into `out[i]`; the `ψ`
    /// counterpart of [`WaveletTable::accumulate_phi`].
    pub fn accumulate_psi(&self, start: f64, stride: f64, coeff: f64, out: &mut [f64]) {
        accumulate_strided(&self.psi, self.step, start, stride, coeff, out);
    }

    /// Gathers `φ(position − (k_first + m))` into `out[m]` for every slot
    /// of `out` — the ingestion-side mirror image of
    /// [`accumulate_phi`](Self::accumulate_phi): where dense evaluation
    /// sweeps *one* basis function over many grid points, the gather reads
    /// *one* observation at many neighbouring translations. Neighbouring
    /// translations shift the table argument by exactly 1, so the table
    /// index moves by the constant integer stride `2^J` and the fractional
    /// interpolation weight is shared by every translation — it is derived
    /// once per `(observation, level)` pair instead of once per
    /// translation. `position` is the level-scaled observation `2^j x`;
    /// the caller applies the `2^{j/2}` normalisation. Arguments outside
    /// the tabulated support yield 0, exactly as [`WaveletTable::phi`].
    #[inline]
    pub fn gather_phi(&self, position: f64, k_first: i64, out: &mut [f64]) {
        gather_strided(
            &self.phi,
            &self.phi_poly,
            self.poly_row,
            self.levels,
            position,
            k_first,
            out,
        );
    }

    /// Gathers `ψ(position − (k_first + m))` into `out[m]`; the `ψ`
    /// counterpart of [`WaveletTable::gather_phi`].
    #[inline]
    pub fn gather_psi(&self, position: f64, k_first: i64, out: &mut [f64]) {
        gather_strided(
            &self.psi,
            &self.psi_poly,
            self.poly_row,
            self.levels,
            position,
            k_first,
            out,
        );
    }

    /// Fused gather → moment-accumulate over the interior fast path: for
    /// every slot `m` computes `v = scale · φ(position − (k_first + m))`
    /// and accumulates `sums[m] += v`, `squares[m] += v²` — bitwise the
    /// same chain as [`gather_phi`](Self::gather_phi) into a scratch row
    /// followed by the scaled-accumulate kernel, but without materialising
    /// the row. Returns `false` (touching nothing) when the window is not
    /// interior to the table — the caller keeps the gather-then-accumulate
    /// fallback, which handles every boundary case.
    /// The `kernel` token is resolved by the caller (once per chunk) so
    /// the per-row call does not re-read the global backend state; use
    /// [`crate::kernels::FusedKernel::resolve`].
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn scatter_phi(
        &self,
        kernel: crate::kernels::FusedKernel,
        position: f64,
        k_first: i64,
        scale: f64,
        sums: &mut [f64],
        squares: &mut [f64],
    ) -> bool {
        scatter_strided(
            &|lo: &[f64], hi: &[f64], w0, w1, s, sums: &mut [f64], squares: &mut [f64]| {
                kernel.lerp_scaled_accumulate(lo, hi, w0, w1, s, sums, squares)
            },
            &self.phi,
            &self.phi_poly,
            self.poly_row,
            self.levels,
            position,
            k_first,
            scale,
            sums,
            squares,
        )
    }

    /// Fused gather → moment-accumulate for `ψ`; the `ψ` counterpart of
    /// [`WaveletTable::scatter_phi`].
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn scatter_psi(
        &self,
        kernel: crate::kernels::FusedKernel,
        position: f64,
        k_first: i64,
        scale: f64,
        sums: &mut [f64],
        squares: &mut [f64],
    ) -> bool {
        scatter_strided(
            &|lo: &[f64], hi: &[f64], w0, w1, s, sums: &mut [f64], squares: &mut [f64]| {
                kernel.lerp_scaled_accumulate(lo, hi, w0, w1, s, sums, squares)
            },
            &self.psi,
            &self.psi_poly,
            self.poly_row,
            self.levels,
            position,
            k_first,
            scale,
            sums,
            squares,
        )
    }

    /// Scatters a whole chunk of observations into one level's running
    /// sums through the fused fast path — the whole-chunk driver over
    /// [`scatter_phi`](Self::scatter_phi): per observation the active
    /// translation window is derived ([`active_translations`]), the fused
    /// kernel accumulates `norm_scale`-normalised values and squares over
    /// the interior window, and boundary windows gather into
    /// `fallback_row` first. The backend is resolved **once per chunk**
    /// and the row loop is compiled per backend, so on the AVX2 path the
    /// vector kernel inlines straight into the loop.
    ///
    /// `level_scale` is `2^j` (observation → position), `norm_scale` the
    /// `2^{j/2}` normalisation; `fallback_row` must hold at least
    /// `⌈support⌉ + 1` slots.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn scatter_rows_phi(
        &self,
        xs: &[f64],
        level_scale: f64,
        norm_scale: f64,
        k_start: i64,
        fallback_row: &mut [f64],
        sums: &mut [f64],
        squares: &mut [f64],
    ) {
        scatter_rows_dispatch(
            &self.phi,
            &self.phi_poly,
            self.poly_row,
            self.levels,
            xs,
            level_scale,
            norm_scale,
            self.support_end(),
            k_start,
            fallback_row,
            sums,
            squares,
        );
    }

    /// The `ψ` counterpart of [`WaveletTable::scatter_rows_phi`].
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn scatter_rows_psi(
        &self,
        xs: &[f64],
        level_scale: f64,
        norm_scale: f64,
        k_start: i64,
        fallback_row: &mut [f64],
        sums: &mut [f64],
        squares: &mut [f64],
    ) {
        scatter_rows_dispatch(
            &self.psi,
            &self.psi_poly,
            self.poly_row,
            self.levels,
            xs,
            level_scale,
            norm_scale,
            self.support_end(),
            k_start,
            fallback_row,
            sums,
            squares,
        );
    }
}

/// The clamped range of translations `k` with `δ_{j,k}(x) ≠ 0`:
/// `δ_{j,k}(x) ≠ 0` requires `0 < position − k < support` (with
/// `position = 2^j x`), i.e. `position − support < k < position`,
/// intersected with the stored window `[k_start, k_start + count)`.
///
/// This derivation is shared by the whole-chunk scatter driver here, the
/// batch coefficient accumulation, the streaming running sums and the
/// pointwise estimate evaluation downstream (re-exported through
/// `wavedens-core`), so the paths cannot drift apart.
pub fn active_translations(
    support: f64,
    position: f64,
    k_start: i64,
    count: usize,
) -> std::ops::RangeInclusive<i64> {
    let k_lo = ((position - support).floor() as i64 + 1).max(k_start);
    let k_hi = (position.ceil() as i64 - 1).min(k_start + count as i64 - 1);
    k_lo..=k_hi
}

/// Resolves the backend once for a whole chunk and hands the row loop a
/// fused op the compiler can inline into it. The AVX2 arm re-enters
/// through a `#[target_feature(enable = "avx2")]` wrapper in
/// [`crate::kernels`] so the intrinsics body fuses into the loop instead
/// of costing an opaque call per `(observation, level)` pair.
#[allow(clippy::too_many_arguments)]
fn scatter_rows_dispatch(
    values: &[f64],
    poly: &[f64],
    poly_row: usize,
    levels: u32,
    xs: &[f64],
    level_scale: f64,
    norm_scale: f64,
    support: f64,
    k_start: i64,
    fallback_row: &mut [f64],
    sums: &mut [f64],
    squares: &mut [f64],
) {
    use crate::kernels::{self, Backend};
    match kernels::active_backend() {
        Backend::Scalar => scatter_rows_impl(
            &kernels::lerp_scaled_accumulate_scalar,
            values,
            poly,
            poly_row,
            levels,
            xs,
            level_scale,
            norm_scale,
            support,
            k_start,
            fallback_row,
            sums,
            squares,
        ),
        Backend::Lanes => scatter_rows_impl(
            &kernels::lerp_scaled_accumulate_lanes,
            values,
            poly,
            poly_row,
            levels,
            xs,
            level_scale,
            norm_scale,
            support,
            k_start,
            fallback_row,
            sums,
            squares,
        ),
        Backend::Intrinsics => kernels::scatter_rows_intrinsics(
            values,
            poly,
            poly_row,
            levels,
            xs,
            level_scale,
            norm_scale,
            support,
            k_start,
            fallback_row,
            sums,
            squares,
        ),
    }
}

/// The backend-generic row loop of the whole-chunk scatter driver; see
/// [`WaveletTable::scatter_rows_phi`]. Per-slot accumulation order is
/// observation order, identical to scattering the rows one at a time.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn scatter_rows_impl(
    fused: &impl FusedOp,
    values: &[f64],
    poly: &[f64],
    poly_row: usize,
    levels: u32,
    xs: &[f64],
    level_scale: f64,
    norm_scale: f64,
    support: f64,
    k_start: i64,
    fallback_row: &mut [f64],
    sums: &mut [f64],
    squares: &mut [f64],
) {
    let window = sums.len();
    let stride = 1_i64 << levels;
    let scale = stride as f64;
    // `φ`/`ψ` supports are `[0, L−1]` with integer length, so the window
    // bounds reduce to integer arithmetic on `⌊position·2^J⌋` (see below).
    let support_i = support as i64;
    debug_assert_eq!(support_i as f64, support);
    let k_last = k_start + window as i64 - 1;
    for &x in xs {
        let position = level_scale * x;
        // One floor of the exact power-of-two scaling `position·2^J`
        // replaces the floor/ceil pair of [`active_translations`]:
        // `⌊position⌋ = pbf_i >> J` (arithmetic shift = floor division),
        // `⌈position⌉ − 1` differs from it only when `position` is an
        // integer (no sub-node fraction and a phase-0 node), and
        // `⌊position − support⌋ = ⌊position⌋ − support` because the
        // support length is an integer. Identical to the shared
        // derivation wherever `position − support` is exact (always for
        // |position| < 2^49; beyond that every touched slot value is 0,
        // so the accumulators cannot differ). Non-finite positions fall
        // out through the saturating cast: the clamps empty the window.
        let pb = position * scale;
        if !pb.is_finite() {
            continue;
        }
        let pbf = pb.floor();
        let pbf_i = pbf as i64;
        let fp = pbf_i >> levels;
        let is_integer = pb == pbf && (pbf_i & (stride - 1)) == 0;
        let k_hi = (fp - is_integer as i64).min(k_last);
        let k_lo = (fp - support_i + 1).max(k_start);
        if k_lo > k_hi {
            continue;
        }
        debug_assert!(
            position.abs() >= 2f64.powi(48) || {
                let r = active_translations(support, position, k_start, window);
                (k_lo, k_hi) == (*r.start(), *r.end())
            },
            "integer window derivation drifted from active_translations \
             (position = {position}, got {k_lo}..={k_hi})"
        );
        let count = (k_hi - k_lo + 1) as usize;
        let offset = (k_lo - k_start) as usize;
        let sums = &mut sums[offset..offset + count];
        let squares = &mut squares[offset..offset + count];
        if !scatter_strided(
            fused, values, poly, poly_row, levels, position, k_lo, norm_scale, sums, squares,
        ) {
            let row = &mut fallback_row[..count];
            gather_strided(values, poly, poly_row, levels, position, k_lo, row);
            crate::kernels::scaled_accumulate(norm_scale, row, sums, squares);
        }
    }
}

/// Reorders a dyadic table into the phase-major, node-reversed polyphase
/// layout `poly[p · (support + 1) + (support − q)] = values[q · 2^J + p]`
/// (absent combinations — only phase 0 reaches node `support` — are
/// zero-padded). A gather over consecutive (ascending) translations walks
/// a row *forward*, so it reads rows `p` and `p + 1` as two contiguous
/// forward runs; see [`gather_strided`].
fn polyphase(values: &[f64], levels: u32, support: usize) -> Vec<f64> {
    let phases = 1_usize << levels;
    let row = support + 1;
    let mut out = vec![0.0; phases * row];
    for (idx, &v) in values.iter().enumerate() {
        let p = idx & (phases - 1);
        let q = idx >> levels;
        out[p * row + (support - q)] = v;
    }
    out
}

/// Strided gather: `out[m] = table(position − k_first − m)`.
///
/// The table position of slot `m` is `(position − k_first − m)·2^J =
/// base − m·2^J` with `base = (position − k_first)·2^J`. The power-of-two
/// scaling is exact and the per-slot stride is pure integer work, so every
/// slot shares one fractional weight computed from `base`; relative to the
/// per-translation [`interpolate`] (which rounds `position − k` anew for
/// each slot) the table argument differs by at most one rounding of the
/// initial difference, i.e. the gathered values agree to ≈ 1e-12 relative.
/// The boundary conventions (0 outside the support, last node at the
/// right edge) are identical.
///
/// When every slot is interior to the table — the invariant for active
/// translation windows — the per-slot stride `2^J` collapses in the
/// polyphase layout to two contiguous row segments sharing the weights
/// `(1 − frac, frac)`: a branch-free multiply–add sweep over ~2 cache
/// lines. Windows touching a table edge (or a phase-`2^J − 1` base whose
/// interpolation neighbour wraps to the next phase-0 node) fall back to
/// the per-slot walk of the dense table, which handles every boundary
/// case.
#[allow(clippy::too_many_arguments)]
#[inline]
fn gather_strided(
    values: &[f64],
    poly: &[f64],
    poly_row: usize,
    levels: u32,
    position: f64,
    k_first: i64,
    out: &mut [f64],
) {
    let stride = 1_i64 << levels;
    let scale = stride as f64;
    // `position · 2^J` is a power-of-two multiply — exact unless it
    // overflows — so flooring it *before* subtracting the (integer)
    // translation offset yields the identical fractional weight while
    // keeping the floor off the critical path of the window derivation.
    let pb = position * scale;
    if !pb.is_finite() {
        out.fill(0.0);
        return;
    }
    let pbf = pb.floor();
    let frac = pb - pbf;
    let w0 = 1.0 - frac;
    let w1 = frac;
    let idx0 = (pbf as i64).saturating_sub(k_first.saturating_mul(stride));
    let count = out.len();
    let last = idx0.saturating_sub((count as i64 - 1).max(0) * stride);
    let phase = idx0 & (stride - 1);
    if last >= 0 && idx0 + 1 < values.len() as i64 && phase + 1 < stride {
        // All slots interior: slot `m` reads node `q0 − m` of rows
        // `phase` and `phase + 1`, which in the node-reversed layout is
        // the *forward* run starting at `support − q0` — two contiguous
        // ascending slices sharing the weights, a loop the vectoriser
        // likes.
        let q0 = (idx0 >> levels) as usize;
        let support = poly_row - 1;
        let start = phase as usize * poly_row + (support - q0);
        let lo_run = &poly[start..start + count];
        let hi_run = &poly[start + poly_row..start + poly_row + count];
        crate::kernels::lerp_runs(lo_run, hi_run, w0, w1, out);
        return;
    }
    let mut idx = idx0;
    for slot in out.iter_mut() {
        let i = idx as usize;
        *slot = if idx < 0 || idx + 1 > values.len() as i64 {
            0.0
        } else if i + 1 == values.len() {
            values[i]
        } else {
            values[i] * w0 + values[i + 1] * w1
        };
        idx = idx.saturating_sub(stride);
    }
}

/// Fused strided gather + moment accumulation over the interior fast
/// path of [`gather_strided`]: slot `m` accumulates
/// `v = scale · table(position − k_first − m)` into `sums[m]` and `v²`
/// into `squares[m]`. Interior-window detection, index arithmetic and the
/// per-slot lerp are *identical* to [`gather_strided`] — the only change
/// is that the lerped value feeds the moment update directly instead of a
/// scratch row, skipping one store + reload per slot. Returns `false`
/// without touching the accumulators when any slot could leave the table
/// (edge, phase wrap, non-finite base); the caller falls back to
/// gather-into-scratch, which owns every boundary convention.
/// Signature of the fused per-window op: `(lo, hi, w0, w1, scale, sums,
/// squares)` with [`crate::kernels::lerp_scaled_accumulate`] semantics.
/// Passed as a closure so whole-chunk drivers can substitute a
/// backend-specific body that inlines into the row loop (the AVX2 driver
/// defines it inside a `#[target_feature]` function, which the closure
/// inherits).
pub(crate) trait FusedOp: Fn(&[f64], &[f64], f64, f64, f64, &mut [f64], &mut [f64]) {}
impl<F: Fn(&[f64], &[f64], f64, f64, f64, &mut [f64], &mut [f64])> FusedOp for F {}

#[allow(clippy::too_many_arguments)]
#[inline]
fn scatter_strided(
    fused: &impl FusedOp,
    values: &[f64],
    poly: &[f64],
    poly_row: usize,
    levels: u32,
    position: f64,
    k_first: i64,
    scale: f64,
    sums: &mut [f64],
    squares: &mut [f64],
) -> bool {
    let stride = 1_i64 << levels;
    // Same exact-scaling index derivation as [`gather_strided`]; the two
    // must stay identical for the fused/unfused bitwise equivalence.
    let pb = position * stride as f64;
    if !pb.is_finite() {
        return false;
    }
    let pbf = pb.floor();
    let frac = pb - pbf;
    let idx0 = (pbf as i64).saturating_sub(k_first.saturating_mul(stride));
    let count = sums.len();
    debug_assert_eq!(count, squares.len());
    let last = idx0.saturating_sub((count as i64 - 1).max(0) * stride);
    let phase = idx0 & (stride - 1);
    if last >= 0 && idx0 + 1 < values.len() as i64 && phase + 1 < stride {
        let q0 = (idx0 >> levels) as usize;
        let support = poly_row - 1;
        let start = phase as usize * poly_row + (support - q0);
        let lo_run = &poly[start..start + count];
        let hi_run = &poly[start + poly_row..start + poly_row + count];
        fused(lo_run, hi_run, 1.0 - frac, frac, scale, sums, squares);
        return true;
    }
    false
}

/// Strided linear interpolation: `out[i] += coeff · table(start + i·stride)`.
///
/// The table position is recomputed multiplicatively per slot (not by
/// repeated addition), so there is no cumulative drift over long grids.
/// The per-slot sweep is the dense-eval kernel of [`crate::kernels`]:
/// interior blocks run branch-free in micro-vector lanes, boundary slots
/// keep the pointwise conventions of [`interpolate`].
fn accumulate_strided(
    values: &[f64],
    step: f64,
    start: f64,
    stride: f64,
    coeff: f64,
    out: &mut [f64],
) {
    let inv_step = 1.0 / step;
    let pos0 = start * inv_step;
    let dpos = stride * inv_step;
    crate::kernels::accumulate_lerp(values, pos0, dpos, coeff, out);
}

fn trapezoid(values: &[f64], step: f64) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let inner: f64 = values[1..values.len() - 1].iter().sum();
    step * (0.5 * values[0] + inner + 0.5 * values[values.len() - 1])
}

fn interpolate(values: &[f64], step: f64, x: f64) -> f64 {
    if x < 0.0 {
        return 0.0;
    }
    let pos = x / step;
    let idx = pos.floor() as usize;
    if idx + 1 >= values.len() {
        return if idx + 1 == values.len() {
            values[idx]
        } else {
            0.0
        };
    }
    let frac = pos - idx as f64;
    values[idx] * (1.0 - frac) + values[idx + 1] * frac
}

/// Runs the cascade algorithm, returning the `φ` and `ψ` tables on the grid
/// of spacing `2^-levels` over `[0, L-1]`.
fn cascade(filter: &OrthonormalFilter, levels: u32) -> (Vec<f64>, Vec<f64>) {
    let h = filter.lowpass();
    let g = filter.highpass();
    let len = h.len();
    let support = len - 1;
    let sqrt2 = std::f64::consts::SQRT_2;

    // Step 1: φ at the integers 0..=support.
    let mut phi_int = vec![0.0_f64; support + 1];
    if len == 2 {
        // Haar: φ = 1 on [0, 1). The convention φ(0)=1, φ(1)=0 keeps the
        // partition of unity exact on the half-open cells.
        phi_int[0] = 1.0;
    } else {
        let dim = support - 1; // interior integers 1..=support-1
        let mut matrix = vec![vec![0.0_f64; dim]; dim];
        for (row, item) in matrix.iter_mut().enumerate() {
            let i = row + 1;
            for (col, cell) in item.iter_mut().enumerate() {
                let j = col + 1;
                let k = 2 * i as i64 - j as i64;
                let entry = if (0..len as i64).contains(&k) {
                    sqrt2 * h[k as usize]
                } else {
                    0.0
                };
                *cell = entry - if row == col { 1.0 } else { 0.0 };
            }
        }
        // Replace one equation by the normalisation Σ φ(i) = 1 (partition of
        // unity at integer shifts). Try each row until the system is
        // non-singular.
        let mut solved = None;
        for replace in (0..dim).rev() {
            let mut a = matrix.clone();
            let mut b = vec![0.0_f64; dim];
            for cell in a[replace].iter_mut() {
                *cell = 1.0;
            }
            b[replace] = 1.0;
            if let Some(sol) = solve_linear_system(&a, &b) {
                solved = Some(sol);
                break;
            }
        }
        let sol = solved.expect("refinement eigenproblem must be solvable for orthonormal filters");
        for (i, v) in sol.into_iter().enumerate() {
            phi_int[i + 1] = v;
        }
    }

    // Step 2: refine to dyadic rationals level by level.
    let mut phi = phi_int;
    for t in 1..=levels {
        let new_len = support * (1 << t) + 1;
        let mut next = vec![0.0_f64; new_len];
        for (m, value) in next.iter_mut().enumerate() {
            if m % 2 == 0 {
                *value = phi[m / 2];
            } else {
                // φ(m/2^t) = √2 Σ_k h_k φ(m/2^{t-1} − k); the argument lies on
                // the coarser grid with index m − k·2^{t-1}.
                let mut acc = 0.0;
                for (k, &hk) in h.iter().enumerate() {
                    let idx = m as i64 - (k as i64) * (1 << (t - 1));
                    if idx >= 0 && (idx as usize) < phi.len() {
                        acc += hk * phi[idx as usize];
                    }
                }
                *value = sqrt2 * acc;
            }
        }
        phi = next;
    }

    // Step 3: ψ(m/2^J) = √2 Σ_k g_k φ(2m/2^J − k·2^J/2^J) — the argument is on
    // the same grid with index 2m − k·2^J.
    let scale = 1_i64 << levels;
    let mut psi = vec![0.0_f64; phi.len()];
    for (m, value) in psi.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (k, &gk) in g.iter().enumerate() {
            let idx = 2 * m as i64 - (k as i64) * scale;
            if idx >= 0 && (idx as usize) < phi.len() {
                acc += gk * phi[idx as usize];
            }
        }
        *value = sqrt2 * acc;
    }

    (phi, psi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(family: WaveletFamily) -> WaveletTable {
        WaveletTable::with_levels(family, 10).unwrap()
    }

    #[test]
    fn haar_table_is_indicator() {
        let t = table(WaveletFamily::Haar);
        assert!((t.phi(0.25) - 1.0).abs() < 1e-12);
        assert!((t.phi(0.75) - 1.0).abs() < 1e-12);
        assert!(t.phi(1.5).abs() < 1e-12);
        assert!((t.psi(0.25) - 1.0).abs() < 1e-9);
        assert!((t.psi(0.75) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn phi_integrates_to_one() {
        for fam in [
            WaveletFamily::Haar,
            WaveletFamily::Daubechies(2),
            WaveletFamily::Daubechies(4),
            WaveletFamily::Symmlet(8),
        ] {
            let t = table(fam);
            // The trapezoidal rule loses half a grid cell at the Haar jump,
            // hence the 1e-3 tolerance (the grid spacing is 2^-10).
            assert!(
                (t.phi_integral() - 1.0).abs() < 1e-3,
                "{}: ∫φ = {}",
                fam.name(),
                t.phi_integral()
            );
        }
    }

    #[test]
    fn psi_integrates_to_zero_and_has_unit_norm() {
        for fam in [
            WaveletFamily::Daubechies(2),
            WaveletFamily::Daubechies(6),
            WaveletFamily::Symmlet(8),
        ] {
            let t = table(fam);
            assert!(t.psi_integral().abs() < 1e-6, "{}: ∫ψ", fam.name());
            assert!(
                (t.psi_l2_norm_sq() - 1.0).abs() < 1e-3,
                "{}: ∫ψ² = {}",
                fam.name(),
                t.psi_l2_norm_sq()
            );
        }
    }

    #[test]
    fn phi_satisfies_partition_of_unity() {
        let t = table(WaveletFamily::Symmlet(8));
        let support = t.support_end() as i64;
        for &x in &[0.1_f64, 0.37, 0.5, 0.83] {
            let total: f64 = (-support..=support).map(|k| t.phi(x - k as f64)).sum();
            assert!((total - 1.0).abs() < 1e-6, "Σ_k φ(x-k) = {total} at x={x}");
        }
    }

    #[test]
    fn phi_satisfies_refinement_equation() {
        let t = table(WaveletFamily::Daubechies(4));
        let h = t.filter().lowpass().to_vec();
        let sqrt2 = std::f64::consts::SQRT_2;
        for &x in &[0.3_f64, 1.2, 2.7, 4.9, 6.1] {
            let lhs = t.phi(x);
            let rhs: f64 = h
                .iter()
                .enumerate()
                .map(|(k, &hk)| sqrt2 * hk * t.phi(2.0 * x - k as f64))
                .sum();
            assert!(
                (lhs - rhs).abs() < 1e-4,
                "refinement violated at x={x}: {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn values_outside_support_are_zero() {
        let t = table(WaveletFamily::Symmlet(8));
        assert_eq!(t.phi(-0.5), 0.0);
        assert_eq!(t.psi(-1e-9), 0.0);
        assert_eq!(t.phi(t.support_end() + 0.1), 0.0);
        assert_eq!(t.psi(1e9), 0.0);
    }

    #[test]
    fn strided_accumulation_matches_pointwise_interpolation() {
        let t = table(WaveletFamily::Symmlet(8));
        for &(start, stride, coeff) in &[
            (-1.3_f64, 0.017_f64, 2.5_f64),
            (0.0, 0.29, -0.75),
            (12.9, 0.5, 1.0),
            (3.4, 1.7e-3, 4.0),
        ] {
            let mut phi_out = vec![0.0_f64; 500];
            let mut psi_out = vec![0.0_f64; 500];
            t.accumulate_phi(start, stride, coeff, &mut phi_out);
            t.accumulate_psi(start, stride, coeff, &mut psi_out);
            for i in 0..500 {
                let x = start + stride * i as f64;
                assert!(
                    (phi_out[i] - coeff * t.phi(x)).abs() < 1e-12,
                    "φ strided mismatch at slot {i} (x = {x})"
                );
                assert!(
                    (psi_out[i] - coeff * t.psi(x)).abs() < 1e-12,
                    "ψ strided mismatch at slot {i} (x = {x})"
                );
            }
        }
    }

    #[test]
    fn strided_accumulation_adds_onto_existing_values() {
        let t = table(WaveletFamily::Daubechies(4));
        let mut out = vec![1.0_f64; 64];
        t.accumulate_phi(0.5, 0.05, 2.0, &mut out);
        for (i, v) in out.iter().enumerate() {
            let expected = 1.0 + 2.0 * t.phi(0.5 + 0.05 * i as f64);
            assert!((v - expected).abs() < 1e-12, "slot {i}");
        }
    }

    #[test]
    fn strided_gather_matches_pointwise_interpolation() {
        for fam in [
            WaveletFamily::Haar,
            WaveletFamily::Daubechies(4),
            WaveletFamily::Symmlet(8),
        ] {
            let t = table(fam);
            for &(position, k_first) in &[
                (0.37_f64, -14_i64),
                (5.9, 0),
                (1000.25, 990),
                (3.0, -2), // integer position: frac is exactly 0
                (t.support_end(), 0),
                (-4.2, -20),
            ] {
                let mut phi_out = vec![f64::NAN; 24];
                let mut psi_out = vec![f64::NAN; 24];
                t.gather_phi(position, k_first, &mut phi_out);
                t.gather_psi(position, k_first, &mut psi_out);
                for m in 0..24 {
                    let x = position - (k_first + m as i64) as f64;
                    let tol = |reference: f64| 1e-12 * (1.0 + reference.abs());
                    assert!(
                        (phi_out[m] - t.phi(x)).abs() <= tol(t.phi(x)),
                        "{}: φ gather mismatch at slot {m} (x = {x})",
                        fam.name()
                    );
                    assert!(
                        (psi_out[m] - t.psi(x)).abs() <= tol(t.psi(x)),
                        "{}: ψ gather mismatch at slot {m} (x = {x})",
                        fam.name()
                    );
                }
            }
        }
    }

    /// Exactly-dyadic positions (the table-node hits ingestion sees when
    /// an observation lands on a grid point) keep the shared fractional
    /// weight exactly 0, so the gather reproduces the raw table nodes.
    #[test]
    fn strided_gather_hits_table_nodes_exactly() {
        let t = table(WaveletFamily::Symmlet(8));
        // position 3.5 over window k ∈ {-2,…,3}: arguments 5.5, 4.5, … are
        // all exact table nodes (the grid spacing is 2^-10).
        let mut out = vec![f64::NAN; 6];
        t.gather_phi(3.5, -2, &mut out);
        for (m, v) in out.iter().enumerate() {
            let x = 3.5 - (-2 + m as i64) as f64;
            let node = (x * 1024.0) as usize;
            assert_eq!(*v, t.phi_values()[node], "slot {m} (x = {x})");
        }
    }

    /// The fused scatter must be bitwise the gather-into-scratch chain on
    /// interior windows, and must decline (returning `false`, accumulators
    /// untouched) exactly when the gather would take its boundary path.
    #[test]
    fn fused_scatter_matches_gather_then_accumulate() {
        for fam in [
            WaveletFamily::Haar,
            WaveletFamily::Daubechies(4),
            WaveletFamily::Symmlet(8),
        ] {
            let t = table(fam);
            for &(position, k_first) in &[
                (0.37_f64, -14_i64),
                (5.9, 0),
                (3.0, -2),
                (t.support_end(), 0),
                (-4.2, -20),
                (f64::NAN, 0),
            ] {
                let scale = 1.75_f64;
                let kernel = crate::kernels::FusedKernel::resolve();
                let mut row = vec![0.0_f64; 12];
                t.gather_phi(position, k_first, &mut row);
                let mut sums = vec![0.5_f64; 12];
                let mut squares = vec![0.25_f64; 12];
                let fused =
                    t.scatter_phi(kernel, position, k_first, scale, &mut sums, &mut squares);
                if fused {
                    for m in 0..12 {
                        let v = scale * row[m];
                        assert_eq!(sums[m], 0.5 + v, "{}: sums slot {m}", fam.name());
                        assert_eq!(squares[m], 0.25 + v * v, "{}: squares slot {m}", fam.name());
                    }
                } else {
                    assert!(
                        sums.iter().all(|v| *v == 0.5),
                        "{}: sums touched",
                        fam.name()
                    );
                    assert!(
                        squares.iter().all(|v| *v == 0.25),
                        "{}: squares touched",
                        fam.name()
                    );
                }
            }
        }
    }

    #[test]
    fn gather_handles_non_finite_positions() {
        let t = table(WaveletFamily::Symmlet(8));
        for position in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut out = vec![f64::NAN; 8];
            t.gather_phi(position, 0, &mut out);
            assert!(out.iter().all(|v| *v == 0.0), "position {position}");
        }
    }

    #[test]
    fn deeper_tables_refine_consistently() {
        let coarse = WaveletTable::with_levels(WaveletFamily::Daubechies(3), 8).unwrap();
        let fine = WaveletTable::with_levels(WaveletFamily::Daubechies(3), 12).unwrap();
        for i in 0..40 {
            let x = 0.12 + i as f64 * 0.11;
            assert!(
                (coarse.phi(x) - fine.phi(x)).abs() < 1e-3,
                "tables disagree at {x}"
            );
        }
    }
}
