//! Cascade-algorithm evaluation of the scaling function `φ` and mother
//! wavelet `ψ` on a dyadic grid.
//!
//! The scaling function of a compactly supported orthonormal wavelet has no
//! closed form; its values are determined by the two-scale refinement
//! equation
//!
//! ```text
//! φ(x) = √2 Σ_k h_k φ(2x − k),            ψ(x) = √2 Σ_k g_k φ(2x − k).
//! ```
//!
//! Values at the integers are the (suitably normalised) eigenvector of the
//! refinement matrix for eigenvalue 1; values at dyadic rationals
//! `m / 2^t` then follow exactly by applying the refinement equation level
//! by level. This is the classical cascade construction used by Wavelab's
//! `MakeWavelet`, which the paper relies on to approximate `ψ_{j,k}(X_i)` on
//! an equispaced grid.
//!
//! Besides pointwise lookup ([`WaveletTable::phi`]/[`psi`](WaveletTable::psi))
//! the table exposes two strided primitives that are mirror images of each
//! other:
//!
//! * [`WaveletTable::accumulate_phi`]/[`accumulate_psi`](WaveletTable::accumulate_psi)
//!   — **one basis function, many points**: sweep one `φ_{j,k}` over a
//!   uniform evaluation grid (the query-side dense-evaluation fast path);
//! * [`WaveletTable::gather_phi`]/[`gather_psi`](WaveletTable::gather_psi)
//!   — **one point, many basis functions**: read one observation at all
//!   active translations of a level (the ingest-side fast path). Because
//!   consecutive translations step the table argument by exactly 1, both
//!   directions reduce to a constant-stride walk over the table with
//!   interpolation weights computed once.

use crate::filters::{FilterError, OrthonormalFilter, WaveletFamily};
use crate::numerics::solve_linear_system;

/// Tabulated values of `φ` and `ψ` on the dyadic grid
/// `{ m 2^{-J} : 0 ≤ m ≤ (L-1) 2^J }` where `L` is the filter length and
/// `J = `[`WaveletTable::levels`].
///
/// Evaluation at arbitrary points uses linear interpolation between grid
/// nodes; with the default `J = 12` the interpolation error is far below the
/// statistical error of any density estimate built on top of it (and it can
/// be checked against the exact Daubechies–Lagarias evaluator in
/// [`crate::daubechies_lagarias`]).
#[derive(Debug, Clone)]
pub struct WaveletTable {
    filter: OrthonormalFilter,
    levels: u32,
    step: f64,
    phi: Vec<f64>,
    psi: Vec<f64>,
    /// Polyphase (phase-major) copies of `phi`/`psi` for the gather fast
    /// path, with node order reversed within a row:
    /// `poly[p · poly_row + (support − q)] = values[q · 2^J + p]`.
    /// Consecutive translations share the fractional phase `p` and step
    /// the node index `q` down by one — ascending reversed-row memory —
    /// so a gather reads two **contiguous forward** runs (rows `p` and
    /// `p + 1`) instead of striding `2^J` entries: ~2 cache lines per
    /// observation/level instead of one per translation, in a loop the
    /// compiler can vectorise.
    phi_poly: Vec<f64>,
    psi_poly: Vec<f64>,
    /// Row length of the polyphase layout (`support + 1` nodes).
    poly_row: usize,
}

/// Default dyadic refinement depth for tables (`2^-12 ≈ 2.4e-4` spacing).
pub const DEFAULT_TABLE_LEVELS: u32 = 12;

impl WaveletTable {
    /// Builds the table for `family` at the default resolution.
    pub fn new(family: WaveletFamily) -> Result<Self, FilterError> {
        Self::with_levels(family, DEFAULT_TABLE_LEVELS)
    }

    /// Builds the table for a filter that has already been constructed.
    pub fn from_filter(filter: OrthonormalFilter, levels: u32) -> Self {
        let (phi, psi) = cascade(&filter, levels);
        let step = 0.5_f64.powi(levels as i32);
        let support = filter.support_length();
        let phi_poly = polyphase(&phi, levels, support);
        let psi_poly = polyphase(&psi, levels, support);
        Self {
            filter,
            levels,
            step,
            phi,
            psi,
            phi_poly,
            psi_poly,
            poly_row: support + 1,
        }
    }

    /// Builds the table for `family` with grid spacing `2^-levels`.
    pub fn with_levels(family: WaveletFamily, levels: u32) -> Result<Self, FilterError> {
        let filter = OrthonormalFilter::new(family)?;
        Ok(Self::from_filter(filter, levels))
    }

    /// The underlying quadrature-mirror filter.
    pub fn filter(&self) -> &OrthonormalFilter {
        &self.filter
    }

    /// Dyadic refinement depth `J`; the grid spacing is `2^-J`.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Right endpoint of the common support `[0, 2N - 1]` of `φ` and `ψ`.
    pub fn support_end(&self) -> f64 {
        self.filter.support_length() as f64
    }

    /// The raw `φ` grid values (spacing `2^-J`, starting at 0).
    pub fn phi_values(&self) -> &[f64] {
        &self.phi
    }

    /// The raw `ψ` grid values.
    pub fn psi_values(&self) -> &[f64] {
        &self.psi
    }

    /// Evaluates the scaling function `φ(x)` (0 outside the support).
    pub fn phi(&self, x: f64) -> f64 {
        interpolate(&self.phi, self.step, x)
    }

    /// Evaluates the mother wavelet `ψ(x)` (0 outside the support).
    pub fn psi(&self, x: f64) -> f64 {
        interpolate(&self.psi, self.step, x)
    }

    /// Numerically integrates `φ` over its support with the trapezoidal rule
    /// on the table grid. Should be ≈ 1; exposed as a health check.
    pub fn phi_integral(&self) -> f64 {
        trapezoid(&self.phi, self.step)
    }

    /// Numerically integrates `ψ`; should be ≈ 0.
    pub fn psi_integral(&self) -> f64 {
        trapezoid(&self.psi, self.step)
    }

    /// Numerically integrates `ψ²`; should be ≈ 1.
    pub fn psi_l2_norm_sq(&self) -> f64 {
        let squared: Vec<f64> = self.psi.iter().map(|v| v * v).collect();
        trapezoid(&squared, self.step)
    }

    /// Accumulates `coeff · φ(start + i·stride)` into `out[i]` for every
    /// slot of `out`.
    ///
    /// This is the dense-evaluation fast path: when a density estimate is
    /// evaluated on a uniform grid, the table argument of one basis
    /// function `φ_{j,k}` advances by the constant `2^j · grid_step`
    /// between neighbouring grid points, so the whole support can be
    /// swept with one strided pass instead of re-deriving the active
    /// translation range at every point. Arguments outside the tabulated
    /// support contribute nothing, exactly as [`WaveletTable::phi`].
    pub fn accumulate_phi(&self, start: f64, stride: f64, coeff: f64, out: &mut [f64]) {
        accumulate_strided(&self.phi, self.step, start, stride, coeff, out);
    }

    /// Accumulates `coeff · ψ(start + i·stride)` into `out[i]`; the `ψ`
    /// counterpart of [`WaveletTable::accumulate_phi`].
    pub fn accumulate_psi(&self, start: f64, stride: f64, coeff: f64, out: &mut [f64]) {
        accumulate_strided(&self.psi, self.step, start, stride, coeff, out);
    }

    /// Gathers `φ(position − (k_first + m))` into `out[m]` for every slot
    /// of `out` — the ingestion-side mirror image of
    /// [`accumulate_phi`](Self::accumulate_phi): where dense evaluation
    /// sweeps *one* basis function over many grid points, the gather reads
    /// *one* observation at many neighbouring translations. Neighbouring
    /// translations shift the table argument by exactly 1, so the table
    /// index moves by the constant integer stride `2^J` and the fractional
    /// interpolation weight is shared by every translation — it is derived
    /// once per `(observation, level)` pair instead of once per
    /// translation. `position` is the level-scaled observation `2^j x`;
    /// the caller applies the `2^{j/2}` normalisation. Arguments outside
    /// the tabulated support yield 0, exactly as [`WaveletTable::phi`].
    #[inline]
    pub fn gather_phi(&self, position: f64, k_first: i64, out: &mut [f64]) {
        gather_strided(
            &self.phi,
            &self.phi_poly,
            self.poly_row,
            self.levels,
            position,
            k_first,
            out,
        );
    }

    /// Gathers `ψ(position − (k_first + m))` into `out[m]`; the `ψ`
    /// counterpart of [`WaveletTable::gather_phi`].
    #[inline]
    pub fn gather_psi(&self, position: f64, k_first: i64, out: &mut [f64]) {
        gather_strided(
            &self.psi,
            &self.psi_poly,
            self.poly_row,
            self.levels,
            position,
            k_first,
            out,
        );
    }
}

/// Reorders a dyadic table into the phase-major, node-reversed polyphase
/// layout `poly[p · (support + 1) + (support − q)] = values[q · 2^J + p]`
/// (absent combinations — only phase 0 reaches node `support` — are
/// zero-padded). A gather over consecutive (ascending) translations walks
/// a row *forward*, so it reads rows `p` and `p + 1` as two contiguous
/// forward runs; see [`gather_strided`].
fn polyphase(values: &[f64], levels: u32, support: usize) -> Vec<f64> {
    let phases = 1_usize << levels;
    let row = support + 1;
    let mut out = vec![0.0; phases * row];
    for (idx, &v) in values.iter().enumerate() {
        let p = idx & (phases - 1);
        let q = idx >> levels;
        out[p * row + (support - q)] = v;
    }
    out
}

/// Strided gather: `out[m] = table(position − k_first − m)`.
///
/// The table position of slot `m` is `(position − k_first − m)·2^J =
/// base − m·2^J` with `base = (position − k_first)·2^J`. The power-of-two
/// scaling is exact and the per-slot stride is pure integer work, so every
/// slot shares one fractional weight computed from `base`; relative to the
/// per-translation [`interpolate`] (which rounds `position − k` anew for
/// each slot) the table argument differs by at most one rounding of the
/// initial difference, i.e. the gathered values agree to ≈ 1e-12 relative.
/// The boundary conventions (0 outside the support, last node at the
/// right edge) are identical.
///
/// When every slot is interior to the table — the invariant for active
/// translation windows — the per-slot stride `2^J` collapses in the
/// polyphase layout to two contiguous row segments sharing the weights
/// `(1 − frac, frac)`: a branch-free multiply–add sweep over ~2 cache
/// lines. Windows touching a table edge (or a phase-`2^J − 1` base whose
/// interpolation neighbour wraps to the next phase-0 node) fall back to
/// the per-slot walk of the dense table, which handles every boundary
/// case.
#[allow(clippy::too_many_arguments)]
#[inline]
fn gather_strided(
    values: &[f64],
    poly: &[f64],
    poly_row: usize,
    levels: u32,
    position: f64,
    k_first: i64,
    out: &mut [f64],
) {
    let stride = 1_i64 << levels;
    let scale = stride as f64;
    let base = (position - k_first as f64) * scale;
    if !base.is_finite() {
        out.fill(0.0);
        return;
    }
    let floor = base.floor();
    let frac = base - floor;
    let w0 = 1.0 - frac;
    let w1 = frac;
    let idx0 = floor as i64;
    let count = out.len();
    let last = idx0.saturating_sub((count as i64 - 1).max(0) * stride);
    let phase = idx0 & (stride - 1);
    if last >= 0 && idx0 + 1 < values.len() as i64 && phase + 1 < stride {
        // All slots interior: slot `m` reads node `q0 − m` of rows
        // `phase` and `phase + 1`, which in the node-reversed layout is
        // the *forward* run starting at `support − q0` — two contiguous
        // ascending slices sharing the weights, a loop the vectoriser
        // likes.
        let q0 = (idx0 >> levels) as usize;
        let support = poly_row - 1;
        let start = phase as usize * poly_row + (support - q0);
        let lo_run = poly[start..start + count].iter();
        let hi_run = poly[start + poly_row..start + poly_row + count].iter();
        for ((slot, &a), &b) in out.iter_mut().zip(lo_run).zip(hi_run) {
            *slot = a * w0 + b * w1;
        }
        return;
    }
    let mut idx = idx0;
    for slot in out.iter_mut() {
        let i = idx as usize;
        *slot = if idx < 0 || idx + 1 > values.len() as i64 {
            0.0
        } else if i + 1 == values.len() {
            values[i]
        } else {
            values[i] * w0 + values[i + 1] * w1
        };
        idx = idx.saturating_sub(stride);
    }
}

/// Strided linear interpolation: `out[i] += coeff · table(start + i·stride)`.
///
/// The table position is recomputed multiplicatively per slot (not by
/// repeated addition), so there is no cumulative drift over long grids.
fn accumulate_strided(
    values: &[f64],
    step: f64,
    start: f64,
    stride: f64,
    coeff: f64,
    out: &mut [f64],
) {
    let inv_step = 1.0 / step;
    let pos0 = start * inv_step;
    let dpos = stride * inv_step;
    for (i, slot) in out.iter_mut().enumerate() {
        let pos = pos0 + dpos * i as f64;
        if pos < 0.0 {
            continue;
        }
        let idx = pos as usize;
        if idx + 1 >= values.len() {
            if idx + 1 == values.len() {
                *slot += coeff * values[idx];
            }
            continue;
        }
        let frac = pos - idx as f64;
        *slot += coeff * (values[idx] * (1.0 - frac) + values[idx + 1] * frac);
    }
}

fn trapezoid(values: &[f64], step: f64) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let inner: f64 = values[1..values.len() - 1].iter().sum();
    step * (0.5 * values[0] + inner + 0.5 * values[values.len() - 1])
}

fn interpolate(values: &[f64], step: f64, x: f64) -> f64 {
    if x < 0.0 {
        return 0.0;
    }
    let pos = x / step;
    let idx = pos.floor() as usize;
    if idx + 1 >= values.len() {
        return if idx + 1 == values.len() {
            values[idx]
        } else {
            0.0
        };
    }
    let frac = pos - idx as f64;
    values[idx] * (1.0 - frac) + values[idx + 1] * frac
}

/// Runs the cascade algorithm, returning the `φ` and `ψ` tables on the grid
/// of spacing `2^-levels` over `[0, L-1]`.
fn cascade(filter: &OrthonormalFilter, levels: u32) -> (Vec<f64>, Vec<f64>) {
    let h = filter.lowpass();
    let g = filter.highpass();
    let len = h.len();
    let support = len - 1;
    let sqrt2 = std::f64::consts::SQRT_2;

    // Step 1: φ at the integers 0..=support.
    let mut phi_int = vec![0.0_f64; support + 1];
    if len == 2 {
        // Haar: φ = 1 on [0, 1). The convention φ(0)=1, φ(1)=0 keeps the
        // partition of unity exact on the half-open cells.
        phi_int[0] = 1.0;
    } else {
        let dim = support - 1; // interior integers 1..=support-1
        let mut matrix = vec![vec![0.0_f64; dim]; dim];
        for (row, item) in matrix.iter_mut().enumerate() {
            let i = row + 1;
            for (col, cell) in item.iter_mut().enumerate() {
                let j = col + 1;
                let k = 2 * i as i64 - j as i64;
                let entry = if (0..len as i64).contains(&k) {
                    sqrt2 * h[k as usize]
                } else {
                    0.0
                };
                *cell = entry - if row == col { 1.0 } else { 0.0 };
            }
        }
        // Replace one equation by the normalisation Σ φ(i) = 1 (partition of
        // unity at integer shifts). Try each row until the system is
        // non-singular.
        let mut solved = None;
        for replace in (0..dim).rev() {
            let mut a = matrix.clone();
            let mut b = vec![0.0_f64; dim];
            for cell in a[replace].iter_mut() {
                *cell = 1.0;
            }
            b[replace] = 1.0;
            if let Some(sol) = solve_linear_system(&a, &b) {
                solved = Some(sol);
                break;
            }
        }
        let sol = solved.expect("refinement eigenproblem must be solvable for orthonormal filters");
        for (i, v) in sol.into_iter().enumerate() {
            phi_int[i + 1] = v;
        }
    }

    // Step 2: refine to dyadic rationals level by level.
    let mut phi = phi_int;
    for t in 1..=levels {
        let new_len = support * (1 << t) + 1;
        let mut next = vec![0.0_f64; new_len];
        for (m, value) in next.iter_mut().enumerate() {
            if m % 2 == 0 {
                *value = phi[m / 2];
            } else {
                // φ(m/2^t) = √2 Σ_k h_k φ(m/2^{t-1} − k); the argument lies on
                // the coarser grid with index m − k·2^{t-1}.
                let mut acc = 0.0;
                for (k, &hk) in h.iter().enumerate() {
                    let idx = m as i64 - (k as i64) * (1 << (t - 1));
                    if idx >= 0 && (idx as usize) < phi.len() {
                        acc += hk * phi[idx as usize];
                    }
                }
                *value = sqrt2 * acc;
            }
        }
        phi = next;
    }

    // Step 3: ψ(m/2^J) = √2 Σ_k g_k φ(2m/2^J − k·2^J/2^J) — the argument is on
    // the same grid with index 2m − k·2^J.
    let scale = 1_i64 << levels;
    let mut psi = vec![0.0_f64; phi.len()];
    for (m, value) in psi.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (k, &gk) in g.iter().enumerate() {
            let idx = 2 * m as i64 - (k as i64) * scale;
            if idx >= 0 && (idx as usize) < phi.len() {
                acc += gk * phi[idx as usize];
            }
        }
        *value = sqrt2 * acc;
    }

    (phi, psi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(family: WaveletFamily) -> WaveletTable {
        WaveletTable::with_levels(family, 10).unwrap()
    }

    #[test]
    fn haar_table_is_indicator() {
        let t = table(WaveletFamily::Haar);
        assert!((t.phi(0.25) - 1.0).abs() < 1e-12);
        assert!((t.phi(0.75) - 1.0).abs() < 1e-12);
        assert!(t.phi(1.5).abs() < 1e-12);
        assert!((t.psi(0.25) - 1.0).abs() < 1e-9);
        assert!((t.psi(0.75) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn phi_integrates_to_one() {
        for fam in [
            WaveletFamily::Haar,
            WaveletFamily::Daubechies(2),
            WaveletFamily::Daubechies(4),
            WaveletFamily::Symmlet(8),
        ] {
            let t = table(fam);
            // The trapezoidal rule loses half a grid cell at the Haar jump,
            // hence the 1e-3 tolerance (the grid spacing is 2^-10).
            assert!(
                (t.phi_integral() - 1.0).abs() < 1e-3,
                "{}: ∫φ = {}",
                fam.name(),
                t.phi_integral()
            );
        }
    }

    #[test]
    fn psi_integrates_to_zero_and_has_unit_norm() {
        for fam in [
            WaveletFamily::Daubechies(2),
            WaveletFamily::Daubechies(6),
            WaveletFamily::Symmlet(8),
        ] {
            let t = table(fam);
            assert!(t.psi_integral().abs() < 1e-6, "{}: ∫ψ", fam.name());
            assert!(
                (t.psi_l2_norm_sq() - 1.0).abs() < 1e-3,
                "{}: ∫ψ² = {}",
                fam.name(),
                t.psi_l2_norm_sq()
            );
        }
    }

    #[test]
    fn phi_satisfies_partition_of_unity() {
        let t = table(WaveletFamily::Symmlet(8));
        let support = t.support_end() as i64;
        for &x in &[0.1_f64, 0.37, 0.5, 0.83] {
            let total: f64 = (-support..=support).map(|k| t.phi(x - k as f64)).sum();
            assert!((total - 1.0).abs() < 1e-6, "Σ_k φ(x-k) = {total} at x={x}");
        }
    }

    #[test]
    fn phi_satisfies_refinement_equation() {
        let t = table(WaveletFamily::Daubechies(4));
        let h = t.filter().lowpass().to_vec();
        let sqrt2 = std::f64::consts::SQRT_2;
        for &x in &[0.3_f64, 1.2, 2.7, 4.9, 6.1] {
            let lhs = t.phi(x);
            let rhs: f64 = h
                .iter()
                .enumerate()
                .map(|(k, &hk)| sqrt2 * hk * t.phi(2.0 * x - k as f64))
                .sum();
            assert!(
                (lhs - rhs).abs() < 1e-4,
                "refinement violated at x={x}: {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn values_outside_support_are_zero() {
        let t = table(WaveletFamily::Symmlet(8));
        assert_eq!(t.phi(-0.5), 0.0);
        assert_eq!(t.psi(-1e-9), 0.0);
        assert_eq!(t.phi(t.support_end() + 0.1), 0.0);
        assert_eq!(t.psi(1e9), 0.0);
    }

    #[test]
    fn strided_accumulation_matches_pointwise_interpolation() {
        let t = table(WaveletFamily::Symmlet(8));
        for &(start, stride, coeff) in &[
            (-1.3_f64, 0.017_f64, 2.5_f64),
            (0.0, 0.29, -0.75),
            (12.9, 0.5, 1.0),
            (3.4, 1.7e-3, 4.0),
        ] {
            let mut phi_out = vec![0.0_f64; 500];
            let mut psi_out = vec![0.0_f64; 500];
            t.accumulate_phi(start, stride, coeff, &mut phi_out);
            t.accumulate_psi(start, stride, coeff, &mut psi_out);
            for i in 0..500 {
                let x = start + stride * i as f64;
                assert!(
                    (phi_out[i] - coeff * t.phi(x)).abs() < 1e-12,
                    "φ strided mismatch at slot {i} (x = {x})"
                );
                assert!(
                    (psi_out[i] - coeff * t.psi(x)).abs() < 1e-12,
                    "ψ strided mismatch at slot {i} (x = {x})"
                );
            }
        }
    }

    #[test]
    fn strided_accumulation_adds_onto_existing_values() {
        let t = table(WaveletFamily::Daubechies(4));
        let mut out = vec![1.0_f64; 64];
        t.accumulate_phi(0.5, 0.05, 2.0, &mut out);
        for (i, v) in out.iter().enumerate() {
            let expected = 1.0 + 2.0 * t.phi(0.5 + 0.05 * i as f64);
            assert!((v - expected).abs() < 1e-12, "slot {i}");
        }
    }

    #[test]
    fn strided_gather_matches_pointwise_interpolation() {
        for fam in [
            WaveletFamily::Haar,
            WaveletFamily::Daubechies(4),
            WaveletFamily::Symmlet(8),
        ] {
            let t = table(fam);
            for &(position, k_first) in &[
                (0.37_f64, -14_i64),
                (5.9, 0),
                (1000.25, 990),
                (3.0, -2), // integer position: frac is exactly 0
                (t.support_end(), 0),
                (-4.2, -20),
            ] {
                let mut phi_out = vec![f64::NAN; 24];
                let mut psi_out = vec![f64::NAN; 24];
                t.gather_phi(position, k_first, &mut phi_out);
                t.gather_psi(position, k_first, &mut psi_out);
                for m in 0..24 {
                    let x = position - (k_first + m as i64) as f64;
                    let tol = |reference: f64| 1e-12 * (1.0 + reference.abs());
                    assert!(
                        (phi_out[m] - t.phi(x)).abs() <= tol(t.phi(x)),
                        "{}: φ gather mismatch at slot {m} (x = {x})",
                        fam.name()
                    );
                    assert!(
                        (psi_out[m] - t.psi(x)).abs() <= tol(t.psi(x)),
                        "{}: ψ gather mismatch at slot {m} (x = {x})",
                        fam.name()
                    );
                }
            }
        }
    }

    /// Exactly-dyadic positions (the table-node hits ingestion sees when
    /// an observation lands on a grid point) keep the shared fractional
    /// weight exactly 0, so the gather reproduces the raw table nodes.
    #[test]
    fn strided_gather_hits_table_nodes_exactly() {
        let t = table(WaveletFamily::Symmlet(8));
        // position 3.5 over window k ∈ {-2,…,3}: arguments 5.5, 4.5, … are
        // all exact table nodes (the grid spacing is 2^-10).
        let mut out = vec![f64::NAN; 6];
        t.gather_phi(3.5, -2, &mut out);
        for (m, v) in out.iter().enumerate() {
            let x = 3.5 - (-2 + m as i64) as f64;
            let node = (x * 1024.0) as usize;
            assert_eq!(*v, t.phi_values()[node], "slot {m} (x = {x})");
        }
    }

    #[test]
    fn gather_handles_non_finite_positions() {
        let t = table(WaveletFamily::Symmlet(8));
        for position in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut out = vec![f64::NAN; 8];
            t.gather_phi(position, 0, &mut out);
            assert!(out.iter().all(|v| *v == 0.0), "position {position}");
        }
    }

    #[test]
    fn deeper_tables_refine_consistently() {
        let coarse = WaveletTable::with_levels(WaveletFamily::Daubechies(3), 8).unwrap();
        let fine = WaveletTable::with_levels(WaveletFamily::Daubechies(3), 12).unwrap();
        for i in 0..40 {
            let x = 0.12 + i as f64 * 0.11;
            assert!(
                (coarse.phi(x) - fine.phi(x)).abs() < 1e-3,
                "tables disagree at {x}"
            );
        }
    }
}
