//! Dilated and translated basis functions `φ_{j,k}` and `ψ_{j,k}` and the
//! bookkeeping of which translations matter on a compact estimation
//! interval.
//!
//! With `δ` denoting either `φ` or `ψ`, the paper uses the standard
//! normalisation `δ_{j,k}(x) = 2^{j/2} δ(2^j x − k)`, so that
//! `{φ_{j0,k}} ∪ {ψ_{j,k} : j ≥ j0}` is an orthonormal basis of `L²(ℝ)`.

use crate::cascade::{WaveletTable, DEFAULT_TABLE_LEVELS};
use crate::filters::{FilterError, OrthonormalFilter, WaveletFamily};
use std::ops::RangeInclusive;

/// A ready-to-evaluate wavelet basis: the filter plus tabulated `φ`/`ψ`.
///
/// This is the object density estimators hold on to. Evaluation of
/// `φ_{j,k}(x)`/`ψ_{j,k}(x)` costs one table interpolation.
#[derive(Debug, Clone)]
pub struct WaveletBasis {
    table: WaveletTable,
}

impl WaveletBasis {
    /// Builds the basis for `family` at the default table resolution.
    pub fn new(family: WaveletFamily) -> Result<Self, FilterError> {
        Ok(Self {
            table: WaveletTable::with_levels(family, DEFAULT_TABLE_LEVELS)?,
        })
    }

    /// Builds the basis with an explicit dyadic table depth (spacing
    /// `2^-levels`).
    pub fn with_table_levels(family: WaveletFamily, levels: u32) -> Result<Self, FilterError> {
        Ok(Self {
            table: WaveletTable::with_levels(family, levels)?,
        })
    }

    /// Wraps an already constructed table.
    pub fn from_table(table: WaveletTable) -> Self {
        Self { table }
    }

    /// The wavelet family of this basis.
    pub fn family(&self) -> WaveletFamily {
        self.table.filter().family()
    }

    /// The quadrature-mirror filter pair.
    pub fn filter(&self) -> &OrthonormalFilter {
        self.table.filter()
    }

    /// The underlying value table.
    pub fn table(&self) -> &WaveletTable {
        &self.table
    }

    /// Number of vanishing moments `N` of the mother wavelet. This is the
    /// regularity parameter appearing in the `j0` rule of Theorem 3.1.
    pub fn vanishing_moments(&self) -> usize {
        self.table.filter().vanishing_moments()
    }

    /// Length of the support of `φ` and `ψ` (`2N − 1`), the constant `A` of
    /// the paper up to centring.
    pub fn support_length(&self) -> f64 {
        self.table.support_end()
    }

    /// Mother scaling function `φ(x)`.
    pub fn phi(&self, x: f64) -> f64 {
        self.table.phi(x)
    }

    /// Mother wavelet `ψ(x)`.
    pub fn psi(&self, x: f64) -> f64 {
        self.table.psi(x)
    }

    /// Scaling basis function `φ_{j,k}(x) = 2^{j/2} φ(2^j x − k)`.
    pub fn phi_jk(&self, j: i32, k: i64, x: f64) -> f64 {
        let scale = exp2_i(j);
        scale.sqrt() * self.table.phi(scale * x - k as f64)
    }

    /// Wavelet basis function `ψ_{j,k}(x) = 2^{j/2} ψ(2^j x − k)`.
    pub fn psi_jk(&self, j: i32, k: i64, x: f64) -> f64 {
        let scale = exp2_i(j);
        scale.sqrt() * self.table.psi(scale * x - k as f64)
    }

    /// Support of `δ_{j,k}`: the interval `[k 2^-j, (k + 2N - 1) 2^-j]`.
    pub fn support_jk(&self, j: i32, k: i64) -> (f64, f64) {
        let inv = exp2_i(-j);
        (k as f64 * inv, (k as f64 + self.support_length()) * inv)
    }

    /// Range of translations `k` whose basis functions `δ_{j,k}` have support
    /// overlapping the interval `[lo, hi]` on a set of positive measure.
    ///
    /// The support of `δ_{j,k}` is `[k 2^-j, (k + 2N−1) 2^-j]`, so the
    /// overlapping `k` satisfy `lo·2^j − (2N−1) < k < hi·2^j` (strict
    /// inequalities drop translations that merely touch an endpoint).
    pub fn translations_covering(&self, j: i32, lo: f64, hi: f64) -> RangeInclusive<i64> {
        assert!(lo <= hi, "interval must be ordered");
        let scale = exp2_i(j);
        let min_k = (lo * scale - self.support_length()).floor() as i64 + 1;
        let max_k = (hi * scale).ceil() as i64 - 1;
        min_k..=max_k
    }

    /// Number of translations returned by
    /// [`translations_covering`](Self::translations_covering).
    pub fn translation_count(&self, j: i32, lo: f64, hi: f64) -> usize {
        let range = self.translations_covering(j, lo, hi);
        (range.end() - range.start() + 1).max(0) as usize
    }
}

/// `2^j` for possibly negative `j`.
fn exp2_i(j: i32) -> f64 {
    (j as f64).exp2()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn basis() -> WaveletBasis {
        WaveletBasis::with_table_levels(WaveletFamily::Symmlet(8), 10).unwrap()
    }

    #[test]
    fn dilation_normalisation_is_correct() {
        let b = basis();
        // φ_{j,k}(x) = 2^{j/2} φ(2^j x − k): check a few points directly.
        for &(j, k, x) in &[(3_i32, 2_i64, 0.4_f64), (5, 11, 0.37), (0, 0, 1.9)] {
            let direct = 2f64.powi(j).sqrt() * b.phi(2f64.powi(j) * x - k as f64);
            assert!((b.phi_jk(j, k, x) - direct).abs() < 1e-12);
            let direct_psi = 2f64.powi(j).sqrt() * b.psi(2f64.powi(j) * x - k as f64);
            assert!((b.psi_jk(j, k, x) - direct_psi).abs() < 1e-12);
        }
    }

    #[test]
    fn l2_norm_is_scale_invariant() {
        // ∫ ψ_{j,k}² = ∫ ψ² for every (j, k): verify numerically on a grid.
        let b = basis();
        let norm = |j: i32, k: i64| -> f64 {
            let (lo, hi) = b.support_jk(j, k);
            let steps = 20_000;
            let dx = (hi - lo) / steps as f64;
            (0..steps)
                .map(|i| {
                    let x = lo + (i as f64 + 0.5) * dx;
                    b.psi_jk(j, k, x).powi(2) * dx
                })
                .sum()
        };
        let n0 = norm(0, 0);
        let n3 = norm(3, 5);
        let n6 = norm(6, -2);
        assert!((n0 - n3).abs() < 1e-3, "{n0} vs {n3}");
        assert!((n0 - n6).abs() < 1e-3, "{n0} vs {n6}");
    }

    #[test]
    fn support_shrinks_with_level() {
        let b = basis();
        let (lo0, hi0) = b.support_jk(0, 0);
        let (lo4, hi4) = b.support_jk(4, 0);
        assert_eq!(lo0, 0.0);
        assert_eq!(lo4, 0.0);
        assert!((hi0 - 15.0).abs() < 1e-12);
        assert!((hi4 - 15.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn translations_covering_unit_interval() {
        let b = basis();
        // At level j the unit interval is covered by 2^j + 2N − 2 shifts
        // whose support overlaps (0, 1) on a set of positive measure.
        for j in [0_i32, 2, 4, 6] {
            let count = b.translation_count(j, 0.0, 1.0);
            assert_eq!(count, (1_usize << j) + 2 * 8 - 2);
        }
    }

    #[test]
    fn translations_outside_support_evaluate_to_zero() {
        let b = basis();
        let j = 4;
        let range = b.translations_covering(j, 0.0, 1.0);
        let k_outside = range.end() + 1;
        for i in 0..20 {
            let x = i as f64 / 20.0;
            assert_eq!(b.psi_jk(j, k_outside, x), 0.0);
        }
    }

    #[test]
    fn covering_range_is_tight() {
        let b = basis();
        let j = 5;
        let range = b.translations_covering(j, 0.0, 1.0);
        // The first and last k in the range must have non-trivial mass on
        // [0, 1]; evaluate on a grid and check the maximum is nonzero.
        for &k in &[*range.start(), *range.end()] {
            let max = (0..400)
                .map(|i| b.psi_jk(j, k, i as f64 / 400.0).abs())
                .fold(0.0_f64, f64::max);
            assert!(max > 0.0, "k={k} contributes nothing on [0,1]");
        }
    }

    #[test]
    #[should_panic(expected = "interval must be ordered")]
    fn reversed_interval_panics() {
        let b = basis();
        let _ = b.translations_covering(3, 1.0, 0.0);
    }
}
