//! Small self-contained numerical kernels used by the filter constructor:
//! complex arithmetic, polynomial evaluation and root finding
//! (Durand–Kerner with Newton polishing), binomial coefficients and a dense
//! linear solver with partial pivoting.
//!
//! These are deliberately minimal: the polynomials involved in Daubechies
//! filter construction have degree at most `2N - 1 ≤ 19` for the wavelet
//! orders supported by this crate, so simple `O(d^2)`/`O(d^3)` algorithms in
//! `f64` are both fast and accurate enough (results are verified downstream
//! against the algebraic filter identities).

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A complex number in Cartesian form.
///
/// The standard library has no complex type and pulling in a crate for a
/// couple of hundred multiplications is not warranted, so this is a tiny
/// local implementation supporting exactly the operations the root finder
/// needs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The real number `re` viewed as a complex number.
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Modulus `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|^2`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let re = ((r + self.re) / 2.0).max(0.0).sqrt();
        let im_mag = ((r - self.re) / 2.0).max(0.0).sqrt();
        let im = if self.im >= 0.0 { im_mag } else { -im_mag };
        Self::new(re, im)
    }

    /// Multiplicative inverse `1/z`.
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[allow(clippy::suspicious_arithmetic_impl)] // division via reciprocal
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.inv()
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

/// Evaluates a polynomial with complex coefficients at `z` using Horner's
/// scheme. Coefficients are in ascending-degree order: `coeffs[k]` multiplies
/// `z^k`.
pub fn poly_eval(coeffs: &[Complex], z: Complex) -> Complex {
    let mut acc = Complex::default();
    for &c in coeffs.iter().rev() {
        acc = acc * z + c;
    }
    acc
}

/// Evaluates the derivative of a polynomial (ascending-degree coefficients)
/// at `z`.
pub fn poly_eval_deriv(coeffs: &[Complex], z: Complex) -> Complex {
    let mut acc = Complex::default();
    for (k, &c) in coeffs.iter().enumerate().skip(1).rev() {
        acc = acc * z + c * (k as f64);
    }
    acc
}

/// Finds all complex roots of a polynomial with real coefficients
/// (ascending-degree order) using the Durand–Kerner (Weierstrass) iteration,
/// followed by a few Newton polishing steps per root.
///
/// The polynomial must have a nonzero leading coefficient and degree ≥ 1.
/// Degrees up to a few dozen are handled comfortably; the Daubechies
/// construction never exceeds degree 19.
///
/// # Panics
/// Panics if the polynomial is constant or the leading coefficient is zero.
pub fn polynomial_roots(real_coeffs: &[f64]) -> Vec<Complex> {
    assert!(real_coeffs.len() >= 2, "polynomial must have degree >= 1");
    let lead = *real_coeffs.last().expect("nonempty");
    assert!(lead != 0.0, "leading coefficient must be nonzero");

    // Normalise to a monic polynomial for numerical stability of the
    // Durand–Kerner update.
    let coeffs: Vec<Complex> = real_coeffs
        .iter()
        .map(|&c| Complex::real(c / lead))
        .collect();
    let degree = coeffs.len() - 1;

    // Initial guesses on a circle of radius derived from the Cauchy bound,
    // with an irrational angle offset so no guess starts on a symmetry axis.
    let cauchy_bound = 1.0
        + coeffs[..degree]
            .iter()
            .map(|c| c.abs())
            .fold(0.0_f64, f64::max);
    let radius = cauchy_bound.clamp(1e-3, 1e6);
    let mut roots: Vec<Complex> = (0..degree)
        .map(|k| {
            let theta = 2.0 * std::f64::consts::PI * (k as f64) / (degree as f64) + 0.4;
            Complex::new(radius * 0.8 * theta.cos(), radius * 0.8 * theta.sin())
        })
        .collect();

    const MAX_ITERS: usize = 500;
    const TOL: f64 = 1e-14;
    for _ in 0..MAX_ITERS {
        let mut max_step = 0.0_f64;
        for i in 0..degree {
            let zi = roots[i];
            let mut denom = Complex::real(1.0);
            for (j, &zj) in roots.iter().enumerate() {
                if j != i {
                    denom = denom * (zi - zj);
                }
            }
            if denom.abs() < 1e-300 {
                continue;
            }
            let step = poly_eval(&coeffs, zi) / denom;
            roots[i] = zi - step;
            max_step = max_step.max(step.abs());
        }
        if max_step < TOL {
            break;
        }
    }

    // Newton polishing sharpens each root to machine precision when the root
    // is simple (all roots in the Daubechies construction are simple).
    for root in &mut roots {
        for _ in 0..20 {
            let f = poly_eval(&coeffs, *root);
            let df = poly_eval_deriv(&coeffs, *root);
            if df.abs() < 1e-300 {
                break;
            }
            let step = f / df;
            *root = *root - step;
            if step.abs() < 1e-16 {
                break;
            }
        }
    }
    roots
}

/// Binomial coefficient `C(n, k)` computed in floating point (exact for the
/// small arguments used here).
pub fn binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0_f64;
    for i in 0..k {
        acc = acc * ((n - i) as f64) / ((i + 1) as f64);
    }
    acc
}

/// Solves the dense linear system `A x = b` by Gaussian elimination with
/// partial pivoting. `a` is row-major with dimension `n × n`.
///
/// Returns `None` if the matrix is numerically singular.
pub fn solve_linear_system(a: &[Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let n = b.len();
    assert_eq!(a.len(), n, "matrix/vector dimension mismatch");
    let mut m: Vec<Vec<f64>> = a
        .iter()
        .zip(b.iter())
        .map(|(row, &rhs)| {
            assert_eq!(row.len(), n, "matrix must be square");
            let mut r = row.clone();
            r.push(rhs);
            r
        })
        .collect();

    for col in 0..n {
        // Partial pivoting.
        let pivot_row = (col..n).max_by(|&i, &j| m[i][col].abs().total_cmp(&m[j][col].abs()))?;
        if m[pivot_row][col].abs() < 1e-13 {
            return None;
        }
        m.swap(col, pivot_row);
        for row in (col + 1)..n {
            let factor = m[row][col] / m[col][col];
            let (pivot_rows, rest) = m.split_at_mut(row);
            let pivot = &pivot_rows[col][col..=n];
            for (dst, &src) in rest[0][col..=n].iter_mut().zip(pivot) {
                *dst -= factor * src;
            }
        }
    }

    let mut x = vec![0.0_f64; n];
    for row in (0..n).rev() {
        let mut acc = m[row][n];
        for col in (row + 1)..n {
            acc -= m[row][col] * x[col];
        }
        x[row] = acc / m[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn complex_arithmetic_basics() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert_eq!(a + b, Complex::new(-2.0, 2.5));
        assert_eq!(a - b, Complex::new(4.0, 1.5));
        let prod = a * b;
        assert!(approx(prod.re, -4.0, 1e-12));
        assert!(approx(prod.im, -5.5, 1e-12));
        let q = (a / b) * b;
        assert!(approx(q.re, a.re, 1e-12) && approx(q.im, a.im, 1e-12));
        assert!(approx(a.conj().im, -2.0, 0.0));
        assert!(approx(a.norm_sqr(), 5.0, 1e-12));
    }

    #[test]
    fn complex_sqrt_squares_back() {
        for &(re, im) in &[
            (4.0, 0.0),
            (-1.0, 0.0),
            (3.0, -4.0),
            (0.0, 2.0),
            (-2.5, 1.5),
        ] {
            let z = Complex::new(re, im);
            let r = z.sqrt();
            let sq = r * r;
            assert!(approx(sq.re, re, 1e-10), "re mismatch for {z:?}");
            assert!(approx(sq.im, im, 1e-10), "im mismatch for {z:?}");
            assert!(r.re >= -1e-15, "principal branch has nonnegative real part");
        }
    }

    #[test]
    fn poly_eval_matches_manual() {
        // p(z) = 2 + 3z + z^2 at z = 2 -> 2 + 6 + 4 = 12
        let coeffs = [Complex::real(2.0), Complex::real(3.0), Complex::real(1.0)];
        let v = poly_eval(&coeffs, Complex::real(2.0));
        assert!(approx(v.re, 12.0, 1e-12));
        let d = poly_eval_deriv(&coeffs, Complex::real(2.0));
        assert!(approx(d.re, 7.0, 1e-12));
    }

    #[test]
    fn roots_of_quadratic() {
        // z^2 - 3z + 2 = (z-1)(z-2)
        let roots = polynomial_roots(&[2.0, -3.0, 1.0]);
        let mut reals: Vec<f64> = roots.iter().map(|r| r.re).collect();
        reals.sort_by(f64::total_cmp);
        assert!(approx(reals[0], 1.0, 1e-10));
        assert!(approx(reals[1], 2.0, 1e-10));
        assert!(roots.iter().all(|r| r.im.abs() < 1e-10));
    }

    #[test]
    fn roots_of_complex_conjugate_pair() {
        // z^2 + 1 -> ±i
        let roots = polynomial_roots(&[1.0, 0.0, 1.0]);
        assert!(roots.iter().all(|r| approx(r.re, 0.0, 1e-10)));
        let mut ims: Vec<f64> = roots.iter().map(|r| r.im).collect();
        ims.sort_by(f64::total_cmp);
        assert!(approx(ims[0], -1.0, 1e-10) && approx(ims[1], 1.0, 1e-10));
    }

    #[test]
    fn roots_of_higher_degree_polynomial_reconstruct_it() {
        // Random-ish degree-7 polynomial with known roots.
        let known = [-2.0, -0.5, 0.25, 1.0, 1.5, 3.0, -4.0];
        // Expand \prod (z - r_i).
        let mut coeffs = vec![1.0];
        for &r in &known {
            let mut next = vec![0.0; coeffs.len() + 1];
            for (k, &c) in coeffs.iter().enumerate() {
                next[k + 1] += c;
                next[k] += -r * c;
            }
            coeffs = next;
        }
        let roots = polynomial_roots(&coeffs);
        let mut found: Vec<f64> = roots.iter().map(|r| r.re).collect();
        found.sort_by(f64::total_cmp);
        let mut expected = known.to_vec();
        expected.sort_by(f64::total_cmp);
        for (f, e) in found.iter().zip(expected.iter()) {
            assert!(approx(*f, *e, 1e-7), "root {f} vs {e}");
        }
    }

    #[test]
    fn binomial_small_values() {
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(10, 5), 252.0);
        assert_eq!(binomial(3, 7), 0.0);
    }

    #[test]
    fn linear_solver_solves_known_system() {
        let a = vec![
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ];
        let b = vec![8.0, -11.0, -3.0];
        let x = solve_linear_system(&a, &b).expect("solvable");
        assert!(approx(x[0], 2.0, 1e-10));
        assert!(approx(x[1], 3.0, 1e-10));
        assert!(approx(x[2], -1.0, 1e-10));
    }

    #[test]
    fn linear_solver_rejects_singular_matrix() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let b = vec![1.0, 2.0];
        assert!(solve_linear_system(&a, &b).is_none());
    }
}
