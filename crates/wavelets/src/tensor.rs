//! 2-D tensor-product wavelet basis.
//!
//! The multivariate basis used by the joint synopses is the tensor product
//! of the 1-D orthonormal basis on each axis: every 2-D basis function is a
//! separable product `δ_{jx,kx}(x) · δ_{jy,ky}(y)` where each factor is
//! either a scaling function `φ_{j,k}` or a wavelet `ψ_{j,k}` from the same
//! family. Because the factors are separable, everything expensive — table
//! interpolation, polyphase gathers, strided accumulation — stays 1-D: a
//! [`TensorBasis`] simply drives the existing [`WaveletTable`] fast paths
//! once per axis and multiplies the results.
//!
//! [`WaveletTable`]: crate::cascade::WaveletTable

use std::ops::RangeInclusive;
use std::sync::Arc;

use crate::basis::WaveletBasis;
use crate::cascade::WaveletTable;
use crate::filters::{FilterError, WaveletFamily};

/// Tensor product of a 1-D wavelet basis with itself.
///
/// Both axes share one [`WaveletBasis`] (one value table, one filter), so a
/// `TensorBasis` adds no precomputation of its own: it evaluates separable
/// products and forwards per-axis gathers to the shared table.
#[derive(Debug, Clone)]
pub struct TensorBasis {
    axis: Arc<WaveletBasis>,
}

impl TensorBasis {
    /// Builds a tensor basis for `family` with the default table resolution.
    pub fn new(family: WaveletFamily) -> Result<Self, FilterError> {
        Ok(Self {
            axis: Arc::new(WaveletBasis::new(family)?),
        })
    }

    /// Wraps an existing (possibly shared) 1-D basis.
    pub fn from_axis(axis: Arc<WaveletBasis>) -> Self {
        Self { axis }
    }

    /// The shared 1-D basis driving both axes.
    pub fn axis(&self) -> &Arc<WaveletBasis> {
        &self.axis
    }

    /// The wavelet family of both axes.
    pub fn family(&self) -> WaveletFamily {
        self.axis.family()
    }

    /// Support length `2N − 1` of the 1-D factors (identical per axis).
    pub fn support_length(&self) -> f64 {
        self.axis.support_length()
    }

    /// The shared value table (for per-axis `gather_phi` / `gather_psi`).
    pub fn table(&self) -> &WaveletTable {
        self.axis.table()
    }

    /// Translations on one axis whose factor overlaps `[lo, hi]`, exactly as
    /// [`WaveletBasis::translations_covering`].
    pub fn translations_covering(&self, j: i32, lo: f64, hi: f64) -> RangeInclusive<i64> {
        self.axis.translations_covering(j, lo, hi)
    }

    /// Evaluates the separable product basis function at `point`.
    ///
    /// Each axis factor is `ψ_{j,k}` when the corresponding `wavelet` flag is
    /// `true` and `φ_{j,k}` otherwise; `levels` and `translations` give the
    /// per-axis `(j, k)` indices. The scaling layer is `(false, false)` at the
    /// coarse level, and the three detail orientations are `(true, false)`,
    /// `(false, true)` and `(true, true)`.
    pub fn evaluate(
        &self,
        wavelet: (bool, bool),
        levels: (i32, i32),
        translations: (i64, i64),
        point: (f64, f64),
    ) -> f64 {
        self.factor(wavelet.0, levels.0, translations.0, point.0)
            * self.factor(wavelet.1, levels.1, translations.1, point.1)
    }

    /// Evaluates one 1-D factor: `ψ_{j,k}` when `wavelet`, else `φ_{j,k}`.
    pub fn factor(&self, wavelet: bool, j: i32, k: i64, x: f64) -> f64 {
        if wavelet {
            self.axis.psi_jk(j, k, x)
        } else {
            self.axis.phi_jk(j, k, x)
        }
    }

    /// Gathers the raw mother values `δ(position − (k_first + m))` for one
    /// axis into `out[m]`, delegating to the polyphase fast path
    /// ([`WaveletTable::gather_phi`] / [`WaveletTable::gather_psi`]). The
    /// caller applies the `2^{j/2}` normalisation, exactly as in the 1-D
    /// scatter path.
    pub fn gather(&self, wavelet: bool, position: f64, k_first: i64, out: &mut [f64]) {
        let table = self.axis.table();
        if wavelet {
            table.gather_psi(position, k_first, out);
        } else {
            table.gather_phi(position, k_first, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn basis() -> TensorBasis {
        TensorBasis::new(WaveletFamily::Symmlet(8)).expect("sym8 filter")
    }

    #[test]
    fn product_is_separable() {
        let tensor = basis();
        let axis = tensor.axis();
        let point = (0.31, 0.67);
        for &(wx, wy) in &[(false, false), (true, false), (false, true), (true, true)] {
            let got = tensor.evaluate((wx, wy), (3, 4), (2, -1), point);
            let fx = if wx {
                axis.psi_jk(3, 2, point.0)
            } else {
                axis.phi_jk(3, 2, point.0)
            };
            let fy = if wy {
                axis.psi_jk(4, -1, point.1)
            } else {
                axis.phi_jk(4, -1, point.1)
            };
            assert_eq!(got, fx * fy, "orientation ({wx}, {wy})");
        }
    }

    #[test]
    fn gather_matches_pointwise_factor() {
        let tensor = basis();
        let j = 4;
        let x = 0.4375;
        let scale = f64::from(j).exp2();
        let position = scale * x;
        let support = tensor.support_length();
        let k_lo = (position - support).floor() as i64 + 1;
        let count = support.ceil() as usize + 1;
        for &wavelet in &[false, true] {
            let mut row = vec![0.0; count];
            tensor.gather(wavelet, position, k_lo, &mut row);
            for (m, &raw) in row.iter().enumerate() {
                let k = k_lo + m as i64;
                let expect = tensor.factor(wavelet, j, k, x) / scale.sqrt();
                assert!((raw - expect).abs() <= 1e-12, "slot {m}: {raw} vs {expect}");
            }
        }
    }

    #[test]
    fn vanishes_outside_product_support() {
        let tensor = basis();
        // ψ_{3,0} ⊗ ψ_{3,0} is supported on [0, 15/8]²; far outside it the
        // product must be exactly zero.
        assert_eq!(
            tensor.evaluate((true, true), (3, 3), (0, 0), (5.0, 0.5)),
            0.0
        );
        assert_eq!(
            tensor.evaluate((true, true), (3, 3), (0, 0), (0.5, -3.0)),
            0.0
        );
    }

    #[test]
    fn shares_one_axis_table() {
        let axis = Arc::new(WaveletBasis::new(WaveletFamily::Haar).expect("haar"));
        let tensor = TensorBasis::from_axis(Arc::clone(&axis));
        assert!(Arc::ptr_eq(tensor.axis(), &axis));
        assert_eq!(tensor.family(), WaveletFamily::Haar);
        assert_eq!(tensor.support_length(), axis.support_length());
    }
}
