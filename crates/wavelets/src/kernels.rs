//! Lane-width micro-vector kernels for the three ingest/query hot loops.
//!
//! # The two-run polyphase invariant
//!
//! The gather fast path of [`crate::cascade::WaveletTable`] relies on one
//! structural fact, established by the phase-major, node-reversed
//! polyphase layout (`poly[p·(support+1) + (support−q)] = values[q·2^J +
//! p]`): reading one observation at a window of **consecutive
//! translations** touches exactly **two contiguous forward runs** of the
//! polyphase table — the run of row `p` (the observation's fractional
//! phase) and the run of row `p + 1` (its interpolation neighbour) — and
//! every slot of the window shares the same pair of interpolation weights
//! `(1 − frac, frac)`. Slot `m` of the window is therefore the pure
//! element-wise expression
//!
//! ```text
//! out[m] = lo[m]·w0 + hi[m]·w1
//! ```
//!
//! with `lo`/`hi` the two runs: no per-slot index arithmetic, no
//! per-slot rounding, no branches. That is exactly the shape SIMD wants,
//! and it is the contract every kernel in this module is written against.
//! The fallback windows (table edge, or a phase-`2^J − 1` base whose
//! interpolation neighbour wraps to the next phase-0 node) never reach
//! these kernels — [`crate::cascade`] routes them through the per-slot
//! walk of the dense table.
//!
//! # Backends
//!
//! Three implementations are provided per kernel, all computing the same
//! per-slot scalar expression so they agree **bitwise** (each lane
//! performs the identical sequence of f64 multiplies and adds — the
//! intrinsics path deliberately avoids FMA contraction for this reason;
//! the ≤1e-12 proptest pin in `tests/kernel_equivalence.rs` is therefore
//! satisfied with margin):
//!
//! * [`Backend::Scalar`] — the plain `zip` loop, kept as the reference.
//! * [`Backend::Lanes`] — stable-Rust micro-vectors: fixed `[f64; 8]` /
//!   `[f64; 4]` blocks with a scalar remainder, which the auto-vectoriser
//!   compiles to packed SSE2/AVX without any unsafe code.
//! * [`Backend::Intrinsics`] — explicit AVX2 256-bit vectors behind the
//!   `simd-intrinsics` cargo feature, selected at runtime only when the
//!   CPU reports AVX2 (off-x86 builds with the feature enabled simply
//!   fall back to [`Backend::Lanes`]).
//!
//! The active backend is process-global: detection runs once, and
//! [`set_backend_override`] lets benchmarks and equivalence tests pin a
//! specific backend (requests for an unavailable backend clamp to the
//! best available one, so the override can never select dead code).

use std::sync::atomic::{AtomicU8, Ordering};

/// Kernel implementation selector; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Plain per-slot loop (the reference implementation).
    Scalar,
    /// Stable-Rust fixed-width lane blocks (`[f64; 8]`/`[f64; 4]`).
    Lanes,
    /// Runtime-detected AVX2 vectors (`simd-intrinsics` feature, x86-64).
    Intrinsics,
}

impl Backend {
    /// Stable label for logs and bench series.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Lanes => "lanes",
            Backend::Intrinsics => "intrinsics",
        }
    }
}

/// `0` = not yet detected; otherwise `encode(backend)`.
static DETECTED: AtomicU8 = AtomicU8::new(0);
/// `0` = no override; otherwise `encode(backend)`.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn encode(backend: Backend) -> u8 {
    match backend {
        Backend::Scalar => 1,
        Backend::Lanes => 2,
        Backend::Intrinsics => 3,
    }
}

fn decode(value: u8) -> Option<Backend> {
    match value {
        1 => Some(Backend::Scalar),
        2 => Some(Backend::Lanes),
        3 => Some(Backend::Intrinsics),
        _ => None,
    }
}

/// Whether the AVX2 intrinsics backend is compiled in *and* the CPU
/// supports it. Always `false` without the `simd-intrinsics` feature.
pub fn intrinsics_available() -> bool {
    #[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(all(feature = "simd-intrinsics", target_arch = "x86_64")))]
    {
        false
    }
}

/// The best backend the build and the CPU support (detection cached after
/// the first call).
fn detected() -> Backend {
    if let Some(backend) = decode(DETECTED.load(Ordering::Relaxed)) {
        return backend;
    }
    let backend = if intrinsics_available() {
        Backend::Intrinsics
    } else {
        Backend::Lanes
    };
    DETECTED.store(encode(backend), Ordering::Relaxed);
    backend
}

/// The backend the kernels currently dispatch to: the override if one is
/// set (clamped to what is available), the detected best otherwise.
pub fn active_backend() -> Backend {
    let requested = match decode(OVERRIDE.load(Ordering::Relaxed)) {
        Some(backend) => backend,
        None => return detected(),
    };
    if requested == Backend::Intrinsics && !intrinsics_available() {
        return Backend::Lanes;
    }
    requested
}

/// Pins the dispatch to a specific backend (`None` restores runtime
/// detection). Used by the equivalence tests and the `simd` bench series;
/// process-global, so concurrent tests pinning different backends should
/// serialise themselves.
pub fn set_backend_override(backend: Option<Backend>) {
    OVERRIDE.store(backend.map_or(0, encode), Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Kernel 1 — two-run gather lerp: out[m] = lo[m]·w0 + hi[m]·w1.
// ---------------------------------------------------------------------------

/// The gather kernel: interpolates the two contiguous polyphase runs into
/// the output window, `out[m] = lo[m]·w0 + hi[m]·w1`.
///
/// `lo` and `hi` must be at least as long as `out`; the (checked) slicing
/// happens here so the callers stay branch-free.
#[inline]
pub fn lerp_runs(lo: &[f64], hi: &[f64], w0: f64, w1: f64, out: &mut [f64]) {
    let n = out.len();
    let (lo, hi) = (&lo[..n], &hi[..n]);
    match active_backend() {
        Backend::Scalar => lerp_runs_scalar(lo, hi, w0, w1, out),
        Backend::Lanes => lerp_runs_lanes(lo, hi, w0, w1, out),
        Backend::Intrinsics => {
            #[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
            {
                avx::lerp_runs(lo, hi, w0, w1, out);
            }
            #[cfg(not(all(feature = "simd-intrinsics", target_arch = "x86_64")))]
            lerp_runs_lanes(lo, hi, w0, w1, out);
        }
    }
}

#[inline]
fn lerp_runs_scalar(lo: &[f64], hi: &[f64], w0: f64, w1: f64, out: &mut [f64]) {
    for ((slot, &a), &b) in out.iter_mut().zip(lo).zip(hi) {
        *slot = a * w0 + b * w1;
    }
}

#[inline]
fn lerp_runs_lanes(lo: &[f64], hi: &[f64], w0: f64, w1: f64, out: &mut [f64]) {
    let n = out.len();
    let mut i = 0;
    while i + 8 <= n {
        let a: [f64; 8] = lo[i..i + 8].try_into().expect("8-lane block");
        let b: [f64; 8] = hi[i..i + 8].try_into().expect("8-lane block");
        let mut acc = [0.0_f64; 8];
        for l in 0..8 {
            acc[l] = a[l] * w0 + b[l] * w1;
        }
        out[i..i + 8].copy_from_slice(&acc);
        i += 8;
    }
    if i + 4 <= n {
        let a: [f64; 4] = lo[i..i + 4].try_into().expect("4-lane block");
        let b: [f64; 4] = hi[i..i + 4].try_into().expect("4-lane block");
        let mut acc = [0.0_f64; 4];
        for l in 0..4 {
            acc[l] = a[l] * w0 + b[l] * w1;
        }
        out[i..i + 4].copy_from_slice(&acc);
        i += 4;
    }
    lerp_runs_scalar(&lo[i..], &hi[i..], w0, w1, &mut out[i..]);
}

// ---------------------------------------------------------------------------
// Kernel 2 — scatter accumulation: v = scale·raw[m]; sums[m] += v;
// squares[m] += v·v.
// ---------------------------------------------------------------------------

/// The scatter kernel: scales a gather row and accumulates value and
/// value² into the running sums, `v = scale·raw[m]; sums[m] += v;
/// squares[m] += v·v`.
///
/// Accumulates over the shortest of the three slices.
#[inline]
pub fn scaled_accumulate(scale: f64, raw: &[f64], sums: &mut [f64], squares: &mut [f64]) {
    let n = raw.len().min(sums.len()).min(squares.len());
    let (raw, sums, squares) = (&raw[..n], &mut sums[..n], &mut squares[..n]);
    match active_backend() {
        Backend::Scalar => scaled_accumulate_scalar(scale, raw, sums, squares),
        Backend::Lanes => scaled_accumulate_lanes(scale, raw, sums, squares),
        Backend::Intrinsics => {
            #[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
            {
                avx::scaled_accumulate(scale, raw, sums, squares);
            }
            #[cfg(not(all(feature = "simd-intrinsics", target_arch = "x86_64")))]
            scaled_accumulate_lanes(scale, raw, sums, squares);
        }
    }
}

#[inline]
fn scaled_accumulate_scalar(scale: f64, raw: &[f64], sums: &mut [f64], squares: &mut [f64]) {
    for ((sum, square), &r) in sums.iter_mut().zip(squares.iter_mut()).zip(raw) {
        let value = scale * r;
        *sum += value;
        *square += value * value;
    }
}

#[inline]
fn scaled_accumulate_lanes(scale: f64, raw: &[f64], sums: &mut [f64], squares: &mut [f64]) {
    let n = raw.len();
    let mut i = 0;
    while i + 4 <= n {
        let r: [f64; 4] = raw[i..i + 4].try_into().expect("4-lane block");
        let mut s: [f64; 4] = sums[i..i + 4].try_into().expect("4-lane block");
        let mut q: [f64; 4] = squares[i..i + 4].try_into().expect("4-lane block");
        for l in 0..4 {
            let value = scale * r[l];
            s[l] += value;
            q[l] += value * value;
        }
        sums[i..i + 4].copy_from_slice(&s);
        squares[i..i + 4].copy_from_slice(&q);
        i += 4;
    }
    scaled_accumulate_scalar(scale, &raw[i..], &mut sums[i..], &mut squares[i..]);
}

// ---------------------------------------------------------------------------
// Kernel 2b — fused gather→scatter: v = scale·(lo[m]·w0 + hi[m]·w1);
// sums[m] += v; squares[m] += v·v.
// ---------------------------------------------------------------------------

/// The fused ingest kernel: interpolates the two polyphase runs and
/// scatters the `scale`-normalised value and its square straight into the
/// running sums, without materialising the gather row:
///
/// ```text
/// v = scale · (lo[m]·w0 + hi[m]·w1);   sums[m] += v;   squares[m] += v²
/// ```
///
/// Per slot this is exactly [`lerp_runs`] followed by
/// [`scaled_accumulate`] — the same f64 expression sequence, so fusing is
/// bitwise neutral — but it saves the round-trip of the gather row
/// through a scratch buffer (one store plus one reload per slot), which
/// on an L2-resident table is most of the remaining per-slot cost.
///
/// `lo` and `hi` must be at least as long as `sums`; `squares` must match
/// `sums`.
#[inline]
pub fn lerp_scaled_accumulate(
    lo: &[f64],
    hi: &[f64],
    w0: f64,
    w1: f64,
    scale: f64,
    sums: &mut [f64],
    squares: &mut [f64],
) {
    FusedKernel::resolve().lerp_scaled_accumulate(lo, hi, w0, w1, scale, sums, squares);
}

/// Pre-resolved dispatch token for the fused ingest kernel.
///
/// [`lerp_scaled_accumulate`] re-reads the (atomic) backend state on every
/// call, which is once per `(observation, level)` pair on the ingest hot
/// path. A `FusedKernel` hoists that lookup: resolve it once per chunk and
/// the per-row call reduces to a register-held match plus a direct call.
#[derive(Debug, Clone, Copy)]
pub struct FusedKernel {
    backend: Backend,
}

impl FusedKernel {
    /// Snapshots the active backend (override honoured, clamped to what
    /// the build/CPU supports).
    #[inline]
    pub fn resolve() -> Self {
        Self {
            backend: active_backend(),
        }
    }

    /// The fused kernel under the snapshotted backend; semantics of
    /// [`lerp_scaled_accumulate`].
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn lerp_scaled_accumulate(
        self,
        lo: &[f64],
        hi: &[f64],
        w0: f64,
        w1: f64,
        scale: f64,
        sums: &mut [f64],
        squares: &mut [f64],
    ) {
        let n = sums.len();
        let (lo, hi, squares) = (&lo[..n], &hi[..n], &mut squares[..n]);
        match self.backend {
            Backend::Scalar => lerp_scaled_accumulate_scalar(lo, hi, w0, w1, scale, sums, squares),
            Backend::Lanes => lerp_scaled_accumulate_lanes(lo, hi, w0, w1, scale, sums, squares),
            Backend::Intrinsics => {
                #[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
                {
                    avx::lerp_scaled_accumulate(lo, hi, w0, w1, scale, sums, squares);
                }
                #[cfg(not(all(feature = "simd-intrinsics", target_arch = "x86_64")))]
                lerp_scaled_accumulate_lanes(lo, hi, w0, w1, scale, sums, squares);
            }
        }
    }
}

#[inline]
pub(crate) fn lerp_scaled_accumulate_scalar(
    lo: &[f64],
    hi: &[f64],
    w0: f64,
    w1: f64,
    scale: f64,
    sums: &mut [f64],
    squares: &mut [f64],
) {
    for (((sum, square), &a), &b) in sums.iter_mut().zip(squares.iter_mut()).zip(lo).zip(hi) {
        let value = scale * (a * w0 + b * w1);
        *sum += value;
        *square += value * value;
    }
}

#[inline]
pub(crate) fn lerp_scaled_accumulate_lanes(
    lo: &[f64],
    hi: &[f64],
    w0: f64,
    w1: f64,
    scale: f64,
    sums: &mut [f64],
    squares: &mut [f64],
) {
    let n = sums.len();
    let mut i = 0;
    while i + 4 <= n {
        let a: [f64; 4] = lo[i..i + 4].try_into().expect("4-lane block");
        let b: [f64; 4] = hi[i..i + 4].try_into().expect("4-lane block");
        let mut s: [f64; 4] = sums[i..i + 4].try_into().expect("4-lane block");
        let mut q: [f64; 4] = squares[i..i + 4].try_into().expect("4-lane block");
        for l in 0..4 {
            let value = scale * (a[l] * w0 + b[l] * w1);
            s[l] += value;
            q[l] += value * value;
        }
        sums[i..i + 4].copy_from_slice(&s);
        squares[i..i + 4].copy_from_slice(&q);
        i += 4;
    }
    lerp_scaled_accumulate_scalar(
        &lo[i..],
        &hi[i..],
        w0,
        w1,
        scale,
        &mut sums[i..],
        &mut squares[i..],
    );
}

// ---------------------------------------------------------------------------
// Kernel 3 — dense-eval strided lerp: out[i] += coeff · lerp(values,
// pos0 + dpos·i), with full boundary handling.
// ---------------------------------------------------------------------------

/// The dense-evaluation kernel: strided linear interpolation of the table,
/// `out[i] += coeff · table(pos0 + dpos·i)` in table-index units, with the
/// boundary conventions of pointwise lookup (0 before index 0 and past the
/// last node, the last node itself included).
///
/// The position of slot `i` is recomputed multiplicatively (`pos0 +
/// dpos·i`, never by repeated addition), so there is no cumulative drift
/// over long grids and every backend computes the identical per-slot
/// expression. The vector backends process blocks of slots whose entire
/// position range is interior to the table (positions are monotonic in
/// `i`, so checking a block's endpoints suffices); boundary blocks take
/// the scalar per-slot path.
#[inline]
pub fn accumulate_lerp(values: &[f64], pos0: f64, dpos: f64, coeff: f64, out: &mut [f64]) {
    match active_backend() {
        Backend::Scalar => accumulate_lerp_scalar(values, pos0, dpos, coeff, out, 0),
        Backend::Lanes => accumulate_lerp_blocked(values, pos0, dpos, coeff, out, false),
        Backend::Intrinsics => accumulate_lerp_blocked(values, pos0, dpos, coeff, out, true),
    }
}

/// The reference per-slot loop, starting at slot `first` (so the blocked
/// path can delegate remainders without re-deriving positions).
#[inline]
fn accumulate_lerp_scalar(
    values: &[f64],
    pos0: f64,
    dpos: f64,
    coeff: f64,
    out: &mut [f64],
    first: usize,
) {
    for (i, slot) in out.iter_mut().enumerate() {
        let pos = pos0 + dpos * (first + i) as f64;
        if pos < 0.0 {
            continue;
        }
        let idx = pos as usize;
        if idx + 1 >= values.len() {
            if idx + 1 == values.len() {
                *slot += coeff * values[idx];
            }
            continue;
        }
        let frac = pos - idx as f64;
        *slot += coeff * (values[idx] * (1.0 - frac) + values[idx + 1] * frac);
    }
}

/// Blocked dense-eval sweep: interior 4-slot blocks run branch-free (via
/// lanes or AVX2), everything else delegates to the scalar loop.
fn accumulate_lerp_blocked(
    values: &[f64],
    pos0: f64,
    dpos: f64,
    coeff: f64,
    out: &mut [f64],
    use_intrinsics: bool,
) {
    // Positions must be monotonic for the endpoint check to cover a
    // block; a non-positive stride is not worth blocking anyway.
    if dpos <= 0.0 || !dpos.is_finite() || !pos0.is_finite() || values.len() < 2 {
        return accumulate_lerp_scalar(values, pos0, dpos, coeff, out, 0);
    }
    let interior = (values.len() - 1) as f64;
    let n = out.len();
    let mut i = 0;
    while i + 4 <= n {
        let lo_pos = pos0 + dpos * i as f64;
        let hi_pos = pos0 + dpos * (i + 3) as f64;
        if lo_pos >= 0.0 && hi_pos < interior {
            if use_intrinsics {
                #[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
                {
                    avx::accumulate_lerp_block(values, pos0, dpos, coeff, &mut out[i..i + 4], i);
                    i += 4;
                    continue;
                }
            }
            accumulate_lerp_block_lanes(values, pos0, dpos, coeff, &mut out[i..i + 4], i);
            i += 4;
        } else {
            // Boundary block: per-slot path, then re-enter blocking (the
            // grid may cross into the support later, or leave it).
            accumulate_lerp_scalar(values, pos0, dpos, coeff, &mut out[i..i + 4], i);
            i += 4;
        }
    }
    accumulate_lerp_scalar(values, pos0, dpos, coeff, &mut out[i..], i);
}

/// One interior 4-slot block of the dense-eval sweep: every position is
/// known to lie in `[0, len−1)`, so indexing and interpolation run
/// branch-free. Table reads stay per-lane (the indices are not
/// contiguous), but the position arithmetic and the lerp vectorise.
#[inline]
fn accumulate_lerp_block_lanes(
    values: &[f64],
    pos0: f64,
    dpos: f64,
    coeff: f64,
    out: &mut [f64],
    first: usize,
) {
    let mut pos = [0.0_f64; 4];
    for (l, p) in pos.iter_mut().enumerate() {
        *p = pos0 + dpos * (first + l) as f64;
    }
    let mut lo = [0.0_f64; 4];
    let mut hi = [0.0_f64; 4];
    let mut frac = [0.0_f64; 4];
    for l in 0..4 {
        let idx = pos[l] as usize;
        frac[l] = pos[l] - idx as f64;
        lo[l] = values[idx];
        hi[l] = values[idx + 1];
    }
    let mut acc: [f64; 4] = out[..4].try_into().expect("4-slot block");
    for l in 0..4 {
        acc[l] += coeff * (lo[l] * (1.0 - frac[l]) + hi[l] * frac[l]);
    }
    out[..4].copy_from_slice(&acc);
}

/// Whole-chunk scatter row loop on the intrinsics backend: enters a
/// `#[target_feature(enable = "avx2")]` function *once per chunk* and runs
/// [`crate::cascade::scatter_rows_impl`] inside it, so the AVX2 fused
/// kernel inlines into the row loop instead of costing an opaque call per
/// `(observation, level)` pair. Falls back to the lanes row loop when the
/// intrinsics are compiled out or the CPU lacks AVX2.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scatter_rows_intrinsics(
    values: &[f64],
    poly: &[f64],
    poly_row: usize,
    levels: u32,
    xs: &[f64],
    level_scale: f64,
    norm_scale: f64,
    support: f64,
    k_start: i64,
    fallback_row: &mut [f64],
    sums: &mut [f64],
    squares: &mut [f64],
) {
    #[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
    {
        avx::scatter_rows(
            values,
            poly,
            poly_row,
            levels,
            xs,
            level_scale,
            norm_scale,
            support,
            k_start,
            fallback_row,
            sums,
            squares,
        );
    }
    #[cfg(not(all(feature = "simd-intrinsics", target_arch = "x86_64")))]
    crate::cascade::scatter_rows_impl(
        &lerp_scaled_accumulate_lanes,
        values,
        poly,
        poly_row,
        levels,
        xs,
        level_scale,
        norm_scale,
        support,
        k_start,
        fallback_row,
        sums,
        squares,
    );
}

// ---------------------------------------------------------------------------
// AVX2 backend (feature-gated, runtime-detected).
// ---------------------------------------------------------------------------

#[cfg(all(feature = "simd-intrinsics", target_arch = "x86_64"))]
mod avx {
    //! Explicit AVX2 implementations. Every lane computes the same f64
    //! multiply/add sequence as the scalar reference (no FMA contraction),
    //! so the results are bitwise identical; the speedup comes from the
    //! 4-wide registers, not from fused rounding.
    #![allow(unsafe_code)]

    use std::arch::x86_64::{
        __m256i, _mm256_add_pd, _mm256_loadu_pd, _mm256_maskload_pd, _mm256_maskstore_pd,
        _mm256_mul_pd, _mm256_set1_pd, _mm256_setr_epi64x, _mm256_storeu_pd,
    };

    /// Lane mask with the first `rem` (< 4) lanes active. Masked lanes of
    /// `maskload`/`maskstore` neither fault nor write, so a short tail can
    /// run as one masked vector op instead of a per-slot scalar loop —
    /// bitwise identical per active lane.
    // SAFETY: callers must run only after runtime AVX2 detection; the
    // body itself touches no memory.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn tail_mask(rem: usize) -> __m256i {
        let lane = |l: usize| if l < rem { -1_i64 } else { 0 };
        _mm256_setr_epi64x(lane(0), lane(1), lane(2), lane(3))
    }

    /// Caller guarantees `lo.len() == hi.len() == out.len()` and that the
    /// CPU supports AVX2 (checked by [`super::active_backend`]).
    #[inline]
    pub(super) fn lerp_runs(lo: &[f64], hi: &[f64], w0: f64, w1: f64, out: &mut [f64]) {
        // SAFETY: dispatch reaches this module only after
        // `is_x86_feature_detected!("avx2")` returned true.
        unsafe { lerp_runs_avx2(lo, hi, w0, w1, out) }
    }

    // SAFETY: callers must run only after runtime AVX2 detection and
    // pass `lo`/`hi`/`out` of equal length (the loads/stores below index
    // all three by `out`'s bounds).
    #[target_feature(enable = "avx2")]
    unsafe fn lerp_runs_avx2(lo: &[f64], hi: &[f64], w0: f64, w1: f64, out: &mut [f64]) {
        let n = out.len();
        let vw0 = _mm256_set1_pd(w0);
        let vw1 = _mm256_set1_pd(w1);
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` and the caller sliced all three
            // buffers to the same length `n`.
            unsafe {
                let a = _mm256_loadu_pd(lo.as_ptr().add(i));
                let b = _mm256_loadu_pd(hi.as_ptr().add(i));
                let acc = _mm256_add_pd(_mm256_mul_pd(a, vw0), _mm256_mul_pd(b, vw1));
                _mm256_storeu_pd(out.as_mut_ptr().add(i), acc);
            }
            i += 4;
        }
        if i < n {
            // SAFETY: the mask keeps every lane ≥ `n − i` inactive, and
            // masked lanes neither fault nor store.
            unsafe {
                let mask = tail_mask(n - i);
                let a = _mm256_maskload_pd(lo.as_ptr().add(i), mask);
                let b = _mm256_maskload_pd(hi.as_ptr().add(i), mask);
                let acc = _mm256_add_pd(_mm256_mul_pd(a, vw0), _mm256_mul_pd(b, vw1));
                _mm256_maskstore_pd(out.as_mut_ptr().add(i), mask, acc);
            }
        }
    }

    /// Caller guarantees equal lengths and AVX2 support.
    #[inline]
    pub(super) fn scaled_accumulate(
        scale: f64,
        raw: &[f64],
        sums: &mut [f64],
        squares: &mut [f64],
    ) {
        // SAFETY: dispatch reaches this module only after
        // `is_x86_feature_detected!("avx2")` returned true.
        unsafe { scaled_accumulate_avx2(scale, raw, sums, squares) }
    }

    // SAFETY: callers must run only after runtime AVX2 detection and
    // pass `raw`/`sums`/`squares` of equal length (the loads/stores
    // below index all three by `raw`'s bounds).
    #[target_feature(enable = "avx2")]
    unsafe fn scaled_accumulate_avx2(
        scale: f64,
        raw: &[f64],
        sums: &mut [f64],
        squares: &mut [f64],
    ) {
        let n = raw.len();
        let vscale = _mm256_set1_pd(scale);
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` and the caller sliced all three
            // buffers to the same length `n`.
            unsafe {
                let r = _mm256_loadu_pd(raw.as_ptr().add(i));
                let value = _mm256_mul_pd(vscale, r);
                let s = _mm256_loadu_pd(sums.as_ptr().add(i));
                let q = _mm256_loadu_pd(squares.as_ptr().add(i));
                _mm256_storeu_pd(sums.as_mut_ptr().add(i), _mm256_add_pd(s, value));
                _mm256_storeu_pd(
                    squares.as_mut_ptr().add(i),
                    _mm256_add_pd(q, _mm256_mul_pd(value, value)),
                );
            }
            i += 4;
        }
        super::scaled_accumulate_scalar(scale, &raw[i..], &mut sums[i..], &mut squares[i..]);
    }

    /// The whole-chunk scatter row loop compiled with AVX2 enabled; see
    /// [`super::scatter_rows_intrinsics`].
    #[allow(clippy::too_many_arguments)]
    pub(super) fn scatter_rows(
        values: &[f64],
        poly: &[f64],
        poly_row: usize,
        levels: u32,
        xs: &[f64],
        level_scale: f64,
        norm_scale: f64,
        support: f64,
        k_start: i64,
        fallback_row: &mut [f64],
        sums: &mut [f64],
        squares: &mut [f64],
    ) {
        // SAFETY: dispatch reaches this module only after
        // `is_x86_feature_detected!("avx2")` returned true.
        unsafe {
            scatter_rows_avx2(
                values,
                poly,
                poly_row,
                levels,
                xs,
                level_scale,
                norm_scale,
                support,
                k_start,
                fallback_row,
                sums,
                squares,
            )
        }
    }

    // SAFETY: callers must run only after runtime AVX2 detection; the
    // body delegates slice handling to the shared safe row loop.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn scatter_rows_avx2(
        values: &[f64],
        poly: &[f64],
        poly_row: usize,
        levels: u32,
        xs: &[f64],
        level_scale: f64,
        norm_scale: f64,
        support: f64,
        k_start: i64,
        fallback_row: &mut [f64],
        sums: &mut [f64],
        squares: &mut [f64],
    ) {
        crate::cascade::scatter_rows_impl(
            // The closure inherits this function's AVX2 target feature, so
            // the intrinsics body inlines into the row loop.
            &|lo: &[f64], hi: &[f64], w0, w1, scale, sums: &mut [f64], squares: &mut [f64]| {
                // SAFETY: enclosing function runs only after runtime AVX2
                // detection.
                unsafe { lerp_scaled_accumulate_avx2(lo, hi, w0, w1, scale, sums, squares) }
            },
            values,
            poly,
            poly_row,
            levels,
            xs,
            level_scale,
            norm_scale,
            support,
            k_start,
            fallback_row,
            sums,
            squares,
        );
    }

    /// Caller guarantees equal lengths and AVX2 support.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub(super) fn lerp_scaled_accumulate(
        lo: &[f64],
        hi: &[f64],
        w0: f64,
        w1: f64,
        scale: f64,
        sums: &mut [f64],
        squares: &mut [f64],
    ) {
        // SAFETY: dispatch reaches this module only after
        // `is_x86_feature_detected!("avx2")` returned true.
        unsafe { lerp_scaled_accumulate_avx2(lo, hi, w0, w1, scale, sums, squares) }
    }

    // SAFETY: callers must run only after runtime AVX2 detection and
    // pass `lo`/`hi`/`sums`/`squares` of equal length (the loads/stores
    // below index all four by `sums`'s bounds).
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn lerp_scaled_accumulate_avx2(
        lo: &[f64],
        hi: &[f64],
        w0: f64,
        w1: f64,
        scale: f64,
        sums: &mut [f64],
        squares: &mut [f64],
    ) {
        let n = sums.len();
        let vw0 = _mm256_set1_pd(w0);
        let vw1 = _mm256_set1_pd(w1);
        let vscale = _mm256_set1_pd(scale);
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` and the caller sliced all four
            // buffers to the same length `n`.
            unsafe {
                let a = _mm256_loadu_pd(lo.as_ptr().add(i));
                let b = _mm256_loadu_pd(hi.as_ptr().add(i));
                let raw = _mm256_add_pd(_mm256_mul_pd(a, vw0), _mm256_mul_pd(b, vw1));
                let value = _mm256_mul_pd(vscale, raw);
                let s = _mm256_loadu_pd(sums.as_ptr().add(i));
                let q = _mm256_loadu_pd(squares.as_ptr().add(i));
                _mm256_storeu_pd(sums.as_mut_ptr().add(i), _mm256_add_pd(s, value));
                _mm256_storeu_pd(
                    squares.as_mut_ptr().add(i),
                    _mm256_add_pd(q, _mm256_mul_pd(value, value)),
                );
            }
            i += 4;
        }
        if i < n {
            // SAFETY: the mask keeps every lane ≥ `n − i` inactive, and
            // masked lanes neither fault nor store.
            unsafe {
                let mask = tail_mask(n - i);
                let a = _mm256_maskload_pd(lo.as_ptr().add(i), mask);
                let b = _mm256_maskload_pd(hi.as_ptr().add(i), mask);
                let raw = _mm256_add_pd(_mm256_mul_pd(a, vw0), _mm256_mul_pd(b, vw1));
                let value = _mm256_mul_pd(vscale, raw);
                let s = _mm256_maskload_pd(sums.as_ptr().add(i), mask);
                let q = _mm256_maskload_pd(squares.as_ptr().add(i), mask);
                _mm256_maskstore_pd(sums.as_mut_ptr().add(i), mask, _mm256_add_pd(s, value));
                _mm256_maskstore_pd(
                    squares.as_mut_ptr().add(i),
                    mask,
                    _mm256_add_pd(q, _mm256_mul_pd(value, value)),
                );
            }
        }
    }

    /// One interior 4-slot dense-eval block; caller guarantees every
    /// position lies in `[0, values.len()−1)` and `out.len() == 4`.
    /// The per-lane table reads stay scalar (the indices are not
    /// contiguous); the position arithmetic and the lerp use AVX2.
    #[inline]
    pub(super) fn accumulate_lerp_block(
        values: &[f64],
        pos0: f64,
        dpos: f64,
        coeff: f64,
        out: &mut [f64],
        first: usize,
    ) {
        // SAFETY: dispatch reaches this module only after
        // `is_x86_feature_detected!("avx2")` returned true.
        unsafe { accumulate_lerp_block_avx2(values, pos0, dpos, coeff, out, first) }
    }

    // SAFETY: callers must run only after runtime AVX2 detection and
    // uphold the block contract above: every interpolation position in
    // `[0, values.len()−1)` and `out.len() == 4`.
    #[target_feature(enable = "avx2")]
    unsafe fn accumulate_lerp_block_avx2(
        values: &[f64],
        pos0: f64,
        dpos: f64,
        coeff: f64,
        out: &mut [f64],
        first: usize,
    ) {
        let mut lo = [0.0_f64; 4];
        let mut hi = [0.0_f64; 4];
        let mut frac = [0.0_f64; 4];
        for l in 0..4 {
            let pos = pos0 + dpos * (first + l) as f64;
            let idx = pos as usize;
            frac[l] = pos - idx as f64;
            lo[l] = values[idx];
            hi[l] = values[idx + 1];
        }
        // SAFETY: the stack arrays are 4 lanes and `out.len() == 4`.
        unsafe {
            let vone = _mm256_set1_pd(1.0);
            let vcoeff = _mm256_set1_pd(coeff);
            let vfrac = _mm256_loadu_pd(frac.as_ptr());
            let vlo = _mm256_loadu_pd(lo.as_ptr());
            let vhi = _mm256_loadu_pd(hi.as_ptr());
            let w0 = _mm256_add_pd(vone, _mm256_mul_pd(_mm256_set1_pd(-1.0), vfrac));
            let lerp = _mm256_add_pd(_mm256_mul_pd(vlo, w0), _mm256_mul_pd(vhi, vfrac));
            let prev = _mm256_loadu_pd(out.as_ptr());
            _mm256_storeu_pd(
                out.as_mut_ptr(),
                _mm256_add_pd(prev, _mm256_mul_pd(vcoeff, lerp)),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// The backend override is process-global; tests that touch it hold
    /// this lock so the parallel test harness cannot interleave them.
    fn override_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn backends() -> Vec<Backend> {
        let mut all = vec![Backend::Scalar, Backend::Lanes];
        if intrinsics_available() {
            all.push(Backend::Intrinsics);
        }
        all
    }

    #[test]
    fn lerp_runs_matches_scalar_on_every_backend() {
        let _guard = override_lock();
        let lo: Vec<f64> = (0..23).map(|i| (i as f64 * 0.37).sin()).collect();
        let hi: Vec<f64> = (0..23).map(|i| (i as f64 * 0.91).cos()).collect();
        for n in [0, 1, 3, 4, 5, 7, 8, 9, 15, 16, 23] {
            let mut reference = vec![0.0; n];
            lerp_runs_scalar(&lo[..n], &hi[..n], 0.625, 0.375, &mut reference);
            for backend in backends() {
                set_backend_override(Some(backend));
                let mut out = vec![f64::NAN; n];
                lerp_runs(&lo, &hi, 0.625, 0.375, &mut out);
                assert_eq!(out, reference, "{} n={n}", backend.name());
            }
            set_backend_override(None);
        }
    }

    #[test]
    fn scaled_accumulate_matches_scalar_on_every_backend() {
        let _guard = override_lock();
        let raw: Vec<f64> = (0..19).map(|i| (i as f64 * 0.53).sin()).collect();
        for n in [0, 1, 3, 4, 6, 8, 11, 16, 19] {
            let mut sums_ref = vec![0.25; n];
            let mut squares_ref = vec![0.125; n];
            scaled_accumulate_scalar(1.75, &raw[..n], &mut sums_ref, &mut squares_ref);
            for backend in backends() {
                set_backend_override(Some(backend));
                let mut sums = vec![0.25; n];
                let mut squares = vec![0.125; n];
                scaled_accumulate(1.75, &raw, &mut sums, &mut squares);
                assert_eq!(sums, sums_ref, "{} sums n={n}", backend.name());
                assert_eq!(squares, squares_ref, "{} squares n={n}", backend.name());
            }
            set_backend_override(None);
        }
    }

    #[test]
    fn fused_kernel_equals_gather_then_scatter() {
        let _guard = override_lock();
        let lo: Vec<f64> = (0..21).map(|i| (i as f64 * 0.41).sin()).collect();
        let hi: Vec<f64> = (0..21).map(|i| (i as f64 * 0.77).cos()).collect();
        for n in [0, 1, 3, 4, 5, 8, 13, 16, 21] {
            // Reference: the unfused pair of kernels on the scalar backend.
            let mut row = vec![0.0; n];
            lerp_runs_scalar(&lo[..n], &hi[..n], 0.375, 0.625, &mut row);
            let mut sums_ref = vec![0.5; n];
            let mut squares_ref = vec![0.25; n];
            scaled_accumulate_scalar(2.5, &row, &mut sums_ref, &mut squares_ref);
            for backend in backends() {
                set_backend_override(Some(backend));
                let mut sums = vec![0.5; n];
                let mut squares = vec![0.25; n];
                lerp_scaled_accumulate(&lo, &hi, 0.375, 0.625, 2.5, &mut sums, &mut squares);
                assert_eq!(sums, sums_ref, "{} sums n={n}", backend.name());
                assert_eq!(squares, squares_ref, "{} squares n={n}", backend.name());
            }
            set_backend_override(None);
        }
    }

    #[test]
    fn accumulate_lerp_matches_scalar_incl_boundaries() {
        let _guard = override_lock();
        let values: Vec<f64> = (0..64).map(|i| (i as f64 * 0.11).sin()).collect();
        // Sweeps that start before the table, cross it, and run past the
        // end; plus a non-positive stride (scalar-only path).
        for &(pos0, dpos) in &[
            (-3.7, 0.9),
            (0.0, 0.26),
            (58.3, 1.7),
            (10.0, -0.5),
            (2.5, 0.0),
        ] {
            let mut reference = vec![0.5; 37];
            accumulate_lerp_scalar(&values, pos0, dpos, 2.25, &mut reference, 0);
            for backend in backends() {
                set_backend_override(Some(backend));
                let mut out = vec![0.5; 37];
                accumulate_lerp(&values, pos0, dpos, 2.25, &mut out);
                assert_eq!(out, reference, "{} pos0={pos0} dpos={dpos}", backend.name());
            }
            set_backend_override(None);
        }
    }

    #[test]
    fn override_clamps_to_available_backends() {
        let _guard = override_lock();
        set_backend_override(Some(Backend::Intrinsics));
        let active = active_backend();
        if intrinsics_available() {
            assert_eq!(active, Backend::Intrinsics);
        } else {
            assert_eq!(active, Backend::Lanes);
        }
        set_backend_override(Some(Backend::Scalar));
        assert_eq!(active_backend(), Backend::Scalar);
        set_backend_override(None);
        assert_ne!(active_backend(), Backend::Scalar);
    }
}
