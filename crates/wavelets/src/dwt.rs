//! Periodised discrete wavelet transform (Mallat's pyramid algorithm).
//!
//! The density estimator itself works with empirical coefficients computed
//! directly from data points, but the DWT is needed by downstream users that
//! compress or denoise *binned* data (e.g. the selectivity crate's compact
//! synopses) and by tests that cross-check Besov norms. The transform uses
//! circular (periodised) boundary handling, which preserves orthonormality
//! exactly for signals whose length is a multiple of `2^levels`.

use crate::filters::{FilterError, OrthonormalFilter, WaveletFamily};

/// Multi-level periodised DWT of a signal.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveletDecomposition {
    /// Approximation (scaling) coefficients at the coarsest level.
    pub approximation: Vec<f64>,
    /// Detail coefficients, finest level last (i.e. `details[0]` is the
    /// coarsest detail band produced by the last analysis step).
    pub details: Vec<Vec<f64>>,
}

impl WaveletDecomposition {
    /// Total number of coefficients (equals the input length).
    pub fn len(&self) -> usize {
        self.approximation.len() + self.details.iter().map(Vec::len).sum::<usize>()
    }

    /// True when the decomposition holds no coefficients.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of squares of all coefficients; by orthonormality this equals the
    /// energy of the analysed signal.
    pub fn energy(&self) -> f64 {
        self.approximation.iter().map(|c| c * c).sum::<f64>()
            + self
                .details
                .iter()
                .map(|level| level.iter().map(|c| c * c).sum::<f64>())
                .sum::<f64>()
    }
}

/// A periodised DWT engine for a fixed wavelet family.
#[derive(Debug, Clone)]
pub struct Dwt {
    filter: OrthonormalFilter,
}

/// Errors from the transform itself.
#[derive(Debug, Clone, PartialEq)]
pub enum DwtError {
    /// The signal length is not divisible by `2^levels`.
    LengthNotDivisible {
        /// Length of the offending signal.
        len: usize,
        /// Number of analysis levels requested.
        levels: u32,
    },
    /// The signal is empty.
    EmptySignal,
}

impl std::fmt::Display for DwtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DwtError::LengthNotDivisible { len, levels } => write!(
                f,
                "signal length {len} is not divisible by 2^{levels}; cannot run {levels} analysis levels"
            ),
            DwtError::EmptySignal => write!(f, "cannot transform an empty signal"),
        }
    }
}

impl std::error::Error for DwtError {}

impl Dwt {
    /// Creates a transform engine for `family`.
    pub fn new(family: WaveletFamily) -> Result<Self, FilterError> {
        Ok(Self {
            filter: OrthonormalFilter::new(family)?,
        })
    }

    /// Creates the engine from an existing filter.
    pub fn from_filter(filter: OrthonormalFilter) -> Self {
        Self { filter }
    }

    /// The filter pair used by this engine.
    pub fn filter(&self) -> &OrthonormalFilter {
        &self.filter
    }

    /// Single analysis step: splits `signal` into (approximation, detail)
    /// halves using circular convolution and dyadic downsampling.
    pub fn analyze_once(&self, signal: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let n = signal.len();
        let half = n / 2;
        let h = self.filter.lowpass();
        let g = self.filter.highpass();
        let mut approx = vec![0.0; half];
        let mut detail = vec![0.0; half];
        for i in 0..half {
            let mut a = 0.0;
            let mut d = 0.0;
            for (k, (&hk, &gk)) in h.iter().zip(g.iter()).enumerate() {
                let idx = (2 * i + k) % n;
                a += hk * signal[idx];
                d += gk * signal[idx];
            }
            approx[i] = a;
            detail[i] = d;
        }
        (approx, detail)
    }

    /// Single synthesis step: merges approximation and detail halves back
    /// into a signal of twice the length.
    pub fn synthesize_once(&self, approx: &[f64], detail: &[f64]) -> Vec<f64> {
        assert_eq!(approx.len(), detail.len(), "halves must have equal length");
        let half = approx.len();
        let n = 2 * half;
        let h = self.filter.lowpass();
        let g = self.filter.highpass();
        let mut out = vec![0.0; n];
        for i in 0..half {
            for (k, (&hk, &gk)) in h.iter().zip(g.iter()).enumerate() {
                let idx = (2 * i + k) % n;
                out[idx] += hk * approx[i] + gk * detail[i];
            }
        }
        out
    }

    /// Full multi-level analysis.
    pub fn decompose(&self, signal: &[f64], levels: u32) -> Result<WaveletDecomposition, DwtError> {
        if signal.is_empty() {
            return Err(DwtError::EmptySignal);
        }
        if signal.len() % (1usize << levels) != 0 {
            return Err(DwtError::LengthNotDivisible {
                len: signal.len(),
                levels,
            });
        }
        let mut approx = signal.to_vec();
        let mut details_fine_to_coarse = Vec::with_capacity(levels as usize);
        for _ in 0..levels {
            let (a, d) = self.analyze_once(&approx);
            details_fine_to_coarse.push(d);
            approx = a;
        }
        details_fine_to_coarse.reverse();
        Ok(WaveletDecomposition {
            approximation: approx,
            details: details_fine_to_coarse,
        })
    }

    /// Full multi-level synthesis, inverting [`decompose`](Self::decompose).
    pub fn reconstruct(&self, decomposition: &WaveletDecomposition) -> Vec<f64> {
        let mut approx = decomposition.approximation.clone();
        for detail in &decomposition.details {
            approx = self.synthesize_once(&approx, detail);
        }
        approx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                (2.0 * std::f64::consts::PI * 3.0 * t).sin() + 0.3 * (17.0 * t).cos() + 0.1 * t
            })
            .collect()
    }

    #[test]
    fn haar_single_step_matches_hand_computation() {
        let dwt = Dwt::new(WaveletFamily::Haar).unwrap();
        let (a, d) = dwt.analyze_once(&[1.0, 3.0, 5.0, 9.0]);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!((a[0] - 4.0 * s).abs() < 1e-12);
        assert!((a[1] - 14.0 * s).abs() < 1e-12);
        assert!((d[0] - (-2.0 * s)).abs() < 1e-12);
        assert!((d[1] - (-4.0 * s)).abs() < 1e-12);
    }

    #[test]
    fn perfect_reconstruction_for_all_families() {
        let signal = sample_signal(256);
        for fam in [
            WaveletFamily::Haar,
            WaveletFamily::Daubechies(2),
            WaveletFamily::Daubechies(5),
            WaveletFamily::Symmlet(8),
        ] {
            let dwt = Dwt::new(fam).unwrap();
            let dec = dwt.decompose(&signal, 4).unwrap();
            let rec = dwt.reconstruct(&dec);
            let max_err = signal
                .iter()
                .zip(&rec)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0_f64, f64::max);
            assert!(
                max_err < 1e-9,
                "{}: reconstruction error {max_err}",
                fam.name()
            );
        }
    }

    #[test]
    fn transform_preserves_energy() {
        let signal = sample_signal(128);
        let energy: f64 = signal.iter().map(|x| x * x).sum();
        let dwt = Dwt::new(WaveletFamily::Symmlet(8)).unwrap();
        let dec = dwt.decompose(&signal, 5).unwrap();
        assert!((dec.energy() - energy).abs() < 1e-8 * energy.max(1.0));
        assert_eq!(dec.len(), signal.len());
    }

    #[test]
    fn constant_signal_has_no_detail() {
        let dwt = Dwt::new(WaveletFamily::Daubechies(4)).unwrap();
        let signal = vec![2.5; 64];
        let dec = dwt.decompose(&signal, 3).unwrap();
        for level in &dec.details {
            for &c in level {
                assert!(c.abs() < 1e-10, "detail coefficient {c} should vanish");
            }
        }
    }

    #[test]
    fn invalid_lengths_are_rejected() {
        let dwt = Dwt::new(WaveletFamily::Haar).unwrap();
        assert_eq!(
            dwt.decompose(&[1.0, 2.0, 3.0], 2),
            Err(DwtError::LengthNotDivisible { len: 3, levels: 2 })
        );
        assert_eq!(dwt.decompose(&[], 1), Err(DwtError::EmptySignal));
    }

    #[test]
    fn error_messages_are_descriptive() {
        let err = DwtError::LengthNotDivisible { len: 10, levels: 3 };
        assert!(format!("{err}").contains("10"));
        assert!(format!("{}", DwtError::EmptySignal).contains("empty"));
    }
}
