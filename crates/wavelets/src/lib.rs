//! # wavedens-wavelets
//!
//! Compactly supported orthonormal wavelet machinery for the `wavedens`
//! workspace, built entirely from first principles (no coefficient tables,
//! no external numerical crates):
//!
//! * [`filters`] — Daubechies extremal-phase and Symmlet (least-asymmetric)
//!   quadrature-mirror filters constructed by spectral factorisation of the
//!   Daubechies polynomial.
//! * [`cascade`] — dyadic-grid tabulation of the scaling function `φ` and
//!   mother wavelet `ψ` via the cascade algorithm (the Wavelab-style scheme
//!   the paper uses).
//! * [`daubechies_lagarias`] — exact pointwise evaluation of `φ` and `ψ` by
//!   the Daubechies–Lagarias local pyramid algorithm.
//! * [`basis`] — dilated/translated basis functions `φ_{j,k}`, `ψ_{j,k}` and
//!   translation bookkeeping on compact intervals.
//! * [`dwt`] — periodised discrete wavelet transform.
//! * [`tensor`] — 2-D tensor-product basis built from separable products of
//!   the 1-D factors (reuses the per-axis polyphase gathers).
//! * [`besov`] — Besov sequence norms and the minimax-rate bookkeeping of
//!   the paper's Theorem 3.1.
//!
//! The crate is the wavelet substrate for the adaptive density estimator of
//! Gannaz & Wintenberger, *Adaptive density estimation under weak
//! dependence* (2006/2008), implemented in `wavedens-core`.
//!
//! ## Quick example
//!
//! ```
//! use wavedens_wavelets::{WaveletBasis, WaveletFamily};
//!
//! let basis = WaveletBasis::new(WaveletFamily::Symmlet(8)).unwrap();
//! // ψ_{3,2}(0.4) = 2^{3/2} ψ(2^3·0.4 − 2)
//! let value = basis.psi_jk(3, 2, 0.4);
//! assert!(value.is_finite());
//! // Which translations matter on [0, 1] at level 3?
//! let range = basis.translations_covering(3, 0.0, 1.0);
//! assert!(range.contains(&0));
//! ```

#![warn(missing_docs)]

pub mod basis;
pub mod besov;
pub mod cascade;
pub mod daubechies_lagarias;
pub mod dwt;
pub mod filters;
pub mod kernels;
pub mod numerics;
pub mod tensor;

pub use basis::WaveletBasis;
pub use besov::{besov_norm, besov_seminorm, BesovParameters, DetailLevel};
pub use cascade::{WaveletTable, DEFAULT_TABLE_LEVELS};
pub use daubechies_lagarias::PointwiseEvaluator;
pub use dwt::{Dwt, DwtError, WaveletDecomposition};
pub use filters::{FilterError, OrthonormalFilter, WaveletFamily};
pub use tensor::TensorBasis;
