//! Construction of compactly supported orthonormal wavelet filters.
//!
//! Instead of copying coefficient tables, filters are constructed from first
//! principles by spectral factorisation of the Daubechies polynomial
//! (Daubechies, *Ten Lectures on Wavelets*, 1992):
//!
//! 1. Form `P(y) = Σ_{k<N} C(N-1+k, k) y^k`, the unique minimal-degree
//!    solution of the Bezout identity `(1-y)^N P(y) + y^N P(1-y) = 1`.
//! 2. Substitute `y = (2 - z - 1/z)/4` and clear denominators to obtain a
//!    Laurent-symmetric polynomial `Q(z)` of degree `2(N-1)` whose roots come
//!    in reciprocal pairs `{z, 1/z}` (and conjugate pairs).
//! 3. Select one root from every reciprocal pair (keeping conjugates
//!    together so the filter stays real) and form
//!    `H(z) ∝ (1+z)^N Π_i (z - z_i)`, normalised so `Σ_k h_k = √2`.
//!
//! Choosing the roots **inside** the unit circle yields the extremal-phase
//! (classic Daubechies) filter; enumerating all admissible selections and
//! minimising the phase non-linearity yields the least-asymmetric
//! **Symmlet** filter used in the paper (Symmlet with `N = 8` vanishing
//! moments). The resulting filters are validated by the unit and property
//! tests against the defining algebraic identities (quadrature-mirror
//! orthonormality, vanishing moments, `Σ h = √2`).

use crate::numerics::{binomial, polynomial_roots, Complex};

/// The wavelet families supported by this crate.
///
/// The inner value is the number of vanishing moments `N`; the associated
/// scaling filter has `2N` taps and the scaling/wavelet functions are
/// supported on `[0, 2N - 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WaveletFamily {
    /// The Haar wavelet (`N = 1`). Discontinuous; mostly useful for testing.
    Haar,
    /// Daubechies extremal-phase wavelet with `N` vanishing moments
    /// (`2 ≤ N ≤ 10`).
    Daubechies(usize),
    /// Least-asymmetric Daubechies ("Symmlet") wavelet with `N` vanishing
    /// moments (`4 ≤ N ≤ 10`). `Symmlet(8)` is the wavelet used throughout
    /// the paper's simulations.
    Symmlet(usize),
}

impl WaveletFamily {
    /// Number of vanishing moments of the mother wavelet.
    pub fn vanishing_moments(self) -> usize {
        match self {
            WaveletFamily::Haar => 1,
            WaveletFamily::Daubechies(n) | WaveletFamily::Symmlet(n) => n,
        }
    }

    /// Length of the scaling filter (`2N`).
    pub fn filter_length(self) -> usize {
        2 * self.vanishing_moments()
    }

    /// Human-readable name, e.g. `"sym8"`.
    pub fn name(self) -> String {
        match self {
            WaveletFamily::Haar => "haar".to_string(),
            WaveletFamily::Daubechies(n) => format!("db{n}"),
            WaveletFamily::Symmlet(n) => format!("sym{n}"),
        }
    }

    /// Validates the order of the family.
    fn validate(self) -> Result<(), FilterError> {
        match self {
            WaveletFamily::Haar => Ok(()),
            WaveletFamily::Daubechies(n) if (2..=10).contains(&n) => Ok(()),
            WaveletFamily::Symmlet(n) if (4..=10).contains(&n) => Ok(()),
            _ => Err(FilterError::UnsupportedOrder(self)),
        }
    }
}

/// Errors arising during filter construction.
#[derive(Debug, Clone, PartialEq)]
pub enum FilterError {
    /// The requested order is outside the supported range.
    UnsupportedOrder(WaveletFamily),
    /// The spectral factorisation failed numerically (should not happen for
    /// supported orders; kept as an error instead of a panic for robustness).
    FactorisationFailed(String),
}

impl std::fmt::Display for FilterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FilterError::UnsupportedOrder(fam) => {
                write!(f, "unsupported wavelet order: {}", fam.name())
            }
            FilterError::FactorisationFailed(msg) => {
                write!(f, "spectral factorisation failed: {msg}")
            }
        }
    }
}

impl std::error::Error for FilterError {}

/// A quadrature-mirror pair of orthonormal wavelet filters.
#[derive(Debug, Clone, PartialEq)]
pub struct OrthonormalFilter {
    family: WaveletFamily,
    /// Low-pass (scaling) filter `h`, normalised so `Σ h_k = √2`.
    lowpass: Vec<f64>,
    /// High-pass (wavelet) filter `g_k = (-1)^k h_{L-1-k}`.
    highpass: Vec<f64>,
}

impl OrthonormalFilter {
    /// Constructs the filter pair for `family`.
    pub fn new(family: WaveletFamily) -> Result<Self, FilterError> {
        family.validate()?;
        let lowpass = match family {
            WaveletFamily::Haar => vec![std::f64::consts::FRAC_1_SQRT_2; 2],
            WaveletFamily::Daubechies(n) => construct_lowpass(n, RootSelection::ExtremalPhase)?,
            WaveletFamily::Symmlet(n) => construct_lowpass(n, RootSelection::LeastAsymmetric)?,
        };
        let highpass = quadrature_mirror(&lowpass);
        Ok(Self {
            family,
            lowpass,
            highpass,
        })
    }

    /// The wavelet family this filter belongs to.
    pub fn family(&self) -> WaveletFamily {
        self.family
    }

    /// The low-pass (scaling) filter coefficients `h_0, …, h_{2N-1}`.
    pub fn lowpass(&self) -> &[f64] {
        &self.lowpass
    }

    /// The high-pass (wavelet) filter coefficients.
    pub fn highpass(&self) -> &[f64] {
        &self.highpass
    }

    /// Number of filter taps (`2N`).
    pub fn len(&self) -> usize {
        self.lowpass.len()
    }

    /// Always false for a valid filter; present for clippy-idiomatic pairing
    /// with [`len`](Self::len).
    pub fn is_empty(&self) -> bool {
        self.lowpass.is_empty()
    }

    /// Number of vanishing moments `N`.
    pub fn vanishing_moments(&self) -> usize {
        self.family.vanishing_moments()
    }

    /// Length of the support of the scaling and wavelet functions
    /// (`2N - 1`); both are supported on `[0, support_length]`.
    pub fn support_length(&self) -> usize {
        self.lowpass.len() - 1
    }

    /// Maximal deviation from the quadrature-mirror orthonormality condition
    /// `Σ_k h_k h_{k+2m} = δ_{m,0}`. Useful as a numerical health check.
    pub fn orthonormality_defect(&self) -> f64 {
        let h = &self.lowpass;
        let len = h.len();
        let mut worst = 0.0_f64;
        for m in 0..len / 2 {
            let mut acc = 0.0;
            for k in 0..len - 2 * m {
                acc += h[k] * h[k + 2 * m];
            }
            let target = if m == 0 { 1.0 } else { 0.0 };
            worst = worst.max((acc - target).abs());
        }
        worst
    }
}

/// The quadrature-mirror relation `g_k = (-1)^k h_{L-1-k}`.
fn quadrature_mirror(lowpass: &[f64]) -> Vec<f64> {
    let len = lowpass.len();
    (0..len)
        .map(|k| {
            let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
            sign * lowpass[len - 1 - k]
        })
        .collect()
}

/// Which root of each reciprocal pair to keep during spectral factorisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RootSelection {
    /// Always keep the root inside the unit circle (classic Daubechies).
    ExtremalPhase,
    /// Enumerate all admissible selections and keep the one minimising phase
    /// non-linearity (Symmlet / least-asymmetric).
    LeastAsymmetric,
}

/// A unit of root choice: either a single reciprocal pair of real roots or a
/// conjugate quadruple of complex roots. Choosing "inside" keeps the members
/// with modulus < 1, "outside" keeps their reciprocals.
#[derive(Debug, Clone)]
struct RootGroup {
    inside: Vec<Complex>,
    outside: Vec<Complex>,
}

/// Builds the low-pass filter for `n` vanishing moments using the requested
/// root-selection strategy.
fn construct_lowpass(n: usize, selection: RootSelection) -> Result<Vec<f64>, FilterError> {
    let groups = factorisation_root_groups(n)?;

    match selection {
        RootSelection::ExtremalPhase => {
            let chosen: Vec<Complex> = groups.iter().flat_map(|g| g.inside.clone()).collect();
            Ok(filter_from_roots(n, &chosen))
        }
        RootSelection::LeastAsymmetric => {
            let mut best: Option<(f64, Vec<f64>)> = None;
            let combos = 1_usize << groups.len();
            for mask in 0..combos {
                let chosen: Vec<Complex> = groups
                    .iter()
                    .enumerate()
                    .flat_map(|(i, g)| {
                        if mask & (1 << i) == 0 {
                            g.inside.clone()
                        } else {
                            g.outside.clone()
                        }
                    })
                    .collect();
                let candidate = filter_from_roots(n, &chosen);
                let score = phase_nonlinearity(&candidate);
                let better = match &best {
                    None => true,
                    Some((best_score, _)) => score < *best_score - 1e-12,
                };
                if better {
                    best = Some((score, candidate));
                }
            }
            best.map(|(_, filter)| filter)
                .ok_or_else(|| FilterError::FactorisationFailed("no root selection found".into()))
        }
    }
}

/// Computes the reciprocal-pair root groups of the Daubechies polynomial for
/// `n` vanishing moments.
fn factorisation_root_groups(n: usize) -> Result<Vec<RootGroup>, FilterError> {
    if n == 1 {
        return Ok(Vec::new());
    }

    // Q(z) = Σ_k C(N-1+k, k) (-1)^k (z-1)^{2k} z^{N-1-k} / 4^k,
    // a degree 2(N-1) polynomial whose roots come in reciprocal pairs.
    let degree = 2 * (n - 1);
    let mut q = vec![0.0_f64; degree + 1];
    for k in 0..n {
        let coeff = binomial((n - 1 + k) as u64, k as u64) * (-1.0_f64).powi(k as i32)
            / 4.0_f64.powi(k as i32);
        // (z - 1)^{2k} expanded, then shifted by z^{N-1-k}.
        let shift = n - 1 - k;
        for j in 0..=(2 * k) {
            let binom = binomial((2 * k) as u64, j as u64);
            let sign = (-1.0_f64).powi((2 * k - j) as i32);
            q[shift + j] += coeff * binom * sign;
        }
    }

    let roots = polynomial_roots(&q);

    // Partition into conjugate-reciprocal groups. Work with the roots of
    // modulus < 1 (exactly half of them) and attach their reciprocals.
    let mut inside: Vec<Complex> = roots.into_iter().filter(|z| z.abs() < 1.0).collect();
    if inside.len() != n - 1 {
        return Err(FilterError::FactorisationFailed(format!(
            "expected {} roots inside the unit circle, found {}",
            n - 1,
            inside.len()
        )));
    }

    let mut groups = Vec::new();
    while let Some(z) = inside.pop() {
        if z.im.abs() < 1e-9 {
            // Real root: the group is the pair {z, 1/z}.
            groups.push(RootGroup {
                inside: vec![Complex::real(z.re)],
                outside: vec![Complex::real(1.0 / z.re)],
            });
        } else {
            // Complex root: find and remove its conjugate, group the
            // quadruple {z, z̄} vs {1/z, 1/z̄}.
            let conj_pos = inside
                .iter()
                .position(|w| (w.re - z.re).abs() < 1e-7 && (w.im + z.im).abs() < 1e-7)
                .ok_or_else(|| {
                    FilterError::FactorisationFailed(
                        "complex root without conjugate partner".into(),
                    )
                })?;
            let conj = inside.swap_remove(conj_pos);
            groups.push(RootGroup {
                inside: vec![z, conj],
                outside: vec![z.inv(), conj.inv()],
            });
        }
    }
    Ok(groups)
}

/// Expands `H(z) = c (1+z)^N Π_i (z - z_i)` and normalises so `Σ h_k = √2`.
fn filter_from_roots(n: usize, roots: &[Complex]) -> Vec<f64> {
    // Start with the polynomial 1 and multiply factors in.
    let mut coeffs: Vec<Complex> = vec![Complex::real(1.0)];
    for _ in 0..n {
        coeffs = multiply_linear(&coeffs, Complex::real(1.0), Complex::real(1.0));
    }
    for &root in roots {
        coeffs = multiply_linear(&coeffs, -root, Complex::real(1.0));
    }
    let mut h: Vec<f64> = coeffs.iter().map(|c| c.re).collect();
    let sum: f64 = h.iter().sum();
    let target = std::f64::consts::SQRT_2;
    for v in &mut h {
        *v *= target / sum;
    }
    h
}

/// Multiplies the polynomial `coeffs` (ascending degree) by `(a + b z)`.
fn multiply_linear(coeffs: &[Complex], a: Complex, b: Complex) -> Vec<Complex> {
    let mut out = vec![Complex::default(); coeffs.len() + 1];
    for (k, &c) in coeffs.iter().enumerate() {
        out[k] = out[k] + c * a;
        out[k + 1] = out[k + 1] + c * b;
    }
    out
}

/// Sum of squared deviations of the unwrapped phase of `H(e^{-iω})` from its
/// best linear fit on a grid avoiding the zero at `ω = π`. Smaller means a
/// more symmetric (linear-phase-like) filter.
fn phase_nonlinearity(h: &[f64]) -> f64 {
    const GRID: usize = 256;
    let mut omegas = Vec::with_capacity(GRID);
    let mut phases = Vec::with_capacity(GRID);
    let mut prev_phase = 0.0_f64;
    let mut offset = 0.0_f64;
    for i in 0..GRID {
        let omega = std::f64::consts::PI * 0.95 * (i as f64 + 0.5) / GRID as f64;
        let mut re = 0.0;
        let mut im = 0.0;
        for (k, &hk) in h.iter().enumerate() {
            let angle = -(k as f64) * omega;
            re += hk * angle.cos();
            im += hk * angle.sin();
        }
        let mut phase = im.atan2(re);
        // Unwrap.
        if i > 0 {
            while phase + offset - prev_phase > std::f64::consts::PI {
                offset -= 2.0 * std::f64::consts::PI;
            }
            while phase + offset - prev_phase < -std::f64::consts::PI {
                offset += 2.0 * std::f64::consts::PI;
            }
        }
        phase += offset;
        prev_phase = phase;
        omegas.push(omega);
        phases.push(phase);
    }
    // Least-squares fit phase ≈ a + b ω and return the residual sum of
    // squares.
    let n = GRID as f64;
    let sx: f64 = omegas.iter().sum();
    let sy: f64 = phases.iter().sum();
    let sxx: f64 = omegas.iter().map(|x| x * x).sum();
    let sxy: f64 = omegas.iter().zip(&phases).map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    omegas
        .iter()
        .zip(&phases)
        .map(|(x, y)| {
            let r = y - a - b * x;
            r * r
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SQRT2: f64 = std::f64::consts::SQRT_2;

    fn all_supported_families() -> Vec<WaveletFamily> {
        let mut fams = vec![WaveletFamily::Haar];
        fams.extend((2..=10).map(WaveletFamily::Daubechies));
        fams.extend((4..=10).map(WaveletFamily::Symmlet));
        fams
    }

    #[test]
    fn haar_filter_is_exact() {
        let f = OrthonormalFilter::new(WaveletFamily::Haar).unwrap();
        for (got, expected) in f.lowpass().iter().zip([1.0 / SQRT2, 1.0 / SQRT2]) {
            assert!((got - expected).abs() < 1e-15);
        }
        for (got, expected) in f.highpass().iter().zip([1.0 / SQRT2, -1.0 / SQRT2]) {
            assert!((got - expected).abs() < 1e-15);
        }
        assert_eq!(f.support_length(), 1);
    }

    #[test]
    fn db2_matches_closed_form() {
        // The D4 filter has the closed form
        // (1±√3, 3±√3)/(4√2); our construction may produce it in reversed
        // order, so compare as multisets.
        let f = OrthonormalFilter::new(WaveletFamily::Daubechies(2)).unwrap();
        let s3 = 3.0_f64.sqrt();
        let mut expected = [
            (1.0 + s3) / (4.0 * SQRT2),
            (3.0 + s3) / (4.0 * SQRT2),
            (3.0 - s3) / (4.0 * SQRT2),
            (1.0 - s3) / (4.0 * SQRT2),
        ];
        let mut got = f.lowpass().to_vec();
        expected.sort_by(f64::total_cmp);
        got.sort_by(f64::total_cmp);
        for (g, e) in got.iter().zip(expected.iter()) {
            assert!((g - e).abs() < 1e-10, "{g} vs {e}");
        }
    }

    #[test]
    fn filters_sum_to_sqrt2_and_are_orthonormal() {
        for fam in all_supported_families() {
            let f = OrthonormalFilter::new(fam).unwrap();
            let sum: f64 = f.lowpass().iter().sum();
            assert!(
                (sum - SQRT2).abs() < 1e-9,
                "{}: sum {} != sqrt(2)",
                fam.name(),
                sum
            );
            assert!(
                f.orthonormality_defect() < 1e-8,
                "{}: orthonormality defect {}",
                fam.name(),
                f.orthonormality_defect()
            );
            assert_eq!(f.len(), fam.filter_length());
        }
    }

    #[test]
    fn highpass_has_vanishing_moments() {
        // Σ_k g_k k^m = 0 for m = 0..N-1 ensures the mother wavelet has N
        // vanishing moments.
        for fam in all_supported_families() {
            let f = OrthonormalFilter::new(fam).unwrap();
            let n = f.vanishing_moments();
            for m in 0..n {
                let moment: f64 = f
                    .highpass()
                    .iter()
                    .enumerate()
                    .map(|(k, &g)| g * (k as f64).powi(m as i32))
                    .sum();
                // Tolerance loosens with the order because the moments involve
                // k^m up to 19^9.
                let tol = 1e-7 * 20f64.powi(m as i32);
                assert!(
                    moment.abs() < tol,
                    "{}: moment {} = {}",
                    fam.name(),
                    m,
                    moment
                );
            }
        }
    }

    #[test]
    fn highpass_is_orthogonal_to_lowpass_shifts() {
        for fam in all_supported_families() {
            let f = OrthonormalFilter::new(fam).unwrap();
            let h = f.lowpass();
            let g = f.highpass();
            let len = h.len();
            for m in 0..(len / 2) {
                let mut acc = 0.0;
                for (k, &hk) in h.iter().enumerate() {
                    let idx = k + 2 * m;
                    if idx < len {
                        acc += hk * g[idx];
                    }
                }
                assert!(acc.abs() < 1e-9, "{}: <h, g(·-2m)> = {}", fam.name(), acc);
            }
        }
    }

    #[test]
    fn symmlet_is_less_asymmetric_than_daubechies() {
        for n in [4_usize, 6, 8, 10] {
            let db = OrthonormalFilter::new(WaveletFamily::Daubechies(n)).unwrap();
            let sym = OrthonormalFilter::new(WaveletFamily::Symmlet(n)).unwrap();
            let db_score = phase_nonlinearity(db.lowpass());
            let sym_score = phase_nonlinearity(sym.lowpass());
            assert!(
                sym_score < db_score,
                "sym{n} nonlinearity {sym_score} should beat db{n} {db_score}"
            );
        }
    }

    #[test]
    fn symmlet_and_daubechies_share_magnitude_response() {
        // Both factorisations of the same |H(ω)|² must have identical
        // magnitude responses.
        let db = OrthonormalFilter::new(WaveletFamily::Daubechies(8)).unwrap();
        let sym = OrthonormalFilter::new(WaveletFamily::Symmlet(8)).unwrap();
        for i in 0..64 {
            let omega = std::f64::consts::PI * i as f64 / 64.0;
            let mag = |h: &[f64]| -> f64 {
                let (mut re, mut im) = (0.0, 0.0);
                for (k, &hk) in h.iter().enumerate() {
                    re += hk * (k as f64 * omega).cos();
                    im -= hk * (k as f64 * omega).sin();
                }
                re * re + im * im
            };
            assert!(
                (mag(db.lowpass()) - mag(sym.lowpass())).abs() < 1e-8,
                "magnitude mismatch at ω={omega}"
            );
        }
    }

    #[test]
    fn unsupported_orders_are_rejected() {
        assert!(OrthonormalFilter::new(WaveletFamily::Daubechies(1)).is_err());
        assert!(OrthonormalFilter::new(WaveletFamily::Daubechies(11)).is_err());
        assert!(OrthonormalFilter::new(WaveletFamily::Symmlet(3)).is_err());
        assert!(OrthonormalFilter::new(WaveletFamily::Symmlet(42)).is_err());
    }

    #[test]
    fn family_names_are_stable() {
        assert_eq!(WaveletFamily::Haar.name(), "haar");
        assert_eq!(WaveletFamily::Daubechies(4).name(), "db4");
        assert_eq!(WaveletFamily::Symmlet(8).name(), "sym8");
    }

    #[test]
    fn error_display_is_informative() {
        let err = OrthonormalFilter::new(WaveletFamily::Symmlet(99)).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("sym99"));
    }
}
