//! Besov sequence (semi-)norms computed from wavelet coefficients.
//!
//! The paper measures the smoothness of the target density through
//! membership in a Besov ball `B^s_{π,r}(M₁)`, characterised by the sequence
//! norm
//!
//! ```text
//! ‖f‖_{s,π,r} = |α_{0,0}| + ( Σ_j [ 2^{j(sπ + π/2 − 1)} Σ_k |β_{j,k}|^π ]^{r/π} )^{1/r},
//! ```
//!
//! with the usual `sup` modification when `r = ∞`. This module evaluates that
//! norm from coefficient arrays so that tests and experiments can verify the
//! smoothness classes claimed for the simulated densities and so that the
//! minimax-rate bookkeeping of Theorem 3.1 (`α`, `ε`) is available
//! programmatically.

/// Besov smoothness parameters `(s, π, r)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BesovParameters {
    /// Smoothness index `s > 0`.
    pub s: f64,
    /// Integrability index `π ≥ 1` of the coefficients.
    pub pi: f64,
    /// Summability index `r ≥ 1`; use `f64::INFINITY` for the `sup` norm.
    pub r: f64,
}

impl BesovParameters {
    /// Creates a parameter set, validating the ranges required by the paper
    /// (`s + 1/2 − 1/π > 0` guarantees the Besov space embeds in `L²`-usable
    /// classes).
    pub fn new(s: f64, pi: f64, r: f64) -> Result<Self, String> {
        if s.is_nan() || s <= 0.0 {
            return Err(format!("smoothness s must be positive, got {s}"));
        }
        if pi.is_nan() || pi < 1.0 {
            return Err(format!("integrability π must be ≥ 1, got {pi}"));
        }
        if r.is_nan() || r < 1.0 {
            return Err(format!("summability r must be ≥ 1 (or ∞), got {r}"));
        }
        if s + 0.5 - 1.0 / pi <= 0.0 {
            return Err(format!(
                "parameters must satisfy s + 1/2 − 1/π > 0 (got s={s}, π={pi})"
            ));
        }
        Ok(Self { s, pi, r })
    }

    /// The critical exponent `ε = sπ − (p − π)/2` separating the dense and
    /// sparse minimax regimes for `L^p` risk (equation (2.1) of the paper).
    pub fn epsilon(&self, p: f64) -> f64 {
        self.s * self.pi - (p - self.pi) / 2.0
    }

    /// Minimax rate exponent `α` of equation (2.1): the best achievable rate
    /// is `n^{-pα}` (up to logarithms) for the mean `L^p` error.
    pub fn minimax_exponent(&self, p: f64) -> f64 {
        let eps = self.epsilon(p);
        if eps >= 0.0 {
            self.s / (1.0 + 2.0 * self.s)
        } else {
            (self.s - 1.0 / self.pi + 1.0 / p) / (1.0 + 2.0 * self.s - 2.0 / self.pi)
        }
    }
}

/// One resolution level of detail coefficients: the level index `j` and the
/// coefficients `β_{j,k}` for the translations retained at that level.
#[derive(Debug, Clone, PartialEq)]
pub struct DetailLevel {
    /// Resolution level `j ≥ j0`.
    pub level: i32,
    /// Detail coefficients at this level.
    pub coefficients: Vec<f64>,
}

/// Computes the Besov sequence norm
/// `|α_ref| + ( Σ_j [2^{j(sπ+π/2−1)} Σ_k |β_{j,k}|^π]^{r/π} )^{1/r}`.
///
/// `alpha_reference` plays the role of `|α_{0,0}|`; pass the `ℓ^π` norm of
/// the coarse-scale coefficients when working on a bounded interval.
pub fn besov_norm(params: BesovParameters, alpha_reference: f64, details: &[DetailLevel]) -> f64 {
    alpha_reference.abs() + besov_seminorm(params, details)
}

/// The detail-only part of the Besov norm.
pub fn besov_seminorm(params: BesovParameters, details: &[DetailLevel]) -> f64 {
    let BesovParameters { s, pi, r } = params;
    let exponent = s * pi + pi / 2.0 - 1.0;
    let level_terms = details.iter().map(|lvl| {
        let sum_pi: f64 = lvl
            .coefficients
            .iter()
            .map(|b| b.abs().powf(pi))
            .sum::<f64>();
        (2f64.powf(lvl.level as f64 * exponent) * sum_pi).powf(1.0 / pi)
    });
    if r.is_infinite() {
        level_terms.fold(0.0_f64, f64::max)
    } else {
        level_terms.map(|t| t.powf(r)).sum::<f64>().powf(1.0 / r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(s: f64, pi: f64, r: f64) -> BesovParameters {
        BesovParameters::new(s, pi, r).unwrap()
    }

    #[test]
    fn parameter_validation() {
        assert!(BesovParameters::new(1.0, 2.0, 2.0).is_ok());
        assert!(BesovParameters::new(-1.0, 2.0, 2.0).is_err());
        assert!(BesovParameters::new(1.0, 0.5, 2.0).is_err());
        assert!(BesovParameters::new(1.0, 2.0, 0.0).is_err());
        // s + 1/2 - 1/π must be positive: s=0.1, π=1 gives -0.4.
        assert!(BesovParameters::new(0.1, 1.0, 2.0).is_err());
        assert!(BesovParameters::new(1.0, 2.0, f64::INFINITY).is_ok());
    }

    #[test]
    fn epsilon_and_minimax_exponent_match_paper_formulas() {
        // Dense regime: s=2, π=2, p=2 -> ε = 4 > 0, α = s/(1+2s) = 0.4.
        let p2 = params(2.0, 2.0, 2.0);
        assert!(p2.epsilon(2.0) > 0.0);
        assert!((p2.minimax_exponent(2.0) - 0.4).abs() < 1e-12);

        // Sparse regime: s=0.6, π=1, p=4 -> ε = 0.6 − 1.5 < 0,
        // α = (s − 1/π + 1/p)/(1 + 2s − 2/π) = (0.6 − 1 + 0.25)/(1 + 1.2 − 2)
        //   = (−0.15)/(0.2) = −0.75 — not meaningful; pick parameters with
        // s > 1/π as required by Theorem 3.1: s=1.2, π=1, p=4.
        let p3 = params(1.2, 1.0, 2.0);
        assert!(p3.epsilon(4.0) < 0.0);
        let expected = (1.2 - 1.0 + 0.25) / (1.0 + 2.4 - 2.0);
        assert!((p3.minimax_exponent(4.0) - expected).abs() < 1e-12);
    }

    #[test]
    fn seminorm_of_zero_coefficients_is_zero() {
        let details = vec![
            DetailLevel {
                level: 3,
                coefficients: vec![0.0; 8],
            },
            DetailLevel {
                level: 4,
                coefficients: vec![0.0; 16],
            },
        ];
        assert_eq!(besov_seminorm(params(1.0, 2.0, 2.0), &details), 0.0);
        assert_eq!(besov_norm(params(1.0, 2.0, 2.0), 0.7, &details), 0.7);
    }

    #[test]
    fn seminorm_is_monotone_in_coefficients() {
        let small = vec![DetailLevel {
            level: 5,
            coefficients: vec![0.1, -0.05, 0.02],
        }];
        let large = vec![DetailLevel {
            level: 5,
            coefficients: vec![0.2, -0.1, 0.04],
        }];
        let p = params(1.5, 2.0, 2.0);
        assert!(besov_seminorm(p, &large) > besov_seminorm(p, &small));
        // Scaling by 2 scales the seminorm by 2 (it is a norm).
        assert!((besov_seminorm(p, &large) - 2.0 * besov_seminorm(p, &small)).abs() < 1e-12);
    }

    #[test]
    fn higher_levels_are_weighted_more() {
        let p = params(1.0, 2.0, 2.0);
        let coarse = vec![DetailLevel {
            level: 2,
            coefficients: vec![0.5],
        }];
        let fine = vec![DetailLevel {
            level: 8,
            coefficients: vec![0.5],
        }];
        assert!(besov_seminorm(p, &fine) > besov_seminorm(p, &coarse));
    }

    #[test]
    fn sup_norm_variant_takes_maximum() {
        let details = vec![
            DetailLevel {
                level: 2,
                coefficients: vec![0.3],
            },
            DetailLevel {
                level: 3,
                coefficients: vec![0.1],
            },
        ];
        let p_inf = params(1.0, 2.0, f64::INFINITY);
        let term = |lvl: i32, c: f64| (2f64.powf(lvl as f64 * 2.0) * c * c).sqrt();
        let expected = term(2, 0.3).max(term(3, 0.1));
        assert!((besov_seminorm(p_inf, &details) - expected).abs() < 1e-12);
    }
}
