//! Exact pointwise evaluation of `φ` and `ψ` by the Daubechies–Lagarias
//! local pyramid algorithm (Daubechies & Lagarias 1992; Vidakovic 2002).
//!
//! The paper notes (Section 5.3) that the Daubechies–Lagarias scheme gives
//! the values `ψ_{j,k}(X_i)` directly but is slower than the grid
//! approximation used with Wavelab. This module provides the exact scheme so
//! the grid approximation of [`crate::cascade`] can be validated and so
//! downstream users can trade speed for exactness.
//!
//! For `t ∈ [0, 1)` with binary digits `d_1 d_2 …`, the vector
//! `v(t) = (φ(t), φ(t+1), …, φ(t+L-2))` satisfies
//! `v(t) = M_{d_1} M_{d_2} ⋯ M_{d_n} v(τ_n)` where
//! `(M_d)_{ij} = √2 h_{2i + d − j}`. The product converges geometrically to a
//! rank-one matrix whose rows average to `v(t)` (using the partition of
//! unity `Σ_j φ(τ + j) = 1`), so `n ≈ 40` digits give machine precision.

use crate::filters::{FilterError, OrthonormalFilter, WaveletFamily};

/// Number of binary digits (matrix products) used by default. Each product
/// at least halves the error, so 48 digits exhaust `f64` precision.
pub const DEFAULT_DIGITS: usize = 48;

/// Exact evaluator for `φ` and `ψ` built on the Daubechies–Lagarias
/// algorithm.
#[derive(Debug, Clone)]
pub struct PointwiseEvaluator {
    filter: OrthonormalFilter,
    digits: usize,
    /// The two refinement matrices `M_0`, `M_1`, stored row-major with
    /// dimension `(L-1) × (L-1)`.
    m0: Vec<f64>,
    m1: Vec<f64>,
    dim: usize,
}

impl PointwiseEvaluator {
    /// Builds the evaluator for `family` with the default digit count.
    pub fn new(family: WaveletFamily) -> Result<Self, FilterError> {
        let filter = OrthonormalFilter::new(family)?;
        Ok(Self::from_filter(filter, DEFAULT_DIGITS))
    }

    /// Builds the evaluator from an existing filter with a custom digit
    /// count (mostly useful to study the convergence of the algorithm).
    pub fn from_filter(filter: OrthonormalFilter, digits: usize) -> Self {
        let len = filter.len();
        let dim = len - 1;
        let sqrt2 = std::f64::consts::SQRT_2;
        let entry = |d: usize, i: usize, j: usize| -> f64 {
            let k = 2 * i as i64 + d as i64 - j as i64;
            if (0..len as i64).contains(&k) {
                sqrt2 * filter.lowpass()[k as usize]
            } else {
                0.0
            }
        };
        let build = |d: usize| -> Vec<f64> {
            let mut m = vec![0.0; dim * dim];
            for i in 0..dim {
                for j in 0..dim {
                    m[i * dim + j] = entry(d, i, j);
                }
            }
            m
        };
        Self {
            m0: build(0),
            m1: build(1),
            dim,
            digits: digits.max(1),
            filter,
        }
    }

    /// The underlying filter.
    pub fn filter(&self) -> &OrthonormalFilter {
        &self.filter
    }

    /// Evaluates the scaling function `φ(x)`; 0 outside `[0, 2N-1]`.
    pub fn phi(&self, x: f64) -> f64 {
        let support = self.filter.support_length() as f64;
        if !(0.0..support).contains(&x) {
            // φ vanishes at the right endpoint and outside the support.
            return 0.0;
        }
        if self.filter.len() == 2 {
            // Haar: indicator of [0, 1).
            return if x < 1.0 { 1.0 } else { 0.0 };
        }
        let shift = x.floor();
        let index = shift as usize;
        if index >= self.dim {
            return 0.0;
        }
        let v = self.vector_at(x - shift);
        v[index]
    }

    /// Evaluates the mother wavelet `ψ(x) = √2 Σ_k g_k φ(2x − k)`.
    pub fn psi(&self, x: f64) -> f64 {
        let support = self.filter.support_length() as f64;
        if !(0.0..=support).contains(&x) {
            return 0.0;
        }
        let sqrt2 = std::f64::consts::SQRT_2;
        self.filter
            .highpass()
            .iter()
            .enumerate()
            .map(|(k, &gk)| sqrt2 * gk * self.phi(2.0 * x - k as f64))
            .sum()
    }

    /// Computes `v(t) = (φ(t), φ(t+1), …, φ(t+L-2))` for `t ∈ [0, 1)`.
    fn vector_at(&self, t: f64) -> Vec<f64> {
        debug_assert!((0.0..1.0).contains(&t));
        // Product of the digit matrices, accumulated left to right.
        let mut product: Option<Vec<f64>> = None;
        let mut frac = t;
        for _ in 0..self.digits {
            frac *= 2.0;
            let digit = if frac >= 1.0 { 1 } else { 0 };
            if digit == 1 {
                frac -= 1.0;
            }
            let m = if digit == 0 { &self.m0 } else { &self.m1 };
            product = Some(match product {
                None => m.clone(),
                Some(p) => mat_mul(&p, m, self.dim),
            });
        }
        let p = product.expect("at least one digit");
        // Row averages approximate v(t).
        (0..self.dim)
            .map(|i| {
                let row = &p[i * self.dim..(i + 1) * self.dim];
                row.iter().sum::<f64>() / self.dim as f64
            })
            .collect()
    }
}

fn mat_mul(a: &[f64], b: &[f64], dim: usize) -> Vec<f64> {
    let mut out = vec![0.0; dim * dim];
    for i in 0..dim {
        for k in 0..dim {
            let aik = a[i * dim + k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..dim {
                out[i * dim + j] += aik * b[k * dim + j];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cascade::WaveletTable;

    #[test]
    fn haar_phi_is_indicator() {
        let eval = PointwiseEvaluator::new(WaveletFamily::Haar).unwrap();
        assert_eq!(eval.phi(0.3), 1.0);
        assert_eq!(eval.phi(0.999), 1.0);
        assert_eq!(eval.phi(1.2), 0.0);
        assert_eq!(eval.phi(-0.1), 0.0);
    }

    #[test]
    fn db2_phi_matches_cascade_table() {
        let eval = PointwiseEvaluator::new(WaveletFamily::Daubechies(2)).unwrap();
        let table = WaveletTable::with_levels(WaveletFamily::Daubechies(2), 14).unwrap();
        for i in 0..60 {
            let x = 0.05 * i as f64;
            let exact = eval.phi(x);
            let approx = table.phi(x);
            assert!(
                (exact - approx).abs() < 5e-4,
                "phi mismatch at x={x}: exact {exact}, table {approx}"
            );
        }
    }

    #[test]
    fn sym8_psi_matches_cascade_table() {
        let eval = PointwiseEvaluator::new(WaveletFamily::Symmlet(8)).unwrap();
        let table = WaveletTable::with_levels(WaveletFamily::Symmlet(8), 14).unwrap();
        for i in 0..50 {
            let x = 0.31 * i as f64;
            assert!(
                (eval.psi(x) - table.psi(x)).abs() < 5e-3,
                "psi mismatch at x={x}"
            );
        }
    }

    #[test]
    fn partition_of_unity_holds_exactly() {
        let eval = PointwiseEvaluator::new(WaveletFamily::Daubechies(4)).unwrap();
        for &x in &[0.123_f64, 0.5, 0.876, 0.333] {
            let total: f64 = (-8..8).map(|k| eval.phi(x - k as f64)).sum();
            assert!((total - 1.0).abs() < 1e-10, "partition of unity: {total}");
        }
    }

    #[test]
    fn values_outside_support_are_zero() {
        let eval = PointwiseEvaluator::new(WaveletFamily::Symmlet(8)).unwrap();
        assert_eq!(eval.phi(-3.0), 0.0);
        assert_eq!(eval.phi(15.0), 0.0);
        assert_eq!(eval.psi(15.1), 0.0);
        assert_eq!(eval.psi(-0.0001), 0.0);
    }

    #[test]
    fn fewer_digits_still_converge_geometrically() {
        let filter = OrthonormalFilter::new(WaveletFamily::Daubechies(3)).unwrap();
        let rough = PointwiseEvaluator::from_filter(filter.clone(), 10);
        let fine = PointwiseEvaluator::from_filter(filter, 40);
        let x = 1.73;
        assert!((rough.phi(x) - fine.phi(x)).abs() < 1e-2);
    }
}
