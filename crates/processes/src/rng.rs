//! Random-number helpers shared by all process simulators: deterministic
//! seeding and standard-normal sampling (the `rand` crate alone does not
//! ship a normal distribution, so Box–Muller is implemented here).

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Creates a reproducible random-number generator from an integer seed.
///
/// Every experiment binary derives its per-repetition generators from a
/// base seed via [`child_rng`], so whole tables are reproducible bit for
/// bit.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent generator for repetition `index` from a base
/// seed. Uses SplitMix64-style mixing so neighbouring indices give
/// uncorrelated streams.
pub fn child_rng(base_seed: u64, index: u64) -> StdRng {
    let mut z =
        base_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    StdRng::seed_from_u64(z)
}

/// Draws a uniform variate in the open interval `(0, 1)`, never returning
/// exactly 0 or 1 (so it can be fed to quantile functions safely).
pub fn open_uniform(rng: &mut dyn RngCore) -> f64 {
    loop {
        let u: f64 = rng.gen();
        if u > 0.0 && u < 1.0 {
            return u;
        }
    }
}

/// Draws a standard normal variate by the Box–Muller transform.
pub fn standard_normal(rng: &mut dyn RngCore) -> f64 {
    let u1 = open_uniform(rng);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a normal variate with the given mean and standard deviation.
pub fn normal(rng: &mut dyn RngCore, mean: f64, sd: f64) -> f64 {
    mean + sd * standard_normal(rng)
}

/// Draws a Bernoulli variate in `{0.0, 1.0}` with success probability `p`.
pub fn bernoulli(rng: &mut dyn RngCore, p: f64) -> f64 {
    if rng.gen::<f64>() < p {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_reproducible() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn child_rngs_differ_across_indices() {
        let mut a = child_rng(7, 0);
        let mut b = child_rng(7, 1);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "child streams look identical");
    }

    #[test]
    fn standard_normal_moments_are_plausible() {
        let mut rng = seeded_rng(1);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn bernoulli_frequency_matches_probability() {
        let mut rng = seeded_rng(3);
        let n = 100_000;
        let mean = (0..n).map(|_| bernoulli(&mut rng, 0.3)).sum::<f64>() / n as f64;
        assert!((mean - 0.3).abs() < 0.01, "frequency {mean}");
    }

    #[test]
    fn open_uniform_stays_in_open_interval() {
        let mut rng = seeded_rng(9);
        for _ in 0..10_000 {
            let u = open_uniform(&mut rng);
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn normal_respects_mean_and_sd() {
        let mut rng = seeded_rng(11);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 2.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.02);
        assert!((var.sqrt() - 0.5).abs() < 0.02);
    }
}
