//! Affine models (Section 4.4.3): `X_t = M(X_{t-1}, …) ξ_t + f(X_{t-1}, …)`
//! with Lipschitz `M` and `f`, covering AR, ARCH and GARCH processes.
//!
//! These are the workhorse econometric examples for which assumption (D)
//! holds with `b = 1/2` when the innovations have a bounded density and the
//! Lipschitz coefficients decay exponentially.

use crate::process::StationaryProcess;
use crate::rng::standard_normal;
use rand::RngCore;

/// A Gaussian AR(1) process `X_t = ρ X_{t-1} + σ ξ_t`.
#[derive(Debug, Clone, Copy)]
pub struct Ar1Process {
    rho: f64,
    sigma: f64,
    burn_in: usize,
}

impl Ar1Process {
    /// Creates the process; requires `|ρ| < 1` and `σ > 0`.
    pub fn new(rho: f64, sigma: f64) -> Result<Self, String> {
        if rho.abs() >= 1.0 {
            return Err(format!("AR(1) requires |ρ| < 1, got {rho}"));
        }
        if sigma <= 0.0 {
            return Err(format!("σ must be positive, got {sigma}"));
        }
        Ok(Self {
            rho,
            sigma,
            burn_in: 512,
        })
    }

    /// Stationary variance `σ² / (1 − ρ²)`.
    pub fn stationary_variance(&self) -> f64 {
        self.sigma * self.sigma / (1.0 - self.rho * self.rho)
    }
}

impl StationaryProcess for Ar1Process {
    fn name(&self) -> String {
        format!("ar1(ρ={}, σ={})", self.rho, self.sigma)
    }

    fn simulate(&self, n: usize, rng: &mut dyn RngCore) -> Vec<f64> {
        // Start from the exact stationary law N(0, σ²/(1−ρ²)), then iterate;
        // the burn-in is kept as a belt-and-braces guard.
        let mut x = self.stationary_variance().sqrt() * standard_normal(rng);
        for _ in 0..self.burn_in {
            x = self.rho * x + self.sigma * standard_normal(rng);
        }
        (0..n)
            .map(|_| {
                x = self.rho * x + self.sigma * standard_normal(rng);
                x
            })
            .collect()
    }
}

/// An ARCH(1) process `X_t = ξ_t √(ω + α X_{t-1}²)` with Gaussian
/// innovations.
#[derive(Debug, Clone, Copy)]
pub struct Arch1Process {
    omega: f64,
    alpha: f64,
    burn_in: usize,
}

impl Arch1Process {
    /// Creates the process; second-order stationarity requires `α < 1`.
    pub fn new(omega: f64, alpha: f64) -> Result<Self, String> {
        if omega <= 0.0 {
            return Err(format!("ω must be positive, got {omega}"));
        }
        if !(0.0..1.0).contains(&alpha) {
            return Err(format!(
                "α must lie in [0, 1) for stationarity, got {alpha}"
            ));
        }
        Ok(Self {
            omega,
            alpha,
            burn_in: 1024,
        })
    }

    /// Stationary variance `ω / (1 − α)`.
    pub fn stationary_variance(&self) -> f64 {
        self.omega / (1.0 - self.alpha)
    }
}

impl StationaryProcess for Arch1Process {
    fn name(&self) -> String {
        format!("arch1(ω={}, α={})", self.omega, self.alpha)
    }

    fn simulate(&self, n: usize, rng: &mut dyn RngCore) -> Vec<f64> {
        let mut x = self.stationary_variance().sqrt() * standard_normal(rng);
        for _ in 0..self.burn_in {
            x = standard_normal(rng) * (self.omega + self.alpha * x * x).sqrt();
        }
        (0..n)
            .map(|_| {
                x = standard_normal(rng) * (self.omega + self.alpha * x * x).sqrt();
                x
            })
            .collect()
    }
}

/// A GARCH(1,1) process `X_t = σ_t ξ_t`,
/// `σ_t² = ω + α X_{t-1}² + β σ_{t-1}²`.
#[derive(Debug, Clone, Copy)]
pub struct Garch11Process {
    omega: f64,
    alpha: f64,
    beta: f64,
    burn_in: usize,
}

impl Garch11Process {
    /// Creates the process; requires `ω > 0`, `α, β ≥ 0`, `α + β < 1`.
    pub fn new(omega: f64, alpha: f64, beta: f64) -> Result<Self, String> {
        if omega <= 0.0 {
            return Err(format!("ω must be positive, got {omega}"));
        }
        if alpha < 0.0 || beta < 0.0 {
            return Err("α and β must be nonnegative".to_string());
        }
        if alpha + beta >= 1.0 {
            return Err(format!(
                "stationarity requires α + β < 1, got {}",
                alpha + beta
            ));
        }
        Ok(Self {
            omega,
            alpha,
            beta,
            burn_in: 2048,
        })
    }

    /// Stationary variance `ω / (1 − α − β)`.
    pub fn stationary_variance(&self) -> f64 {
        self.omega / (1.0 - self.alpha - self.beta)
    }
}

impl StationaryProcess for Garch11Process {
    fn name(&self) -> String {
        format!(
            "garch11(ω={}, α={}, β={})",
            self.omega, self.alpha, self.beta
        )
    }

    fn simulate(&self, n: usize, rng: &mut dyn RngCore) -> Vec<f64> {
        let mut sigma2 = self.stationary_variance();
        let mut x = sigma2.sqrt() * standard_normal(rng);
        for _ in 0..self.burn_in {
            sigma2 = self.omega + self.alpha * x * x + self.beta * sigma2;
            x = sigma2.sqrt() * standard_normal(rng);
        }
        (0..n)
            .map(|_| {
                sigma2 = self.omega + self.alpha * x * x + self.beta * sigma2;
                x = sigma2.sqrt() * standard_normal(rng);
                x
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn parameter_validation() {
        assert!(Ar1Process::new(0.5, 1.0).is_ok());
        assert!(Ar1Process::new(1.0, 1.0).is_err());
        assert!(Ar1Process::new(0.5, 0.0).is_err());
        assert!(Arch1Process::new(0.1, 0.5).is_ok());
        assert!(Arch1Process::new(0.0, 0.5).is_err());
        assert!(Arch1Process::new(0.1, 1.0).is_err());
        assert!(Garch11Process::new(0.1, 0.1, 0.8).is_ok());
        assert!(Garch11Process::new(0.1, 0.5, 0.6).is_err());
        assert!(Garch11Process::new(0.1, -0.1, 0.5).is_err());
    }

    #[test]
    fn ar1_moments_match_theory() {
        let p = Ar1Process::new(0.6, 0.5).unwrap();
        let mut rng = seeded_rng(1);
        let n = 200_000;
        let x = p.simulate(n, &mut rng);
        let mean = x.iter().sum::<f64>() / n as f64;
        let var = x.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02);
        assert!((var - p.stationary_variance()).abs() / p.stationary_variance() < 0.05);
        // Lag-1 autocorrelation should be ρ.
        let cov = x
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        assert!((cov / var - 0.6).abs() < 0.02);
    }

    #[test]
    fn arch1_is_white_noise_with_dependent_squares() {
        let p = Arch1Process::new(0.2, 0.5).unwrap();
        let mut rng = seeded_rng(8);
        let n = 200_000;
        let x = p.simulate(n, &mut rng);
        let mean = x.iter().sum::<f64>() / n as f64;
        let var = x.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02);
        assert!((var - p.stationary_variance()).abs() / p.stationary_variance() < 0.1);
        let cov = x
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        assert!(
            (cov / var).abs() < 0.02,
            "raw series should be uncorrelated"
        );
        let sq: Vec<f64> = x.iter().map(|v| v * v).collect();
        let mean_sq = sq.iter().sum::<f64>() / n as f64;
        let var_sq = sq.iter().map(|v| (v - mean_sq).powi(2)).sum::<f64>() / n as f64;
        let cov_sq = sq
            .windows(2)
            .map(|w| (w[0] - mean_sq) * (w[1] - mean_sq))
            .sum::<f64>()
            / (n - 1) as f64;
        assert!(cov_sq / var_sq > 0.2, "squares should cluster");
    }

    #[test]
    fn garch_variance_matches_theory() {
        let p = Garch11Process::new(0.05, 0.1, 0.8).unwrap();
        let mut rng = seeded_rng(14);
        let n = 300_000;
        let x = p.simulate(n, &mut rng);
        let var = x.iter().map(|v| v * v).sum::<f64>() / n as f64;
        assert!(
            (var - p.stationary_variance()).abs() / p.stationary_variance() < 0.1,
            "variance {var} vs {}",
            p.stationary_variance()
        );
    }
}
