//! Liverani–Saussol–Vaienti (LSV) intermittent maps: the counter-example
//! family of Section 5.5 where assumption (D) fails.
//!
//! The map
//!
//! ```text
//! T(x) = x (1 + 2^{α'} x^{α'})   for x ∈ [0, 1/2],
//! T(x) = 2x − 1                  for x ∈ (1/2, 1],
//! ```
//!
//! has a neutral fixed point at 0 for `0 < α' < 1`, which makes covariances
//! decay only polynomially (order `r^{1 − 1/α'}`), violating the exponential
//! decay (D2). The invariant density is unknown in closed form, continuous
//! on `(0, 1]`, and behaves like `x^{-α'}` near 0; Proposition 5.1 shows the
//! thresholded wavelet estimator cannot be minimax on this family once
//! `α' ≥ 1/(2α + 1)`.

use crate::process::StationaryProcess;
use rand::{Rng, RngCore};

/// A Liverani–Saussol–Vaienti intermittent map process.
#[derive(Debug, Clone, Copy)]
pub struct LsvMapProcess {
    alpha: f64,
    burn_in_factor: usize,
}

impl LsvMapProcess {
    /// Creates the process for intermittency parameter `α' ∈ (0, 1)`.
    pub fn new(alpha: f64) -> Result<Self, String> {
        if !(0.0 < alpha && alpha < 1.0) {
            return Err(format!("LSV parameter α' must lie in (0, 1), got {alpha}"));
        }
        Ok(Self {
            alpha,
            burn_in_factor: 1,
        })
    }

    /// The intermittency parameter `α'`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Uses a burn-in of `factor · n` iterations before collecting the `n`
    /// retained observations (the paper uses `factor = 1`: it keeps
    /// `(Z_{n+1}, …, Z_{2n})`).
    pub fn with_burn_in_factor(mut self, factor: usize) -> Self {
        self.burn_in_factor = factor;
        self
    }

    /// One application of the map.
    pub fn map(&self, x: f64) -> f64 {
        if x <= 0.5 {
            x * (1.0 + 2f64.powf(self.alpha) * x.powf(self.alpha))
        } else {
            2.0 * x - 1.0
        }
    }

    /// Theoretical polynomial covariance decay exponent `1 − 1/α'`
    /// (covariances of Lipschitz observables are of order `r^{1 − 1/α'}`).
    pub fn covariance_decay_exponent(&self) -> f64 {
        1.0 - 1.0 / self.alpha
    }
}

impl StationaryProcess for LsvMapProcess {
    fn name(&self) -> String {
        format!("lsv(α'={})", self.alpha)
    }

    fn simulate(&self, n: usize, rng: &mut dyn RngCore) -> Vec<f64> {
        // Start from Lebesgue measure and let the map run towards the
        // SRB/invariant measure; the system is ergodic with polynomial rate,
        // so a burn-in of length n (the paper's choice) is retained here.
        let mut z: f64 = rng.gen_range(1e-12..1.0);
        let burn_in = self.burn_in_factor * n + 1;
        for _ in 0..burn_in {
            z = self.map(z);
            if z <= 0.0 || z > 1.0 || !z.is_finite() {
                // Rounding pushed the orbit out of [0, 1]; restart from
                // Lebesgue (probability ~0 event).
                z = rng.gen_range(1e-12..1.0);
            }
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            z = self.map(z);
            if z <= 0.0 || z > 1.0 || !z.is_finite() {
                z = rng.gen_range(1e-12..1.0);
            }
            out.push(z);
        }
        out
    }

    fn marginal_support(&self) -> Option<(f64, f64)> {
        Some((0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn parameter_validation() {
        assert!(LsvMapProcess::new(0.5).is_ok());
        assert!(LsvMapProcess::new(0.0).is_err());
        assert!(LsvMapProcess::new(1.0).is_err());
        assert!(LsvMapProcess::new(-0.3).is_err());
    }

    #[test]
    fn map_branches_are_correct() {
        let p = LsvMapProcess::new(0.5).unwrap();
        // Right branch is the doubling map.
        assert!((p.map(0.75) - 0.5).abs() < 1e-15);
        assert!((p.map(1.0) - 1.0).abs() < 1e-15);
        // Left branch: T(1/2) = 1/2 (1 + 2^α (1/2)^α) = 1/2 · 2 = 1.
        assert!((p.map(0.5) - 1.0).abs() < 1e-12);
        // Neutral fixed point at 0: T(x) ≈ x for tiny x.
        let x = 1e-8;
        assert!((p.map(x) - x) / x < 1e-3);
        assert!(p.map(x) > x, "map must push points away from 0");
    }

    #[test]
    fn orbit_stays_in_unit_interval() {
        let p = LsvMapProcess::new(0.7).unwrap();
        let mut rng = seeded_rng(3);
        let path = p.simulate(10_000, &mut rng);
        assert_eq!(path.len(), 10_000);
        assert!(path.iter().all(|&x| x > 0.0 && x <= 1.0));
    }

    #[test]
    fn small_alpha_behaves_roughly_like_doubling_map() {
        // For α' → 0 the invariant density approaches Lebesgue; the sample
        // mean should be near 1/2 (it is pulled below 1/2 for larger α').
        let p = LsvMapProcess::new(0.1).unwrap();
        let mut rng = seeded_rng(9);
        let path = p.simulate(100_000, &mut rng);
        let mean = path.iter().sum::<f64>() / path.len() as f64;
        assert!((mean - 0.5).abs() < 0.08, "mean {mean}");
    }

    #[test]
    fn large_alpha_concentrates_mass_near_zero() {
        // The invariant density blows up like x^{-α'} near 0, so the
        // fraction of time spent in [0, 0.1] grows sharply with α'.
        let mut rng = seeded_rng(12);
        let frac = |alpha: f64, rng: &mut rand::rngs::StdRng| {
            let p = LsvMapProcess::new(alpha).unwrap();
            let path = p.simulate(80_000, rng);
            path.iter().filter(|&&x| x < 0.1).count() as f64 / path.len() as f64
        };
        let low = frac(0.2, &mut rng);
        let high = frac(0.9, &mut rng);
        assert!(
            high > low + 0.1,
            "mass near zero should grow with α': {low} vs {high}"
        );
    }

    #[test]
    fn covariance_decay_exponent_formula() {
        let p = LsvMapProcess::new(0.5).unwrap();
        assert!((p.covariance_decay_exponent() + 1.0).abs() < 1e-12);
        assert!(
            LsvMapProcess::new(0.9)
                .unwrap()
                .covariance_decay_exponent()
                .abs()
                < 0.12
        );
    }

    #[test]
    fn name_and_support_are_reported() {
        let p = LsvMapProcess::new(0.3).unwrap();
        assert!(p.name().contains("0.3"));
        assert_eq!(p.marginal_support(), Some((0.0, 1.0)));
    }
}
