//! Special functions needed by the target densities: the error function,
//! the standard normal pdf/cdf and its quantile.
//!
//! Implemented from scratch (no external math crates): `erf` uses the
//! Abramowitz–Stegun 7.1.26 rational approximation refined by a couple of
//! Newton steps against the series/continued-fraction evaluation, and the
//! normal quantile uses the Acklam rational approximation polished by
//! Newton iterations on the cdf, giving ~1e-14 accuracy across the domain.

/// The error function `erf(x) = (2/√π) ∫_0^x e^{-t²} dt`.
///
/// Uses the series expansion for small `|x|` and the continued-fraction
/// based complementary error function for large `|x|`; accurate to about
/// 1e-15 relative error.
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        return -erf(-x);
    }
    if x < 2.0 {
        // Maclaurin series erf(x) = (2/√π) Σ (-1)^n x^{2n+1} / (n! (2n+1)).
        let mut term = x;
        let mut sum = x;
        let x2 = x * x;
        let mut n = 0.0_f64;
        while term.abs() > 1e-17 * sum.abs().max(1e-300) {
            n += 1.0;
            term *= -x2 / n;
            sum += term / (2.0 * n + 1.0);
        }
        (2.0 / std::f64::consts::PI.sqrt()) * sum
    } else {
        1.0 - erfc_large(x)
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x < 2.0 {
        1.0 - erf(x)
    } else {
        erfc_large(x)
    }
}

/// Evaluation of `erfc` for `x ≥ 2` via the Laplace continued fraction
/// `√π e^{x²} erfc(x) = 1/(x + (1/2)/(x + 1/(x + (3/2)/(x + …))))`,
/// evaluated bottom-up with 80 terms (far more than needed for `x ≥ 2`).
fn erfc_large(x: f64) -> f64 {
    let mut tail = 0.0_f64;
    for k in (1..=80).rev() {
        tail = (k as f64 / 2.0) / (x + tail);
    }
    let fraction = 1.0 / (x + tail);
    (-(x * x)).exp() / std::f64::consts::PI.sqrt() * fraction
}

/// Standard normal probability density.
pub fn normal_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal quantile (inverse cdf) for `p ∈ (0, 1)`.
///
/// Acklam's rational approximation followed by two Newton polishing steps.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal quantile requires p in (0,1), got {p}"
    );
    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let mut x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // Newton polish on Φ(x) − p.
    for _ in 0..3 {
        let err = normal_cdf(x) - p;
        let deriv = normal_pdf(x);
        if deriv > 0.0 {
            x -= err / deriv;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-15);
        assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-12);
        assert!((erf(2.0) - 0.9953222650189527).abs() < 1e-12);
        assert!((erf(-1.0) + 0.8427007929497149).abs() < 1e-12);
        assert!((erf(3.5) - 0.999999256901628).abs() < 1e-9);
    }

    #[test]
    fn erfc_complements_erf() {
        for &x in &[-3.0, -1.0, 0.0, 0.5, 1.5, 2.5, 4.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-14);
        assert!((normal_cdf(1.959963984540054) - 0.975).abs() < 1e-9);
        assert!((normal_cdf(-1.6448536269514722) - 0.05).abs() < 1e-9);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[1e-6, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 1.0 - 1e-6] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-10, "p={p}, x={x}");
        }
    }

    #[test]
    #[should_panic(expected = "normal quantile requires p in (0,1)")]
    fn quantile_rejects_invalid_input() {
        let _ = normal_quantile(1.0);
    }

    #[test]
    fn pdf_integrates_to_cdf_increment() {
        // Crude check: ∫_{-1}^{1} φ(t) dt = Φ(1) − Φ(−1).
        let steps = 20_000;
        let dx = 2.0 / steps as f64;
        let integral: f64 = (0..steps)
            .map(|i| normal_pdf(-1.0 + (i as f64 + 0.5) * dx) * dx)
            .sum();
        assert!((integral - (normal_cdf(1.0) - normal_cdf(-1.0))).abs() < 1e-8);
    }
}
