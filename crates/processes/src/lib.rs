//! # wavedens-processes
//!
//! Simulators for the weakly dependent time series studied in Gannaz &
//! Wintenberger, *Adaptive density estimation under weak dependence*, plus
//! the target marginal densities of the paper's simulation study and
//! empirical dependence diagnostics.
//!
//! The crate provides:
//!
//! * [`densities`] — exact pdf/cdf/quantile of the target marginals
//!   (sine+uniform mixture with a jump, bimodal Gaussian mixture, claw, …);
//! * [`transforms`] — the `X_i = F⁻¹(G(Y_i))` marginal-transform machinery
//!   and the iid driver (Case 1);
//! * [`dynamical`] — expanding-map chains: the logistic map (Case 2) and
//!   the doubling map behind Andrews' AR(1) example;
//! * [`noncausal_ma`] — the non-causal infinite moving average of Case 3,
//!   both as an exact truncated MA and via the paper's fixed-point scheme;
//! * [`bernoulli_shift`], [`larch`], [`affine`] — the λ-weakly dependent
//!   model classes of Section 4.4 (infinite MA, LARCH(∞), AR/ARCH/GARCH);
//! * [`lsv`] — Liverani–Saussol–Vaienti intermittent maps, the
//!   counter-example family of Section 5.5 where assumption (D) fails;
//! * [`cases`] — the paper's three simulation cases behind one enum;
//! * [`diagnostics`] — autocovariances and exponential/polynomial decay
//!   fits for checking assumption (D) empirically.
//!
//! ```
//! use wavedens_processes::{DependenceCase, SineUniformMixture, seeded_rng};
//!
//! let target = SineUniformMixture::paper();
//! let mut rng = seeded_rng(7);
//! let sample = DependenceCase::ExpandingMap.simulate(&target, 1024, &mut rng);
//! assert_eq!(sample.len(), 1024);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affine;
pub mod bernoulli_shift;
pub mod cases;
pub mod densities;
pub mod diagnostics;
pub mod dynamical;
pub mod larch;
pub mod lsv;
pub mod noncausal_ma;
pub mod process;
pub mod rng;
pub mod special;
pub mod transforms;

pub use affine::{Ar1Process, Arch1Process, Garch11Process};
pub use bernoulli_shift::{InfiniteMovingAverage, Innovation};
pub use cases::DependenceCase;
pub use densities::{
    ClawDensity, GaussianComponent, GaussianMixture, SineUniformMixture, TargetDensity, Uniform01,
};
pub use diagnostics::{
    autocorrelations, autocovariances, fit_exponential_decay, fit_polynomial_decay, DecayFit,
    DependenceSummary,
};
pub use dynamical::{DoublingMapDriver, LogisticMapDriver};
pub use larch::LarchProcess;
pub use lsv::LsvMapProcess;
pub use noncausal_ma::{
    case3_marginal_cdf, case3_marginal_pdf, FixedPointMaDriver, NonCausalMaDriver,
};
pub use process::StationaryProcess;
pub use rng::{child_rng, seeded_rng, standard_normal};
pub use transforms::{IidDriver, TransformedProcess, UniformDriver};
