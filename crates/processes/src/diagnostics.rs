//! Empirical dependence diagnostics: autocovariances of (functions of) the
//! observations and fits of the covariance-decay bound
//! `ρ(r) ≤ C₀ exp(−a r^b)` of assumption (D2).
//!
//! The theoretical threshold constant of Theorem 3.1 depends on the unknown
//! dependence constants `(a, b, C₀)`; these diagnostics estimate them from a
//! sample so that experiments can (i) check whether a process plausibly
//! satisfies (D) and (ii) feed an estimated constant into the theoretical
//! threshold rule as an alternative to cross-validation.

/// Empirical autocovariances `γ̂(r)` of `h(X_t)` for `r = 0, …, max_lag`.
///
/// Uses the biased (divide by `n`) estimator, which is the standard choice
/// for guaranteed positive semi-definiteness.
pub fn autocovariances(data: &[f64], max_lag: usize) -> Vec<f64> {
    let n = data.len();
    assert!(n > 1, "need at least two observations");
    let mean = data.iter().sum::<f64>() / n as f64;
    (0..=max_lag.min(n - 1))
        .map(|r| {
            (0..n - r)
                .map(|i| (data[i] - mean) * (data[i + r] - mean))
                .sum::<f64>()
                / n as f64
        })
        .collect()
}

/// Empirical autocorrelations `γ̂(r)/γ̂(0)`.
pub fn autocorrelations(data: &[f64], max_lag: usize) -> Vec<f64> {
    let cov = autocovariances(data, max_lag);
    let var = cov[0];
    cov.iter().map(|c| c / var).collect()
}

/// The result of fitting a decay model to the absolute autocovariances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecayFit {
    /// Multiplicative constant `C₀` of the fit.
    pub c0: f64,
    /// Rate parameter: `a` for the exponential model, the exponent `θ` for
    /// the polynomial model.
    pub rate: f64,
    /// Residual sum of squares of the fit in log space (smaller = better).
    pub residual: f64,
}

/// Fits the exponential-decay model `|γ(r)| ≈ C₀ exp(−a r^b)` (with `b`
/// fixed, typically 1) by least squares on `log |γ(r)|`.
///
/// Lags with `|γ(r)|` below `1e-12·γ(0)` are dropped (they are numerically
/// zero and would destabilise the log fit). Returns `None` if fewer than two
/// usable lags remain.
pub fn fit_exponential_decay(covariances: &[f64], b: f64) -> Option<DecayFit> {
    fit_log_linear(covariances, |r| (r as f64).powf(b))
}

/// Fits the polynomial-decay model `|γ(r)| ≈ C₀ r^{−θ}` by least squares on
/// `log |γ(r)|` against `log r` (lags `r ≥ 1`).
pub fn fit_polynomial_decay(covariances: &[f64]) -> Option<DecayFit> {
    fit_log_linear(covariances, |r| (r as f64).ln())
}

fn fit_log_linear(covariances: &[f64], regressor: impl Fn(usize) -> f64) -> Option<DecayFit> {
    if covariances.len() < 3 {
        return None;
    }
    let floor = covariances[0].abs() * 1e-12;
    let points: Vec<(f64, f64)> = covariances
        .iter()
        .enumerate()
        .skip(1)
        .filter(|(_, &c)| c.abs() > floor)
        .map(|(r, &c)| (regressor(r), c.abs().ln()))
        .collect();
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|(x, _)| x).sum();
    let sy: f64 = points.iter().map(|(_, y)| y).sum();
    let sxx: f64 = points.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = points.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let residual: f64 = points
        .iter()
        .map(|(x, y)| {
            let e = y - intercept - slope * x;
            e * e
        })
        .sum();
    Some(DecayFit {
        c0: intercept.exp(),
        rate: -slope,
        residual,
    })
}

/// Summary verdict comparing exponential against polynomial covariance
/// decay for a sample, used to flag processes that (empirically) violate
/// assumption (D).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DependenceSummary {
    /// Exponential fit `C₀ e^{−a r}` (if available).
    pub exponential: Option<DecayFit>,
    /// Polynomial fit `C₀ r^{−θ}` (if available).
    pub polynomial: Option<DecayFit>,
    /// Lag-1 autocorrelation, a crude overall dependence strength measure.
    pub lag_one_correlation: f64,
}

impl DependenceSummary {
    /// Computes the summary from a sample using lags up to `max_lag`.
    pub fn from_sample(data: &[f64], max_lag: usize) -> Self {
        let cov = autocovariances(data, max_lag);
        let lag_one_correlation = if cov[0] > 0.0 && cov.len() > 1 {
            cov[1] / cov[0]
        } else {
            0.0
        };
        Self {
            exponential: fit_exponential_decay(&cov, 1.0),
            polynomial: fit_polynomial_decay(&cov),
            lag_one_correlation,
        }
    }

    /// Heuristic check: true when the exponential model fits at least as
    /// well as the polynomial one (suggesting assumption (D) is plausible).
    pub fn prefers_exponential_decay(&self) -> bool {
        match (self.exponential, self.polynomial) {
            (Some(e), Some(p)) => e.residual <= p.residual,
            (Some(_), None) => true,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::Ar1Process;
    use crate::lsv::LsvMapProcess;
    use crate::process::StationaryProcess;
    use crate::rng::seeded_rng;

    #[test]
    fn autocovariance_of_iid_noise_is_near_zero_at_positive_lags() {
        let mut rng = seeded_rng(2);
        let data: Vec<f64> = (0..100_000)
            .map(|_| crate::rng::standard_normal(&mut rng))
            .collect();
        let cov = autocovariances(&data, 5);
        assert!((cov[0] - 1.0).abs() < 0.02);
        for c in &cov[1..] {
            assert!(c.abs() < 0.02, "lag covariance {c}");
        }
    }

    #[test]
    fn autocorrelation_of_ar1_decays_geometrically() {
        let p = Ar1Process::new(0.7, 1.0).unwrap();
        let mut rng = seeded_rng(5);
        let data = p.simulate(200_000, &mut rng);
        let acf = autocorrelations(&data, 6);
        for (r, rho) in acf.iter().enumerate().skip(1).take(4) {
            assert!(
                (rho - 0.7_f64.powi(r as i32)).abs() < 0.03,
                "lag {r}: {rho}"
            );
        }
    }

    #[test]
    fn exponential_fit_recovers_known_rate() {
        // Synthetic exact covariances C₀ e^{-a r}.
        let cov: Vec<f64> = (0..20).map(|r| 2.0 * (-0.4 * r as f64).exp()).collect();
        let fit = fit_exponential_decay(&cov, 1.0).unwrap();
        assert!((fit.rate - 0.4).abs() < 1e-9, "rate {}", fit.rate);
        assert!((fit.c0 - 2.0).abs() < 1e-9, "c0 {}", fit.c0);
        assert!(fit.residual < 1e-16);
    }

    #[test]
    fn polynomial_fit_recovers_known_exponent() {
        let cov: Vec<f64> = (0..20)
            .map(|r| {
                if r == 0 {
                    3.0
                } else {
                    3.0 * (r as f64).powf(-1.5)
                }
            })
            .collect();
        let fit = fit_polynomial_decay(&cov).unwrap();
        assert!((fit.rate - 1.5).abs() < 1e-9);
        assert!((fit.c0 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn fits_handle_degenerate_inputs() {
        assert!(fit_exponential_decay(&[1.0, 0.0], 1.0).is_none());
        assert!(fit_polynomial_decay(&[1.0]).is_none());
        // All zero at positive lags -> not fittable.
        assert!(fit_exponential_decay(&[1.0, 0.0, 0.0, 0.0], 1.0).is_none());
    }

    #[test]
    fn ar1_prefers_exponential_decay_model() {
        let p = Ar1Process::new(0.6, 1.0).unwrap();
        let mut rng = seeded_rng(9);
        let data = p.simulate(100_000, &mut rng);
        let summary = DependenceSummary::from_sample(&data, 8);
        assert!((summary.lag_one_correlation - 0.6).abs() < 0.05);
        assert!(summary.prefers_exponential_decay());
    }

    #[test]
    fn lsv_map_with_large_alpha_prefers_polynomial_decay() {
        // The intermittent map with α' = 0.9 has very slowly decaying
        // covariances; the polynomial model should fit at least as well.
        let p = LsvMapProcess::new(0.9).unwrap();
        let mut rng = seeded_rng(33);
        let data = p.simulate(60_000, &mut rng);
        let summary = DependenceSummary::from_sample(&data, 30);
        assert!(
            summary.lag_one_correlation > 0.3,
            "LSV(0.9) should be strongly dependent, got {}",
            summary.lag_one_correlation
        );
        if let (Some(e), Some(pfit)) = (summary.exponential, summary.polynomial) {
            assert!(
                pfit.residual <= e.residual * 1.5,
                "polynomial fit should be competitive: poly {} vs exp {}",
                pfit.residual,
                e.residual
            );
        }
    }

    #[test]
    #[should_panic(expected = "need at least two observations")]
    fn autocovariance_rejects_tiny_samples() {
        let _ = autocovariances(&[1.0], 3);
    }
}
