//! The three sampling schemes of the paper's Section 5.2, packaged as a
//! single enum so the experiment harness can sweep over them.
//!
//! All three cases share the same target marginal density `F` and differ
//! only in their dependence structure:
//!
//! * **Case 1** — independent observations `X_i = F⁻¹(U_i)`;
//! * **Case 2** — a φ̃-weakly dependent expanding-map orbit (logistic map),
//!   `X_i = F⁻¹(G(Y_i))` with `Y_{i+1} = 4Y_i(1−Y_i)`;
//! * **Case 3** — a λ-weakly dependent non-causal infinite moving average
//!   driven by Bernoulli innovations.

use crate::densities::TargetDensity;
use crate::dynamical::LogisticMapDriver;
use crate::noncausal_ma::NonCausalMaDriver;
use crate::transforms::{IidDriver, UniformDriver};
use rand::RngCore;

/// The dependence scheme of a simulation case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DependenceCase {
    /// Case 1: independent and identically distributed observations.
    Iid,
    /// Case 2: time-reversed expanding map (logistic full map), a
    /// φ̃-weakly dependent dynamical system.
    ExpandingMap,
    /// Case 3: non-causal infinite moving average with Bernoulli
    /// innovations, a λ-weakly dependent Bernoulli shift.
    NonCausalMa,
}

impl DependenceCase {
    /// All three cases, in the paper's order.
    pub const ALL: [DependenceCase; 3] = [
        DependenceCase::Iid,
        DependenceCase::ExpandingMap,
        DependenceCase::NonCausalMa,
    ];

    /// The paper's label ("Case 1", "Case 2", "Case 3").
    pub fn label(self) -> &'static str {
        match self {
            DependenceCase::Iid => "Case 1",
            DependenceCase::ExpandingMap => "Case 2",
            DependenceCase::NonCausalMa => "Case 3",
        }
    }

    /// A short machine-friendly identifier.
    pub fn id(self) -> &'static str {
        match self {
            DependenceCase::Iid => "iid",
            DependenceCase::ExpandingMap => "expanding-map",
            DependenceCase::NonCausalMa => "noncausal-ma",
        }
    }

    /// The underlying uniform-marginal dependence driver.
    pub fn driver(self) -> Box<dyn UniformDriver> {
        match self {
            DependenceCase::Iid => Box::new(IidDriver),
            DependenceCase::ExpandingMap => Box::new(LogisticMapDriver),
            DependenceCase::NonCausalMa => Box::new(NonCausalMaDriver::default()),
        }
    }

    /// Draws `n` observations with marginal density `target` under this
    /// dependence scheme.
    pub fn simulate(self, target: &dyn TargetDensity, n: usize, rng: &mut dyn RngCore) -> Vec<f64> {
        self.driver()
            .simulate_uniform(n, rng)
            .into_iter()
            .map(|u| target.quantile(u))
            .collect()
    }
}

impl std::fmt::Display for DependenceCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::densities::{SineUniformMixture, TargetDensity};
    use crate::rng::seeded_rng;

    #[test]
    fn labels_and_ids_are_stable() {
        assert_eq!(DependenceCase::Iid.label(), "Case 1");
        assert_eq!(DependenceCase::ExpandingMap.label(), "Case 2");
        assert_eq!(DependenceCase::NonCausalMa.label(), "Case 3");
        assert_eq!(DependenceCase::NonCausalMa.id(), "noncausal-ma");
        assert_eq!(format!("{}", DependenceCase::ExpandingMap), "Case 2");
        assert_eq!(DependenceCase::ALL.len(), 3);
    }

    #[test]
    fn all_cases_share_the_target_marginal() {
        let target = SineUniformMixture::paper();
        let n = 40_000;
        for (i, case) in DependenceCase::ALL.into_iter().enumerate() {
            let mut rng = seeded_rng(100 + i as u64);
            let sample = case.simulate(&target, n, &mut rng);
            assert_eq!(sample.len(), n);
            for &x in &[0.25_f64, 0.5, 0.75] {
                let freq = sample.iter().filter(|&&v| v <= x).count() as f64 / n as f64;
                assert!(
                    (freq - target.cdf(x)).abs() < 0.03,
                    "{}: empirical cdf at {x} = {freq}, target {}",
                    case.label(),
                    target.cdf(x)
                );
            }
        }
    }

    #[test]
    fn dependent_cases_are_actually_dependent() {
        // Lag-1 autocorrelation of the uniformised driver output should be
        // near zero in Case 1 and clearly positive in Case 3.
        let n = 50_000;
        let corr = |case: DependenceCase, seed: u64| {
            let mut rng = seeded_rng(seed);
            let u = case.driver().simulate_uniform(n, &mut rng);
            let mean = u.iter().sum::<f64>() / n as f64;
            let var = u.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
            u.windows(2)
                .map(|w| (w[0] - mean) * (w[1] - mean))
                .sum::<f64>()
                / ((n - 1) as f64 * var)
        };
        assert!(corr(DependenceCase::Iid, 1).abs() < 0.02);
        assert!(corr(DependenceCase::NonCausalMa, 2) > 0.4);
    }
}
