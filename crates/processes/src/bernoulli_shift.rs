//! Bernoulli shifts and infinite moving averages (Section 4.4.1).
//!
//! A Bernoulli shift `X_t = H((ξ_{t-i})_{i∈ℤ})` with iid innovations is
//! λ-weakly dependent; the workhorse example is the (possibly two-sided)
//! infinite moving average `X_t = Σ_i a_i ξ_{t-i}` with geometrically
//! decaying weights, for which assumption (D2) holds with `b = 1`.

use crate::process::StationaryProcess;
use crate::rng::{bernoulli, standard_normal};
use rand::{Rng, RngCore};

/// Innovation distributions available for the moving-average processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Innovation {
    /// Uniform(0, 1) innovations.
    Uniform,
    /// Standard normal innovations.
    Gaussian,
    /// Bernoulli(1/2) innovations taking values in {0, 1}.
    Bernoulli,
    /// Rademacher innovations taking values in {−1, +1}.
    Rademacher,
}

impl Innovation {
    fn draw(self, rng: &mut dyn RngCore) -> f64 {
        match self {
            Innovation::Uniform => rng.gen::<f64>(),
            Innovation::Gaussian => standard_normal(rng),
            Innovation::Bernoulli => bernoulli(rng, 0.5),
            Innovation::Rademacher => 2.0 * bernoulli(rng, 0.5) - 1.0,
        }
    }

    /// Mean of the innovation law.
    pub fn mean(self) -> f64 {
        match self {
            Innovation::Uniform => 0.5,
            Innovation::Gaussian => 0.0,
            Innovation::Bernoulli => 0.5,
            Innovation::Rademacher => 0.0,
        }
    }

    /// Variance of the innovation law.
    pub fn variance(self) -> f64 {
        match self {
            Innovation::Uniform => 1.0 / 12.0,
            Innovation::Gaussian => 1.0,
            Innovation::Bernoulli => 0.25,
            Innovation::Rademacher => 1.0,
        }
    }
}

/// An infinite moving average `X_t = Σ_{i} a_i ξ_{t-i}` with geometric
/// weights `a_i = scale · decay^{|i|}` over a (one- or two-sided) index set,
/// truncated at machine-negligible error.
#[derive(Debug, Clone, Copy)]
pub struct InfiniteMovingAverage {
    decay: f64,
    scale: f64,
    two_sided: bool,
    innovation: Innovation,
    truncation: usize,
}

impl InfiniteMovingAverage {
    /// Creates a causal moving average `X_t = scale Σ_{i≥0} decay^i ξ_{t-i}`
    /// with `decay ∈ (0, 1)`.
    pub fn causal(decay: f64, scale: f64, innovation: Innovation) -> Result<Self, String> {
        Self::build(decay, scale, false, innovation)
    }

    /// Creates a two-sided (non-causal) moving average
    /// `X_t = scale Σ_{i∈ℤ} decay^{|i|} ξ_{t-i}`.
    pub fn two_sided(decay: f64, scale: f64, innovation: Innovation) -> Result<Self, String> {
        Self::build(decay, scale, true, innovation)
    }

    fn build(
        decay: f64,
        scale: f64,
        two_sided: bool,
        innovation: Innovation,
    ) -> Result<Self, String> {
        if !(0.0 < decay && decay < 1.0) {
            return Err(format!("decay must lie in (0, 1), got {decay}"));
        }
        if !scale.is_finite() || scale == 0.0 {
            return Err(format!("scale must be finite and nonzero, got {scale}"));
        }
        // Truncate once the remaining geometric tail is below 1e-16 relative
        // to the leading weight.
        let truncation = ((1e-16_f64).ln() / decay.ln()).ceil() as usize + 1;
        Ok(Self {
            decay,
            scale,
            two_sided,
            innovation,
            truncation,
        })
    }

    /// The geometric decay rate of the weights.
    pub fn decay(&self) -> f64 {
        self.decay
    }

    /// Theoretical mean of the stationary marginal.
    pub fn theoretical_mean(&self) -> f64 {
        self.scale * self.innovation.mean() * self.weight_sum()
    }

    /// Theoretical variance of the stationary marginal.
    pub fn theoretical_variance(&self) -> f64 {
        self.scale * self.scale * self.innovation.variance() * self.weight_sq_sum()
    }

    /// Theoretical lag-`r` autocovariance of the stationary process.
    pub fn theoretical_autocovariance(&self, r: usize) -> f64 {
        let mut acc = 0.0;
        let m = self.truncation as i64;
        for i in -m..=m {
            let j = i + r as i64;
            if j.abs() > m {
                continue;
            }
            if !self.two_sided && (i < 0 || j < 0) {
                continue;
            }
            acc += self.weight(i) * self.weight(j);
        }
        self.scale * self.scale * self.innovation.variance() * acc
    }

    fn weight(&self, i: i64) -> f64 {
        self.decay.powi(i.unsigned_abs() as i32)
    }

    fn weight_sum(&self) -> f64 {
        if self.two_sided {
            (1.0 + self.decay) / (1.0 - self.decay)
        } else {
            1.0 / (1.0 - self.decay)
        }
    }

    fn weight_sq_sum(&self) -> f64 {
        let d2 = self.decay * self.decay;
        if self.two_sided {
            (1.0 + d2) / (1.0 - d2)
        } else {
            1.0 / (1.0 - d2)
        }
    }
}

impl StationaryProcess for InfiniteMovingAverage {
    fn name(&self) -> String {
        format!(
            "{}-ma(decay={}, {:?})",
            if self.two_sided {
                "two-sided"
            } else {
                "causal"
            },
            self.decay,
            self.innovation
        )
    }

    fn simulate(&self, n: usize, rng: &mut dyn RngCore) -> Vec<f64> {
        let m = self.truncation;
        let pad_left = m;
        let pad_right = if self.two_sided { m } else { 0 };
        let total = n + pad_left + pad_right;
        let xi: Vec<f64> = (0..total).map(|_| self.innovation.draw(rng)).collect();
        (0..n)
            .map(|t| {
                let centre = t + pad_left;
                let mut acc = xi[centre];
                for i in 1..=m {
                    acc += self.decay.powi(i as i32) * xi[centre - i];
                    if self.two_sided {
                        acc += self.decay.powi(i as i32) * xi[centre + i];
                    }
                }
                self.scale * acc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn construction_validates_parameters() {
        assert!(InfiniteMovingAverage::causal(0.5, 1.0, Innovation::Uniform).is_ok());
        assert!(InfiniteMovingAverage::causal(0.0, 1.0, Innovation::Uniform).is_err());
        assert!(InfiniteMovingAverage::causal(1.0, 1.0, Innovation::Uniform).is_err());
        assert!(InfiniteMovingAverage::causal(0.5, 0.0, Innovation::Uniform).is_err());
        assert!(InfiniteMovingAverage::two_sided(0.5, f64::NAN, Innovation::Uniform).is_err());
    }

    #[test]
    fn sample_moments_match_theory_causal() {
        let ma = InfiniteMovingAverage::causal(0.6, 1.0, Innovation::Gaussian).unwrap();
        let mut rng = seeded_rng(101);
        let n = 200_000;
        let x = ma.simulate(n, &mut rng);
        let mean = x.iter().sum::<f64>() / n as f64;
        let var = x.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - ma.theoretical_mean()).abs() < 0.02, "mean {mean}");
        assert!(
            (var - ma.theoretical_variance()).abs() / ma.theoretical_variance() < 0.03,
            "variance {var} vs {}",
            ma.theoretical_variance()
        );
    }

    #[test]
    fn sample_autocovariance_matches_theory_two_sided() {
        let ma = InfiniteMovingAverage::two_sided(0.5, 1.0, Innovation::Bernoulli).unwrap();
        let mut rng = seeded_rng(77);
        let n = 300_000;
        let x = ma.simulate(n, &mut rng);
        let mean = x.iter().sum::<f64>() / n as f64;
        for r in [1_usize, 2, 3, 5] {
            let emp: f64 = (0..n - r)
                .map(|i| (x[i] - mean) * (x[i + r] - mean))
                .sum::<f64>()
                / (n - r) as f64;
            let theory = ma.theoretical_autocovariance(r);
            assert!(
                (emp - theory).abs() < 0.01 + 0.05 * theory.abs(),
                "lag {r}: empirical {emp} vs theoretical {theory}"
            );
        }
    }

    #[test]
    fn autocovariance_decays_geometrically() {
        let ma = InfiniteMovingAverage::causal(0.7, 1.0, Innovation::Gaussian).unwrap();
        let c1 = ma.theoretical_autocovariance(1);
        let c5 = ma.theoretical_autocovariance(5);
        let c10 = ma.theoretical_autocovariance(10);
        assert!(c1 > c5 && c5 > c10 && c10 > 0.0);
        // Ratio should be ≈ decay^4 between lags 1→5 and 5→9.
        assert!((c5 / c1 - 0.7_f64.powi(4)).abs() < 1e-6);
    }

    #[test]
    fn innovation_moments_are_correct() {
        assert_eq!(Innovation::Uniform.mean(), 0.5);
        assert_eq!(Innovation::Gaussian.mean(), 0.0);
        assert!((Innovation::Uniform.variance() - 1.0 / 12.0).abs() < 1e-15);
        assert_eq!(Innovation::Rademacher.variance(), 1.0);
        let mut rng = seeded_rng(5);
        let vals: Vec<f64> = (0..10_000)
            .map(|_| Innovation::Rademacher.draw(&mut rng))
            .collect();
        assert!(vals.iter().all(|v| *v == 1.0 || *v == -1.0));
    }

    #[test]
    fn bernoulli_causal_half_decay_is_uniform() {
        // With decay 1/2, scale 1/2 and Bernoulli innovations the causal MA
        // is the binary expansion of a Uniform(0,1) variable.
        let ma = InfiniteMovingAverage::causal(0.5, 0.5, Innovation::Bernoulli).unwrap();
        let mut rng = seeded_rng(31);
        let x = ma.simulate(50_000, &mut rng);
        assert!(x.iter().all(|&v| (0.0..=1.0).contains(&v)));
        for &q in &[0.25, 0.5, 0.75] {
            let freq = x.iter().filter(|&&v| v <= q).count() as f64 / x.len() as f64;
            assert!((freq - q).abs() < 0.02, "P(X<={q}) = {freq}");
        }
    }
}
