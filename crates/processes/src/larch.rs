//! LARCH(∞) processes (Section 4.4.2).
//!
//! The Linear ARCH model of Giraitis, Robinson & Surgailis is the solution
//! of `X_t = ξ_t (a + Σ_{j≥1} a_j X_{t-j})` with iid centred innovations.
//! With geometrically decaying coefficients `a_j = K α^j` it satisfies the
//! λ-weak-dependence condition of Proposition 4.2 with `b' = 1/2`, hence
//! assumption (D2) with `b = 1/2`.

use crate::process::StationaryProcess;
use crate::rng::bernoulli;
use rand::RngCore;

/// A LARCH(∞) process with geometric coefficients and centred Rademacher/2
/// innovations (`ξ_t ∈ {−1/2, +1/2}`), which keep the process bounded.
#[derive(Debug, Clone, Copy)]
pub struct LarchProcess {
    intercept: f64,
    coefficient_scale: f64,
    decay: f64,
    memory: usize,
    burn_in: usize,
}

impl LarchProcess {
    /// Creates the process `X_t = ξ_t (a + Σ_{j≥1} K α^j X_{t-j})`.
    ///
    /// Stationarity of the L²-solution requires
    /// `‖ξ‖₂ · Σ_j |a_j| = (1/2) · K α/(1−α) < 1`; the constructor enforces
    /// it.
    pub fn new(intercept: f64, coefficient_scale: f64, decay: f64) -> Result<Self, String> {
        if !(0.0 < decay && decay < 1.0) {
            return Err(format!("decay must lie in (0, 1), got {decay}"));
        }
        if coefficient_scale < 0.0 {
            return Err(format!(
                "coefficient scale must be nonnegative, got {coefficient_scale}"
            ));
        }
        let l1 = coefficient_scale * decay / (1.0 - decay);
        if 0.5 * l1 >= 1.0 {
            return Err(format!(
                "contraction condition violated: (1/2)·K·α/(1−α) = {} ≥ 1",
                0.5 * l1
            ));
        }
        // Memory long enough that α^memory < 1e-14.
        let memory = ((1e-14_f64).ln() / decay.ln()).ceil() as usize + 1;
        Ok(Self {
            intercept,
            coefficient_scale,
            decay,
            memory,
            burn_in: 4 * memory,
        })
    }

    /// The paper-style default: `a = 1`, `a_j = 0.4 · 0.5^j`.
    pub fn default_paper() -> Self {
        Self::new(1.0, 0.4, 0.5).expect("default parameters satisfy the contraction condition")
    }

    /// Coefficient `a_j`.
    pub fn coefficient(&self, j: usize) -> f64 {
        if j == 0 {
            0.0
        } else {
            self.coefficient_scale * self.decay.powi(j as i32)
        }
    }
}

impl StationaryProcess for LarchProcess {
    fn name(&self) -> String {
        format!(
            "larch(a={}, K={}, α={})",
            self.intercept, self.coefficient_scale, self.decay
        )
    }

    fn simulate(&self, n: usize, rng: &mut dyn RngCore) -> Vec<f64> {
        let total = n + self.burn_in;
        let mut x = Vec::with_capacity(total);
        for _t in 0..total {
            let mut linear = self.intercept;
            for j in 1..=self.memory.min(x.len()) {
                linear += self.coefficient(j) * x[x.len() - j];
            }
            let xi = bernoulli(rng, 0.5) - 0.5;
            x.push(xi * linear);
        }
        x.split_off(self.burn_in)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn construction_enforces_contraction() {
        assert!(LarchProcess::new(1.0, 0.4, 0.5).is_ok());
        assert!(LarchProcess::new(1.0, 5.0, 0.9).is_err());
        assert!(LarchProcess::new(1.0, -0.1, 0.5).is_err());
        assert!(LarchProcess::new(1.0, 0.4, 1.0).is_err());
    }

    #[test]
    fn coefficients_decay_geometrically() {
        let p = LarchProcess::default_paper();
        assert_eq!(p.coefficient(0), 0.0);
        assert!((p.coefficient(1) - 0.2).abs() < 1e-15);
        assert!((p.coefficient(3) - 0.05).abs() < 1e-15);
    }

    #[test]
    fn process_is_centred_and_bounded() {
        let p = LarchProcess::default_paper();
        let mut rng = seeded_rng(3);
        let n = 100_000;
        let x = p.simulate(n, &mut rng);
        assert_eq!(x.len(), n);
        let mean = x.iter().sum::<f64>() / n as f64;
        // E X_t = E ξ_t · E(a + …) = 0 since ξ is centred and independent of
        // the past.
        assert!(mean.abs() < 0.01, "mean {mean}");
        // With ξ ∈ {±1/2} and the contraction condition, |X_t| is bounded by
        // a/(2 − ‖a‖) ≈ 0.57… < 1.
        assert!(x.iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn squared_process_is_positively_autocorrelated() {
        // Volatility clustering: X_t² inherits dependence through the linear
        // form even though X_t itself is white noise.
        let p = LarchProcess::default_paper();
        let mut rng = seeded_rng(19);
        let x = p.simulate(200_000, &mut rng);
        let sq: Vec<f64> = x.iter().map(|v| v * v).collect();
        let n = sq.len();
        let mean = sq.iter().sum::<f64>() / n as f64;
        let var = sq.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        let cov1 = sq
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        assert!(
            cov1 / var > 0.05,
            "squared lag-1 correlation {}",
            cov1 / var
        );
        // The raw series is (approximately) uncorrelated.
        let mean_x = x.iter().sum::<f64>() / n as f64;
        let var_x = x.iter().map(|v| (v - mean_x).powi(2)).sum::<f64>() / n as f64;
        let cov_x = x
            .windows(2)
            .map(|w| (w[0] - mean_x) * (w[1] - mean_x))
            .sum::<f64>()
            / (n - 1) as f64;
        assert!((cov_x / var_x).abs() < 0.02);
    }
}
