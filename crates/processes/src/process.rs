//! The core simulation abstraction: a strictly stationary real-valued
//! process from which sample paths can be drawn.

use rand::RngCore;

/// A strictly stationary, real-valued time series `(X_t)` that can be
/// simulated.
///
/// Implementations are required to produce (an arbitrarily good
/// approximation of) the *stationary* law of the process — e.g. by burn-in,
/// by sampling the invariant distribution exactly, or by truncating an
/// infinite moving-average representation at negligible error — because the
/// density estimators downstream estimate the common marginal density.
pub trait StationaryProcess: Send + Sync {
    /// Human-readable name used in reports.
    fn name(&self) -> String;

    /// Draws a sample path `X_1, …, X_n`.
    fn simulate(&self, n: usize, rng: &mut dyn RngCore) -> Vec<f64>;

    /// The support of the marginal distribution, if known. Estimators use
    /// this to choose the estimation interval; `None` means unknown /
    /// unbounded.
    fn marginal_support(&self) -> Option<(f64, f64)> {
        None
    }
}

/// Blanket implementation so `Box<dyn StationaryProcess>` is itself a
/// process (useful for heterogeneous collections in the experiment
/// harness).
impl StationaryProcess for Box<dyn StationaryProcess> {
    fn name(&self) -> String {
        self.as_ref().name()
    }
    fn simulate(&self, n: usize, rng: &mut dyn RngCore) -> Vec<f64> {
        self.as_ref().simulate(n, rng)
    }
    fn marginal_support(&self) -> Option<(f64, f64)> {
        self.as_ref().marginal_support()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    struct ConstantProcess(f64);
    impl StationaryProcess for ConstantProcess {
        fn name(&self) -> String {
            "constant".to_string()
        }
        fn simulate(&self, n: usize, _rng: &mut dyn RngCore) -> Vec<f64> {
            vec![self.0; n]
        }
        fn marginal_support(&self) -> Option<(f64, f64)> {
            Some((self.0, self.0))
        }
    }

    #[test]
    fn boxed_process_delegates() {
        let boxed: Box<dyn StationaryProcess> = Box::new(ConstantProcess(1.5));
        let mut rng = seeded_rng(0);
        assert_eq!(boxed.name(), "constant");
        assert_eq!(boxed.simulate(3, &mut rng), vec![1.5, 1.5, 1.5]);
        assert_eq!(boxed.marginal_support(), Some((1.5, 1.5)));
    }

    #[test]
    fn default_marginal_support_is_none() {
        struct Bare;
        impl StationaryProcess for Bare {
            fn name(&self) -> String {
                "bare".into()
            }
            fn simulate(&self, n: usize, _rng: &mut dyn RngCore) -> Vec<f64> {
                vec![0.0; n]
            }
        }
        assert_eq!(Bare.marginal_support(), None);
    }
}
